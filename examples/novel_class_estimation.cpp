// When the number of novel classes is unknown (the paper's §V-E): first
// learn unbiased embeddings with InfoNCE, estimate a rough novel-class
// count from the silhouette coefficient, then treat the count as a
// hyper-parameter selected by the SC&ACC metric over trained OpenIMA
// models.
//
// Run: ./novel_class_estimation

#include <cstdio>
#include <vector>

#include "src/baselines/cl_ladder.h"
#include "src/core/novel_count.h"
#include "src/core/openima.h"
#include "src/cluster/silhouette.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/metrics/clustering_accuracy.h"
#include "src/metrics/sc_acc.h"

int main() {
  using namespace openima;

  graph::SbmConfig data_config;
  data_config.num_nodes = 500;
  data_config.num_classes = 8;  // 4 will be seen, 4 novel
  data_config.feature_dim = 24;
  data_config.avg_degree = 12.0;
  data_config.feature_noise = 1.2;
  auto dataset = graph::GenerateSbm(data_config, 31, "estimation");
  if (!dataset.ok()) return 1;
  graph::SplitOptions split_options;
  split_options.labeled_per_class = 15;
  split_options.val_per_class = 8;
  auto split = graph::MakeOpenWorldSplit(*dataset, split_options, 13);
  if (!split.ok()) return 1;
  std::printf("true split: %d seen classes, %d novel classes (hidden)\n\n",
              split->num_seen, split->num_novel);

  core::OpenImaConfig config;
  config.encoder.in_dim = dataset->feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;  // placeholder; swept below
  config.epochs = 10;
  config.lr = 5e-3f;

  // Step 1: unbiased InfoNCE embeddings + silhouette estimate.
  baselines::ClLadderClassifier infonce(config, baselines::ClVariant::kInfoNce,
                                        dataset->feature_dim(), 2);
  if (!infonce.Train(*dataset, *split).ok()) return 1;
  core::NovelCountOptions nco;
  nco.num_seen = split->num_seen;
  nco.min_novel = 1;
  nco.max_novel = 10;
  Rng rng(3);
  auto estimate =
      core::EstimateNovelClassCount(infonce.Embeddings(*dataset), nco, &rng);
  if (!estimate.ok()) {
    std::fprintf(stderr, "%s\n", estimate.status().ToString().c_str());
    return 1;
  }
  std::printf("silhouette sweep over C-bar = 1..10:\n");
  for (size_t i = 0; i < estimate->silhouettes.size(); ++i) {
    std::printf("  C-bar = %2zu: SC = %+.4f%s\n", i + 1,
                estimate->silhouettes[i],
                static_cast<int>(i + 1) == estimate->best_novel
                    ? "  <- rough estimate"
                    : "");
  }

  // Step 2: SC&ACC selection over candidates around the estimate.
  std::vector<int> candidates;
  for (int c = std::max(1, estimate->best_novel - 2);
       c <= estimate->best_novel + 2; ++c) {
    candidates.push_back(c);
  }
  std::vector<double> sc_scores, acc_scores;
  std::vector<std::vector<int>> all_predictions;
  std::printf("\ntraining OpenIMA per candidate C-bar:\n");
  for (int c : candidates) {
    core::OpenImaConfig candidate_config = config;
    candidate_config.num_novel = c;
    core::OpenImaModel model(candidate_config, dataset->feature_dim(), 4);
    if (!model.Train(*dataset, *split).ok()) return 1;
    auto predictions = model.Predict(*dataset, *split);
    if (!predictions.ok()) return 1;

    // SC over val+test embeddings with predictions as clusters; ACC on the
    // validation nodes.
    la::Matrix emb = model.Embeddings(*dataset);
    std::vector<int> vt = split->UnlabeledNodes();
    la::Matrix vt_emb(static_cast<int>(vt.size()), emb.cols());
    std::vector<int> vt_preds;
    for (size_t i = 0; i < vt.size(); ++i) {
      vt_emb.SetRow(static_cast<int>(i), emb, vt[i]);
      vt_preds.push_back((*predictions)[static_cast<size_t>(vt[i])]);
    }
    cluster::SilhouetteOptions so;
    so.max_samples = 400;
    auto sc = cluster::SilhouetteCoefficient(vt_emb, vt_preds, so, &rng);
    std::vector<int> val_preds, val_labels;
    for (int v : split->val_nodes) {
      val_preds.push_back((*predictions)[static_cast<size_t>(v)]);
      val_labels.push_back(split->remapped_labels[static_cast<size_t>(v)]);
    }
    auto val_acc =
        metrics::ClusteringAccuracy(val_preds, val_labels, split->num_seen);
    sc_scores.push_back(sc.ok() ? *sc : -1.0);
    acc_scores.push_back(val_acc.ok() ? *val_acc : 0.0);
    all_predictions.push_back(std::move(*predictions));
    std::printf("  C-bar = %d: SC = %+.4f, val ACC = %.3f\n", c,
                sc_scores.back(), acc_scores.back());
  }
  auto combined = metrics::CombineScAcc(sc_scores, acc_scores);
  if (!combined.ok()) return 1;
  const int pick = metrics::ArgmaxIndex(*combined);
  std::printf("\nSC&ACC picks C-bar = %d (true: %d)\n",
              candidates[static_cast<size_t>(pick)], split->num_novel);

  // Final test accuracy of the selected model.
  std::vector<int> preds, labels;
  for (int v : split->test_nodes) {
    preds.push_back(all_predictions[static_cast<size_t>(pick)]
                                   [static_cast<size_t>(v)]);
    labels.push_back(split->remapped_labels[static_cast<size_t>(v)]);
  }
  auto acc = metrics::EvaluateOpenWorld(preds, labels, split->num_seen,
                                        split->num_total_classes());
  if (!acc.ok()) return 1;
  std::printf("selected model: all %.1f%%  seen %.1f%%  novel %.1f%%\n",
              100.0 * acc->all, 100.0 * acc->seen, 100.0 * acc->novel);
  return 0;
}
