// Co-purchase scenario (Amazon-Computers-like): products are nodes, edges
// connect frequently co-purchased items, and classes are catalog
// categories. New product categories appear over time; the catalog team
// wants them surfaced automatically. This example compares OpenIMA with an
// end-to-end baseline (ORCA) and the simple InfoNCE two-stage pipeline on
// the same split — the comparison the paper's Table III makes per dataset.
//
// Run: ./product_catalog

#include <cstdio>
#include <memory>
#include <vector>

#include "src/baselines/cl_ladder.h"
#include "src/baselines/orca.h"
#include "src/graph/benchmarks.h"
#include "src/graph/splits.h"
#include "src/metrics/clustering_accuracy.h"

namespace {

using namespace openima;

metrics::OpenWorldAccuracy Evaluate(const std::vector<int>& predictions,
                                    const graph::OpenWorldSplit& split) {
  std::vector<int> preds, labels;
  for (int v : split.test_nodes) {
    preds.push_back(predictions[static_cast<size_t>(v)]);
    labels.push_back(split.remapped_labels[static_cast<size_t>(v)]);
  }
  auto acc = metrics::EvaluateOpenWorld(preds, labels, split.num_seen,
                                        split.num_total_classes());
  return acc.ok() ? *acc : metrics::OpenWorldAccuracy{};
}

}  // namespace

int main() {
  auto spec = graph::GetBenchmark("amazon_computers");
  if (!spec.ok()) return 1;
  auto dataset = graph::MakeDataset(*spec, 0.05, 32, 17);
  if (!dataset.ok()) return 1;
  std::printf("catalog graph: %d products, %d categories\n",
              dataset->num_nodes(), dataset->num_classes);

  graph::SplitOptions split_options;
  split_options.labeled_per_class = 20;
  split_options.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(*dataset, split_options, 23);
  if (!split.ok()) return 1;
  std::printf("%d known categories (labeled), %d new categories (unlabeled)\n\n",
              split->num_seen, split->num_novel);

  // Shared encoder/optimization settings.
  core::OpenImaConfig ima_config;
  ima_config.encoder.in_dim = dataset->feature_dim();
  ima_config.encoder.hidden_dim = 48;
  ima_config.encoder.embedding_dim = 48;
  ima_config.encoder.num_heads = 4;
  ima_config.num_seen = split->num_seen;
  ima_config.num_novel = split->num_novel;
  ima_config.epochs = 12;
  ima_config.lr = 3e-3f;
  // §VII: Amazon graphs use a large CE scale and a sharp temperature.
  ima_config.eta = 10.0f;
  ima_config.tau = 0.07f;

  baselines::BaselineConfig base_config;
  base_config.encoder = ima_config.encoder;
  base_config.num_seen = split->num_seen;
  base_config.num_novel = split->num_novel;
  base_config.epochs = 20;
  base_config.lr = 3e-3f;

  std::printf("%-22s %8s %8s %8s\n", "method", "all", "known", "new");
  auto report = [&](const std::string& name, const std::vector<int>& preds) {
    const auto acc = Evaluate(preds, *split);
    std::printf("%-22s %7.1f%% %7.1f%% %7.1f%%\n", name.c_str(),
                100.0 * acc.all, 100.0 * acc.seen, 100.0 * acc.novel);
  };

  {
    baselines::ClLadderClassifier infonce(
        ima_config, baselines::ClVariant::kInfoNce, dataset->feature_dim(), 9);
    if (!infonce.Train(*dataset, *split).ok()) return 1;
    auto preds = infonce.Predict(*dataset, *split);
    if (!preds.ok()) return 1;
    report(infonce.name(), *preds);
  }
  {
    baselines::OrcaClassifier orca(base_config, baselines::OrcaOptions{},
                                   dataset->feature_dim(), 9);
    if (!orca.Train(*dataset, *split).ok()) return 1;
    auto preds = orca.Predict(*dataset, *split);
    if (!preds.ok()) return 1;
    report(orca.name(), *preds);
  }
  {
    baselines::ClLadderClassifier openima(
        ima_config, baselines::ClVariant::kOpenIma, dataset->feature_dim(), 9);
    if (!openima.Train(*dataset, *split).ok()) return 1;
    auto preds = openima.Predict(*dataset, *split);
    if (!preds.ok()) return 1;
    report(openima.name(), *preds);
  }
  std::printf(
      "\nOpenIMA should balance known and new categories; ORCA's margin\n"
      "slows known-category learning, InfoNCE leaves labels unused.\n");
  return 0;
}
