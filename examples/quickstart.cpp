// Quickstart: the minimal end-to-end OpenIMA workflow.
//
//  1. Build (or load) a partially labeled graph.
//  2. Construct an open-world split: half the classes are "seen" (labeled),
//     the rest are novel.
//  3. Train OpenIMA from scratch (GAT encoder + BPCL + CE, Eq. 6).
//  4. Predict: K-Means over embeddings + Hungarian cluster-class alignment.
//  5. Evaluate All / Seen / Novel clustering accuracy (GCD protocol).
//
// Run: ./quickstart
//
// Observability (see README "Observability & benchmarking"):
//   OPENIMA_TRACE=run.json ./quickstart   # chrome://tracing span timeline
//   ./quickstart --trace=run.json         # same, as a flag
//   ./quickstart --report=report.json     # machine-readable RunReport
//   ./quickstart --obs-smoke              # CI check: report round-trips

#include <cstdio>

#include "src/core/openima.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/metrics/clustering_accuracy.h"
#include "src/obs/obs.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace openima;

  Flags flags(argc, argv);
  obs::InitFromEnv();
  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    if (Status s = obs::StartTracing(trace_path); !s.ok()) {
      std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const bool obs_smoke = flags.GetBool("obs-smoke", false);
  const std::string report_path = flags.GetString("report", "");

  // 1. A small synthetic graph: 600 nodes, 6 classes, homophilous edges,
  //    class-conditional Gaussian features.
  graph::SbmConfig data_config;
  data_config.num_nodes = 600;
  data_config.num_classes = 6;
  data_config.feature_dim = 24;
  data_config.avg_degree = 12.0;
  data_config.homophily = 0.8;
  data_config.feature_noise = 1.5;
  auto dataset = graph::GenerateSbm(data_config, /*seed=*/42, "quickstart");
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %d nodes, %lld undirected edges, %d classes\n",
              dataset->num_nodes(),
              static_cast<long long>(dataset->graph.num_undirected_edges()),
              dataset->num_classes);

  // 2. Open-world split: 3 seen classes with 25 labeled + 10 validation
  //    nodes each; everything else is the unlabeled test set.
  graph::SplitOptions split_options;
  split_options.labeled_per_class = 25;
  split_options.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(*dataset, split_options, /*seed=*/7);
  if (!split.ok()) {
    std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("split: %d seen / %d novel classes, %zu labeled nodes\n",
              split->num_seen, split->num_novel, split->train_nodes.size());

  // 3. Train OpenIMA.
  core::OpenImaConfig config;
  config.encoder.in_dim = dataset->feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 4;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  // The smoke run only checks that the report plumbing works end to end; a
  // few epochs keep it under a second in CI.
  config.epochs = flags.GetInt("epochs", obs_smoke ? 4 : 15);
  config.lr = 5e-3f;
  core::OpenImaModel model(config, dataset->feature_dim(), /*seed=*/1);
  if (Status s = model.Train(*dataset, *split); !s.ok()) {
    std::fprintf(stderr, "train: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("trained %d epochs; final loss %.4f; %d pseudo labels\n",
              config.epochs, model.train_stats().epoch_losses.back(),
              model.train_stats().pseudo_labeled_last_epoch);

  // 4. Two-stage prediction for every node.
  auto predictions = model.Predict(*dataset, *split);
  if (!predictions.ok()) {
    std::fprintf(stderr, "predict: %s\n",
                 predictions.status().ToString().c_str());
    return 1;
  }

  // 5. Test accuracy under a single Hungarian alignment.
  std::vector<int> test_preds, test_labels;
  for (int v : split->test_nodes) {
    test_preds.push_back((*predictions)[static_cast<size_t>(v)]);
    test_labels.push_back(split->remapped_labels[static_cast<size_t>(v)]);
  }
  auto acc = metrics::EvaluateOpenWorld(test_preds, test_labels,
                                        split->num_seen,
                                        split->num_total_classes());
  if (!acc.ok()) {
    std::fprintf(stderr, "eval: %s\n", acc.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "test accuracy: all %.1f%%  seen %.1f%%  novel %.1f%%  "
      "(%d test nodes; chance would be ~%.1f%%)\n",
      100.0 * acc->all, 100.0 * acc->seen, 100.0 * acc->novel, acc->n_all,
      100.0 / dataset->num_classes);

  // 6. Assemble the RunReport: run identity, TrainStats, live metrics and
  //    the phase breakdown, in one JSON document.
  obs::RunReport report("quickstart");
  using obs::json::Value;
  report.Set("run", "dataset", Value::Str(dataset->name));
  report.Set("run", "num_nodes", Value::Int(dataset->num_nodes()));
  report.Set("run", "num_seen", Value::Int(split->num_seen));
  report.Set("run", "num_novel", Value::Int(split->num_novel));
  report.Set("run", "epochs", Value::Int(config.epochs));
  report.Set("run", "acc_all", Value::Double(acc->all));
  report.Set("run", "acc_seen", Value::Double(acc->seen));
  report.Set("run", "acc_novel", Value::Double(acc->novel));
  report.Section("train")->Set("openima",
                               core::TrainStatsJson(model.train_stats()));
  report.AddMetrics(obs::MetricsRegistry::Global()->Snapshot());
  report.AddPhaseBreakdown();

  if (!report_path.empty()) {
    if (Status s = report.WriteFile(report_path); !s.ok()) {
      std::fprintf(stderr, "report: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote run report to %s\n", report_path.c_str());
  }

  if (const std::string breakdown = obs::PhaseBreakdown(); !breakdown.empty()) {
    std::printf("\nphase breakdown:\n%s", breakdown.c_str());
  }

  if (obs_smoke) {
    // CI smoke check: a non-empty report must survive Dump -> Parse intact.
    const std::string text = report.ToJson();
    auto reparsed = obs::RunReport::Parse(text);
    if (!reparsed.ok()) {
      std::fprintf(stderr, "obs-smoke: reparse failed: %s\n",
                   reparsed.status().ToString().c_str());
      return 1;
    }
    if (!(*reparsed == report.root())) {
      std::fprintf(stderr, "obs-smoke: round-trip mismatch\n");
      return 1;
    }
    const Value* train = report.root().Find("train");
    if (train == nullptr || train->Find("openima") == nullptr) {
      std::fprintf(stderr, "obs-smoke: train section missing\n");
      return 1;
    }
    if (obs::kCompiledIn) {
      const Value* phases = report.root().Find("phases");
      if (phases == nullptr || phases->size() == 0) {
        std::fprintf(stderr, "obs-smoke: phase breakdown empty\n");
        return 1;
      }
    }
    std::printf("obs-smoke: ok\n");
  }
  return 0;
}
