// Quickstart: the minimal end-to-end OpenIMA workflow.
//
//  1. Build (or load) a partially labeled graph.
//  2. Construct an open-world split: half the classes are "seen" (labeled),
//     the rest are novel.
//  3. Train OpenIMA from scratch (GAT encoder + BPCL + CE, Eq. 6).
//  4. Predict: K-Means over embeddings + Hungarian cluster-class alignment.
//  5. Evaluate All / Seen / Novel clustering accuracy (GCD protocol).
//
// Run: ./quickstart

#include <cstdio>

#include "src/core/openima.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/metrics/clustering_accuracy.h"

int main() {
  using namespace openima;

  // 1. A small synthetic graph: 600 nodes, 6 classes, homophilous edges,
  //    class-conditional Gaussian features.
  graph::SbmConfig data_config;
  data_config.num_nodes = 600;
  data_config.num_classes = 6;
  data_config.feature_dim = 24;
  data_config.avg_degree = 12.0;
  data_config.homophily = 0.8;
  data_config.feature_noise = 1.5;
  auto dataset = graph::GenerateSbm(data_config, /*seed=*/42, "quickstart");
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %d nodes, %lld undirected edges, %d classes\n",
              dataset->num_nodes(),
              static_cast<long long>(dataset->graph.num_undirected_edges()),
              dataset->num_classes);

  // 2. Open-world split: 3 seen classes with 25 labeled + 10 validation
  //    nodes each; everything else is the unlabeled test set.
  graph::SplitOptions split_options;
  split_options.labeled_per_class = 25;
  split_options.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(*dataset, split_options, /*seed=*/7);
  if (!split.ok()) {
    std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("split: %d seen / %d novel classes, %zu labeled nodes\n",
              split->num_seen, split->num_novel, split->train_nodes.size());

  // 3. Train OpenIMA.
  core::OpenImaConfig config;
  config.encoder.in_dim = dataset->feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 4;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = 15;
  config.lr = 5e-3f;
  core::OpenImaModel model(config, dataset->feature_dim(), /*seed=*/1);
  if (Status s = model.Train(*dataset, *split); !s.ok()) {
    std::fprintf(stderr, "train: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("trained %d epochs; final loss %.4f; %d pseudo labels\n",
              config.epochs, model.train_stats().epoch_losses.back(),
              model.train_stats().pseudo_labeled_last_epoch);

  // 4. Two-stage prediction for every node.
  auto predictions = model.Predict(*dataset, *split);
  if (!predictions.ok()) {
    std::fprintf(stderr, "predict: %s\n",
                 predictions.status().ToString().c_str());
    return 1;
  }

  // 5. Test accuracy under a single Hungarian alignment.
  std::vector<int> test_preds, test_labels;
  for (int v : split->test_nodes) {
    test_preds.push_back((*predictions)[static_cast<size_t>(v)]);
    test_labels.push_back(split->remapped_labels[static_cast<size_t>(v)]);
  }
  auto acc = metrics::EvaluateOpenWorld(test_preds, test_labels,
                                        split->num_seen,
                                        split->num_total_classes());
  if (!acc.ok()) {
    std::fprintf(stderr, "eval: %s\n", acc.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "test accuracy: all %.1f%%  seen %.1f%%  novel %.1f%%  "
      "(%d test nodes; chance would be ~%.1f%%)\n",
      100.0 * acc->all, 100.0 * acc->seen, 100.0 * acc->novel, acc->n_all,
      100.0 / dataset->num_classes);
  return 0;
}
