// Quickstart: the minimal end-to-end OpenIMA workflow.
//
//  1. Build (or load) a partially labeled graph.
//  2. Construct an open-world split: half the classes are "seen" (labeled),
//     the rest are novel.
//  3. Train OpenIMA from scratch (GAT encoder + BPCL + CE, Eq. 6).
//  4. Predict: K-Means over embeddings + Hungarian cluster-class alignment.
//  5. Evaluate All / Seen / Novel clustering accuracy (GCD protocol).
//
// Run: ./quickstart
//
// Observability (see README "Observability & benchmarking"):
//   OPENIMA_TRACE=run.json ./quickstart   # chrome://tracing span timeline
//   ./quickstart --trace=run.json         # same, as a flag
//   ./quickstart --report=report.json     # machine-readable RunReport
//   ./quickstart --telemetry=run.jsonl    # per-epoch training time-series
//   ./quickstart --watchdog=abort         # NaN/Inf + norm-explosion guard
//   ./quickstart --bench-json=BENCH_train.json  # e2e training benchmark
//   ./quickstart --report-buckets         # histogram buckets in the report
//   ./quickstart --obs-smoke              # CI check: report round-trips
//   ./quickstart --backend=scalar         # pin the kernel backend
//                                         # (auto|scalar|avx2; exit 77 when
//                                         # the named backend is unusable)
//   ./quickstart --sampled                # neighbor-sampled minibatch mode
//   ./quickstart --sample-fanout=10       # per-layer fanout (implies
//                                         # --sampled; 0 = exhaustive)
//   ./quickstart --batch-nodes=1024       # seed nodes per sampled batch
//                                         # (implies --sampled)
//   ./quickstart --workers=8              # deterministic data-parallel
//                                         # training: W model replicas +
//                                         # tree all-reduce (implies
//                                         # --sampled; bit-identical for
//                                         # any W, DESIGN.md §2.8)
//   ./quickstart --epochs=15              # training epochs
//   ./quickstart --checkpoint-out=m.ckpt  # save a versioned checkpoint
//                                         # after training (SERVING.md)
//   ./quickstart --resume=m.ckpt          # load a checkpoint and continue
//                                         # training where it stopped
//   ./quickstart --stop-after=8           # stop after this absolute epoch
//                                         # (resume replays the rest
//                                         # bit-identically)
// Env equivalents (flags win): OPENIMA_SAMPLE_TRAIN=1,
// OPENIMA_SAMPLE_FANOUT=<n>, OPENIMA_SAMPLE_BATCH_NODES=<n>,
// OPENIMA_WORKERS=<w>.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/openima.h"
#include "src/la/backend/backend.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/metrics/clustering_accuracy.h"
#include "src/obs/obs.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace openima;

  Flags flags(argc, argv);
  obs::InitFromEnv();
  // Pin the kernel backend before anything computes or reports: RunReport
  // snapshots la::backend::Default() into its "run" provenance section. A
  // backend that exists but is unusable on this host (e.g. --backend=avx2
  // on a pre-Haswell CPU) exits 77 — the conventional "skipped" code, which
  // the ctest fixtures map to SKIP_RETURN_CODE so portable CI stays green.
  if (const std::string backend = flags.GetString("backend", "");
      !backend.empty()) {
    if (Status s = la::backend::SetDefault(backend); !s.ok()) {
      std::fprintf(stderr, "backend: %s\n", s.ToString().c_str());
      return s.code() == StatusCode::kFailedPrecondition ? 77 : 1;
    }
  }
  std::printf("kernel backend: %s\n", la::backend::Default().name());
  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    if (Status s = obs::StartTracing(trace_path); !s.ok()) {
      std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const std::string telemetry_path = flags.GetString("telemetry", "");
  if (!telemetry_path.empty()) {
    if (Status s = obs::StartTelemetry(telemetry_path); !s.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  // --metrics-export mirrors OPENIMA_METRICS_EXPORT: a background thread
  // publishing the registry (JSON + .prom twin) while training runs, so
  // `openima_top --snapshot=<path>` can watch the epoch loop live.
  const std::string metrics_export = flags.GetString("metrics-export", "");
  if (!metrics_export.empty()) {
    obs::ExporterOptions export_options;
    export_options.path = metrics_export;
    export_options.interval_ms =
        flags.GetInt("metrics-export-interval-ms", export_options.interval_ms);
    if (Status s = obs::StartMetricsExporter(export_options); !s.ok()) {
      std::fprintf(stderr, "metrics-export: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (const std::string wd = flags.GetString("watchdog", ""); !wd.empty()) {
    auto policy = obs::ParseWatchdogPolicy(wd);
    if (!policy.ok()) {
      std::fprintf(stderr, "watchdog: %s\n",
                   policy.status().ToString().c_str());
      return 1;
    }
    obs::WatchdogOptions options;
    options.policy = *policy;
    options.max_grad_norm =
        flags.GetDouble("watchdog-max-norm", options.max_grad_norm);
    obs::Watchdog::Configure(options);
  }
  const bool obs_smoke = flags.GetBool("obs-smoke", false);
  const std::string report_path = flags.GetString("report", "");
  const std::string bench_json_path = flags.GetString("bench-json", "");

  // 1. A small synthetic graph: 600 nodes, 6 classes, homophilous edges,
  //    class-conditional Gaussian features.
  graph::SbmConfig data_config;
  data_config.num_nodes = 600;
  data_config.num_classes = 6;
  data_config.feature_dim = 24;
  data_config.avg_degree = 12.0;
  data_config.homophily = 0.8;
  data_config.feature_noise = 1.5;
  auto dataset = graph::GenerateSbm(data_config, /*seed=*/42, "quickstart");
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %d nodes, %lld undirected edges, %d classes\n",
              dataset->num_nodes(),
              static_cast<long long>(dataset->graph.num_undirected_edges()),
              dataset->num_classes);

  // 2. Open-world split: 3 seen classes with 25 labeled + 10 validation
  //    nodes each; everything else is the unlabeled test set.
  graph::SplitOptions split_options;
  split_options.labeled_per_class = 25;
  split_options.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(*dataset, split_options, /*seed=*/7);
  if (!split.ok()) {
    std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("split: %d seen / %d novel classes, %zu labeled nodes\n",
              split->num_seen, split->num_novel, split->train_nodes.size());

  // 3. Train OpenIMA.
  core::OpenImaConfig config;
  config.encoder.in_dim = dataset->feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 4;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  // The smoke run only checks that the report plumbing works end to end; a
  // few epochs keep it under a second in CI.
  config.epochs = flags.GetInt("epochs", obs_smoke ? 4 : 15);
  config.lr = 5e-3f;
  // Neighbor-sampled minibatch mode: --sampled turns it on explicitly;
  // giving either tuning flag (or any OPENIMA_SAMPLE_* env) implies it.
  const auto env_int = [](const char* name, int fallback) {
    const char* v = std::getenv(name);
    return v == nullptr ? fallback : std::atoi(v);
  };
  config.sample_fanout = flags.GetInt(
      "sample-fanout", env_int("OPENIMA_SAMPLE_FANOUT", config.sample_fanout));
  config.batch_nodes = flags.GetInt(
      "batch-nodes",
      env_int("OPENIMA_SAMPLE_BATCH_NODES", config.batch_nodes));
  config.sampled_training =
      flags.GetBool("sampled",
                    std::getenv("OPENIMA_SAMPLE_TRAIN") != nullptr) ||
      flags.Has("sample-fanout") || flags.Has("batch-nodes") ||
      std::getenv("OPENIMA_SAMPLE_FANOUT") != nullptr ||
      std::getenv("OPENIMA_SAMPLE_BATCH_NODES") != nullptr;
  // Data-parallel minibatch training: W persistent replicas, fixed-topology
  // tree all-reduce, one Adam step per round — bit-identical to the serial
  // schedule for any W, so it composes with every --backend and the
  // telemetry-diff fixtures can gate the worker axis exactly.
  config.workers =
      flags.GetInt("workers", env_int("OPENIMA_WORKERS", config.workers));
  if (config.workers > 0) config.sampled_training = true;
  // Checkpointing knobs (SERVING.md): stop the epoch loop early, save a
  // versioned checkpoint, resume a saved one. A stop-save-resume sequence
  // reproduces the uninterrupted run bit-for-bit, telemetry included.
  config.stop_after_epochs = flags.GetInt("stop-after", 0);
  const std::string checkpoint_out = flags.GetString("checkpoint-out", "");
  const std::string resume_path = flags.GetString("resume", "");
  if (config.sampled_training) {
    std::printf("training mode: sampled minibatch (fanout %d, %d seed "
                "nodes/batch%s)\n",
                config.sample_fanout, config.batch_nodes,
                config.workers > 0
                    ? (", " + std::to_string(config.workers) +
                       " data-parallel workers")
                          .c_str()
                    : "");
  }
  core::OpenImaModel model(config, dataset->feature_dim(), /*seed=*/1);
  if (!resume_path.empty()) {
    if (Status s = model.LoadCheckpoint(resume_path); !s.ok()) {
      std::fprintf(stderr, "resume: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("resumed from %s at epoch %d\n", resume_path.c_str(),
                model.epochs_done());
  }
  Stopwatch train_watch;
  // A fully trained checkpoint has no epochs left; Train() would
  // (correctly) refuse to run again.
  if (model.epochs_done() < config.epochs) {
    if (Status s = model.Train(*dataset, *split); !s.ok()) {
      std::fprintf(stderr, "train: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const double train_ms = train_watch.ElapsedMillis();
  if (!model.train_stats().epoch_losses.empty()) {
    std::printf("trained through epoch %d; final loss %.4f; %d pseudo labels\n",
                model.epochs_done(),
                model.train_stats().epoch_losses.back(),
                model.train_stats().pseudo_labeled_last_epoch);
  }
  // Save before Predict: prediction consumes RNG draws, and the checkpoint
  // must capture the state a resumed run needs to replay the next epoch.
  if (!checkpoint_out.empty()) {
    if (Status s = model.SaveCheckpoint(checkpoint_out); !s.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote checkpoint (epoch %d) to %s\n", model.epochs_done(),
                checkpoint_out.c_str());
  }

  // 4. Two-stage prediction for every node.
  auto predictions = model.Predict(*dataset, *split);
  if (!predictions.ok()) {
    std::fprintf(stderr, "predict: %s\n",
                 predictions.status().ToString().c_str());
    return 1;
  }

  // 5. Test accuracy under a single Hungarian alignment.
  std::vector<int> test_preds, test_labels;
  for (int v : split->test_nodes) {
    test_preds.push_back((*predictions)[static_cast<size_t>(v)]);
    test_labels.push_back(split->remapped_labels[static_cast<size_t>(v)]);
  }
  auto acc = metrics::EvaluateOpenWorld(test_preds, test_labels,
                                        split->num_seen,
                                        split->num_total_classes());
  if (!acc.ok()) {
    std::fprintf(stderr, "eval: %s\n", acc.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "test accuracy: all %.1f%%  seen %.1f%%  novel %.1f%%  "
      "(%d test nodes; chance would be ~%.1f%%)\n",
      100.0 * acc->all, 100.0 * acc->seen, 100.0 * acc->novel, acc->n_all,
      100.0 / dataset->num_classes);

  // Close the telemetry sink (one EpochRecord per epoch was appended by the
  // training loop) and, under --obs-smoke, check the series is complete.
  if (!telemetry_path.empty()) {
    if (Status s = obs::StopTelemetry(); !s.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", s.ToString().c_str());
      return 1;
    }
    auto lines = obs::ReadJsonl(telemetry_path);
    if (!lines.ok()) {
      std::fprintf(stderr, "telemetry: %s\n",
                   lines.status().ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu telemetry records to %s\n", lines->size(),
                telemetry_path.c_str());
    if (obs_smoke) {
      if (static_cast<int>(lines->size()) != config.epochs) {
        std::fprintf(stderr,
                     "obs-smoke: expected %d telemetry records, got %zu\n",
                     config.epochs, lines->size());
        return 1;
      }
      for (const auto& line : *lines) {
        auto record = obs::EpochRecord::FromJson(line);
        if (!record.ok()) {
          std::fprintf(stderr, "obs-smoke: bad telemetry record: %s\n",
                       record.status().ToString().c_str());
          return 1;
        }
        if (!record->has_components || !record->has_quality ||
            record->grad_norm < 0.0) {
          std::fprintf(stderr,
                       "obs-smoke: epoch %d record is missing loss "
                       "components, quality metrics, or grad norms\n",
                       record->epoch);
          return 1;
        }
      }
      std::printf("obs-smoke: telemetry ok\n");
    }
  }

  // 6. Assemble the RunReport: run identity, TrainStats, live metrics and
  //    the phase breakdown, in one JSON document.
  obs::RunReport report("quickstart");
  using obs::json::Value;
  report.Set("run", "dataset", Value::Str(dataset->name));
  report.Set("run", "num_nodes", Value::Int(dataset->num_nodes()));
  report.Set("run", "num_seen", Value::Int(split->num_seen));
  report.Set("run", "num_novel", Value::Int(split->num_novel));
  report.Set("run", "epochs", Value::Int(config.epochs));
  report.Set("run", "acc_all", Value::Double(acc->all));
  report.Set("run", "acc_seen", Value::Double(acc->seen));
  report.Set("run", "acc_novel", Value::Double(acc->novel));
  report.Section("train")->Set("openima",
                               core::TrainStatsJson(model.train_stats()));
  report.AddMetrics(obs::MetricsRegistry::Global()->Snapshot(),
                    flags.GetBool("report-buckets", false));
  report.AddPhaseBreakdown();

  if (!report_path.empty()) {
    if (Status s = report.WriteFile(report_path); !s.ok()) {
      std::fprintf(stderr, "report: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote run report to %s\n", report_path.c_str());
  }

  // 7. Optional end-to-end training benchmark record ("openima-bench-train"
  //    schema, see EXPERIMENTS.md). Timing fields end in "_ms" so
  //    tools/run_diff ignores them by default; the "final" block is the
  //    regression-gated payload.
  if (!bench_json_path.empty()) {
    Value entry = Value::Object();
    entry.Set("name", Value::Str("quickstart/openima"));
    entry.Set("epochs", Value::Int(config.epochs));
    entry.Set("train_ms", Value::Double(train_ms));
    double epoch_ms = train_ms / config.epochs;
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::Global()->Snapshot();
    for (const auto& [hist_name, hist] : snap.histograms) {
      if (hist.count == 0) continue;
      if (hist_name == "time/epoch" || hist_name.ends_with("/epoch")) {
        epoch_ms = hist.Mean() / 1e6;
      } else if (hist_name.ends_with("pseudo_label_refresh")) {
        // Mean time of one pseudo-label refresh (K-Means + alignment).
        entry.Set("refresh_ms", Value::Double(hist.Mean() / 1e6));
      }
    }
    entry.Set("epoch_ms", Value::Double(epoch_ms));
    Value final_metrics = Value::Object();
    final_metrics.Set("loss",
                      Value::Double(model.train_stats().epoch_losses.back()));
    final_metrics.Set(
        "pseudo_labels",
        Value::Int(model.train_stats().pseudo_labeled_last_epoch));
    final_metrics.Set("acc_all", Value::Double(acc->all));
    final_metrics.Set("acc_seen", Value::Double(acc->seen));
    final_metrics.Set("acc_novel", Value::Double(acc->novel));
    entry.Set("final", std::move(final_metrics));

    Value doc = Value::Object();
    doc.Set("schema", Value::Str("openima-bench-train"));
    Value run_meta = Value::Object();
    run_meta.Set("dataset", Value::Str(dataset->name));
    run_meta.Set("num_nodes", Value::Int(dataset->num_nodes()));
    doc.Set("run", std::move(run_meta));
    Value runs = Value::Array();
    runs.Append(std::move(entry));
    doc.Set("runs", std::move(runs));

    const std::string text = doc.Dump(1);
    std::FILE* f = std::fopen(bench_json_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
      std::fprintf(stderr, "bench-json: cannot write %s\n",
                   bench_json_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote training benchmark to %s\n", bench_json_path.c_str());
  }

  if (const std::string breakdown = obs::PhaseBreakdown(); !breakdown.empty()) {
    std::printf("\nphase breakdown:\n%s", breakdown.c_str());
  }

  if (obs_smoke) {
    // CI smoke check: a non-empty report must survive Dump -> Parse intact.
    const std::string text = report.ToJson();
    auto reparsed = obs::RunReport::Parse(text);
    if (!reparsed.ok()) {
      std::fprintf(stderr, "obs-smoke: reparse failed: %s\n",
                   reparsed.status().ToString().c_str());
      return 1;
    }
    if (!(*reparsed == report.root())) {
      std::fprintf(stderr, "obs-smoke: round-trip mismatch\n");
      return 1;
    }
    const Value* train = report.root().Find("train");
    if (train == nullptr || train->Find("openima") == nullptr) {
      std::fprintf(stderr, "obs-smoke: train section missing\n");
      return 1;
    }
    if (obs::kCompiledIn) {
      const Value* phases = report.root().Find("phases");
      if (phases == nullptr || phases->size() == 0) {
        std::fprintf(stderr, "obs-smoke: phase breakdown empty\n");
        return 1;
      }
    }
    std::printf("obs-smoke: ok\n");
  }
  if (!metrics_export.empty()) {
    // Stop runs one final export, so the file on disk reflects the whole run.
    obs::StopMetricsExporter();
    std::printf("wrote metrics snapshot to %s (+ .prom)\n",
                metrics_export.c_str());
  }
  return 0;
}
