// Persistence workflow: save a generated dataset to disk, reload it, train
// OpenIMA, checkpoint the model parameters, and restore them into a fresh
// model that reproduces the exact same predictions — the
// train-once-predict-later loop of a deployed system.
//
// Run: ./save_and_reload [workdir]

#include <cstdio>
#include <string>

#include "src/core/openima.h"
#include "src/graph/io.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/nn/serialization.h"

int main(int argc, char** argv) {
  using namespace openima;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string dataset_path = dir + "/openima_example_dataset.txt";
  const std::string params_path = dir + "/openima_example_params.txt";

  // 1. Generate and persist a dataset.
  graph::SbmConfig data_config;
  data_config.num_nodes = 400;
  data_config.num_classes = 5;
  data_config.feature_dim = 16;
  auto generated = graph::GenerateSbm(data_config, /*seed=*/77, "persisted");
  if (!generated.ok()) return 1;
  if (Status s = graph::SaveDataset(*generated, dataset_path); !s.ok()) {
    std::fprintf(stderr, "save dataset: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", dataset_path.c_str());

  // 2. Reload it (as a deployment would) and make a split.
  auto dataset = graph::LoadDataset(dataset_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  graph::SplitOptions split_options;
  split_options.labeled_per_class = 15;
  split_options.val_per_class = 5;
  auto split = graph::MakeOpenWorldSplit(*dataset, split_options, 5);
  if (!split.ok()) return 1;

  // 3. Train and checkpoint.
  core::OpenImaConfig config;
  config.encoder.in_dim = dataset->feature_dim();
  config.encoder.hidden_dim = 24;
  config.encoder.embedding_dim = 24;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = 10;
  config.lr = 5e-3f;
  core::OpenImaModel trained(config, dataset->feature_dim(), /*seed=*/3);
  if (!trained.Train(*dataset, *split).ok()) return 1;
  if (Status s = nn::SaveParameters(trained.model(), params_path); !s.ok()) {
    std::fprintf(stderr, "save params: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%lld parameters)\n", params_path.c_str(),
              static_cast<long long>(trained.model().NumParameters()));

  // 4. Restore into a fresh (untrained) model and compare embeddings.
  core::OpenImaModel restored(config, dataset->feature_dim(), /*seed=*/999);
  core::EncoderWithHead* target =
      const_cast<core::EncoderWithHead*>(&restored.model());
  if (Status s = nn::LoadParameters(target, params_path); !s.ok()) {
    std::fprintf(stderr, "load params: %s\n", s.ToString().c_str());
    return 1;
  }
  la::Matrix a = trained.Embeddings(*dataset);
  la::Matrix b = restored.Embeddings(*dataset);
  const bool identical = la::AllClose(a, b, 1e-5f);
  std::printf("restored embeddings identical to trained: %s\n",
              identical ? "yes" : "NO");
  if (!identical) return 1;

  // 5. The full binary checkpoint (SERVING.md). The text format above
  // carries parameters only; the versioned binary checkpoint additionally
  // captures the Adam moments, RNG state, K-Means centers and Hungarian
  // alignment — enough to RESUME training bit-exactly or to serve the
  // frozen model, not just to replay predictions.
  const std::string ckpt_path = dir + "/openima_example_model.ckpt";
  if (Status s = trained.SaveCheckpoint(ckpt_path); !s.ok()) {
    std::fprintf(stderr, "save checkpoint: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", ckpt_path.c_str());

  // Load requires a fresh model with the SAME config and seed (a different
  // seed would silently change the RNG streams of any further training, so
  // it is rejected rather than allowed to drift).
  core::OpenImaModel reloaded(config, dataset->feature_dim(), /*seed=*/3);
  if (Status s = reloaded.LoadCheckpoint(ckpt_path); !s.ok()) {
    std::fprintf(stderr, "load checkpoint: %s\n", s.ToString().c_str());
    return 1;
  }
  auto want = trained.Predict(*dataset, *split);
  auto got = reloaded.Predict(*dataset, *split);
  if (!want.ok() || !got.ok()) return 1;
  const bool same_predictions = *want == *got;
  std::printf("checkpoint-restored predictions identical: %s (epoch %d)\n",
              same_predictions ? "yes" : "NO", reloaded.epochs_done());
  return same_predictions ? 0 : 1;
}
