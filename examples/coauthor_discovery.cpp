// The paper's Fig. 1a motivating scenario: a coauthor network where nodes
// are authors, edges are coauthorships, and classes are research fields.
// Established fields ("Databases", "Systems", ...) have labeled authors;
// newly emerging fields have none. OpenIMA classifies every unlabeled
// author into a known field or one of the emerging ones, and we inspect
// the discovered novel groups.
//
// Run: ./coauthor_discovery

#include <cstdio>
#include <map>
#include <vector>

#include "src/core/openima.h"
#include "src/graph/benchmarks.h"
#include "src/graph/splits.h"
#include "src/metrics/clustering_accuracy.h"
#include "src/metrics/variance_stats.h"

int main() {
  using namespace openima;

  // A scaled-down Coauthor-CS-like network (the paper's Table II spec).
  auto spec = graph::GetBenchmark("coauthor_cs");
  if (!spec.ok()) return 1;
  auto dataset = graph::MakeDataset(*spec, /*scale=*/0.05,
                                    /*max_feature_dim=*/32, /*seed=*/3);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "coauthor network: %d authors, %lld coauthorships, %d research "
      "fields\n",
      dataset->num_nodes(),
      static_cast<long long>(dataset->graph.num_undirected_edges()),
      dataset->num_classes);

  graph::SplitOptions split_options;
  split_options.labeled_per_class = 20;
  split_options.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(*dataset, split_options, 11);
  if (!split.ok()) return 1;
  std::printf(
      "%d established fields have labeled authors; %d fields are emerging "
      "(no labels at all)\n",
      split->num_seen, split->num_novel);

  core::OpenImaConfig config;
  config.encoder.in_dim = dataset->feature_dim();
  config.encoder.hidden_dim = 48;
  config.encoder.embedding_dim = 48;
  config.encoder.num_heads = 4;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = 12;
  config.lr = 3e-3f;
  core::OpenImaModel model(config, dataset->feature_dim(), 5);
  if (!model.Train(*dataset, *split).ok()) return 1;

  auto predictions = model.Predict(*dataset, *split);
  if (!predictions.ok()) return 1;

  // Group the unlabeled authors by predicted field.
  std::map<int, int> group_sizes;
  for (int v : split->test_nodes) {
    ++group_sizes[(*predictions)[static_cast<size_t>(v)]];
  }
  std::printf("\npredicted field sizes over unlabeled authors:\n");
  for (const auto& [field, size] : group_sizes) {
    const bool novel = field >= split->num_seen;
    std::printf("  field %2d (%s): %4d authors\n", field,
                novel ? "EMERGING" : "known   ", size);
  }

  // How pure are the discovered emerging fields?
  std::vector<int> test_preds, test_labels;
  for (int v : split->test_nodes) {
    test_preds.push_back((*predictions)[static_cast<size_t>(v)]);
    test_labels.push_back(split->remapped_labels[static_cast<size_t>(v)]);
  }
  auto acc = metrics::EvaluateOpenWorld(test_preds, test_labels,
                                        split->num_seen,
                                        split->num_total_classes());
  if (!acc.ok()) return 1;
  std::printf(
      "\naccuracy: all %.1f%% | known fields %.1f%% | emerging fields "
      "%.1f%%\n",
      100.0 * acc->all, 100.0 * acc->seen, 100.0 * acc->novel);

  // The paper's §III-B statistics over the learned embedding space.
  la::Matrix emb = model.Embeddings(*dataset);
  auto stats = metrics::ComputeVarianceStats(emb, split->remapped_labels,
                                             split->num_seen,
                                             split->num_total_classes());
  if (stats.ok()) {
    std::printf(
        "embedding-space imbalance rate %.3f, separation rate %.3f "
        "(Eq. 2 / Eq. 3)\n",
        stats->imbalance_rate, stats->separation_rate);
  }
  return 0;
}
