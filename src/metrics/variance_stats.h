#ifndef OPENIMA_METRICS_VARIANCE_STATS_H_
#define OPENIMA_METRICS_VARIANCE_STATS_H_

#include <vector>

#include "src/la/matrix.h"
#include "src/util/status.h"

namespace openima::metrics {

/// The paper's §III-B statistics quantifying the imbalance of intra-class
/// variances between seen and novel classes (Eq. 2) and their separation
/// (Eq. 3), averaged over all (seen, novel) class pairs.
struct VarianceStats {
  double imbalance_rate = 0.0;
  double separation_rate = 0.0;
  int num_pairs = 0;
};

/// Per-class first/second moments used by the rates: `mean` is the class
/// centroid, `std` the root-mean-square distance of members to it.
struct ClassMoments {
  la::Matrix mean;  // 1 x d
  double std = 0.0;
  int count = 0;
};

/// Computes per-class moments for labels in [0, num_classes).
std::vector<ClassMoments> ComputeClassMoments(const la::Matrix& embeddings,
                                              const std::vector<int>& labels,
                                              int num_classes);

/// Computes Eq. 2 / Eq. 3 between the seen classes [0, num_seen) and the
/// novel classes [num_seen, num_classes), skipping classes with fewer than
/// 2 members.
StatusOr<VarianceStats> ComputeVarianceStats(const la::Matrix& embeddings,
                                             const std::vector<int>& labels,
                                             int num_seen, int num_classes);

}  // namespace openima::metrics

#endif  // OPENIMA_METRICS_VARIANCE_STATS_H_
