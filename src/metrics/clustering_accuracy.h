#ifndef OPENIMA_METRICS_CLUSTERING_ACCURACY_H_
#define OPENIMA_METRICS_CLUSTERING_ACCURACY_H_

#include <vector>

#include "src/util/status.h"

namespace openima::metrics {

/// Open-world clustering accuracy (the paper's evaluation metric, following
/// GCD): All / Seen / Novel test accuracies under a single Hungarian
/// alignment computed across all classes.
struct OpenWorldAccuracy {
  double all = 0.0;
  double seen = 0.0;
  double novel = 0.0;
  int n_all = 0;
  int n_seen = 0;
  int n_novel = 0;
};

/// Computes clustering accuracy under the GCD protocol: run one Hungarian
/// assignment between ground-truth classes and prediction ids over ALL given
/// nodes, then report the induced accuracy overall and on the seen / novel
/// subsets.
///
/// `true_labels` are remapped labels (seen classes in [0, num_seen), novel
/// classes in [num_seen, num_true_classes)). `predictions` may be arbitrary
/// non-negative ids (cluster ids or head argmax ids) — the metric is
/// invariant to their naming.
StatusOr<OpenWorldAccuracy> EvaluateOpenWorld(
    const std::vector<int>& predictions, const std::vector<int>& true_labels,
    int num_seen, int num_true_classes);

/// Plain Hungarian-aligned clustering accuracy over one closed set of
/// classes (used for validation-set ACC in the SC&ACC selection metric).
StatusOr<double> ClusteringAccuracy(const std::vector<int>& predictions,
                                    const std::vector<int>& true_labels,
                                    int num_true_classes);

/// Precision of confident pseudo labels against ground truth — the paper's
/// Fig. 1b/2 quality curve, fed into the telemetry time-series at each
/// refresh. Considers nodes with `pseudo_labels[i] >= 0` that are NOT in
/// `exclude` (the originally labeled nodes, whose pseudo labels are copied
/// from ground truth and would inflate the number). A pseudo label counts
/// as correct when it is a seen-class id (< num_seen) equal to the node's
/// true label, or a novel id (>= num_seen) on a truly novel node — novel
/// pseudo ids are unordered cluster ids (Eq. 5), so only the seen/novel
/// partition is checkable without a second alignment. Returns -1 when no
/// nodes qualify.
double PseudoLabelPrecision(const std::vector<int>& pseudo_labels,
                            const std::vector<int>& true_labels,
                            const std::vector<bool>& exclude, int num_seen);

}  // namespace openima::metrics

#endif  // OPENIMA_METRICS_CLUSTERING_ACCURACY_H_
