#ifndef OPENIMA_METRICS_INFO_METRICS_H_
#define OPENIMA_METRICS_INFO_METRICS_H_

#include <vector>

#include "src/util/status.h"

namespace openima::metrics {

/// Normalized mutual information between two labelings (arithmetic-mean
/// normalization): NMI = 2 I(U; V) / (H(U) + H(V)), in [0, 1]. Returns 1
/// when both partitions are identical up to renaming; by convention returns
/// 1 when both labelings are constant, 0 when exactly one is.
StatusOr<double> NormalizedMutualInformation(const std::vector<int>& a,
                                             const std::vector<int>& b);

/// Adjusted Rand index: pair-counting agreement corrected for chance, in
/// [-1, 1] (1 = identical partitions, ~0 = random agreement).
StatusOr<double> AdjustedRandIndex(const std::vector<int>& a,
                                   const std::vector<int>& b);

}  // namespace openima::metrics

#endif  // OPENIMA_METRICS_INFO_METRICS_H_
