#include "src/metrics/sc_acc.h"

#include <algorithm>

#include "src/util/logging.h"

namespace openima::metrics {

namespace {

/// Min-max normalization; constant lists map to all-0.5 (no preference).
std::vector<double> MinMaxNormalize(const std::vector<double>& values) {
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  std::vector<double> out(values.size());
  const double range = *mx - *mn;
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = range > 0.0 ? (values[i] - *mn) / range : 0.5;
  }
  return out;
}

}  // namespace

StatusOr<std::vector<double>> CombineScAcc(const std::vector<double>& sc,
                                           const std::vector<double>& acc,
                                           double sc_weight) {
  if (sc.size() != acc.size()) {
    return Status::InvalidArgument("sc/acc size mismatch");
  }
  if (sc.empty()) return Status::InvalidArgument("no candidates");
  if (sc_weight < 0.0 || sc_weight > 1.0) {
    return Status::InvalidArgument("sc_weight must be in [0, 1]");
  }
  std::vector<double> sc_n = MinMaxNormalize(sc);
  std::vector<double> acc_n = MinMaxNormalize(acc);
  std::vector<double> combined(sc.size());
  for (size_t i = 0; i < sc.size(); ++i) {
    combined[i] = sc_weight * sc_n[i] + (1.0 - sc_weight) * acc_n[i];
  }
  return combined;
}

int ArgmaxIndex(const std::vector<double>& values) {
  OPENIMA_CHECK(!values.empty());
  return static_cast<int>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

}  // namespace openima::metrics
