#include "src/metrics/info_metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace openima::metrics {

namespace {

/// Contingency table plus marginals for two labelings over the same items.
struct Contingency {
  std::map<std::pair<int, int>, int64_t> joint;
  std::map<int, int64_t> row;  // counts of labeling a
  std::map<int, int64_t> col;  // counts of labeling b
  int64_t n = 0;
};

StatusOr<Contingency> BuildContingency(const std::vector<int>& a,
                                       const std::vector<int>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("labelings differ in length");
  }
  if (a.empty()) return Status::InvalidArgument("empty labelings");
  Contingency c;
  c.n = static_cast<int64_t>(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 0 || b[i] < 0) {
      return Status::InvalidArgument("negative label");
    }
    ++c.joint[{a[i], b[i]}];
    ++c.row[a[i]];
    ++c.col[b[i]];
  }
  return c;
}

double Entropy(const std::map<int, int64_t>& counts, int64_t n) {
  double h = 0.0;
  for (const auto& [label, count] : counts) {
    const double p = static_cast<double>(count) / static_cast<double>(n);
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

}  // namespace

StatusOr<double> NormalizedMutualInformation(const std::vector<int>& a,
                                             const std::vector<int>& b) {
  auto c = BuildContingency(a, b);
  OPENIMA_RETURN_IF_ERROR(c.status());
  const double ha = Entropy(c->row, c->n);
  const double hb = Entropy(c->col, c->n);
  if (ha == 0.0 && hb == 0.0) return 1.0;  // both constant
  if (ha == 0.0 || hb == 0.0) return 0.0;  // one constant, one not
  double mi = 0.0;
  for (const auto& [pair, count] : c->joint) {
    const double pij = static_cast<double>(count) / static_cast<double>(c->n);
    const double pi =
        static_cast<double>(c->row.at(pair.first)) / static_cast<double>(c->n);
    const double pj =
        static_cast<double>(c->col.at(pair.second)) / static_cast<double>(c->n);
    mi += pij * std::log(pij / (pi * pj));
  }
  return std::clamp(2.0 * mi / (ha + hb), 0.0, 1.0);
}

StatusOr<double> AdjustedRandIndex(const std::vector<int>& a,
                                   const std::vector<int>& b) {
  auto c = BuildContingency(a, b);
  OPENIMA_RETURN_IF_ERROR(c.status());
  auto choose2 = [](int64_t x) {
    return static_cast<double>(x) * static_cast<double>(x - 1) / 2.0;
  };
  double sum_ij = 0.0;
  for (const auto& [pair, count] : c->joint) sum_ij += choose2(count);
  double sum_i = 0.0;
  for (const auto& [label, count] : c->row) sum_i += choose2(count);
  double sum_j = 0.0;
  for (const auto& [label, count] : c->col) sum_j += choose2(count);
  const double total = choose2(c->n);
  const double expected = sum_i * sum_j / total;
  const double max_index = 0.5 * (sum_i + sum_j);
  if (max_index == expected) {
    // Degenerate (e.g. both labelings constant): identical partitions.
    return 1.0;
  }
  return (sum_ij - expected) / (max_index - expected);
}

}  // namespace openima::metrics
