#ifndef OPENIMA_METRICS_SC_ACC_H_
#define OPENIMA_METRICS_SC_ACC_H_

#include <vector>

#include "src/util/status.h"

namespace openima::metrics {

/// The paper's SC&ACC model-selection metric (§V-A): given, for each
/// hyper-parameter candidate, a silhouette coefficient (computed on
/// validation + test embeddings) and a validation clustering accuracy,
/// min-max normalize each list and return their equal-weight sum. Higher is
/// better; ties resolve to the earlier candidate.
StatusOr<std::vector<double>> CombineScAcc(const std::vector<double>& sc,
                                           const std::vector<double>& acc,
                                           double sc_weight = 0.5);

/// Index of the maximum value (first on ties). CHECK-fails on empty input.
int ArgmaxIndex(const std::vector<double>& values);

}  // namespace openima::metrics

#endif  // OPENIMA_METRICS_SC_ACC_H_
