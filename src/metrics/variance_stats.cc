#include "src/metrics/variance_stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace openima::metrics {

std::vector<ClassMoments> ComputeClassMoments(const la::Matrix& embeddings,
                                              const std::vector<int>& labels,
                                              int num_classes) {
  OPENIMA_CHECK_EQ(static_cast<int>(labels.size()), embeddings.rows());
  const int d = embeddings.cols();
  std::vector<ClassMoments> moments(static_cast<size_t>(num_classes));
  for (auto& m : moments) m.mean = la::Matrix(1, d);

  for (int i = 0; i < embeddings.rows(); ++i) {
    const int c = labels[static_cast<size_t>(i)];
    OPENIMA_CHECK_GE(c, 0);
    OPENIMA_CHECK_LT(c, num_classes);
    auto& m = moments[static_cast<size_t>(c)];
    ++m.count;
    const float* row = embeddings.Row(i);
    float* mean = m.mean.Row(0);
    for (int j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (auto& m : moments) {
    if (m.count > 0) m.mean *= 1.0f / static_cast<float>(m.count);
  }
  // Second pass: RMS distance to the class mean.
  std::vector<double> sq(static_cast<size_t>(num_classes), 0.0);
  for (int i = 0; i < embeddings.rows(); ++i) {
    const int c = labels[static_cast<size_t>(i)];
    const float* row = embeddings.Row(i);
    const float* mean = moments[static_cast<size_t>(c)].mean.Row(0);
    double s = 0.0;
    for (int j = 0; j < d; ++j) {
      const double diff = static_cast<double>(row[j]) - mean[j];
      s += diff * diff;
    }
    sq[static_cast<size_t>(c)] += s;
  }
  for (int c = 0; c < num_classes; ++c) {
    auto& m = moments[static_cast<size_t>(c)];
    if (m.count > 0) m.std = std::sqrt(sq[static_cast<size_t>(c)] / m.count);
  }
  return moments;
}

StatusOr<VarianceStats> ComputeVarianceStats(const la::Matrix& embeddings,
                                             const std::vector<int>& labels,
                                             int num_seen, int num_classes) {
  if (num_seen < 1 || num_seen >= num_classes) {
    return Status::InvalidArgument("need at least one seen and one novel class");
  }
  auto moments = ComputeClassMoments(embeddings, labels, num_classes);
  VarianceStats stats;
  double imb = 0.0, sep = 0.0;
  for (int s = 0; s < num_seen; ++s) {
    const auto& ms = moments[static_cast<size_t>(s)];
    if (ms.count < 2 || ms.std <= 0.0) continue;
    for (int n = num_seen; n < num_classes; ++n) {
      const auto& mn = moments[static_cast<size_t>(n)];
      if (mn.count < 2 || mn.std <= 0.0) continue;
      imb += std::max(ms.std, mn.std) / std::min(ms.std, mn.std);
      double dist = 0.0;
      const float* a = ms.mean.Row(0);
      const float* b = mn.mean.Row(0);
      for (int j = 0; j < embeddings.cols(); ++j) {
        const double diff = static_cast<double>(a[j]) - b[j];
        dist += diff * diff;
      }
      sep += std::sqrt(dist) / (ms.std + mn.std);
      ++stats.num_pairs;
    }
  }
  if (stats.num_pairs == 0) {
    return Status::FailedPrecondition(
        "no (seen, novel) class pair with >= 2 members each");
  }
  stats.imbalance_rate = imb / stats.num_pairs;
  stats.separation_rate = sep / stats.num_pairs;
  return stats;
}

}  // namespace openima::metrics
