#include "src/metrics/clustering_accuracy.h"

#include <algorithm>
#include <cstdint>

#include "src/assign/hungarian.h"

namespace openima::metrics {

namespace {

/// Builds the class -> prediction-id Hungarian alignment maximizing
/// agreement. Returns class_to_pred (size num_true_classes; an entry can be
/// a padded id that no prediction uses, meaning "never correct").
StatusOr<std::vector<int>> AlignAll(const std::vector<int>& predictions,
                                    const std::vector<int>& true_labels,
                                    int num_true_classes) {
  if (predictions.size() != true_labels.size()) {
    return Status::InvalidArgument("predictions/labels size mismatch");
  }
  if (predictions.empty()) {
    return Status::InvalidArgument("no nodes to evaluate");
  }
  int num_pred = 0;
  for (int p : predictions) {
    if (p < 0) return Status::InvalidArgument("negative prediction id");
    num_pred = std::max(num_pred, p + 1);
  }
  for (int y : true_labels) {
    if (y < 0 || y >= num_true_classes) {
      return Status::InvalidArgument("label out of range");
    }
  }
  const int cols = std::max(num_pred, num_true_classes);
  std::vector<std::vector<double>> weight(
      static_cast<size_t>(num_true_classes),
      std::vector<double>(static_cast<size_t>(cols), 0.0));
  for (size_t i = 0; i < predictions.size(); ++i) {
    weight[static_cast<size_t>(true_labels[i])]
          [static_cast<size_t>(predictions[i])] += 1.0;
  }
  return assign::MaxWeightAssignment(weight);
}

}  // namespace

StatusOr<OpenWorldAccuracy> EvaluateOpenWorld(
    const std::vector<int>& predictions, const std::vector<int>& true_labels,
    int num_seen, int num_true_classes) {
  if (num_seen < 0 || num_seen > num_true_classes) {
    return Status::InvalidArgument("num_seen out of range");
  }
  auto align = AlignAll(predictions, true_labels, num_true_classes);
  OPENIMA_RETURN_IF_ERROR(align.status());

  OpenWorldAccuracy acc;
  int correct_all = 0, correct_seen = 0, correct_novel = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const int y = true_labels[i];
    const bool correct =
        (*align)[static_cast<size_t>(y)] == predictions[i];
    ++acc.n_all;
    correct_all += correct;
    if (y < num_seen) {
      ++acc.n_seen;
      correct_seen += correct;
    } else {
      ++acc.n_novel;
      correct_novel += correct;
    }
  }
  acc.all = static_cast<double>(correct_all) / acc.n_all;
  acc.seen = acc.n_seen > 0 ? static_cast<double>(correct_seen) / acc.n_seen : 0.0;
  acc.novel =
      acc.n_novel > 0 ? static_cast<double>(correct_novel) / acc.n_novel : 0.0;
  return acc;
}

StatusOr<double> ClusteringAccuracy(const std::vector<int>& predictions,
                                    const std::vector<int>& true_labels,
                                    int num_true_classes) {
  auto result = EvaluateOpenWorld(predictions, true_labels,
                                  /*num_seen=*/num_true_classes,
                                  num_true_classes);
  OPENIMA_RETURN_IF_ERROR(result.status());
  return result->all;
}

double PseudoLabelPrecision(const std::vector<int>& pseudo_labels,
                            const std::vector<int>& true_labels,
                            const std::vector<bool>& exclude, int num_seen) {
  const size_t n = std::min(pseudo_labels.size(), true_labels.size());
  int64_t considered = 0, correct = 0;
  for (size_t i = 0; i < n; ++i) {
    const int pl = pseudo_labels[i];
    if (pl < 0) continue;
    if (i < exclude.size() && exclude[i]) continue;
    ++considered;
    correct += pl < num_seen ? pl == true_labels[i] : true_labels[i] >= num_seen;
  }
  if (considered == 0) return -1.0;
  return static_cast<double>(correct) / static_cast<double>(considered);
}

}  // namespace openima::metrics
