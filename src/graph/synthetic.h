#ifndef OPENIMA_GRAPH_SYNTHETIC_H_
#define OPENIMA_GRAPH_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "src/graph/dataset.h"
#include "src/util/status.h"

namespace openima::graph {

/// Configuration of the degree-corrected stochastic block model (DC-SBM)
/// with class-conditional Gaussian features. This is the stand-in for the
/// paper's seven public benchmarks (none of which can be downloaded in this
/// offline environment); see DESIGN.md §1 for the substitution argument.
struct SbmConfig {
  int num_nodes = 1000;
  int num_classes = 5;
  int feature_dim = 32;

  /// Mean (directed) degree; the generator targets
  /// num_nodes * avg_degree / 2 undirected edges.
  double avg_degree = 10.0;

  /// Probability that a sampled edge endpoint pair is drawn from within one
  /// class (edge homophily). Real citation/co-purchase graphs are ~0.6-0.8.
  double homophily = 0.75;

  /// Zipf exponent for class sizes; 0 gives balanced classes, larger values
  /// produce a heavier head (Amazon-style imbalance).
  double class_imbalance = 0.0;

  /// Pareto shape for per-node degree propensities; 0 disables degree
  /// correction (uniform propensity). Typical social graphs: 2.0-3.0.
  double degree_power = 2.5;

  /// L2 norm of each class-center vector in feature space.
  double feature_signal = 1.0;

  /// Per-dimension Gaussian feature noise (relative to the signal). Larger
  /// values make classes harder to separate from features alone.
  double feature_noise = 0.3;

  /// Per-class noise multipliers are drawn uniformly from
  /// [1 - noise_spread, 1 + noise_spread], giving classes genuinely
  /// different intra-class variances (the quantity the paper studies).
  double noise_spread = 0.25;
};

/// Validates the configuration (positive sizes, probabilities in range).
Status ValidateSbmConfig(const SbmConfig& config);

/// Generates a dataset from the DC-SBM. Deterministic in (config, seed).
StatusOr<Dataset> GenerateSbm(const SbmConfig& config, uint64_t seed,
                              std::string name = "sbm");

}  // namespace openima::graph

#endif  // OPENIMA_GRAPH_SYNTHETIC_H_
