#ifndef OPENIMA_GRAPH_SAMPLER_H_
#define OPENIMA_GRAPH_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/exec/context.h"
#include "src/graph/graph.h"

namespace openima::graph {

/// One bipartite message-flow layer of a sampled block: a compact CSR over
/// the layer's destination nodes whose column entries are *local* source
/// ids. The destination nodes are, by construction, the first `num_dst`
/// entries of the source frontier, so a dst node and its source copy share
/// the same local id (the DGL "block" convention) and residual/self terms
/// need no extra index map.
///
/// Alongside the dst-major CSR the layer carries its transpose (src-major)
/// view: for each source local id, the positions of every edge it feeds.
/// Backward passes walk the transpose so scatter-adds over incoming edges
/// become race-free per-source gathers — the sampled-subgraph analogue of
/// `Graph::reverse_edge()`, which does not exist for a frontier because the
/// sampled adjacency is not symmetric.
struct SampledLayer {
  int num_dst = 0;
  int num_src = 0;

  /// Dst-major CSR: row_ptr has num_dst + 1 entries; col_idx holds local
  /// source ids, sorted within each row by *global* node id ascending (the
  /// canonical edge order — independent of sampling order and thread count).
  std::vector<int64_t> row_ptr;
  std::vector<int> col_idx;

  /// Transpose (src-major) view: src_row_ptr has num_src + 1 entries; entry
  /// t in [src_row_ptr[s], src_row_ptr[s+1]) says edge src_edge_pos[t] of
  /// col_idx (a position into the dst-major arrays) originates at source s
  /// and feeds dst row src_dst_idx[t]. Entries are in ascending edge
  /// position, so walking them is deterministic.
  std::vector<int64_t> src_row_ptr;
  std::vector<int> src_dst_idx;
  std::vector<int64_t> src_edge_pos;

  int64_t num_edges() const { return static_cast<int64_t>(col_idx.size()); }
};

/// A multi-layer sampled subgraph ("block") rooted at a seed batch.
/// `layers[0]` is applied first (its sources are the outermost frontier =
/// `input_nodes`); `layers.back()`'s destinations are the seeds. Because
/// every layer's dst list is a prefix of its src list, one global id array
/// describes every frontier: layer l's source frontier is
/// `input_nodes[0 .. layers[l].num_src)` and the seeds are
/// `input_nodes[0 .. num_output())`.
struct SampledBlock {
  std::vector<int> input_nodes;  ///< global node ids, outermost frontier
  std::vector<SampledLayer> layers;

  int num_output() const { return layers.empty() ? 0 : layers.back().num_dst; }
  int num_input() const { return static_cast<int>(input_nodes.size()); }
};

/// Sampling policy. `fanout == 0` means exhaustive: every layer keeps the
/// full 1-hop neighborhood of its destinations (useful for tests and for
/// exact sampled==full comparisons on small graphs).
struct SamplerConfig {
  int num_layers = 2;
  int fanout = 10;
  uint64_t seed = 0x5eedu;
};

/// Deterministic per-layer neighbor sampler over a CSR `Graph`.
///
/// Determinism contract: the block returned by Sample() is a pure function
/// of (graph, config.seed, config.fanout, config.num_layers, seeds, tag) —
/// bit-identical across thread counts, pooled-vs-heap storage, and runs.
/// Per-destination draws use a counter-based (stateless) SplitMix64 hash of
/// (seed, tag, layer, global dst id, draw index), so no sampling state is
/// shared between destinations and the parallel schedule cannot leak into
/// the result. Fanout draws are a partial Fisher–Yates without replacement;
/// destinations with degree <= fanout keep their full neighborhood. When the
/// graph carries self-loops the self edge is always retained, so every GAT
/// softmax row attends to its own node.
///
/// The sampler owns reusable workspace (a dense global->local map plus
/// per-layer scratch) sized to the graph, so steady-state batches allocate
/// nothing beyond the returned block's own vectors. The workspace makes an
/// *instance* single-threaded — concurrent users each construct their own
/// sampler over the same graph with the same config. Because draws are
/// counter-keyed off (seed, tag) rather than instance state, W per-replica
/// samplers produce the same block for the same tag as one shared sampler
/// would: this is what lets the data-parallel trainer shard microbatches
/// across replicas without perturbing the sampled stream (DESIGN.md §2.8).
class NeighborSampler {
 public:
  NeighborSampler(const Graph* graph, SamplerConfig config);

  /// Samples a block rooted at `seeds` (distinct global node ids). `tag`
  /// identifies the draw — pass e.g. epoch * num_batches + batch so every
  /// batch of every epoch sees fresh randomness while staying reproducible.
  SampledBlock Sample(const std::vector<int>& seeds, uint64_t tag,
                      const exec::Context* ctx = nullptr);

  const SamplerConfig& config() const { return config_; }

 private:
  const Graph* graph_;
  SamplerConfig config_;

  // Dense global->local frontier map; entries are reset via touched_ after
  // every Sample() so the cost is O(frontier), not O(num_nodes).
  std::vector<int> global_to_local_;
  std::vector<int> touched_;
  // Per-layer scratch reused across batches: sampled global neighbor ids
  // (row-concatenated) and per-row counts.
  std::vector<int> sampled_globals_;
  std::vector<int64_t> row_counts_;
};

}  // namespace openima::graph

#endif  // OPENIMA_GRAPH_SAMPLER_H_
