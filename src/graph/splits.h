#ifndef OPENIMA_GRAPH_SPLITS_H_
#define OPENIMA_GRAPH_SPLITS_H_

#include <cstdint>
#include <vector>

#include "src/graph/dataset.h"
#include "src/util/status.h"

namespace openima::graph {

/// Options for constructing an open-world train/val/test split (§V-A of the
/// paper: 50% of classes become seen; 50 train + 50 val nodes per seen
/// class, 500 for the ogbn graphs).
struct SplitOptions {
  /// Fraction of classes designated as seen (rounded, at least 1 seen and
  /// 1 novel class).
  double seen_class_fraction = 0.5;

  /// Target labeled training nodes per seen class. Capped at one third of
  /// the class size so scaled-down datasets keep a non-trivial test set.
  int labeled_per_class = 50;

  /// Target validation nodes per seen class (same cap).
  int val_per_class = 50;
};

/// An open-world split. Class ids are *remapped*: seen classes take ids
/// [0, num_seen) (the order models see during training) and novel classes
/// take ids [num_seen, num_seen + num_novel). `remapped_labels` holds the
/// remapped ground-truth label of every node.
struct OpenWorldSplit {
  std::vector<int> seen_classes;   // original class ids
  std::vector<int> novel_classes;  // original class ids
  int num_seen = 0;
  int num_novel = 0;

  std::vector<int> train_nodes;  // labeled; all from seen classes
  std::vector<int> val_nodes;    // held-out labeled seen-class nodes
  std::vector<int> test_nodes;   // everything else (seen + novel classes)

  std::vector<int> remapped_labels;  // per node

  int num_total_classes() const { return num_seen + num_novel; }

  /// True when the (remapped) label id belongs to a novel class.
  bool IsNovelClass(int remapped_label) const {
    return remapped_label >= num_seen;
  }

  /// val + test: the nodes whose labels are hidden from the training loss.
  std::vector<int> UnlabeledNodes() const;
};

/// Builds a split. Deterministic in (dataset, options, seed); different
/// seeds give the paper's "ten random splits".
StatusOr<OpenWorldSplit> MakeOpenWorldSplit(const Dataset& dataset,
                                            const SplitOptions& options,
                                            uint64_t seed);

}  // namespace openima::graph

#endif  // OPENIMA_GRAPH_SPLITS_H_
