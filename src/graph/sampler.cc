#include "src/graph/sampler.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "src/util/logging.h"

namespace openima::graph {
namespace {

// SplitMix64 finalizer — the counter-based hash behind every draw. Stateless
// by construction: the value depends only on the combined key, never on how
// many draws other threads have made.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Hash of the full draw coordinate (seed, tag, layer, dst, draw index).
uint64_t DrawHash(uint64_t seed, uint64_t tag, int layer, int dst, int j) {
  uint64_t h = Mix64(seed ^ Mix64(tag));
  h = Mix64(h ^ (static_cast<uint64_t>(layer) << 32 ^
                 static_cast<uint64_t>(static_cast<uint32_t>(dst))));
  return Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(j)));
}

// Unbiased-enough bounded draw (Lemire-style multiply-shift; the modulo bias
// of a 64-bit hash over graph-degree-sized ranges is < 2^-50 and we only
// need reproducibility, not cryptographic uniformity).
int BoundedDraw(uint64_t h, int bound) {
  return static_cast<int>(
      static_cast<uint64_t>((static_cast<unsigned __int128>(h) *
                             static_cast<unsigned __int128>(bound)) >>
                            64));
}

// Virtual-array partial Fisher–Yates: draws `k` distinct values from
// [0, m) into `out` using the stateless hash stream for (layer, dst).
// `swaps` is caller scratch (cleared here); it holds the <= 2k displaced
// entries of the virtual array, found by linear scan (k is a fanout, i.e.
// small).
void SampleWithoutReplacement(uint64_t seed, uint64_t tag, int layer, int dst,
                              int m, int k, int* out,
                              std::vector<std::pair<int, int>>* swaps) {
  swaps->clear();
  auto get = [&](int pos) {
    for (const auto& kv : *swaps) {
      if (kv.first == pos) return kv.second;
    }
    return pos;
  };
  auto set = [&](int pos, int value) {
    for (auto& kv : *swaps) {
      if (kv.first == pos) {
        kv.second = value;
        return;
      }
    }
    swaps->emplace_back(pos, value);
  };
  for (int j = 0; j < k; ++j) {
    const int r = j + BoundedDraw(DrawHash(seed, tag, layer, dst, j), m - j);
    out[j] = get(r);
    set(r, get(j));
  }
}

}  // namespace

NeighborSampler::NeighborSampler(const Graph* graph, SamplerConfig config)
    : graph_(graph), config_(config) {
  OPENIMA_CHECK(graph_ != nullptr);
  OPENIMA_CHECK_GE(config_.num_layers, 1);
  OPENIMA_CHECK_GE(config_.fanout, 0);
  global_to_local_.assign(static_cast<size_t>(graph_->num_nodes()), -1);
}

SampledBlock NeighborSampler::Sample(const std::vector<int>& seeds,
                                     uint64_t tag, const exec::Context* ctx) {
  const exec::Context& ex = exec::Get(ctx);
  const Graph& g = *graph_;
  const int fanout = config_.fanout;
  const bool self_loops = g.has_self_loops();

  SampledBlock block;
  block.input_nodes = seeds;  // grows outward as layers are sampled
  std::vector<int>& frontier = block.input_nodes;

  // Register the seeds in the dense global->local map.
  for (size_t i = 0; i < frontier.size(); ++i) {
    const int v = frontier[i];
    OPENIMA_CHECK_GE(v, 0);
    OPENIMA_CHECK_LT(v, g.num_nodes());
    OPENIMA_CHECK_EQ(global_to_local_[static_cast<size_t>(v)], -1);
    global_to_local_[static_cast<size_t>(v)] = static_cast<int>(i);
    touched_.push_back(v);
  }

  // Layers are built from the seeds outward (innermost last), then reversed
  // so layers[0] is the first one applied.
  std::vector<SampledLayer> reversed;
  reversed.reserve(static_cast<size_t>(config_.num_layers));

  for (int layer = config_.num_layers - 1; layer >= 0; --layer) {
    const int num_dst = static_cast<int>(frontier.size());
    SampledLayer sl;
    sl.num_dst = num_dst;
    sl.row_ptr.assign(static_cast<size_t>(num_dst) + 1, 0);

    // Pass 1: per-dst sampled-neighbor counts (degree-capped fanout, or the
    // full degree when exhaustive). Depends only on degrees — deterministic.
    row_counts_.assign(static_cast<size_t>(num_dst), 0);
    for (int d = 0; d < num_dst; ++d) {
      const int deg = g.Degree(frontier[static_cast<size_t>(d)]);
      OPENIMA_CHECK_GT(deg, 0);  // self-loops guarantee this in practice
      int count = deg;
      if (fanout > 0 && deg > fanout) {
        // Reserve a slot for the forced self edge when the graph has one.
        count = self_loops ? std::min(deg, fanout + 1) : fanout;
      }
      row_counts_[static_cast<size_t>(d)] = count;
      sl.row_ptr[static_cast<size_t>(d) + 1] =
          sl.row_ptr[static_cast<size_t>(d)] + count;
    }
    const int64_t ne = sl.row_ptr[static_cast<size_t>(num_dst)];
    sampled_globals_.resize(static_cast<size_t>(ne));

    // Pass 2 (parallel, disjoint writes): fill each row with sampled global
    // neighbor ids, sorted ascending — the canonical per-row edge order.
    int* sg = sampled_globals_.data();
    const std::vector<int64_t>& row_ptr = sl.row_ptr;
    const int* front = frontier.data();
    const uint64_t seed = config_.seed;
    ex.ParallelFor(num_dst, 64, [&, sg, front](int64_t begin, int64_t end) {
      std::vector<std::pair<int, int>> swaps;  // per-range FY scratch
      for (int64_t d = begin; d < end; ++d) {
        const int v = front[d];
        auto [nb, ne_ptr] = g.Neighbors(v);
        const int deg = static_cast<int>(ne_ptr - nb);
        int* row = sg + row_ptr[static_cast<size_t>(d)];
        const int count = static_cast<int>(
            row_ptr[static_cast<size_t>(d) + 1] -
            row_ptr[static_cast<size_t>(d)]);
        if (count == deg) {
          // Exhaustive: neighbors are already sorted ascending.
          std::copy(nb, ne_ptr, row);
          continue;
        }
        // Sample `count` distinct neighbor positions; when the graph has
        // self-loops, position of v itself is pinned into slot 0 and the
        // remaining slots are drawn from the other positions.
        int base = 0;
        int self_pos = -1;
        if (self_loops) {
          const int* it = std::lower_bound(nb, ne_ptr, v);
          OPENIMA_CHECK(it != ne_ptr && *it == v);
          self_pos = static_cast<int>(it - nb);
          row[0] = v;
          base = 1;
        }
        const int draws = count - base;
        const int m = self_loops ? deg - 1 : deg;
        SampleWithoutReplacement(seed, tag, layer, v, m, draws, row + base,
                                 &swaps);
        for (int j = base; j < count; ++j) {
          // Skip over the pinned self position when mapping draw -> slot.
          int pos = row[j];
          if (self_pos >= 0 && pos >= self_pos) ++pos;
          row[j] = nb[pos];
        }
        std::sort(row, row + count);
      }
    });

    // Serial: extend the frontier with newly seen nodes in first-appearance
    // order (scanning rows in dst order — deterministic), then convert the
    // sampled global ids to local ids in place.
    for (int64_t e = 0; e < ne; ++e) {
      const int v = sampled_globals_[static_cast<size_t>(e)];
      int& slot = global_to_local_[static_cast<size_t>(v)];
      if (slot < 0) {
        slot = static_cast<int>(frontier.size());
        frontier.push_back(v);
        touched_.push_back(v);
      }
      sampled_globals_[static_cast<size_t>(e)] = slot;
    }
    sl.num_src = static_cast<int>(frontier.size());
    sl.col_idx.assign(sampled_globals_.begin(),
                      sampled_globals_.begin() + ne);

    // Transpose (src-major) view: counting sort over source ids, filled by
    // a serial ascending-edge scan so entries are ordered by edge position.
    sl.src_row_ptr.assign(static_cast<size_t>(sl.num_src) + 1, 0);
    for (int64_t e = 0; e < ne; ++e) {
      ++sl.src_row_ptr[static_cast<size_t>(sl.col_idx[static_cast<size_t>(e)]) +
                       1];
    }
    for (int s = 0; s < sl.num_src; ++s) {
      sl.src_row_ptr[static_cast<size_t>(s) + 1] +=
          sl.src_row_ptr[static_cast<size_t>(s)];
    }
    sl.src_dst_idx.resize(static_cast<size_t>(ne));
    sl.src_edge_pos.resize(static_cast<size_t>(ne));
    std::vector<int64_t> cursor(sl.src_row_ptr.begin(),
                                sl.src_row_ptr.end() - 1);
    for (int d = 0; d < num_dst; ++d) {
      for (int64_t e = sl.row_ptr[static_cast<size_t>(d)];
           e < sl.row_ptr[static_cast<size_t>(d) + 1]; ++e) {
        const int s = sl.col_idx[static_cast<size_t>(e)];
        const int64_t t = cursor[static_cast<size_t>(s)]++;
        sl.src_dst_idx[static_cast<size_t>(t)] = d;
        sl.src_edge_pos[static_cast<size_t>(t)] = e;
      }
    }

    reversed.push_back(std::move(sl));
  }

  block.layers.assign(std::make_move_iterator(reversed.rbegin()),
                      std::make_move_iterator(reversed.rend()));

  // Reset the dense map for the next batch — O(frontier).
  for (const int v : touched_) {
    global_to_local_[static_cast<size_t>(v)] = -1;
  }
  touched_.clear();
  return block;
}

}  // namespace openima::graph
