#ifndef OPENIMA_GRAPH_GRAPH_H_
#define OPENIMA_GRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <cstddef>
#include <vector>

namespace openima::graph {

/// Immutable undirected graph in CSR (compressed sparse row) form, stored as
/// in-neighbor lists (for an undirected graph in- and out-neighbors
/// coincide). Self-loops may be added at construction — GAT aggregation
/// expects every node to attend to itself.
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list. Duplicate edges and self-loops in
  /// the input are removed; each undirected edge {u, v} produces the two
  /// directed entries (u -> v) and (v -> u). When `add_self_loops` is true a
  /// (v -> v) entry is appended for every node.
  ///
  /// Index-width contract: node ids are `int`, so the graph holds at most
  /// INT_MAX nodes (checked). Edge *counts* and CSR offsets are `int64_t`
  /// throughout — `row_ptr()` entries, `num_directed_edges()`, degree sums
  /// — because a legal graph can carry far more than INT_MAX directed
  /// entries. Callers doing arithmetic that mixes node counts with degrees
  /// (e.g. `degree * num_nodes` expectations, edge-budget math) must widen
  /// to int64_t before multiplying; at ogbn scale (169k nodes, ~1.2M
  /// edges) an `int` product of those two already overflows.
  static Graph FromUndirectedEdges(
      int num_nodes, const std::vector<std::pair<int, int>>& edges,
      bool add_self_loops);

  int num_nodes() const { return num_nodes_; }

  /// Number of directed adjacency entries (2x undirected edges, plus
  /// self-loops if added).
  int64_t num_directed_edges() const {
    return static_cast<int64_t>(col_idx_.size());
  }

  /// Number of distinct undirected edges (self-loops not counted).
  int64_t num_undirected_edges() const { return num_undirected_edges_; }

  bool has_self_loops() const { return has_self_loops_; }

  /// Neighbors of `v` (sorted ascending), as [begin, end) into col_idx().
  std::pair<const int*, const int*> Neighbors(int v) const {
    return {col_idx_.data() + row_ptr_[static_cast<size_t>(v)],
            col_idx_.data() + row_ptr_[static_cast<size_t>(v) + 1]};
  }

  int Degree(int v) const {
    return static_cast<int>(row_ptr_[static_cast<size_t>(v) + 1] -
                            row_ptr_[static_cast<size_t>(v)]);
  }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }

  /// reverse_edge()[e] is the CSR position of the mirrored directed entry:
  /// for entry e = (u -> v) it holds the position of (v -> u); self-loops
  /// map to themselves. Well-defined because the adjacency is symmetric.
  /// Parallel kernels (GAT backward) use it to turn scatter-adds over
  /// incoming edges into race-free per-row gathers.
  const std::vector<int64_t>& reverse_edge() const { return reverse_edge_; }

 private:
  int num_nodes_ = 0;
  int64_t num_undirected_edges_ = 0;
  bool has_self_loops_ = false;
  std::vector<int64_t> row_ptr_;  // size num_nodes_ + 1
  std::vector<int> col_idx_;
  std::vector<int64_t> reverse_edge_;  // size col_idx_.size()
};

/// Incremental edge-list builder for `Graph`.
class GraphBuilder {
 public:
  explicit GraphBuilder(int num_nodes) : num_nodes_(num_nodes) {}

  /// Records an undirected edge; self-loops and duplicates are tolerated
  /// (dropped at Build time).
  void AddEdge(int u, int v) { edges_.emplace_back(u, v); }

  int64_t num_edges_added() const {
    return static_cast<int64_t>(edges_.size());
  }

  Graph Build(bool add_self_loops) const {
    return Graph::FromUndirectedEdges(num_nodes_, edges_, add_self_loops);
  }

 private:
  int num_nodes_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace openima::graph

#endif  // OPENIMA_GRAPH_GRAPH_H_
