#ifndef OPENIMA_GRAPH_BENCHMARKS_H_
#define OPENIMA_GRAPH_BENCHMARKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/dataset.h"
#include "src/graph/synthetic.h"
#include "src/util/status.h"

namespace openima::graph {

/// Description of one of the paper's seven benchmarks (Table II statistics)
/// plus the generator knobs used to synthesize a stand-in graph with the
/// same qualitative difficulty (see DESIGN.md §1).
struct BenchmarkSpec {
  std::string name;

  // Paper statistics (Table II).
  int paper_nodes = 0;
  int64_t paper_edges = 0;
  int paper_features = 0;
  int num_classes = 0;

  /// Labeled nodes sampled per seen class for train and (separately) for
  /// validation: 50 for the five medium graphs, 500 for the ogbn graphs.
  int labeled_per_class = 50;

  /// ogbn-scale graphs use mini-batch K-Means and head-based prediction.
  bool large_scale = false;

  // Generator difficulty knobs.
  double homophily = 0.75;
  double class_imbalance = 0.0;
  double feature_noise = 2.0;
};

/// All seven benchmark specs, in the paper's Table II order.
const std::vector<BenchmarkSpec>& AllBenchmarks();

/// Looks up a spec by (case-sensitive) name, e.g. "coauthor_cs".
StatusOr<BenchmarkSpec> GetBenchmark(const std::string& name);

/// Derives a generator configuration from a spec.
///
/// `scale` in (0, 1] shrinks the node count multiplicatively (with a floor
/// so every class keeps enough members), keeping the paper's average degree
/// (capped for CPU budgets) and capping the feature dimensionality at
/// `max_feature_dim`. scale = 1 with max_feature_dim = paper_features
/// reproduces the paper sizes exactly.
SbmConfig MakeSbmConfig(const BenchmarkSpec& spec, double scale,
                        int max_feature_dim);

/// Convenience: generate the scaled stand-in dataset for a spec.
StatusOr<Dataset> MakeDataset(const BenchmarkSpec& spec, double scale,
                              int max_feature_dim, uint64_t seed);

}  // namespace openima::graph

#endif  // OPENIMA_GRAPH_BENCHMARKS_H_
