#ifndef OPENIMA_GRAPH_DATASET_H_
#define OPENIMA_GRAPH_DATASET_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/la/matrix.h"

namespace openima::graph {

/// A node-classification dataset: graph topology, dense node features, and
/// ground-truth class labels (labels are hidden from models except on the
/// training split).
struct Dataset {
  std::string name;
  Graph graph;
  la::Matrix features;      // num_nodes x feature_dim
  std::vector<int> labels;  // num_nodes, values in [0, num_classes)
  int num_classes = 0;

  int num_nodes() const { return graph.num_nodes(); }
  int feature_dim() const { return features.cols(); }

  /// Number of nodes carrying each label.
  std::vector<int> ClassCounts() const;
};

}  // namespace openima::graph

#endif  // OPENIMA_GRAPH_DATASET_H_
