#ifndef OPENIMA_GRAPH_IO_H_
#define OPENIMA_GRAPH_IO_H_

#include <string>

#include "src/graph/dataset.h"
#include "src/util/status.h"

namespace openima::graph {

/// Saves a dataset to a single human-readable text file:
///
///   openima-dataset v1
///   name <name>
///   nodes <n> features <d> classes <k> edges <m>
///   labels: one line of n integers
///   features: n lines of d floats
///   edges: m lines "u v" (undirected, no self-loops)
///
/// Intended for bringing real graphs into the library and for checkpointing
/// generated ones.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Loads a dataset written by SaveDataset. Self-loops are (re-)added to the
/// CSR graph as required by the encoders.
StatusOr<Dataset> LoadDataset(const std::string& path);

}  // namespace openima::graph

#endif  // OPENIMA_GRAPH_IO_H_
