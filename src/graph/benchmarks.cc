#include "src/graph/benchmarks.h"

#include <algorithm>
#include <cmath>

#include "src/util/string_util.h"

namespace openima::graph {

namespace {

std::vector<BenchmarkSpec> BuildSpecs() {
  std::vector<BenchmarkSpec> specs;

  // Difficulty knobs are calibrated so that the stand-in graphs land in the
  // same qualitative regime as the paper's reported accuracies: Citeseer /
  // Amazon Computers / ogbn-Arxiv are hard (high feature noise, weaker or
  // sparser structure), Amazon Photos / Coauthor Physics are easier, and the
  // ogbn graphs combine many classes with strong imbalance.
  specs.push_back({.name = "citeseer",
                   .paper_nodes = 3327,
                   .paper_edges = 4676,
                   .paper_features = 3703,
                   .num_classes = 6,
                   .labeled_per_class = 50,
                   .large_scale = false,
                   .homophily = 0.55,
                   .class_imbalance = 0.3,
                   .feature_noise = 3.2});
  specs.push_back({.name = "amazon_photos",
                   .paper_nodes = 7650,
                   .paper_edges = 119082,
                   .paper_features = 745,
                   .num_classes = 8,
                   .labeled_per_class = 50,
                   .large_scale = false,
                   .homophily = 0.45,
                   .class_imbalance = 0.5,
                   .feature_noise = 2.8});
  specs.push_back({.name = "amazon_computers",
                   .paper_nodes = 13752,
                   .paper_edges = 245861,
                   .paper_features = 767,
                   .num_classes = 10,
                   .labeled_per_class = 50,
                   .large_scale = false,
                   .homophily = 0.39,
                   .class_imbalance = 0.6,
                   .feature_noise = 3.6});
  specs.push_back({.name = "coauthor_cs",
                   .paper_nodes = 18333,
                   .paper_edges = 81894,
                   .paper_features = 6805,
                   .num_classes = 15,
                   .labeled_per_class = 50,
                   .large_scale = false,
                   .homophily = 0.57,
                   .class_imbalance = 0.4,
                   .feature_noise = 3.0});
  specs.push_back({.name = "coauthor_physics",
                   .paper_nodes = 34493,
                   .paper_edges = 247962,
                   .paper_features = 8415,
                   .num_classes = 5,
                   .labeled_per_class = 50,
                   .large_scale = false,
                   .homophily = 0.37,
                   .class_imbalance = 0.4,
                   .feature_noise = 3.6});
  specs.push_back({.name = "ogbn_arxiv",
                   .paper_nodes = 169343,
                   .paper_edges = 1166243,
                   .paper_features = 128,
                   .num_classes = 40,
                   .labeled_per_class = 500,
                   .large_scale = true,
                   .homophily = 0.48,
                   .class_imbalance = 0.5,
                   .feature_noise = 3.4});
  specs.push_back({.name = "ogbn_products",
                   .paper_nodes = 2449029,
                   .paper_edges = 61859140,
                   .paper_features = 100,
                   .num_classes = 47,
                   .labeled_per_class = 500,
                   .large_scale = true,
                   .homophily = 0.50,
                   .class_imbalance = 0.8,
                   .feature_noise = 3.0});
  return specs;
}

}  // namespace

const std::vector<BenchmarkSpec>& AllBenchmarks() {
  static const std::vector<BenchmarkSpec>* specs =
      new std::vector<BenchmarkSpec>(BuildSpecs());
  return *specs;
}

StatusOr<BenchmarkSpec> GetBenchmark(const std::string& name) {
  for (const auto& spec : AllBenchmarks()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound(StrFormat("no benchmark named '%s'", name.c_str()));
}

SbmConfig MakeSbmConfig(const BenchmarkSpec& spec, double scale,
                        int max_feature_dim) {
  SbmConfig config;
  const int floor_nodes = 60 * spec.num_classes;
  const int scaled =
      static_cast<int>(std::lround(spec.paper_nodes * std::min(scale, 1.0)));
  config.num_nodes = std::min(spec.paper_nodes, std::max(scaled, floor_nodes));
  config.num_classes = spec.num_classes;
  config.feature_dim = std::min(spec.paper_features, max_feature_dim);
  // Average degree from Table II, capped so scaled-down CPU runs stay fast.
  const double paper_degree =
      2.0 * static_cast<double>(spec.paper_edges) / spec.paper_nodes;
  config.avg_degree = std::min(paper_degree, 16.0);
  config.homophily = spec.homophily;
  config.class_imbalance = spec.class_imbalance;
  config.feature_noise = spec.feature_noise;
  config.feature_signal = 1.0;
  config.noise_spread = 0.25;
  config.degree_power = 2.5;
  return config;
}

StatusOr<Dataset> MakeDataset(const BenchmarkSpec& spec, double scale,
                              int max_feature_dim, uint64_t seed) {
  return GenerateSbm(MakeSbmConfig(spec, scale, max_feature_dim), seed,
                     spec.name);
}

}  // namespace openima::graph
