#include "src/graph/dataset.h"

#include "src/util/logging.h"

namespace openima::graph {

std::vector<int> Dataset::ClassCounts() const {
  std::vector<int> counts(static_cast<size_t>(num_classes), 0);
  for (int label : labels) {
    OPENIMA_CHECK_GE(label, 0);
    OPENIMA_CHECK_LT(label, num_classes);
    ++counts[static_cast<size_t>(label)];
  }
  return counts;
}

}  // namespace openima::graph
