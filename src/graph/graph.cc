#include "src/graph/graph.h"

#include <algorithm>

#include "src/util/logging.h"

namespace openima::graph {

Graph Graph::FromUndirectedEdges(
    int num_nodes, const std::vector<std::pair<int, int>>& edges,
    bool add_self_loops) {
  OPENIMA_CHECK_GE(num_nodes, 0);
  // Node ids are `int` by contract (col_idx_ stores them); everything
  // derived from *counts of edges* below is int64_t, so num_nodes is the
  // only quantity whose width caps the graph.
  static_assert(sizeof(int) == 4, "node-id width assumption");
  // Canonicalize, drop self-loops, dedup.
  std::vector<std::pair<int, int>> canon;
  canon.reserve(edges.size());
  for (auto [u, v] : edges) {
    OPENIMA_CHECK_GE(u, 0);
    OPENIMA_CHECK_LT(u, num_nodes);
    OPENIMA_CHECK_GE(v, 0);
    OPENIMA_CHECK_LT(v, num_nodes);
    if (u == v) continue;
    canon.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

  Graph g;
  g.num_nodes_ = num_nodes;
  g.num_undirected_edges_ = static_cast<int64_t>(canon.size());
  g.has_self_loops_ = add_self_loops;

  // Count degrees (both directions + optional self loop).
  std::vector<int64_t> degree(static_cast<size_t>(num_nodes),
                              add_self_loops ? 1 : 0);
  for (auto [u, v] : canon) {
    ++degree[static_cast<size_t>(u)];
    ++degree[static_cast<size_t>(v)];
  }
  g.row_ptr_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (int v = 0; v < num_nodes; ++v) {
    g.row_ptr_[static_cast<size_t>(v) + 1] =
        g.row_ptr_[static_cast<size_t>(v)] + degree[static_cast<size_t>(v)];
  }
  g.col_idx_.assign(static_cast<size_t>(g.row_ptr_.back()), 0);

  std::vector<int64_t> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  auto push = [&](int from, int to) {
    g.col_idx_[static_cast<size_t>(cursor[static_cast<size_t>(from)]++)] = to;
  };
  for (auto [u, v] : canon) {
    push(u, v);
    push(v, u);
  }
  if (add_self_loops) {
    for (int v = 0; v < num_nodes; ++v) push(v, v);
  }
  // Sort each adjacency list for deterministic iteration.
  for (int v = 0; v < num_nodes; ++v) {
    std::sort(g.col_idx_.begin() + g.row_ptr_[static_cast<size_t>(v)],
              g.col_idx_.begin() + g.row_ptr_[static_cast<size_t>(v) + 1]);
  }
  // Mirror index: entry (u -> v) <-> entry (v -> u). Each sorted adjacency
  // list holds distinct targets, so binary search pins the mirror uniquely.
  g.reverse_edge_.resize(g.col_idx_.size());
  for (int u = 0; u < num_nodes; ++u) {
    for (int64_t e = g.row_ptr_[static_cast<size_t>(u)];
         e < g.row_ptr_[static_cast<size_t>(u) + 1]; ++e) {
      const int v = g.col_idx_[static_cast<size_t>(e)];
      const auto begin = g.col_idx_.begin() + g.row_ptr_[static_cast<size_t>(v)];
      const auto end = g.col_idx_.begin() + g.row_ptr_[static_cast<size_t>(v) + 1];
      const auto it = std::lower_bound(begin, end, u);
      OPENIMA_CHECK(it != end && *it == u) << "asymmetric adjacency";
      g.reverse_edge_[static_cast<size_t>(e)] = it - g.col_idx_.begin();
    }
  }
  return g;
}

}  // namespace openima::graph
