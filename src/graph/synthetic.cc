#include "src/graph/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace openima::graph {

namespace {

/// Samples an index from [begin, end) of `prefix` (exclusive prefix sums of
/// weights, with prefix[end] the total) via binary search.
int SampleFromPrefix(const std::vector<double>& prefix, int begin, int end,
                     Rng* rng) {
  const double lo = prefix[static_cast<size_t>(begin)];
  const double hi = prefix[static_cast<size_t>(end)];
  const double u = rng->Uniform(lo, hi);
  auto it = std::upper_bound(prefix.begin() + begin, prefix.begin() + end, u);
  int idx = static_cast<int>(it - prefix.begin()) - 1;
  return std::clamp(idx, begin, end - 1);
}

}  // namespace

Status ValidateSbmConfig(const SbmConfig& c) {
  if (c.num_nodes < 2) {
    return Status::InvalidArgument("num_nodes must be >= 2");
  }
  if (c.num_classes < 2 || c.num_classes > c.num_nodes) {
    return Status::InvalidArgument(StrFormat(
        "num_classes must be in [2, num_nodes], got %d", c.num_classes));
  }
  if (c.feature_dim < 1) {
    return Status::InvalidArgument("feature_dim must be positive");
  }
  if (c.avg_degree <= 0.0) {
    return Status::InvalidArgument("avg_degree must be positive");
  }
  if (c.homophily < 0.0 || c.homophily > 1.0) {
    return Status::InvalidArgument("homophily must be in [0, 1]");
  }
  if (c.class_imbalance < 0.0) {
    return Status::InvalidArgument("class_imbalance must be >= 0");
  }
  if (c.noise_spread < 0.0 || c.noise_spread >= 1.0) {
    return Status::InvalidArgument("noise_spread must be in [0, 1)");
  }
  if (c.feature_noise < 0.0) {
    return Status::InvalidArgument("feature_noise must be >= 0");
  }
  return Status::OK();
}

StatusOr<Dataset> GenerateSbm(const SbmConfig& config, uint64_t seed,
                              std::string name) {
  OPENIMA_RETURN_IF_ERROR(ValidateSbmConfig(config));
  Rng rng(seed);
  const int n = config.num_nodes;
  const int k = config.num_classes;

  // --- Class sizes: Zipf-weighted, each class at least 4 nodes. ---
  std::vector<double> class_weight(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    class_weight[static_cast<size_t>(c)] =
        std::pow(static_cast<double>(c + 1), -config.class_imbalance);
  }
  const double wsum =
      std::accumulate(class_weight.begin(), class_weight.end(), 0.0);
  std::vector<int> class_size(static_cast<size_t>(k), 4);
  int assigned = 4 * k;
  if (assigned > n) {
    return Status::InvalidArgument(
        StrFormat("num_nodes=%d too small for %d classes", n, k));
  }
  for (int c = 0; c < k; ++c) {
    const int extra = static_cast<int>(
        std::floor((n - 4 * k) * class_weight[static_cast<size_t>(c)] / wsum));
    class_size[static_cast<size_t>(c)] += extra;
    assigned += extra;
  }
  // Distribute any rounding remainder to the largest classes.
  for (int c = 0; assigned < n; ++c, ++assigned) {
    ++class_size[static_cast<size_t>(c % k)];
  }

  // --- Node labels, shuffled so node id carries no class signal. ---
  std::vector<int> labels;
  labels.reserve(static_cast<size_t>(n));
  for (int c = 0; c < k; ++c) {
    labels.insert(labels.end(), static_cast<size_t>(class_size[static_cast<size_t>(c)]), c);
  }
  rng.Shuffle(&labels);

  // --- Degree propensities: Pareto(shape) with mean ~1, capped. ---
  std::vector<double> theta(static_cast<size_t>(n), 1.0);
  if (config.degree_power > 1.0) {
    const double alpha = config.degree_power;
    for (int i = 0; i < n; ++i) {
      const double u = 1.0 - rng.Uniform();  // in (0, 1]
      double t = std::pow(u, -1.0 / alpha);  // Pareto, min 1
      theta[static_cast<size_t>(i)] = std::min(t, 12.0);
    }
  }

  // Group nodes by class for within-class endpoint sampling.
  std::vector<std::vector<int>> members(static_cast<size_t>(k));
  for (int i = 0; i < n; ++i) {
    members[static_cast<size_t>(labels[static_cast<size_t>(i)])].push_back(i);
  }
  // Per-class and global prefix sums of theta (node order: class-grouped).
  std::vector<int> grouped;  // node ids grouped by class
  std::vector<int> class_begin(static_cast<size_t>(k) + 1, 0);
  grouped.reserve(static_cast<size_t>(n));
  for (int c = 0; c < k; ++c) {
    class_begin[static_cast<size_t>(c)] = static_cast<int>(grouped.size());
    grouped.insert(grouped.end(), members[static_cast<size_t>(c)].begin(),
                   members[static_cast<size_t>(c)].end());
  }
  class_begin[static_cast<size_t>(k)] = n;
  std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    prefix[static_cast<size_t>(i) + 1] =
        prefix[static_cast<size_t>(i)] + theta[static_cast<size_t>(grouped[static_cast<size_t>(i)])];
  }

  // --- Edges: sample endpoint pairs until the target count is reached. ---
  const int64_t target_edges =
      std::max<int64_t>(n - 1, static_cast<int64_t>(config.avg_degree * n / 2.0));
  GraphBuilder builder(n);
  int64_t attempts = 0;
  const int64_t max_attempts = target_edges * 20;
  int64_t added = 0;
  while (added < target_edges && attempts < max_attempts) {
    ++attempts;
    const int gu = SampleFromPrefix(prefix, 0, n, &rng);
    const int u = grouped[static_cast<size_t>(gu)];
    int v;
    if (rng.Bernoulli(config.homophily)) {
      const int c = labels[static_cast<size_t>(u)];
      const int gv = SampleFromPrefix(prefix, class_begin[static_cast<size_t>(c)],
                                      class_begin[static_cast<size_t>(c) + 1], &rng);
      v = grouped[static_cast<size_t>(gv)];
    } else {
      const int gv = SampleFromPrefix(prefix, 0, n, &rng);
      v = grouped[static_cast<size_t>(gv)];
    }
    if (u == v) continue;
    builder.AddEdge(u, v);
    ++added;  // duplicates removed at Build; slight shortfall is acceptable
  }

  // --- Features: class center + per-class-scaled isotropic noise. ---
  // Centers are random directions scaled to feature_signal; noise per
  // dimension is feature_noise / sqrt(dim) * class multiplier so the total
  // noise norm is comparable across feature dimensionalities.
  const int d = config.feature_dim;
  la::Matrix centers(k, d);
  for (int c = 0; c < k; ++c) {
    double norm = 0.0;
    float* row = centers.Row(c);
    for (int j = 0; j < d; ++j) {
      row[j] = static_cast<float>(rng.Normal());
      norm += static_cast<double>(row[j]) * row[j];
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    const float scale = static_cast<float>(config.feature_signal / norm);
    for (int j = 0; j < d; ++j) row[j] *= scale;
  }
  std::vector<double> class_noise(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    const double mult =
        rng.Uniform(1.0 - config.noise_spread, 1.0 + config.noise_spread);
    class_noise[static_cast<size_t>(c)] =
        config.feature_noise * mult / std::sqrt(static_cast<double>(d));
  }
  la::Matrix features(n, d);
  for (int i = 0; i < n; ++i) {
    const int c = labels[static_cast<size_t>(i)];
    const float* mu = centers.Row(c);
    const double sigma = class_noise[static_cast<size_t>(c)];
    float* row = features.Row(i);
    for (int j = 0; j < d; ++j) {
      row[j] = mu[j] + static_cast<float>(rng.Normal(0.0, sigma));
    }
  }

  Dataset ds;
  ds.name = std::move(name);
  ds.graph = builder.Build(/*add_self_loops=*/true);
  ds.features = std::move(features);
  ds.labels = std::move(labels);
  ds.num_classes = k;
  return ds;
}

}  // namespace openima::graph
