#include "src/graph/io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/util/string_util.h"

namespace openima::graph {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const int n = dataset.num_nodes();
  const int d = dataset.feature_dim();
  // Collect undirected edges once (u < v), skipping self-loops.
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    auto [begin, end] = dataset.graph.Neighbors(u);
    for (const int* p = begin; p != end; ++p) {
      if (u < *p) edges.emplace_back(u, *p);
    }
  }
  std::fprintf(f.get(), "openima-dataset v1\n");
  std::fprintf(f.get(), "name %s\n", dataset.name.c_str());
  std::fprintf(f.get(), "nodes %d features %d classes %d edges %zu\n", n, d,
               dataset.num_classes, edges.size());
  for (int v = 0; v < n; ++v) {
    std::fprintf(f.get(), "%d%c", dataset.labels[static_cast<size_t>(v)],
                 v + 1 == n ? '\n' : ' ');
  }
  for (int v = 0; v < n; ++v) {
    const float* row = dataset.features.Row(v);
    for (int j = 0; j < d; ++j) {
      std::fprintf(f.get(), "%.9g%c", static_cast<double>(row[j]),
                   j + 1 == d ? '\n' : ' ');
    }
  }
  for (auto [u, v] : edges) std::fprintf(f.get(), "%d %d\n", u, v);
  if (std::ferror(f.get())) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IOError("cannot open " + path);
  char magic[32] = {0}, version[16] = {0};
  if (std::fscanf(f.get(), "%31s %15s", magic, version) != 2 ||
      std::string(magic) != "openima-dataset" ||
      std::string(version) != "v1") {
    return Status::InvalidArgument(path + ": not an openima-dataset v1 file");
  }
  char name_buf[256] = {0};
  if (std::fscanf(f.get(), " name %255s", name_buf) != 1) {
    return Status::InvalidArgument(path + ": missing name");
  }
  int n = 0, d = 0, k = 0;
  int64_t m = 0;
  if (std::fscanf(f.get(), " nodes %d features %d classes %d edges %" SCNd64,
                  &n, &d, &k, &m) != 4 ||
      n <= 0 || d <= 0 || k <= 0 || m < 0) {
    return Status::InvalidArgument(path + ": bad header");
  }
  Dataset ds;
  ds.name = name_buf;
  ds.num_classes = k;
  ds.labels.resize(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    int label = -1;
    if (std::fscanf(f.get(), "%d", &label) != 1 || label < 0 || label >= k) {
      return Status::InvalidArgument(
          StrFormat("%s: bad label for node %d", path.c_str(), v));
    }
    ds.labels[static_cast<size_t>(v)] = label;
  }
  ds.features = la::Matrix(n, d);
  for (int v = 0; v < n; ++v) {
    float* row = ds.features.Row(v);
    for (int j = 0; j < d; ++j) {
      if (std::fscanf(f.get(), "%f", &row[j]) != 1) {
        return Status::InvalidArgument(
            StrFormat("%s: bad feature (%d, %d)", path.c_str(), v, j));
      }
    }
  }
  GraphBuilder builder(n);
  for (int64_t e = 0; e < m; ++e) {
    int u = -1, v = -1;
    if (std::fscanf(f.get(), "%d %d", &u, &v) != 2 || u < 0 || v < 0 ||
        u >= n || v >= n) {
      return Status::InvalidArgument(
          StrFormat("%s: bad edge %lld", path.c_str(),
                    static_cast<long long>(e)));
    }
    builder.AddEdge(u, v);
  }
  ds.graph = builder.Build(/*add_self_loops=*/true);
  return ds;
}

}  // namespace openima::graph
