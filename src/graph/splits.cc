#include "src/graph/splits.h"

#include <algorithm>

#include <cmath>
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace openima::graph {

std::vector<int> OpenWorldSplit::UnlabeledNodes() const {
  std::vector<int> out = val_nodes;
  out.insert(out.end(), test_nodes.begin(), test_nodes.end());
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<OpenWorldSplit> MakeOpenWorldSplit(const Dataset& dataset,
                                            const SplitOptions& options,
                                            uint64_t seed) {
  const int k = dataset.num_classes;
  if (k < 2) {
    return Status::InvalidArgument("need at least 2 classes for open-world");
  }
  if (options.seen_class_fraction <= 0.0 || options.seen_class_fraction >= 1.0) {
    return Status::InvalidArgument("seen_class_fraction must be in (0, 1)");
  }
  if (options.labeled_per_class < 1 || options.val_per_class < 0) {
    return Status::InvalidArgument("invalid per-class label budgets");
  }

  Rng rng(seed);
  int num_seen =
      static_cast<int>(std::lround(k * options.seen_class_fraction));
  num_seen = std::clamp(num_seen, 1, k - 1);

  // Random class partition.
  std::vector<int> class_order(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) class_order[static_cast<size_t>(c)] = c;
  rng.Shuffle(&class_order);

  OpenWorldSplit split;
  split.num_seen = num_seen;
  split.num_novel = k - num_seen;
  split.seen_classes.assign(class_order.begin(), class_order.begin() + num_seen);
  split.novel_classes.assign(class_order.begin() + num_seen, class_order.end());
  std::sort(split.seen_classes.begin(), split.seen_classes.end());
  std::sort(split.novel_classes.begin(), split.novel_classes.end());

  std::vector<int> remap(static_cast<size_t>(k), -1);
  for (int i = 0; i < num_seen; ++i) {
    remap[static_cast<size_t>(split.seen_classes[static_cast<size_t>(i)])] = i;
  }
  for (int i = 0; i < split.num_novel; ++i) {
    remap[static_cast<size_t>(split.novel_classes[static_cast<size_t>(i)])] =
        num_seen + i;
  }

  split.remapped_labels.resize(dataset.labels.size());
  for (size_t v = 0; v < dataset.labels.size(); ++v) {
    split.remapped_labels[v] = remap[static_cast<size_t>(dataset.labels[v])];
  }

  // Per seen class: sample train + val without replacement.
  std::vector<std::vector<int>> members(static_cast<size_t>(k));
  for (int v = 0; v < dataset.num_nodes(); ++v) {
    members[static_cast<size_t>(dataset.labels[static_cast<size_t>(v)])]
        .push_back(v);
  }
  std::vector<bool> taken(static_cast<size_t>(dataset.num_nodes()), false);
  for (int orig_c : split.seen_classes) {
    auto& nodes = members[static_cast<size_t>(orig_c)];
    const int size = static_cast<int>(nodes.size());
    // Cap so at least a third of each seen class remains in the test set.
    const int cap = std::max(1, size / 3);
    const int n_train = std::min(options.labeled_per_class, cap);
    const int n_val = std::min(options.val_per_class, cap);
    if (n_train + n_val >= size) {
      return Status::FailedPrecondition(StrFormat(
          "class %d has only %d nodes; cannot take %d train + %d val",
          orig_c, size, n_train, n_val));
    }
    std::vector<int> picks =
        rng.SampleWithoutReplacement(size, n_train + n_val);
    for (int i = 0; i < n_train; ++i) {
      const int v = nodes[static_cast<size_t>(picks[static_cast<size_t>(i)])];
      split.train_nodes.push_back(v);
      taken[static_cast<size_t>(v)] = true;
    }
    for (int i = n_train; i < n_train + n_val; ++i) {
      const int v = nodes[static_cast<size_t>(picks[static_cast<size_t>(i)])];
      split.val_nodes.push_back(v);
      taken[static_cast<size_t>(v)] = true;
    }
  }
  for (int v = 0; v < dataset.num_nodes(); ++v) {
    if (!taken[static_cast<size_t>(v)]) split.test_nodes.push_back(v);
  }
  std::sort(split.train_nodes.begin(), split.train_nodes.end());
  std::sort(split.val_nodes.begin(), split.val_nodes.end());
  return split;
}

}  // namespace openima::graph
