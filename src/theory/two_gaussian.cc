#include "src/theory/two_gaussian.h"

#include <algorithm>
#include <cmath>

#include "src/cluster/kmeans.h"
#include "src/la/matrix.h"
#include "src/util/logging.h"

namespace openima::theory {

double TwoGaussianModel::Alpha() const {
  return std::fabs(mu2 - mu1) / (sigma1 + sigma2);
}

double TwoGaussianModel::Gamma() const {
  return std::max(sigma1, sigma2) / std::min(sigma1, sigma2);
}

TwoGaussianModel TwoGaussianModel::FromAlphaGamma(double alpha, double gamma,
                                                  double sigma1) {
  TwoGaussianModel m;
  m.mu1 = 0.0;
  m.sigma1 = sigma1;
  m.sigma2 = gamma * sigma1;
  m.mu2 = alpha * (m.sigma1 + m.sigma2);
  return m;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalPdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
}

ClusterCenters ExpectedCenters(const TwoGaussianModel& m, double s) {
  const double a1 = (s - m.mu1) / m.sigma1;
  const double a2 = (s - m.mu2) / m.sigma2;
  const double c1 = NormalCdf(a1), c2 = NormalCdf(a2);
  const double p1 = NormalPdf(a1), p2 = NormalPdf(a2);

  ClusterCenters out;
  // Eq. 16: E[x | x < s] under the uniform mixture (Lemma 1).
  const double num1 = m.mu1 * c1 - m.sigma1 * p1 + m.mu2 * c2 - m.sigma2 * p2;
  const double den1 = c1 + c2;
  out.theta1 = den1 > 1e-300 ? num1 / den1 : m.mu1;
  // Eq. 17: E[x | x > s].
  const double num2 = m.mu1 * (1.0 - c1) + m.sigma1 * p1 +
                      m.mu2 * (1.0 - c2) + m.sigma2 * p2;
  const double den2 = (1.0 - c1) + (1.0 - c2);
  out.theta2 = den2 > 1e-300 ? num2 / den2 : m.mu2;
  return out;
}

double H(const TwoGaussianModel& m, double s) {
  const ClusterCenters c = ExpectedCenters(m, s);
  return 2.0 * s - c.theta1 - c.theta2;
}

StatusOr<double> SolveFixedPoint(const TwoGaussianModel& m) {
  if (m.sigma1 <= 0.0 || m.sigma2 <= 0.0 || m.mu2 <= m.mu1) {
    return Status::InvalidArgument(
        "model requires mu1 < mu2 and positive sigmas");
  }
  double lo = m.mu1, hi = m.mu2;
  double h_lo = H(m, lo), h_hi = H(m, hi);
  // Widen until the root is bracketed (h is increasing near the midpoint).
  for (int tries = 0; tries < 64 && h_lo > 0.0; ++tries) {
    lo -= m.sigma1;
    h_lo = H(m, lo);
  }
  for (int tries = 0; tries < 64 && h_hi < 0.0; ++tries) {
    hi += m.sigma2;
    h_hi = H(m, hi);
  }
  if (h_lo > 0.0 || h_hi < 0.0) {
    return Status::FailedPrecondition("failed to bracket the fixed point");
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double h_mid = H(m, mid);
    if (std::fabs(h_mid) < 1e-13 || hi - lo < 1e-13) return mid;
    if (h_mid < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

ExpectedAccuracy ExpectedAccuracies(const TwoGaussianModel& m, double s) {
  ExpectedAccuracy acc;
  acc.acc1 = NormalCdf((s - m.mu1) / m.sigma1);
  acc.acc2 = 1.0 - NormalCdf((s - m.mu2) / m.sigma2);
  return acc;
}

StatusOr<ExpectedAccuracy> MonteCarloKMeansAccuracy(
    const TwoGaussianModel& m, int n, int dim, Rng* rng) {
  if (n < 4 || dim < 1) return Status::InvalidArgument("n >= 4, dim >= 1");
  la::Matrix points(n, dim);
  std::vector<int> labels(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const bool second = rng->Bernoulli(0.5);
    labels[static_cast<size_t>(i)] = second ? 1 : 0;
    const double mu = second ? m.mu2 : m.mu1;
    const double sigma = second ? m.sigma2 : m.sigma1;
    float* row = points.Row(i);
    row[0] = static_cast<float>(rng->Normal(mu, sigma));
    for (int j = 1; j < dim; ++j) {
      row[j] = static_cast<float>(rng->Normal(0.0, sigma));
    }
  }
  cluster::KMeansOptions options;
  options.num_clusters = 2;
  options.max_iterations = 200;
  options.num_init = 3;
  auto result = cluster::KMeans(points, options, rng);
  OPENIMA_RETURN_IF_ERROR(result.status());

  // Align: the cluster whose center has the smaller first coordinate is
  // class 1 (mu1 < mu2).
  const int low_cluster =
      result->centers(0, 0) <= result->centers(1, 0) ? 0 : 1;
  int correct1 = 0, total1 = 0, correct2 = 0, total2 = 0;
  for (int i = 0; i < n; ++i) {
    const bool predicted_first =
        result->assignments[static_cast<size_t>(i)] == low_cluster;
    if (labels[static_cast<size_t>(i)] == 0) {
      ++total1;
      correct1 += predicted_first;
    } else {
      ++total2;
      correct2 += !predicted_first;
    }
  }
  if (total1 == 0 || total2 == 0) {
    return Status::FailedPrecondition("degenerate sample: a class is empty");
  }
  ExpectedAccuracy acc;
  acc.acc1 = static_cast<double>(correct1) / total1;
  acc.acc2 = static_cast<double>(correct2) / total2;
  return acc;
}

}  // namespace openima::theory
