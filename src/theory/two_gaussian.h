#ifndef OPENIMA_THEORY_TWO_GAUSSIAN_H_
#define OPENIMA_THEORY_TWO_GAUSSIAN_H_

#include <cstdint>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace openima::theory {

/// The paper's §IV-A theoretical model: a uniform mixture of two spherical
/// Gaussians, reduced without loss of generality to one dimension (§VI-B).
/// Class 1 plays the seen class (smaller sigma), class 2 the novel class.
struct TwoGaussianModel {
  double mu1 = 0.0;
  double mu2 = 1.0;
  double sigma1 = 0.1;
  double sigma2 = 0.2;

  /// Separation alpha = |mu2 - mu1| / (sigma1 + sigma2) (Definition 1).
  double Alpha() const;

  /// Variance imbalance gamma = max(s1, s2) / min(s1, s2).
  double Gamma() const;

  /// Builds a model from (alpha, gamma) with sigma1 = `sigma1` and mu1 = 0,
  /// so mu2 = alpha * (1 + gamma) * sigma1 (Eq. 21).
  static TwoGaussianModel FromAlphaGamma(double alpha, double gamma,
                                         double sigma1 = 0.1);
};

/// Standard normal cdf / pdf.
double NormalCdf(double x);
double NormalPdf(double x);

/// Expected K-Means cluster centers given partition threshold s (Eq. 16 and
/// Eq. 17), via the truncated-normal expectation of Lemma 1.
struct ClusterCenters {
  double theta1 = 0.0;
  double theta2 = 0.0;
};
ClusterCenters ExpectedCenters(const TwoGaussianModel& model, double s);

/// h(s) = 2s - theta1(s) - theta2(s); its root is the converged K-Means
/// partition threshold (§VI-A).
double H(const TwoGaussianModel& model, double s);

/// Solves h(s*) = 0 by bisection over [mu1, mu2]. Errors if no sign change
/// brackets the root (degenerate parameters).
StatusOr<double> SolveFixedPoint(const TwoGaussianModel& model);

/// Expected per-class accuracies of the converged threshold (Eq. 34-36):
/// ACC1 = Phi((s - mu1)/sigma1), ACC2 = 1 - Phi((s - mu2)/sigma2).
struct ExpectedAccuracy {
  double acc1 = 0.0;
  double acc2 = 0.0;
};
ExpectedAccuracy ExpectedAccuracies(const TwoGaussianModel& model, double s);

/// Empirical check: samples n points per the mixture in `dim` dimensions,
/// runs K-Means (k = 2), aligns clusters with classes by center proximity,
/// and returns per-class accuracy. Validates the theory against the actual
/// clustering pipeline.
StatusOr<ExpectedAccuracy> MonteCarloKMeansAccuracy(
    const TwoGaussianModel& model, int n, int dim, Rng* rng);

}  // namespace openima::theory

#endif  // OPENIMA_THEORY_TWO_GAUSSIAN_H_
