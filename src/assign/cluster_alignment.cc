#include "src/assign/cluster_alignment.h"

#include <algorithm>

#include "src/assign/hungarian.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace openima::assign {

StatusOr<ClusterAlignment> AlignClustersWithLabels(
    const std::vector<int>& clusters, const std::vector<int>& labels,
    int num_clusters, int num_classes) {
  if (clusters.size() != labels.size()) {
    return Status::InvalidArgument("clusters/labels size mismatch");
  }
  if (num_clusters < num_classes) {
    return Status::InvalidArgument(
        StrFormat("need num_clusters (%d) >= num_classes (%d)", num_clusters,
                  num_classes));
  }
  if (num_classes < 1) return Status::InvalidArgument("num_classes < 1");

  // Agreement counts: rows = classes, cols = clusters.
  std::vector<std::vector<double>> weight(
      static_cast<size_t>(num_classes),
      std::vector<double>(static_cast<size_t>(num_clusters), 0.0));
  for (size_t i = 0; i < clusters.size(); ++i) {
    const int o = clusters[i], y = labels[i];
    if (o < 0 || o >= num_clusters) {
      return Status::InvalidArgument("cluster id out of range");
    }
    if (y < 0 || y >= num_classes) {
      return Status::InvalidArgument("label out of range");
    }
    weight[static_cast<size_t>(y)][static_cast<size_t>(o)] += 1.0;
  }

  auto assignment = MaxWeightAssignment(weight);
  OPENIMA_RETURN_IF_ERROR(assignment.status());

  ClusterAlignment out;
  out.cluster_to_class.assign(static_cast<size_t>(num_clusters), -1);
  for (int y = 0; y < num_classes; ++y) {
    const int o = (*assignment)[static_cast<size_t>(y)];
    out.cluster_to_class[static_cast<size_t>(o)] = y;
    out.num_matched += static_cast<int>(
        weight[static_cast<size_t>(y)][static_cast<size_t>(o)]);
  }
  return out;
}

std::vector<int> ApplyAlignment(const std::vector<int>& clusters,
                                const ClusterAlignment& alignment,
                                int num_classes) {
  // Assign fresh ids to unaligned clusters in cluster order.
  std::vector<int> mapping = alignment.cluster_to_class;
  int next = num_classes;
  for (auto& m : mapping) {
    if (m < 0) m = next++;
  }
  std::vector<int> out(clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) {
    const int o = clusters[i];
    OPENIMA_CHECK_GE(o, 0);
    OPENIMA_CHECK_LT(o, static_cast<int>(mapping.size()));
    out[i] = mapping[static_cast<size_t>(o)];
  }
  return out;
}

double AlignmentChurn(const ClusterAlignment& prev, const ClusterAlignment& cur) {
  const size_t np = prev.cluster_to_class.size();
  const size_t nc = cur.cluster_to_class.size();
  const size_t n = std::max(np, nc);
  if (n == 0) return 0.0;
  size_t changed = 0;
  for (size_t o = 0; o < n; ++o) {
    const int before = o < np ? prev.cluster_to_class[o] : -2;
    const int after = o < nc ? cur.cluster_to_class[o] : -2;
    changed += before != after;
  }
  return static_cast<double>(changed) / static_cast<double>(n);
}

}  // namespace openima::assign
