#ifndef OPENIMA_ASSIGN_CLUSTER_ALIGNMENT_H_
#define OPENIMA_ASSIGN_CLUSTER_ALIGNMENT_H_

#include <vector>

#include "src/util/status.h"

namespace openima::assign {

/// Result of aligning clusters with (seen) classes.
struct ClusterAlignment {
  /// Per cluster: the class it maps to, or -1 when unaligned (the clusters
  /// left over for novel classes in Eq. 5 of the paper).
  std::vector<int> cluster_to_class;

  /// Number of labeled nodes whose cluster maps to their true class — the
  /// objective value of Eq. 5.
  int num_matched = 0;
};

/// The paper's Eq. 5: finds the injective class -> cluster map maximizing
/// agreement on labeled nodes via the Hungarian algorithm, then inverts it.
/// Requires num_clusters >= num_classes and labels in [0, num_classes).
/// `clusters` and `labels` are parallel arrays over the labeled nodes.
StatusOr<ClusterAlignment> AlignClustersWithLabels(
    const std::vector<int>& clusters, const std::vector<int>& labels,
    int num_clusters, int num_classes);

/// Applies an alignment, mapping unaligned clusters to fresh class ids
/// num_classes, num_classes + 1, ... in cluster-id order (the paper's
/// "unordered novel class ids"). Returns per-node class predictions.
std::vector<int> ApplyAlignment(const std::vector<int>& clusters,
                                const ClusterAlignment& alignment,
                                int num_classes);

/// Fraction of cluster -> class mappings that changed between two
/// consecutive alignments (a stability measure for the telemetry
/// time-series: the paper argues bias-reduced pseudo labels make this decay
/// as training proceeds). When the cluster counts differ — the novel-count
/// sweep picked a different k — extra clusters on either side count as
/// changed; the denominator is max(|prev|, |cur|). Returns 0 for two empty
/// alignments.
double AlignmentChurn(const ClusterAlignment& prev, const ClusterAlignment& cur);

}  // namespace openima::assign

#endif  // OPENIMA_ASSIGN_CLUSTER_ALIGNMENT_H_
