#include "src/assign/hungarian.h"

#include <algorithm>
#include <limits>

namespace openima::assign {

StatusOr<std::vector<int>> MinCostAssignment(
    const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  if (n == 0) return Status::InvalidArgument("empty cost matrix");
  const int m = static_cast<int>(cost[0].size());
  if (m < n) {
    return Status::InvalidArgument(
        "cost matrix needs at least as many columns as rows");
  }
  for (const auto& row : cost) {
    if (static_cast<int>(row.size()) != m) {
      return Status::InvalidArgument("ragged cost matrix");
    }
  }

  // Potentials-based Hungarian algorithm (1-indexed internal arrays).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(m) + 1, 0.0);
  std::vector<int> match(static_cast<size_t>(m) + 1, 0);  // column -> row
  std::vector<int> way(static_cast<size_t>(m) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(m) + 1, kInf);
    std::vector<bool> used(static_cast<size_t>(m) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      const int i0 = match[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = cost[static_cast<size_t>(i0) - 1]
                               [static_cast<size_t>(j) - 1] -
                           u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<size_t>(j0)] != 0);
    // Augment along the alternating path.
    do {
      const int j1 = way[static_cast<size_t>(j0)];
      match[static_cast<size_t>(j0)] = match[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> row_to_col(static_cast<size_t>(n), -1);
  for (int j = 1; j <= m; ++j) {
    if (match[static_cast<size_t>(j)] > 0) {
      row_to_col[static_cast<size_t>(match[static_cast<size_t>(j)]) - 1] =
          j - 1;
    }
  }
  return row_to_col;
}

StatusOr<std::vector<int>> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weight) {
  std::vector<std::vector<double>> neg(weight.size());
  for (size_t i = 0; i < weight.size(); ++i) {
    neg[i].reserve(weight[i].size());
    for (double w : weight[i]) neg[i].push_back(-w);
  }
  return MinCostAssignment(neg);
}

}  // namespace openima::assign
