#ifndef OPENIMA_ASSIGN_HUNGARIAN_H_
#define OPENIMA_ASSIGN_HUNGARIAN_H_

#include <vector>

#include "src/util/status.h"

namespace openima::assign {

/// Solves the rectangular min-cost assignment problem with the O(n^2 m)
/// Hungarian algorithm (Kuhn–Munkres with potentials). `cost` has n rows and
/// m columns with n <= m; every row is assigned a distinct column.
///
/// Returns row -> column indices.
StatusOr<std::vector<int>> MinCostAssignment(
    const std::vector<std::vector<double>>& cost);

/// Maximum-weight variant (negates the weights). n <= m required.
StatusOr<std::vector<int>> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weight);

}  // namespace openima::assign

#endif  // OPENIMA_ASSIGN_HUNGARIAN_H_
