#ifndef OPENIMA_LA_DISTANCE_H_
#define OPENIMA_LA_DISTANCE_H_

#include <cstdint>
#include <vector>

#include "src/exec/context.h"
#include "src/la/backend/backend.h"
#include "src/la/matrix.h"

/// The shared distance-kernel layer behind every clustering consumer
/// (K-Means, constrained K-Means, silhouette, GMM init, pseudo-label
/// confidence, novel-count sweep). Two numeric families live here:
///
/// 1. The float *expansion* family: d2(x, c) = max(0, ||x||^2 + ||c||^2
///    - 2 <x, c>). Used on the K-Means hot path. The primitive is
///    backend::KernelBackend::ExpansionSquaredDistance — each backend
///    compiles exactly one instance (no inlining, no IPA cloning), so the
///    full-matrix kernel, the accelerated-Lloyd bound checks and the final
///    assignment pass all see bit-identical values — the property the
///    triangle-inequality pruning proof rests on. Kernels here resolve the
///    backend from the context (backend::Resolve), so a whole clustering
///    run stays on one instance.
///
/// 2. The double *direct* family: sum_j (x_j - c_j)^2 accumulated in
///    double. Used where rounding feeds an rng-driven choice over a small
///    subset (constrained seeding) or a ranking (pseudo-label confidence),
///    so routing through this layer changes no numerics there.
///
/// Every parallel entry point is deterministic: chunk layouts depend only
/// on the row count, partial sums combine in ascending chunk order, and
/// per-row outputs are disjoint writes — results are bit-identical for any
/// thread count and for pooled vs heap storage.
namespace openima::la {

/// Scalar double direct squared distance (ascending-j accumulation).
inline double DirectSquaredDistance(const float* a, const float* b, int d) {
  double s = 0.0;
  for (int j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - b[j];
    s += diff * diff;
  }
  return s;
}

/// Per-row squared L2 norms (double-accumulated, cast to float),
/// row-parallel into a caller-provided buffer of size m.rows().
void RowSquaredNormsInto(const Matrix& m, float* out,
                         const exec::Context* ctx = nullptr);

/// Convenience vector-returning form of RowSquaredNormsInto.
std::vector<float> RowSquaredNorms(const Matrix& m,
                                   const exec::Context* ctx = nullptr);

/// Pairwise squared Euclidean distances (float expansion family) between
/// every row of x (n x d) and every row of c (k x d), written row-major
/// into `out` (n x k). `xsq` / `csq` are optional precomputed row squared
/// norms (nullptr = computed internally into pooled scratch). Row-parallel;
/// every element goes through ExpansionSquaredDistance, so the output is
/// bit-identical to the scalar primitive for any thread partition.
void PairwiseSquaredDistancesInto(const Matrix& x, const Matrix& c,
                                  const float* xsq, const float* csq,
                                  float* out,
                                  const exec::Context* ctx = nullptr);

/// Matrix-returning convenience form (storage drawn from the bound pool
/// when one is active).
Matrix PairwiseSquaredDistances(const Matrix& x, const Matrix& c,
                                const exec::Context* ctx = nullptr);

/// Serial anchor-block x point-tile expansion kernel for the silhouette
/// fast path: out[r * ldo + q] = float expansion squared distance between
/// anchor row r of `a` (m x d, row-major, m <= a few dozen) and point
/// j0 + q, where `yt` is the d x n_total *transposed* points matrix
/// (transposing once per silhouette call turns every tile into a pure
/// register-tiled GEMM — no per-tile packing). `axsq` holds the m anchor
/// squared norms, `ysq` the n_total point squared norms. The dot products
/// run over the backend's GEMM micro-tiles, so the tile cost is ~2·m·nb·d
/// vectorized flops instead of m·nb scalar double loops. `be` selects the
/// kernel backend (nullptr = process default); callers inside a parallel
/// region resolve it once from their context and pass it down.
void ExpansionDistanceTile(const float* a, int m, int d, const float* yt,
                           int64_t n_total, int64_t j0, int nb,
                           const float* axsq, const float* ysq, float* out,
                           int64_t ldo,
                           const backend::KernelBackend* be = nullptr);

/// k-means++ D^2 refresh (float expansion family): dist2[i] = min(dist2[i],
/// ExpansionSquaredDistance(points_i, center)) for all rows, returning
/// sum_i dist2[i] as a deterministic chunked reduction over the caller's
/// grain. `xsq` holds the precomputed point squared norms (size
/// points.rows()); the center's norm is computed internally. Accumulation
/// stays double so the D^2 sampling sum is exact over the float distances.
double UpdateNearestSquaredDistances(const Matrix& points, const float* center,
                                     const float* xsq, int64_t grain,
                                     double* dist2,
                                     const exec::Context* ctx = nullptr);

/// Serial subset form used by constrained seeding: dist2[t] =
/// min(dist2[t], ||points_{rows[t]} - center||^2).
void UpdateNearestSquaredDistancesSubset(const Matrix& points,
                                         const float* center,
                                         const std::vector<int>& rows,
                                         double* dist2);

/// Per-point Euclidean distance to the assigned center (double direct
/// family, sqrt applied, cast to float), row-parallel into `out` of size
/// points.rows(). Feeds the pseudo-label confidence ranking and the
/// novel-count sweep's farthest-point warm-start seed.
void AssignedEuclideanDistancesInto(const Matrix& points,
                                    const Matrix& centers,
                                    const std::vector<int>& assignments,
                                    float* out,
                                    const exec::Context* ctx = nullptr);

}  // namespace openima::la

#endif  // OPENIMA_LA_DISTANCE_H_
