#include "src/la/distance.h"

#include <algorithm>
#include <cmath>

#include "src/la/backend/backend.h"
#include "src/la/pool.h"
#include "src/util/logging.h"

namespace openima::la {

namespace {

/// Rows per parallel task so one task covers at least ~8k output elements.
int64_t RowGrain(int cols) {
  return std::max<int64_t>(1, 8192 / std::max(1, cols));
}

}  // namespace

// The expansion distance primitive itself lives in the kernel backends
// (src/la/backend/): one compiled instance per backend, resolved from the
// context here so a whole clustering run stays on the same instance. Row
// squared norms stay in this TU on purpose — they are double-accumulated
// scalar sweeps shared by every backend, so xsq/ysq inputs are identical
// no matter which backend consumes them.

void RowSquaredNormsInto(const Matrix& m, float* out,
                         const exec::Context* ctx) {
  exec::Get(ctx).ParallelFor(
      m.rows(), RowGrain(m.cols()), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* row = m.Row(static_cast<int>(i));
          double s = 0.0;
          for (int j = 0; j < m.cols(); ++j) {
            s += static_cast<double>(row[j]) * row[j];
          }
          out[i] = static_cast<float>(s);
        }
      });
}

std::vector<float> RowSquaredNorms(const Matrix& m, const exec::Context* ctx) {
  std::vector<float> out(static_cast<size_t>(m.rows()));
  RowSquaredNormsInto(m, out.data(), ctx);
  return out;
}

void PairwiseSquaredDistancesInto(const Matrix& x, const Matrix& c,
                                  const float* xsq, const float* csq,
                                  float* out, const exec::Context* ctx) {
  OPENIMA_CHECK_EQ(x.cols(), c.cols());
  const int64_t n = x.rows();
  const int k = c.rows(), d = x.cols();
  PoolBuffer xsq_buf, csq_buf;
  if (xsq == nullptr) {
    xsq_buf = PoolBuffer(n, ctx);
    RowSquaredNormsInto(x, xsq_buf.data(), ctx);
    xsq = xsq_buf.data();
  }
  if (csq == nullptr) {
    csq_buf = PoolBuffer(k, ctx);
    RowSquaredNormsInto(c, csq_buf.data(), ctx);
    csq = csq_buf.data();
  }
  const backend::KernelBackend& be = backend::Resolve(ctx);
  exec::Get(ctx).ParallelFor(n, RowGrain(k), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* xi = x.Row(static_cast<int>(i));
      const float xs = xsq[i];
      float* row = out + i * k;
      for (int cc = 0; cc < k; ++cc) {
        row[cc] = be.ExpansionSquaredDistance(xi, c.Row(cc), d, xs, csq[cc]);
      }
    }
  });
}

Matrix PairwiseSquaredDistances(const Matrix& x, const Matrix& c,
                                const exec::Context* ctx) {
  Matrix out(x.rows(), c.rows());
  PairwiseSquaredDistancesInto(x, c, nullptr, nullptr, out.data(), ctx);
  return out;
}

void ExpansionDistanceTile(const float* a, int m, int d, const float* yt,
                           int64_t n_total, int64_t j0, int nb,
                           const float* axsq, const float* ysq, float* out,
                           int64_t ldo, const backend::KernelBackend* be) {
  if (be == nullptr) be = &backend::Default();
  for (int r = 0; r < m; ++r) {
    std::fill(out + r * ldo, out + r * ldo + nb, 0.0f);
  }
  be->GemmRowRange(a, d, yt + j0, n_total, 1.0f, out, ldo, 0, m, d, nb);
  for (int r = 0; r < m; ++r) {
    float* row = out + r * ldo;
    const float xs = axsq[r];
    for (int q = 0; q < nb; ++q) {
      row[q] = std::max(0.0f, xs + ysq[j0 + q] - 2.0f * row[q]);
    }
  }
}

double UpdateNearestSquaredDistances(const Matrix& points, const float* center,
                                     const float* xsq, int64_t grain,
                                     double* dist2, const exec::Context* ctx) {
  const int64_t n = points.rows();
  const int d = points.cols();
  double csq_acc = 0.0;
  for (int j = 0; j < d; ++j) {
    csq_acc += static_cast<double>(center[j]) * center[j];
  }
  const float csq = static_cast<float>(csq_acc);
  const int64_t chunks = exec::Context::NumChunks(n, grain);
  std::vector<double> partial(static_cast<size_t>(chunks), 0.0);
  const backend::KernelBackend& be = backend::Resolve(ctx);
  exec::Get(ctx).ParallelForChunks(
      n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
        double t = 0.0;
        for (int64_t i = b; i < e; ++i) {
          const double d2 = be.ExpansionSquaredDistance(
              points.Row(static_cast<int>(i)), center, d, xsq[i], csq);
          if (d2 < dist2[i]) dist2[i] = d2;
          t += dist2[i];
        }
        partial[static_cast<size_t>(chunk)] = t;
      });
  double total = 0.0;
  for (int64_t ch = 0; ch < chunks; ++ch) {
    total += partial[static_cast<size_t>(ch)];
  }
  return total;
}

void UpdateNearestSquaredDistancesSubset(const Matrix& points,
                                         const float* center,
                                         const std::vector<int>& rows,
                                         double* dist2) {
  const int d = points.cols();
  for (size_t t = 0; t < rows.size(); ++t) {
    dist2[t] = std::min(dist2[t],
                        DirectSquaredDistance(points.Row(rows[t]), center, d));
  }
}

void AssignedEuclideanDistancesInto(const Matrix& points,
                                    const Matrix& centers,
                                    const std::vector<int>& assignments,
                                    float* out, const exec::Context* ctx) {
  OPENIMA_CHECK_EQ(static_cast<int>(assignments.size()), points.rows());
  const int d = points.cols();
  exec::Get(ctx).ParallelFor(
      points.rows(), RowGrain(d), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const double s = DirectSquaredDistance(
              points.Row(static_cast<int>(i)),
              centers.Row(assignments[static_cast<size_t>(i)]), d);
          out[i] = static_cast<float>(std::sqrt(s));
        }
      });
}

}  // namespace openima::la
