#ifndef OPENIMA_LA_MATRIX_OPS_H_
#define OPENIMA_LA_MATRIX_OPS_H_

#include <vector>

#include "src/exec/context.h"
// PairwiseSquaredDistances and the rest of the distance-kernel family moved
// to src/la/distance.h; included here so existing callers keep compiling.
#include "src/la/distance.h"
#include "src/la/matrix.h"

namespace openima::la {

// Every kernel takes a trailing execution context; nullptr routes through
// the process-wide exec::Default(). All kernels are deterministic for any
// thread count: row-parallel kernels write disjoint outputs, and the GEMM
// family accumulates over k in ascending order per output element — the
// blocked/parallel products are bit-identical to MatmulReference on the
// same (possibly transposed) operands.

/// C = A * B. Cache-blocked, row-parallel kernel.
Matrix Matmul(const Matrix& a, const Matrix& b,
              const exec::Context* ctx = nullptr);

/// C = A^T * B (A is KxM, B is KxN, result MxN). A is transposed into a
/// packed buffer so the blocked kernel streams contiguous rows.
Matrix MatmulTN(const Matrix& a, const Matrix& b,
                const exec::Context* ctx = nullptr);

/// C = A * B^T (A is MxK, B is NxK, result MxN). B is transposed into a
/// packed buffer so the blocked kernel streams contiguous rows.
Matrix MatmulNT(const Matrix& a, const Matrix& b,
                const exec::Context* ctx = nullptr);

/// C += alpha * A * B into an existing, correctly shaped matrix.
void MatmulAccumulate(const Matrix& a, const Matrix& b, float alpha, Matrix* c,
                      const exec::Context* ctx = nullptr);

// In-place element-wise family: backward functions accumulate into pooled
// gradient buffers through these instead of materializing temporaries
// (`Matrix d = grad; d.Hadamard...; dst += d` costs an allocation and two
// sweeps). All are row-parallel with disjoint writes — deterministic for
// any thread count.

/// dst += src (shapes must match).
void AddInPlace(const Matrix& src, Matrix* dst,
                const exec::Context* ctx = nullptr);

/// m *= s.
void ScaleInPlace(float s, Matrix* m, const exec::Context* ctx = nullptr);

/// dst += alpha * src.
void AxpyInPlace(float alpha, const Matrix& src, Matrix* dst,
                 const exec::Context* ctx = nullptr);

/// dst += a (*) b (element-wise product accumulated without a temporary).
void HadamardAddInPlace(const Matrix& a, const Matrix& b, Matrix* dst,
                        const exec::Context* ctx = nullptr);

/// Naive serial i-k-j reference product (no blocking, no threading, no
/// shortcuts). The parity tests and the kernel micro-benchmarks measure the
/// optimized kernels against this.
Matrix MatmulReference(const Matrix& a, const Matrix& b);

/// Returns the transposed matrix (tiled, row-parallel).
Matrix Transpose(const Matrix& m, const exec::Context* ctx = nullptr);

/// Row-wise softmax (numerically stable).
Matrix RowSoftmax(const Matrix& logits, const exec::Context* ctx = nullptr);

/// Row-wise log-softmax (numerically stable).
Matrix RowLogSoftmax(const Matrix& logits, const exec::Context* ctx = nullptr);

/// Divides each row by its L2 norm; rows with norm <= eps are left
/// untouched. Returns the per-row norms (n x 1).
Matrix RowL2NormalizeInPlace(Matrix* m, float eps = 1e-12f,
                             const exec::Context* ctx = nullptr);

/// Per-row L2 norms (n x 1).
Matrix RowL2Norms(const Matrix& m, const exec::Context* ctx = nullptr);

/// Index of the maximum entry of each row (ties -> lowest index).
std::vector<int> RowArgmax(const Matrix& m, const exec::Context* ctx = nullptr);

/// Maximum entry of each row.
std::vector<float> RowMax(const Matrix& m, const exec::Context* ctx = nullptr);

/// Per-row sums (n x 1).
Matrix RowSums(const Matrix& m, const exec::Context* ctx = nullptr);

/// Per-column means (1 x cols).
Matrix ColMeans(const Matrix& m);

/// Returns the submatrix of `m` with the given rows, in order.
Matrix GatherRows(const Matrix& m, const std::vector<int>& rows,
                  const exec::Context* ctx = nullptr);

/// Vertical concatenation: [a; b]. Column counts must match.
Matrix VStack(const Matrix& a, const Matrix& b);

}  // namespace openima::la

#endif  // OPENIMA_LA_MATRIX_OPS_H_
