#ifndef OPENIMA_LA_MATRIX_OPS_H_
#define OPENIMA_LA_MATRIX_OPS_H_

#include <vector>

#include "src/la/matrix.h"

namespace openima::la {

/// C = A * B. Cache-friendly i-k-j kernel (vectorizes with -O3).
Matrix Matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B (A is KxM, B is KxN, result MxN) without materializing A^T.
Matrix MatmulTN(const Matrix& a, const Matrix& b);

/// C = A * B^T (A is MxK, B is NxK, result MxN) without materializing B^T.
Matrix MatmulNT(const Matrix& a, const Matrix& b);

/// C += alpha * A * B into an existing, correctly shaped matrix.
void MatmulAccumulate(const Matrix& a, const Matrix& b, float alpha,
                      Matrix* c);

/// Row-wise softmax (numerically stable).
Matrix RowSoftmax(const Matrix& logits);

/// Row-wise log-softmax (numerically stable).
Matrix RowLogSoftmax(const Matrix& logits);

/// Divides each row by its L2 norm; rows with norm <= eps are left
/// untouched. Returns the per-row norms (n x 1).
Matrix RowL2NormalizeInPlace(Matrix* m, float eps = 1e-12f);

/// Per-row L2 norms (n x 1).
Matrix RowL2Norms(const Matrix& m);

/// Index of the maximum entry of each row (ties -> lowest index).
std::vector<int> RowArgmax(const Matrix& m);

/// Maximum entry of each row.
std::vector<float> RowMax(const Matrix& m);

/// Per-row sums (n x 1).
Matrix RowSums(const Matrix& m);

/// Per-column means (1 x cols).
Matrix ColMeans(const Matrix& m);

/// D(i, j) = ||x_i - c_j||^2 for row-sets X (n x d) and C (k x d).
/// Computed via the expansion ||x||^2 - 2 x.c + ||c||^2 with a GEMM;
/// tiny negatives from cancellation are clamped to zero.
Matrix PairwiseSquaredDistances(const Matrix& x, const Matrix& c);

/// Returns the submatrix of `m` with the given rows, in order.
Matrix GatherRows(const Matrix& m, const std::vector<int>& rows);

/// Vertical concatenation: [a; b]. Column counts must match.
Matrix VStack(const Matrix& a, const Matrix& b);

}  // namespace openima::la

#endif  // OPENIMA_LA_MATRIX_OPS_H_
