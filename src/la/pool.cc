#include "src/la/pool.h"

#include <atomic>
#include <new>

#include "src/util/logging.h"

namespace openima::la {

namespace {

std::atomic<int64_t> g_unpooled_allocs{0};
std::atomic<int64_t> g_unpooled_bytes{0};

thread_local Pool* t_bound_pool = nullptr;

// All float storage is 32-byte aligned so that rows of AVX2-friendly widths
// start on a full 256-bit vector boundary and unaligned loads never split
// cache lines. Plain new float[] only guarantees 16 bytes on this ABI,
// which made vector-kernel throughput depend on heap history (the same
// kernel measured up to ~1.8x slower when an allocation landed on an odd
// 16-byte slot).
float* AllocFloats(int64_t count) {
  return static_cast<float*>(::operator new[](
      static_cast<size_t>(count) * sizeof(float), std::align_val_t{32}));
}

void FreeFloats(float* ptr) {
  ::operator delete[](ptr, std::align_val_t{32});
}

}  // namespace

Pool::~Pool() {
  std::lock_guard<std::mutex> lock(mu_);
  OPENIMA_CHECK_EQ(stats_.outstanding, 0)
      << "pool destroyed with buffers still in use";
  for (auto& bucket : free_lists_) {
    for (float* ptr : bucket) FreeFloats(ptr);
  }
}

int64_t Pool::Capacity(int64_t count) {
  int64_t cap = 64;
  while (cap < count) cap <<= 1;
  return cap;
}

float* Pool::Acquire(int64_t count) {
  OPENIMA_CHECK_GT(count, 0);
  const int64_t cap = Capacity(count);
  int bucket = 0;
  while ((int64_t{64} << bucket) < cap) ++bucket;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.acquires;
  ++stats_.outstanding;
  stats_.bytes_acquired += cap * static_cast<int64_t>(sizeof(float));
  if (static_cast<size_t>(bucket) < free_lists_.size() &&
      !free_lists_[static_cast<size_t>(bucket)].empty()) {
    ++stats_.hits;
    stats_.bytes_cached -= cap * static_cast<int64_t>(sizeof(float));
    float* ptr = free_lists_[static_cast<size_t>(bucket)].back();
    free_lists_[static_cast<size_t>(bucket)].pop_back();
    return ptr;
  }
  ++stats_.misses;
  stats_.bytes_allocated += cap * static_cast<int64_t>(sizeof(float));
  return AllocFloats(cap);
}

void Pool::Release(float* ptr, int64_t count) {
  OPENIMA_CHECK(ptr != nullptr);
  const int64_t cap = Capacity(count);
  int bucket = 0;
  while ((int64_t{64} << bucket) < cap) ++bucket;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.releases;
  --stats_.outstanding;
  stats_.bytes_cached += cap * static_cast<int64_t>(sizeof(float));
  if (static_cast<size_t>(bucket) >= free_lists_.size()) {
    free_lists_.resize(static_cast<size_t>(bucket) + 1);
  }
  free_lists_[static_cast<size_t>(bucket)].push_back(ptr);
}

PoolStats Pool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Pool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t outstanding = stats_.outstanding;
  const int64_t cached = stats_.bytes_cached;
  stats_ = PoolStats();
  stats_.outstanding = outstanding;
  stats_.bytes_cached = cached;
}

void Pool::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  OPENIMA_CHECK_EQ(stats_.outstanding, 0)
      << "Trim() with buffers still in use";
  for (auto& bucket : free_lists_) {
    for (float* ptr : bucket) FreeFloats(ptr);
    bucket.clear();
  }
  stats_.bytes_cached = 0;
}

PoolBinding::PoolBinding(Pool* pool) : previous_(t_bound_pool) {
  t_bound_pool = pool;
}

PoolBinding::~PoolBinding() { t_bound_pool = previous_; }

Pool* BoundPool() { return t_bound_pool; }

int64_t UnpooledAllocCount() {
  return g_unpooled_allocs.load(std::memory_order_relaxed);
}

int64_t UnpooledAllocBytes() {
  return g_unpooled_bytes.load(std::memory_order_relaxed);
}

namespace internal {

float* AcquireStorage(Pool* pool, int64_t count) {
  if (pool != nullptr) return pool->Acquire(count);
  g_unpooled_allocs.fetch_add(1, std::memory_order_relaxed);
  g_unpooled_bytes.fetch_add(count * static_cast<int64_t>(sizeof(float)),
                             std::memory_order_relaxed);
  return AllocFloats(count);
}

void ReleaseStorage(Pool* pool, float* ptr, int64_t count) {
  if (pool != nullptr) {
    pool->Release(ptr, count);
  } else {
    FreeFloats(ptr);
  }
}

}  // namespace internal

}  // namespace openima::la
