#include "src/la/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/la/pool.h"

namespace openima::la {

void Matrix::AllocateZeroed() {
  const int64_t n = size();
  if (n == 0) {
    data_ = nullptr;
    pool_ = nullptr;
    return;
  }
  pool_ = BoundPool();
  data_ = internal::AcquireStorage(pool_, n);
  std::memset(data_, 0, sizeof(float) * static_cast<size_t>(n));
}

void Matrix::ReleaseStorage() {
  if (data_ != nullptr) {
    internal::ReleaseStorage(pool_, data_, size());
  }
  data_ = nullptr;
  pool_ = nullptr;
  rows_ = 0;
  cols_ = 0;
}

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  OPENIMA_CHECK_GE(rows, 0);
  OPENIMA_CHECK_GE(cols, 0);
  AllocateZeroed();
}

Matrix::Matrix(int rows, int cols, float value) : Matrix(rows, cols) {
  Fill(value);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  AllocateZeroed();
  float* dst = data_;
  for (const auto& row : rows) {
    OPENIMA_CHECK_EQ(static_cast<int>(row.size()), cols_);
    std::copy(row.begin(), row.end(), dst);
    dst += cols_;
  }
}

Matrix::Matrix(const Matrix& other) : rows_(other.rows_), cols_(other.cols_) {
  const int64_t n = size();
  if (n == 0) return;
  pool_ = BoundPool();
  data_ = internal::AcquireStorage(pool_, n);
  std::memcpy(data_, other.data_, sizeof(float) * static_cast<size_t>(n));
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  // Reuse the existing buffer when the element count matches; bucketed pool
  // capacities make same-size reuse the common case in steady state.
  if (size() != other.size()) {
    ReleaseStorage();
    rows_ = other.rows_;
    cols_ = other.cols_;
    AllocateZeroed();
  } else {
    rows_ = other.rows_;
    cols_ = other.cols_;
  }
  if (size() > 0) {
    std::memcpy(data_, other.data_,
                sizeof(float) * static_cast<size_t>(size()));
  }
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_),
      pool_(other.pool_) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_ = nullptr;
  other.pool_ = nullptr;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) internal::ReleaseStorage(pool_, data_, size());
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = other.data_;
  pool_ = other.pool_;
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_ = nullptr;
  other.pool_ = nullptr;
  return *this;
}

Matrix::~Matrix() {
  if (data_ != nullptr) internal::ReleaseStorage(pool_, data_, size());
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Uniform(int rows, int cols, float lo, float hi, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data_[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return m;
}

Matrix Matrix::Normal(int rows, int cols, float mean, float stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data_[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_, data_ + size(), value);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  OPENIMA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  OPENIMA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (int64_t i = 0; i < size(); ++i) data_[i] *= scalar;
  return *this;
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  OPENIMA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::HadamardInPlace(const Matrix& other) {
  OPENIMA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] *= other.data_[i];
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (int c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

void Matrix::SetRow(int dst_row, const Matrix& src, int src_row) {
  OPENIMA_CHECK_EQ(cols_, src.cols());
  std::memcpy(Row(dst_row), src.Row(src_row),
              sizeof(float) * static_cast<size_t>(cols_));
}

double Matrix::Sum() const {
  double s = 0.0;
  for (int64_t i = 0; i < size(); ++i) s += data_[i];
  return s;
}

double Matrix::Mean() const { return empty() ? 0.0 : Sum() / size(); }

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (int64_t i = 0; i < size(); ++i) {
    s += static_cast<double>(data_[i]) * data_[i];
  }
  return std::sqrt(s);
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (int64_t i = 0; i < size(); ++i) m = std::max(m, std::fabs(data_[i]));
  return m;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, float s) {
  Matrix out = a;
  out *= s;
  return out;
}

Matrix operator*(float s, const Matrix& a) { return a * s; }

bool operator==(const Matrix& a, const Matrix& b) {
  if (!a.SameShape(b)) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

bool AllClose(const Matrix& a, const Matrix& b, float tol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

}  // namespace openima::la
