#include "src/la/matrix.h"

#include <cmath>
#include <cstring>

namespace openima::la {

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  OPENIMA_CHECK_GE(rows, 0);
  OPENIMA_CHECK_GE(cols, 0);
  data_.assign(static_cast<size_t>(size()), 0.0f);
}

Matrix::Matrix(int rows, int cols, float value) : Matrix(rows, cols) {
  Fill(value);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : rows) {
    OPENIMA_CHECK_EQ(static_cast<int>(row.size()), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Uniform(int rows, int cols, float lo, float hi, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data_[static_cast<size_t>(i)] =
        static_cast<float>(rng->Uniform(lo, hi));
  }
  return m;
}

Matrix Matrix::Normal(int rows, int cols, float mean, float stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data_[static_cast<size_t>(i)] =
        static_cast<float>(rng->Normal(mean, stddev));
  }
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  OPENIMA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  OPENIMA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  OPENIMA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::HadamardInPlace(const Matrix& other) {
  OPENIMA_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] *= other.data_[i];
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (int c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

void Matrix::SetRow(int dst_row, const Matrix& src, int src_row) {
  OPENIMA_CHECK_EQ(cols_, src.cols());
  std::memcpy(Row(dst_row), src.Row(src_row),
              sizeof(float) * static_cast<size_t>(cols_));
}

double Matrix::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Matrix::Mean() const { return empty() ? 0.0 : Sum() / size(); }

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, float s) {
  Matrix out = a;
  out *= s;
  return out;
}

Matrix operator*(float s, const Matrix& a) { return a * s; }

bool operator==(const Matrix& a, const Matrix& b) {
  if (!a.SameShape(b)) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

bool AllClose(const Matrix& a, const Matrix& b, float tol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

}  // namespace openima::la
