#ifndef OPENIMA_LA_POOL_H_
#define OPENIMA_LA_POOL_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/exec/context.h"

namespace openima::la {

/// Counters describing a Pool's traffic. Byte counts refer to the rounded
/// bucket capacities actually handed out, not the requested sizes.
struct PoolStats {
  int64_t acquires = 0;        ///< total Acquire() calls served
  int64_t hits = 0;            ///< served from a free list
  int64_t misses = 0;          ///< served by a fresh heap allocation
  int64_t releases = 0;        ///< buffers returned to the pool
  int64_t outstanding = 0;     ///< buffers currently held by callers
  int64_t bytes_acquired = 0;  ///< cumulative bytes handed out
  int64_t bytes_cached = 0;    ///< bytes sitting in free lists right now
  int64_t bytes_allocated = 0; ///< bytes ever heap-allocated by this pool
};

/// Size-bucketed recycling allocator for float buffers — the storage arena
/// behind the training loop's (near-)zero-allocation steady state. Requests
/// are rounded up to power-of-two capacities; each bucket keeps a LIFO free
/// list. The first epoch populates the buckets (misses); later epochs are
/// served entirely from the free lists (hits), so a steady-state epoch
/// performs no heap allocation for matrix storage.
///
/// Thread safety: Acquire/Release/stats are mutex-guarded, so buffers may be
/// released from a different thread than the one that acquired them. The
/// pool must outlive every buffer acquired from it; the destructor CHECKs
/// that all buffers were returned (a dangling pooled matrix would otherwise
/// read freed memory).
class Pool {
 public:
  Pool() = default;
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Returns an uninitialized buffer of at least `count` floats (the actual
  /// capacity is Capacity(count)). `count` must be > 0.
  float* Acquire(int64_t count);

  /// Returns a buffer obtained from Acquire(count) with the same count.
  void Release(float* ptr, int64_t count);

  /// Bucket capacity (in floats) a request of `count` floats maps to:
  /// the smallest power of two >= max(count, 64).
  static int64_t Capacity(int64_t count);

  /// Snapshot of the traffic counters.
  PoolStats stats() const;

  /// Zeroes the cumulative counters (outstanding/bytes_cached are live
  /// quantities and are preserved). Epoch-granular accounting diffs
  /// snapshots instead; this is for test isolation.
  void ResetStats();

  /// Frees every cached buffer. CHECK-fails when buffers are still
  /// outstanding.
  void Trim();

 private:
  mutable std::mutex mu_;
  // free_lists_[i] holds buffers of capacity 2^i floats.
  std::vector<std::vector<float*>> free_lists_;
  PoolStats stats_;
};

/// RAII thread-local binding: while alive, every la::Matrix allocated on
/// this thread draws its storage from `pool` (and releases it back on
/// destruction, whichever thread that happens on). Bindings nest; the
/// innermost wins. Binding nullptr forces the plain heap path.
class PoolBinding {
 public:
  explicit PoolBinding(Pool* pool);
  ~PoolBinding();

  PoolBinding(const PoolBinding&) = delete;
  PoolBinding& operator=(const PoolBinding&) = delete;

 private:
  Pool* previous_;
};

/// The pool bound to the current thread (nullptr when none).
Pool* BoundPool();

/// Resolves the pool a kernel should use: an explicit pool carried by the
/// execution context wins, otherwise the thread-local binding (may be
/// nullptr — callers fall back to plain heap storage).
inline Pool* ResolvePool(const exec::Context* ctx) {
  if (ctx != nullptr && ctx->memory_pool() != nullptr) {
    return ctx->memory_pool();
  }
  return BoundPool();
}

/// Number of matrix/buffer storage allocations that bypassed every pool
/// (process-wide, monotonically increasing). The allocation-regression test
/// asserts this does not move during a steady-state training epoch.
int64_t UnpooledAllocCount();

/// Bytes counterpart of UnpooledAllocCount().
int64_t UnpooledAllocBytes();

namespace internal {
/// Storage backend shared by la::Matrix and PoolBuffer: acquires `count`
/// floats from `pool` (nullptr = heap, counted as unpooled) without
/// initializing them.
float* AcquireStorage(Pool* pool, int64_t count);
void ReleaseStorage(Pool* pool, float* ptr, int64_t count);
}  // namespace internal

/// Uninitialized scratch buffer of floats drawn from the bound pool (heap
/// when none). RAII + move-only; the workhorse for kernel scratch (per-edge
/// attention coefficients, packed GEMM panels) that previously reached for
/// std::vector<float> and paid an allocation plus a zero-fill per call.
class PoolBuffer {
 public:
  PoolBuffer() = default;
  explicit PoolBuffer(int64_t count)
      : pool_(BoundPool()), count_(count),
        data_(count > 0 ? internal::AcquireStorage(pool_, count) : nullptr) {}
  /// Draws from the context-resolved pool instead of the thread binding.
  PoolBuffer(int64_t count, const exec::Context* ctx)
      : pool_(ResolvePool(ctx)), count_(count),
        data_(count > 0 ? internal::AcquireStorage(pool_, count) : nullptr) {}
  ~PoolBuffer() {
    if (data_ != nullptr) internal::ReleaseStorage(pool_, data_, count_);
  }

  PoolBuffer(PoolBuffer&& other) noexcept
      : pool_(other.pool_), count_(other.count_), data_(other.data_) {
    other.data_ = nullptr;
    other.count_ = 0;
  }
  PoolBuffer& operator=(PoolBuffer&& other) noexcept {
    if (this != &other) {
      if (data_ != nullptr) internal::ReleaseStorage(pool_, data_, count_);
      pool_ = other.pool_;
      count_ = other.count_;
      data_ = other.data_;
      other.data_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }
  PoolBuffer(const PoolBuffer&) = delete;
  PoolBuffer& operator=(const PoolBuffer&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  int64_t size() const { return count_; }
  float& operator[](int64_t i) { return data_[i]; }
  float operator[](int64_t i) const { return data_[i]; }

 private:
  Pool* pool_ = nullptr;
  int64_t count_ = 0;
  float* data_ = nullptr;
};

}  // namespace openima::la

#endif  // OPENIMA_LA_POOL_H_
