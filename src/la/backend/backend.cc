#include "src/la/backend/backend.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/exec/context.h"
#include "src/util/logging.h"

namespace openima::la::backend {

namespace {

/// CPUID probe for the avx2 backend's ISA requirements. This lives here —
/// a TU compiled *without* -mavx2 — because the compiler may emit AVX2
/// instructions anywhere inside an -mavx2 TU, including before a runtime
/// check.
bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelBackend* PickAuto() {
  const KernelBackend* avx2 = Avx2Backend();
  return avx2 != nullptr ? avx2 : ScalarBackend();
}

/// Resolves the OPENIMA_BACKEND environment value. Unknown or unusable
/// values warn (once, via the single Default() initialization) and fall
/// back to auto so a stale env var never aborts a run.
const KernelBackend* FromEnv() {
  const char* env = std::getenv("OPENIMA_BACKEND");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return PickAuto();
  }
  const KernelBackend* be = FindByName(env);
  if (be == nullptr) {
    OPENIMA_LOG(Warning) << "OPENIMA_BACKEND=" << env
                         << " is unknown or unusable on this host; using "
                         << PickAuto()->name();
    return PickAuto();
  }
  return be;
}

std::atomic<const KernelBackend*> g_default{nullptr};

}  // namespace

/// Accessor defined in backend_avx2.cc when that TU is in the build (an
/// explicit accessor, not static-init self-registration: static libraries
/// drop unreferenced TU initializers). Stubbed out here otherwise.
const KernelBackend* Avx2BackendInstance();

#if !defined(OPENIMA_HAVE_AVX2_BACKEND)
const KernelBackend* Avx2BackendInstance() { return nullptr; }
bool Avx2CompiledIn() { return false; }
#else
bool Avx2CompiledIn() { return true; }
#endif

const KernelBackend* Avx2Backend() {
  static const KernelBackend* be =
      CpuSupportsAvx2Fma() ? Avx2BackendInstance() : nullptr;
  return be;
}

std::vector<const KernelBackend*> RegisteredBackends() {
  std::vector<const KernelBackend*> out{ScalarBackend()};
  if (const KernelBackend* avx2 = Avx2Backend()) out.push_back(avx2);
  return out;
}

const KernelBackend* FindByName(const std::string& name) {
  for (const KernelBackend* be : RegisteredBackends()) {
    if (name == be->name()) return be;
  }
  return nullptr;
}

const KernelBackend& Default() {
  const KernelBackend* be = g_default.load(std::memory_order_acquire);
  if (be == nullptr) {
    // Benign race: concurrent first calls compute the same answer.
    be = FromEnv();
    g_default.store(be, std::memory_order_release);
  }
  return *be;
}

Status SetDefault(const std::string& name) {
  const KernelBackend* be;
  if (name == "auto") {
    be = PickAuto();
  } else {
    be = FindByName(name);
    if (be == nullptr) {
      if (name == "scalar" || name == "avx2") {
        return Status::FailedPrecondition(
            "backend '" + name + "' is not usable on this host (" +
            (Avx2CompiledIn() ? "CPU lacks AVX2/FMA" : "not compiled in") +
            ")");
      }
      return Status::InvalidArgument("unknown backend '" + name +
                                     "' (expected auto|scalar|avx2)");
    }
  }
  g_default.store(be, std::memory_order_release);
  return Status::OK();
}

const KernelBackend& Resolve(const exec::Context* ctx) {
  const KernelBackend* be = exec::Get(ctx).kernel_backend();
  return be != nullptr ? *be : Default();
}

}  // namespace openima::la::backend
