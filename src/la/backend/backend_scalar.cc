#include <algorithm>
#include <cmath>

#include "src/la/backend/backend.h"
#include "src/la/fast_math.h"
#include "src/la/gemm_tile.h"

/// The scalar backend: the pre-backend kernels relocated verbatim. The GEMM
/// tiles come from gemm_tile.h and the row reductions from fast_math.h
/// unchanged; the expansion distance primitive moved here from distance.cc
/// with its single-compiled-instance guarantee intact. Nothing in this TU
/// carries ISA-specific flags — this is the portable baseline every other
/// backend is measured against.
namespace openima::la::backend {

namespace {

/// Accumulator lanes of the canonical expansion dot product. Eight
/// interleaved float partial sums (lane l takes elements j with
/// j mod 8 == l) plus a fixed binary reduction tree: the inner loop
/// vectorizes to one 256-bit FMA per 8 elements while the summation order
/// stays a pure function of d.
constexpr int kDotLanes = 8;

// Single compiled instance: OPENIMA_NOIPA blocks inlining *and* IPA
// cloning/const-propagation, so every caller — the n x k matrix kernel, the
// accelerated-Lloyd upper-bound pass, its bound-failure rescans — executes
// the same machine code and gets bit-identical floats. Inlined copies could
// legally differ (FMA contraction and SLP decisions are per-instance),
// which would silently break the exact-pruning argument in
// src/cluster/kmeans.cc.
#if defined(__GNUC__) && !defined(__clang__)
#define OPENIMA_NOIPA __attribute__((noipa))
#else
#define OPENIMA_NOIPA __attribute__((noinline))
#endif

OPENIMA_NOIPA float ScalarExpansionSquaredDistance(const float* x,
                                                   const float* y, int d,
                                                   float xsq, float ysq) {
  float acc[kDotLanes] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  int j = 0;
  const int dv = d - d % kDotLanes;
  for (; j < dv; j += kDotLanes) {
    for (int l = 0; l < kDotLanes; ++l) acc[l] += x[j + l] * y[j + l];
  }
  for (int l = 0; j + l < d; ++l) acc[l] += x[j + l] * y[j + l];
  const float s01 = acc[0] + acc[1];
  const float s23 = acc[2] + acc[3];
  const float s45 = acc[4] + acc[5];
  const float s67 = acc[6] + acc[7];
  const float dot = (s01 + s23) + (s45 + s67);
  return std::max(0.0f, xsq + ysq - 2.0f * dot);
}

#undef OPENIMA_NOIPA

class ScalarKernelBackend final : public KernelBackend {
 public:
  const char* name() const override { return "scalar"; }
  bool bit_identical_to_scalar() const override { return true; }

  void GemmRowRange(const float* a, int64_t lda, const float* b, int64_t ldb,
                    float alpha, float* c, int64_t ldc, int64_t r0, int64_t r1,
                    int k, int64_t n) const override {
    gemm::GemmRowRange(a, lda, b, ldb, alpha, c, ldc, r0, r1, k, n);
  }

  float ExpansionSquaredDistance(const float* x, const float* y, int d,
                                 float xsq, float ysq) const override {
    return ScalarExpansionSquaredDistance(x, y, d, xsq, ysq);
  }

  void ExpShifted(const float* in, float shift, float* out,
                  int64_t n) const override {
    la::ExpShifted(in, shift, out, n);
  }

  double RowSum(const float* p, int64_t n) const override {
    return la::RowSum(p, n);
  }

  float RowMax(const float* p, int64_t n) const override {
    return la::RowMax(p, n);
  }

  int64_t RowArgmax(const float* p, int64_t n) const override {
    int64_t best = 0;
    for (int64_t j = 1; j < n; ++j) {
      if (p[j] > p[best]) best = j;
    }
    return best;
  }

  void AddBiasEluRow(float* row, const float* bias, float alpha,
                     int64_t n) const override {
    for (int64_t j = 0; j < n; ++j) {
      const float v = row[j] + bias[j];
      row[j] = v > 0.0f ? v : alpha * (std::exp(v) - 1.0f);
    }
  }

  void AddBiasEluBackwardRow(const float* g, const float* out, float alpha,
                             int64_t n, float* dx, float* db) const override {
    for (int64_t j = 0; j < n; ++j) {
      const float gd = g[j] * (out[j] > 0.0f ? 1.0f : out[j] + alpha);
      if (dx != nullptr) dx[j] += gd;
      if (db != nullptr) db[j] += gd;
    }
  }

  void GatherRows(const float* src, int64_t ld_src, const int* idx,
                  int64_t num_rows, int64_t n, float* dst,
                  int64_t ld_dst) const override {
    for (int64_t r = 0; r < num_rows; ++r) {
      const float* s = src + static_cast<int64_t>(idx[r]) * ld_src;
      float* d = dst + r * ld_dst;
      std::copy(s, s + n, d);
    }
  }

  void ScatterAddRows(const float* src, int64_t ld_src, const int* idx,
                      int64_t num_rows, int64_t n, float* dst,
                      int64_t ld_dst) const override {
    for (int64_t r = 0; r < num_rows; ++r) {
      const float* s = src + r * ld_src;
      float* d = dst + static_cast<int64_t>(idx[r]) * ld_dst;
      for (int64_t j = 0; j < n; ++j) d[j] += s[j];
    }
  }

  void AxpyRow(float alpha, const float* x, float* y,
               int64_t n) const override {
    for (int64_t j = 0; j < n; ++j) y[j] += alpha * x[j];
  }
};

}  // namespace

const KernelBackend* ScalarBackend() {
  static const ScalarKernelBackend be;
  return &be;
}

}  // namespace openima::la::backend
