#include <immintrin.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "src/la/backend/backend.h"

#if !defined(__AVX2__) || !defined(__FMA__)
#error "backend_avx2.cc must be compiled with -mavx2 -mfma (see src/la/CMakeLists.txt)"
#endif

/// The AVX2/FMA backend. This is the only translation unit in the tree
/// built with -mavx2 -mfma, so the rest of the binary stays portable and
/// the runtime CPUID check in backend.cc gates every entry into this code.
///
/// Everything here lives in an anonymous namespace on purpose: an inline
/// or template function with external linkage compiled in this TU would be
/// AVX2 code under a COMDAT symbol, and the linker could pick *this* copy
/// for the whole program — executing AVX2 instructions on the scalar path
/// of a non-AVX2 host. Internal linkage makes that impossible, at the cost
/// of a small deliberate duplicate of the Cephes FastExp polynomial for
/// the vector tails.
///
/// Determinism: fixed lane structure everywhere, and the GEMM edge tiles
/// use scalar fmaf so each output element sees single-rounded
/// multiply-adds regardless of which tile shape a thread partition puts it
/// in — results are bit-identical across thread counts, like the scalar
/// backend. RowSum / RowMax / RowArgmax / AddBiasEluBackwardRow replicate
/// the scalar backend's arithmetic exactly (bit-identical across
/// backends); GemmRowRange / ExpansionSquaredDistance (FMA contraction)
/// and ExpShifted / AddBiasEluRow (polynomial exp) are tolerance-gated
/// instead — see DESIGN.md §2.6.
namespace openima::la::backend {

namespace {

// GEMM tiling parameters, identical to the scalar backend
// (src/la/gemm_tile.h): a 4 x 16 register tile is four rows of two ymm
// accumulators, and the 32 KB B sub-panel per (k-panel, j-tile) pair stays
// cache-resident while row blocks sweep it.
constexpr int kMr = 4;
constexpr int kNr = 16;
constexpr int kKc = 512;

/// Full 4 x 16 tile: per output element the accumulation is
/// fmaf(alpha * a, b, acc) over ascending p — the same single-rounded
/// operation the edge tile applies scalar-wise, which is what makes the
/// kernel partition-invariant.
void MicroTileFullAvx2(const float* __restrict__ a, int64_t lda,
                       const float* __restrict__ b, int64_t ldb, float alpha,
                       float* __restrict__ c, int64_t ldc, int p0, int p1) {
  __m256 acc00 = _mm256_loadu_ps(c + 0 * ldc);
  __m256 acc01 = _mm256_loadu_ps(c + 0 * ldc + 8);
  __m256 acc10 = _mm256_loadu_ps(c + 1 * ldc);
  __m256 acc11 = _mm256_loadu_ps(c + 1 * ldc + 8);
  __m256 acc20 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 acc21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 acc30 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 acc31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  for (int p = p0; p < p1; ++p) {
    const float* __restrict__ brow = b + static_cast<int64_t>(p) * ldb;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    __m256 av = _mm256_set1_ps(alpha * a[0 * lda + p]);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_set1_ps(alpha * a[1 * lda + p]);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_set1_ps(alpha * a[2 * lda + p]);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_set1_ps(alpha * a[3 * lda + p]);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
  }
  _mm256_storeu_ps(c + 0 * ldc, acc00);
  _mm256_storeu_ps(c + 0 * ldc + 8, acc01);
  _mm256_storeu_ps(c + 1 * ldc, acc10);
  _mm256_storeu_ps(c + 1 * ldc + 8, acc11);
  _mm256_storeu_ps(c + 2 * ldc, acc20);
  _mm256_storeu_ps(c + 2 * ldc + 8, acc21);
  _mm256_storeu_ps(c + 3 * ldc, acc30);
  _mm256_storeu_ps(c + 3 * ldc + 8, acc31);
}

/// Ragged edge tile. std::fmaf compiles to a single vfmadd with -mfma, so
/// every element gets exactly the per-lane arithmetic of the full tile: a
/// row that lands in a full tile under one thread partition and an edge
/// tile under another still produces the same bits.
void MicroTileEdgeAvx2(const float* __restrict__ a, int64_t lda,
                       const float* __restrict__ b, int64_t ldb, float alpha,
                       float* __restrict__ c, int64_t ldc, int mr, int nr,
                       int p0, int p1) {
  float acc[kMr][kNr];
  for (int r = 0; r < mr; ++r) {
    for (int q = 0; q < nr; ++q) acc[r][q] = c[r * ldc + q];
  }
  for (int p = p0; p < p1; ++p) {
    const float* brow = b + static_cast<int64_t>(p) * ldb;
    for (int r = 0; r < mr; ++r) {
      const float av = alpha * a[r * lda + p];
      for (int q = 0; q < nr; ++q) {
        acc[r][q] = std::fmaf(av, brow[q], acc[r][q]);
      }
    }
  }
  for (int r = 0; r < mr; ++r) {
    for (int q = 0; q < nr; ++q) c[r * ldc + q] = acc[r][q];
  }
}

void GemmRowRangeAvx2(const float* a, int64_t lda, const float* b,
                      int64_t ldb, float alpha, float* c, int64_t ldc,
                      int64_t r0, int64_t r1, int k, int64_t n) {
  for (int p0 = 0; p0 < k; p0 += kKc) {
    const int p1 = k < p0 + kKc ? k : p0 + kKc;
    for (int64_t j0 = 0; j0 < n; j0 += kNr) {
      const int nr = static_cast<int>(n - j0 < kNr ? n - j0 : kNr);
      const float* bj = b + j0;
      for (int64_t i0 = r0; i0 < r1; i0 += kMr) {
        const int mr = static_cast<int>(r1 - i0 < kMr ? r1 - i0 : kMr);
        const float* ai = a + i0 * lda;
        float* ci = c + i0 * ldc + j0;
        if (mr == kMr && nr == kNr) {
          MicroTileFullAvx2(ai, lda, bj, ldb, alpha, ci, ldc, p0, p1);
        } else {
          MicroTileEdgeAvx2(ai, lda, bj, ldb, alpha, ci, ldc, mr, nr, p0, p1);
        }
      }
    }
  }
}

/// Four independent vector accumulators (32 floats/iteration) break the
/// loop-carried FMA latency chain — with one accumulator a d=64 dot is 8
/// *serial* ~5-cycle FMAs, which is what capped this kernel at scalar
/// speed. The reduction order is fixed (acc0+acc1)+(acc2+acc3) then the
/// scalar 8-lane tree, so the kernel stays within-backend deterministic;
/// against scalar it is tolerance-gated (different association + FMA).
///
/// Unlike the scalar backend's kernel this one carries no noipa pin: its
/// only caller is the ExpansionSquaredDistance virtual override below,
/// which every call site reaches through the vtable (the concrete type is
/// invisible outside this TU, so no caller can devirtualize and clone it).
/// That override IS the single compiled instance the K-Means pruning proof
/// needs, and inlining the body into it drops one call layer — a
/// measurable win per pair at embedding-sized d.
float ExpansionSquaredDistanceAvx2(const float* x, const float* y, int d,
                                   float xsq, float ysq) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  int j = 0;
  for (; j + 32 <= d; j += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + j), _mm256_loadu_ps(y + j),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + j + 8),
                           _mm256_loadu_ps(y + j + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + j + 16),
                           _mm256_loadu_ps(y + j + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + j + 24),
                           _mm256_loadu_ps(y + j + 24), acc3);
  }
  for (; j + 8 <= d; j += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + j), _mm256_loadu_ps(y + j),
                           acc0);
  }
  float tail = 0.0f;
  for (; j < d; ++j) tail = std::fmaf(x[j], y[j], tail);
  const __m256 vacc =
      _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
  // In-register horizontal reduce (fixed shuffle tree, ~6 ops): cheaper
  // than a stack spill + 8-lane scalar tree, which at d <= 256 was a
  // measurable slice of every call.
  const __m128 half = _mm_add_ps(_mm256_castps256_ps128(vacc),
                                 _mm256_extractf128_ps(vacc, 1));
  const __m128 pair = _mm_add_ps(half, _mm_movehl_ps(half, half));
  const __m128 one = _mm_add_ss(pair, _mm_movehdup_ps(pair));
  const float dot = _mm_cvtss_f32(one) + tail;
  const float d2 = xsq + ysq - 2.0f * dot;
  return d2 > 0.0f ? d2 : 0.0f;
}

// Cephes exp polynomial constants, identical to la::FastExp
// (src/la/fast_math.h). Deliberately duplicated instead of including
// fast_math.h — see the TU-level comment on COMDAT leakage.
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kMagic = 12582912.0f;  // 1.5 * 2^23: rounds to nearest
constexpr float kExpLo = -87.33654f;
constexpr float kExpHi = 88.72283f;

/// Vector FastExp: the scalar Cephes kernel lane-parallel, with fused
/// range reduction and polynomial steps (single-rounded, so accuracy is no
/// worse than the scalar "< 3 ulp over [-87, 88]" claim).
__m256 FastExpAvx2(__m256 x) {
  // Constant-first min/max ordering keeps a NaN input flowing through,
  // matching the scalar clamp's comparison-false behavior.
  x = _mm256_max_ps(_mm256_set1_ps(kExpLo), x);
  x = _mm256_min_ps(_mm256_set1_ps(kExpHi), x);
  const __m256 vmagic = _mm256_set1_ps(kMagic);
  const __m256 t = _mm256_fmadd_ps(x, _mm256_set1_ps(kLog2e), vmagic);
  const __m256i n = _mm256_sub_epi32(
      _mm256_castps_si256(t),
      _mm256_set1_epi32(std::bit_cast<std::int32_t>(kMagic)));
  const __m256 fn = _mm256_sub_ps(t, vmagic);
  __m256 r = _mm256_fnmadd_ps(fn, _mm256_set1_ps(kLn2Hi), x);
  r = _mm256_fnmadd_ps(fn, _mm256_set1_ps(kLn2Lo), r);
  __m256 p = _mm256_set1_ps(1.9875691500e-4f);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.3981999507e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.3334519073e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.1665795894e-2f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.6666665459e-1f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.0000001201e-1f));
  p = _mm256_fmadd_ps(_mm256_mul_ps(p, r), r, r);
  p = _mm256_add_ps(p, _mm256_set1_ps(1.0f));
  const __m256i bits =
      _mm256_add_epi32(_mm256_castps_si256(p), _mm256_slli_epi32(n, 23));
  return _mm256_castsi256_ps(bits);
}

/// Scalar duplicate of la::FastExp for vector tails (internal linkage; see
/// the TU-level comment).
float FastExpTail(float x) {
  x = x < kExpLo ? kExpLo : x;
  x = x > kExpHi ? kExpHi : x;
  const float t = x * kLog2e + kMagic;
  const std::int32_t n =
      std::bit_cast<std::int32_t>(t) - std::bit_cast<std::int32_t>(kMagic);
  const float fn = t - kMagic;
  float r = x - fn * kLn2Hi;
  r -= fn * kLn2Lo;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = p * r * r + r + 1.0f;
  const std::int32_t bits = std::bit_cast<std::int32_t>(p) + (n << 23);
  return std::bit_cast<float>(bits);
}

void ExpShiftedAvx2(const float* in, float shift, float* out, int64_t n) {
  const __m256 vshift = _mm256_set1_ps(shift);
  int64_t k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm256_storeu_ps(
        out + k, FastExpAvx2(_mm256_sub_ps(_mm256_loadu_ps(in + k), vshift)));
  }
  for (; k < n; ++k) out[k] = FastExpTail(in[k] - shift);
}

/// Bit-identical to the scalar RowSum: the two ymm double accumulators
/// hold exactly the scalar kernel's acc[0..3] / acc[4..7] lanes (pure
/// adds, no contraction possible), tail into lane 0, same fixed pairwise
/// combine.
double RowSumAvx2(const float* p, int64_t n) {
  __m256d acc03 = _mm256_setzero_pd();
  __m256d acc47 = _mm256_setzero_pd();
  int64_t k = 0;
  for (; k + 8 <= n; k += 8) {
    acc03 = _mm256_add_pd(acc03, _mm256_cvtps_pd(_mm_loadu_ps(p + k)));
    acc47 = _mm256_add_pd(acc47, _mm256_cvtps_pd(_mm_loadu_ps(p + k + 4)));
  }
  alignas(32) double acc[8];
  _mm256_store_pd(acc, acc03);
  _mm256_store_pd(acc + 4, acc47);
  for (; k < n; ++k) acc[0] += p[k];
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

/// Bit-identical to the scalar RowMax: same 8-lane seed, and the blend on
/// _CMP_LT_OQ replicates `acc < p ? p : acc` exactly — the comparison is
/// false on NaN, so a NaN acc lane sticks and a NaN candidate is dropped,
/// just like the scalar kernel (vmaxps alone would get this wrong).
float RowMaxAvx2(const float* p, int64_t n) {
  if (n < 8) {
    float m = p[0];
    for (int64_t k = 1; k < n; ++k) m = m < p[k] ? p[k] : m;
    return m;
  }
  __m256 vacc = _mm256_loadu_ps(p);
  int64_t k = 8;
  for (; k + 8 <= n; k += 8) {
    const __m256 v = _mm256_loadu_ps(p + k);
    vacc = _mm256_blendv_ps(vacc, v, _mm256_cmp_ps(vacc, v, _CMP_LT_OQ));
  }
  alignas(32) float acc[8];
  _mm256_store_ps(acc, vacc);
  for (int j = 1; j < 8; ++j) acc[0] = acc[0] < acc[j] ? acc[j] : acc[0];
  float m = acc[0];
  for (; k < n; ++k) m = m < p[k] ? p[k] : m;
  return m;
}

int64_t RowArgmaxScalarScan(const float* p, int64_t n) {
  int64_t best = 0;
  for (int64_t j = 1; j < n; ++j) {
    if (p[j] > p[best]) best = j;
  }
  return best;
}

/// Vectorized argmax with the scalar scan's exact semantics: strict-greater
/// updates keep the first occurrence within each lane, and the cross-lane
/// combine breaks value ties toward the lowest index. Any NaN in the row
/// (where lane-parallel poisoning would be position-dependent) falls back
/// to the sequential scan, as do rows too long for 32-bit lane indices.
int64_t RowArgmaxAvx2(const float* p, int64_t n) {
  if (n < 16 || n > INT32_MAX) return RowArgmaxScalarScan(p, n);
  const __m256i lane0 = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  __m256 vmax = _mm256_loadu_ps(p);
  __m256i vidx = lane0;
  __m256 unordered = _mm256_cmp_ps(vmax, vmax, _CMP_UNORD_Q);
  int64_t k = 8;
  for (; k + 8 <= n; k += 8) {
    const __m256 v = _mm256_loadu_ps(p + k);
    unordered = _mm256_or_ps(unordered, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    const __m256 gt = _mm256_cmp_ps(v, vmax, _CMP_GT_OQ);
    vmax = _mm256_blendv_ps(vmax, v, gt);
    const __m256i cur =
        _mm256_add_epi32(lane0, _mm256_set1_epi32(static_cast<int>(k)));
    vidx = _mm256_castps_si256(_mm256_blendv_ps(
        _mm256_castsi256_ps(vidx), _mm256_castsi256_ps(cur), gt));
  }
  if (_mm256_movemask_ps(unordered) != 0) return RowArgmaxScalarScan(p, n);
  alignas(32) float vals[8];
  alignas(32) std::int32_t idxs[8];
  _mm256_store_ps(vals, vmax);
  _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), vidx);
  float bv = vals[0];
  int64_t bi = idxs[0];
  for (int l = 1; l < 8; ++l) {
    if (vals[l] > bv || (vals[l] == bv && idxs[l] < bi)) {
      bv = vals[l];
      bi = idxs[l];
    }
  }
  for (; k < n; ++k) {
    if (p[k] > bv) {
      bv = p[k];
      bi = k;
    }
  }
  return bi;
}

class Avx2KernelBackend final : public KernelBackend {
 public:
  const char* name() const override { return "avx2"; }
  bool bit_identical_to_scalar() const override { return false; }

  void GemmRowRange(const float* a, int64_t lda, const float* b, int64_t ldb,
                    float alpha, float* c, int64_t ldc, int64_t r0, int64_t r1,
                    int k, int64_t n) const override {
    GemmRowRangeAvx2(a, lda, b, ldb, alpha, c, ldc, r0, r1, k, n);
  }

  float ExpansionSquaredDistance(const float* x, const float* y, int d,
                                 float xsq, float ysq) const override {
    return ExpansionSquaredDistanceAvx2(x, y, d, xsq, ysq);
  }

  void ExpShifted(const float* in, float shift, float* out,
                  int64_t n) const override {
    ExpShiftedAvx2(in, shift, out, n);
  }

  double RowSum(const float* p, int64_t n) const override {
    return RowSumAvx2(p, n);
  }

  float RowMax(const float* p, int64_t n) const override {
    return RowMaxAvx2(p, n);
  }

  int64_t RowArgmax(const float* p, int64_t n) const override {
    return RowArgmaxAvx2(p, n);
  }

  void AddBiasEluRow(float* row, const float* bias, float alpha,
                     int64_t n) const override {
    const __m256 vzero = _mm256_setzero_ps();
    const __m256 vone = _mm256_set1_ps(1.0f);
    const __m256 valpha = _mm256_set1_ps(alpha);
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 v =
          _mm256_add_ps(_mm256_loadu_ps(row + j), _mm256_loadu_ps(bias + j));
      const __m256 pos = _mm256_cmp_ps(v, vzero, _CMP_GT_OQ);
      const __m256 neg =
          _mm256_mul_ps(valpha, _mm256_sub_ps(FastExpAvx2(v), vone));
      _mm256_storeu_ps(row + j, _mm256_blendv_ps(neg, v, pos));
    }
    for (; j < n; ++j) {
      const float v = row[j] + bias[j];
      row[j] = v > 0.0f ? v : alpha * (FastExpTail(v) - 1.0f);
    }
  }

  void AddBiasEluBackwardRow(const float* g, const float* out, float alpha,
                             int64_t n, float* dx, float* db) const override {
    // gd = g * (out > 0 ? 1 : out + alpha), each step individually rounded
    // (a*(b+c) has no FMA shape, so nothing can contract) — bit-identical
    // to the scalar backend.
    const __m256 vzero = _mm256_setzero_ps();
    const __m256 vone = _mm256_set1_ps(1.0f);
    const __m256 valpha = _mm256_set1_ps(alpha);
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 o = _mm256_loadu_ps(out + j);
      const __m256 deriv = _mm256_blendv_ps(
          _mm256_add_ps(o, valpha), vone, _mm256_cmp_ps(o, vzero, _CMP_GT_OQ));
      const __m256 gd = _mm256_mul_ps(_mm256_loadu_ps(g + j), deriv);
      if (dx != nullptr) {
        _mm256_storeu_ps(dx + j, _mm256_add_ps(_mm256_loadu_ps(dx + j), gd));
      }
      if (db != nullptr) {
        _mm256_storeu_ps(db + j, _mm256_add_ps(_mm256_loadu_ps(db + j), gd));
      }
    }
    for (; j < n; ++j) {
      const float gd = g[j] * (out[j] > 0.0f ? 1.0f : out[j] + alpha);
      if (dx != nullptr) dx[j] += gd;
      if (db != nullptr) db[j] += gd;
    }
  }

  void GatherRows(const float* src, int64_t ld_src, const int* idx,
                  int64_t num_rows, int64_t n, float* dst,
                  int64_t ld_dst) const override {
    // Pure copies (bit-identical trivially); 32-byte vector moves beat
    // byte-wise memcpy dispatch at the 64–512-float row widths sampled
    // blocks use.
    for (int64_t r = 0; r < num_rows; ++r) {
      const float* s = src + static_cast<int64_t>(idx[r]) * ld_src;
      float* d = dst + r * ld_dst;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(d + j, _mm256_loadu_ps(s + j));
      }
      for (; j < n; ++j) d[j] = s[j];
    }
  }

  void ScatterAddRows(const float* src, int64_t ld_src, const int* idx,
                      int64_t num_rows, int64_t n, float* dst,
                      int64_t ld_dst) const override {
    // Pure adds in ascending r — the lane layout cannot change the result
    // because each dst element accumulates its sources in r order either
    // way. Bit-identical to scalar.
    for (int64_t r = 0; r < num_rows; ++r) {
      const float* s = src + r * ld_src;
      float* d = dst + static_cast<int64_t>(idx[r]) * ld_dst;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(
            d + j, _mm256_add_ps(_mm256_loadu_ps(d + j), _mm256_loadu_ps(s + j)));
      }
      for (; j < n; ++j) d[j] += s[j];
    }
  }

  void AxpyRow(float alpha, const float* x, float* y,
               int64_t n) const override {
    // Deliberately mul_ps + add_ps, NOT fmadd: the backend contract pins
    // this kernel bit-identical to scalar, and this TU compiles with
    // -ffp-contract=off so the compiler cannot re-fuse the pair.
    const __m256 va = _mm256_set1_ps(alpha);
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + j));
      _mm256_storeu_ps(y + j, _mm256_add_ps(_mm256_loadu_ps(y + j), prod));
    }
    for (; j < n; ++j) y[j] += alpha * x[j];
  }
};

}  // namespace

const KernelBackend* Avx2BackendInstance() {
  static const Avx2KernelBackend be;
  return &be;
}

}  // namespace openima::la::backend
