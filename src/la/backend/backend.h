#ifndef OPENIMA_LA_BACKEND_BACKEND_H_
#define OPENIMA_LA_BACKEND_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace openima::exec {
class Context;  // src/exec/context.h — carries an optional backend override
}

/// Per-ISA kernel backends behind one op layer. Every hot float kernel —
/// the GEMM micro-tile, the expansion distance primitive, the
/// FastExp/RowSum/RowMax/RowArgmax row reductions, and the fused
/// AddBiasElu rows — is reached through a KernelBackend so new ISA tiers
/// (AVX2/FMA today, AVX-512 or bf16 storage later) slot in without
/// touching callers.
///
/// Determinism contract (per backend): every method is a pure function of
/// its operands with a fixed accumulation structure, so results are
/// bit-identical run-to-run and across thread counts *within one backend*.
/// Across backends the contract splits:
///
///   - bit-identical to scalar: RowSum (double lanes, adds only), RowMax
///     (same 8-lane compare structure, same NaN drop-through), RowArgmax
///     (same winner and tie-break: lowest index; NaN handling matches the
///     sequential scan), AddBiasEluBackwardRow (mul/add only), GatherRows /
///     ScatterAddRows (pure copies / pure adds), AxpyRow (separate mul and
///     add, never contracted: both backend TUs compile with
///     -ffp-contract=off).
///   - tolerance-gated vs scalar: GemmRowRange and
///     ExpansionSquaredDistance (FMA contraction), ExpShifted and the
///     AddBiasEluRow negative branch (polynomial exp vs libm). Cross-backend
///     drift is bounded by the run_diff tolerance rules committed in
///     tools/backend_telemetry_tolerances.json (see DESIGN.md §2.6).
///
/// Selection: Default() resolves OPENIMA_BACKEND=auto|scalar|avx2 once
/// (auto = best ISA the CPU supports), SetDefault() is the --backend flag
/// override, and exec::Context can pin a backend per run; kernels resolve
/// via Resolve(ctx).
namespace openima::la::backend {

class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  /// Stable lowercase identifier ("scalar", "avx2") — the OPENIMA_BACKEND
  /// value, the BM_* suffix, and the RunReport provenance string.
  virtual const char* name() const = 0;

  /// True when every method is bit-identical to the scalar backend (the
  /// scalar backend itself). Parity suites that assert exact equality to
  /// naive reference loops require this.
  virtual bool bit_identical_to_scalar() const = 0;

  /// Blocked accumulation C[r0, r1) += alpha * A[r0, r1) * B over k-panels
  /// and register tiles; A is (rows x k) stride lda, B (k x n) stride ldb,
  /// C (rows x n) stride ldc. Must be partition-invariant: any [r0, r1)
  /// split of the same rows yields the same bits.
  virtual void GemmRowRange(const float* a, int64_t lda, const float* b,
                            int64_t ldb, float alpha, float* c, int64_t ldc,
                            int64_t r0, int64_t r1, int k,
                            int64_t n) const = 0;

  /// Float expansion squared distance max(0, xsq + ysq - 2 <x, y>). Each
  /// backend compiles exactly one instance (no inlining / IPA cloning), so
  /// the full-matrix kernel, the accelerated-Lloyd bound checks, and the
  /// final assignment pass all see bit-identical values — the property the
  /// triangle-inequality pruning proof rests on.
  virtual float ExpansionSquaredDistance(const float* x, const float* y,
                                         int d, float xsq,
                                         float ysq) const = 0;

  /// out[k] = exp(in[k] - shift) for k in [0, n). Scalar uses la::FastExp;
  /// avx2 uses the same Cephes polynomial vectorized (tolerance-gated).
  virtual void ExpShifted(const float* in, float shift, float* out,
                          int64_t n) const = 0;

  /// Sum of a float row in double, fixed 8-lane structure — bit-identical
  /// across backends.
  virtual double RowSum(const float* p, int64_t n) const = 0;

  /// Max of a float row (n >= 1), fixed 8-lane structure; -inf valid.
  /// NaN semantics follow the scalar `acc < p ? p : acc` drop-through in
  /// every backend — bit-identical across backends.
  virtual float RowMax(const float* p, int64_t n) const = 0;

  /// Index of the row maximum (n >= 1); ties resolve to the lowest index,
  /// matching a sequential `p[j] > p[best]` scan in every backend
  /// (including its NaN behavior: NaN entries never win unless p[0] is the
  /// only candidate).
  virtual int64_t RowArgmax(const float* p, int64_t n) const = 0;

  /// Fused bias-add + ELU on one row, in place: row[j] = elu(row[j] + b[j])
  /// with elu(v) = v > 0 ? v : alpha * (exp(v) - 1).
  virtual void AddBiasEluRow(float* row, const float* bias, float alpha,
                             int64_t n) const = 0;

  /// Backward of AddBiasEluRow: gd = g[j] * (out[j] > 0 ? 1 : out[j] +
  /// alpha), accumulated into dx (when non-null) and db (when non-null).
  /// Mul/add only — bit-identical across backends.
  virtual void AddBiasEluBackwardRow(const float* g, const float* out,
                                     float alpha, int64_t n, float* dx,
                                     float* db) const = 0;

  /// Blocked row gather: dst row r = src row idx[r] for r in [0, num_rows),
  /// each row n floats wide (src stride ld_src, dst stride ld_dst). Pure
  /// copies — bit-identical across backends. The feature-gather step of
  /// sampled minibatch training (frontier global ids -> compact block
  /// rows) lands here.
  virtual void GatherRows(const float* src, int64_t ld_src, const int* idx,
                          int64_t num_rows, int64_t n, float* dst,
                          int64_t ld_dst) const = 0;

  /// Blocked row scatter-accumulate: dst row idx[r] += src row r for r
  /// ascending in [0, num_rows). Pure float adds in a fixed order —
  /// bit-identical across backends. Callers own race-freedom: either call
  /// serially or partition so no two concurrent ranges share a
  /// destination (the sampled-layer transpose guarantees exactly that).
  virtual void ScatterAddRows(const float* src, int64_t ld_src,
                              const int* idx, int64_t num_rows, int64_t n,
                              float* dst, int64_t ld_dst) const = 0;

  /// y[j] += alpha * x[j] — the accumulation step of sampled GAT
  /// aggregation. Separately rounded multiply and add in every backend
  /// (the backend TUs compile with -ffp-contract=off, so the compiler
  /// cannot fuse them) — bit-identical across backends.
  virtual void AxpyRow(float alpha, const float* x, float* y,
                       int64_t n) const = 0;
};

/// The scalar backend: a pure relocation of the pre-backend kernels
/// (gemm_tile.h tiles, distance.cc expansion primitive, fast_math.h row
/// reductions, the autograd fused rows). Always available.
const KernelBackend* ScalarBackend();

/// The AVX2/FMA backend, or nullptr when it was not compiled in or the
/// host CPU lacks AVX2+FMA. Its translation unit alone is built with
/// -mavx2 -mfma, so the binary stays portable.
const KernelBackend* Avx2Backend();

/// True when the avx2 TU was compiled into this binary (regardless of
/// whether the host CPU can run it).
bool Avx2CompiledIn();

/// Backends usable on this host, scalar first.
std::vector<const KernelBackend*> RegisteredBackends();

/// Lookup by name() among usable backends; nullptr when absent.
const KernelBackend* FindByName(const std::string& name);

/// Process-wide default backend. First use resolves OPENIMA_BACKEND
/// (auto|scalar|avx2; unset = auto = best usable ISA). An unusable or
/// unknown value warns once and falls back to auto.
const KernelBackend& Default();

/// Replaces the default ("auto" re-runs ISA detection). The --backend flag
/// lands here. Fails without changing the default when the name is unknown
/// or the backend is unusable on this host.
Status SetDefault(const std::string& name);

/// Resolves the backend for a kernel call: the context's pinned backend
/// when set, else Default(). nullptr follows the usual "use the
/// process-wide default context" convention.
const KernelBackend& Resolve(const exec::Context* ctx);

}  // namespace openima::la::backend

#endif  // OPENIMA_LA_BACKEND_BACKEND_H_
