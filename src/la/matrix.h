#ifndef OPENIMA_LA_MATRIX_H_
#define OPENIMA_LA_MATRIX_H_

#include <cstdint>
#include <initializer_list>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace openima::la {

class Pool;  // src/la/pool.h

/// Dense row-major single-precision matrix — the numeric workhorse under the
/// autograd engine, the GNN layers, and K-Means. Two-dimensional only:
/// vectors are 1xN or Nx1 matrices; higher-rank tensors are not needed for
/// the models in this library.
///
/// Storage comes from the thread-bound la::Pool when one is active (see
/// PoolBinding) and from the plain heap otherwise — semantics are identical
/// either way (buffers are zero-initialized on construction), only the
/// allocation counters move differently. A pooled matrix remembers its pool
/// and releases the buffer back to it on destruction, so it may safely
/// outlive the binding (but never the pool).
///
/// Copyable and movable; copying copies the buffer.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(int rows, int cols);

  /// rows x cols matrix filled with `value`.
  Matrix(int rows, int cols, float value);

  /// Constructs from nested initializer lists (rows of equal length), e.g.
  /// `Matrix m({{1, 2}, {3, 4}});`.
  explicit Matrix(std::initializer_list<std::initializer_list<float>> rows);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix();

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Constant(int rows, int cols, float value) {
    return Matrix(rows, cols, value);
  }
  static Matrix Identity(int n);

  /// I.i.d. uniform entries in [lo, hi).
  static Matrix Uniform(int rows, int cols, float lo, float hi, Rng* rng);

  /// I.i.d. normal entries.
  static Matrix Normal(int rows, int cols, float mean, float stddev, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float* Row(int r) {
    OPENIMA_CHECK_GE(r, 0);
    OPENIMA_CHECK_LT(r, rows_);
    return data_ + static_cast<int64_t>(r) * cols_;
  }
  const float* Row(int r) const {
    OPENIMA_CHECK_GE(r, 0);
    OPENIMA_CHECK_LT(r, rows_);
    return data_ + static_cast<int64_t>(r) * cols_;
  }

  float& At(int r, int c) {
    OPENIMA_CHECK_GE(c, 0);
    OPENIMA_CHECK_LT(c, cols_);
    return Row(r)[c];
  }
  float At(int r, int c) const {
    OPENIMA_CHECK_GE(c, 0);
    OPENIMA_CHECK_LT(c, cols_);
    return Row(r)[c];
  }

  /// Unchecked element access for hot loops.
  float& operator()(int r, int c) {
    return data_[static_cast<int64_t>(r) * cols_ + c];
  }
  float operator()(int r, int c) const {
    return data_[static_cast<int64_t>(r) * cols_ + c];
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sets every entry to `value`.
  void Fill(float value);

  /// In-place element-wise operations (shapes must match).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float scalar);

  /// this += alpha * other.
  void Axpy(float alpha, const Matrix& other);

  /// Element-wise (Hadamard) product in place.
  void HadamardInPlace(const Matrix& other);

  /// Returns the transposed matrix.
  Matrix Transposed() const;

  /// Copies row `src_row` of `src` into row `dst_row` of this.
  void SetRow(int dst_row, const Matrix& src, int src_row);

  /// Sum of all entries.
  double Sum() const;

  /// Mean of all entries (0 for empty matrices).
  double Mean() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Maximum absolute entry (0 for empty matrices).
  float MaxAbs() const;

 private:
  /// Acquires a zeroed buffer for the current shape (pool or heap).
  void AllocateZeroed();
  /// Returns the buffer to its pool / the heap and resets to 0x0.
  void ReleaseStorage();

  int rows_ = 0;
  int cols_ = 0;
  float* data_ = nullptr;
  Pool* pool_ = nullptr;  // owner pool; nullptr = plain heap storage
};

/// Out-of-place element-wise arithmetic.
Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(const Matrix& a, float s);
Matrix operator*(float s, const Matrix& a);

/// Exact element-wise equality (for tests).
bool operator==(const Matrix& a, const Matrix& b);

/// True when |a-b| <= tol element-wise (shapes must match).
bool AllClose(const Matrix& a, const Matrix& b, float tol);

}  // namespace openima::la

#endif  // OPENIMA_LA_MATRIX_H_
