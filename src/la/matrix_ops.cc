#include "src/la/matrix_ops.h"

#include <algorithm>
#include <cmath>

#include "src/la/backend/backend.h"

namespace openima::la {

namespace {

constexpr int64_t kGemmRowGrain = 32;

/// C[r0, r1) += alpha * A[r0, r1) * B via the resolved backend's
/// register-tiled kernel (src/la/backend/). Row ranges are independent, so
/// any parallel row partition yields the same bits.
void MatmulRowRange(const backend::KernelBackend& be, const Matrix& a,
                    const Matrix& b, float alpha, Matrix* c, int64_t r0,
                    int64_t r1) {
  be.GemmRowRange(a.data(), a.cols(), b.data(), b.cols(), alpha, c->data(),
                  c->cols(), r0, r1, a.cols(), b.cols());
}

/// Row grain scaled so a task carries at least ~256k multiply-adds.
int64_t GemmGrain(int k, int n) {
  const int64_t flops_per_row = std::max<int64_t>(1, int64_t{k} * n);
  return std::max(kGemmRowGrain, (int64_t{1} << 18) / flops_per_row);
}

}  // namespace

Matrix Matmul(const Matrix& a, const Matrix& b, const exec::Context* ctx) {
  Matrix c(a.rows(), b.cols());
  MatmulAccumulate(a, b, 1.0f, &c, ctx);
  return c;
}

void MatmulAccumulate(const Matrix& a, const Matrix& b, float alpha, Matrix* c,
                      const exec::Context* ctx) {
  OPENIMA_CHECK_EQ(a.cols(), b.rows());
  OPENIMA_CHECK_EQ(c->rows(), a.rows());
  OPENIMA_CHECK_EQ(c->cols(), b.cols());
  const backend::KernelBackend& be = backend::Resolve(ctx);
  exec::Get(ctx).ParallelFor(a.rows(), GemmGrain(a.cols(), b.cols()),
                             [&](int64_t r0, int64_t r1) {
                               MatmulRowRange(be, a, b, alpha, c, r0, r1);
                             });
}

namespace {

/// Elements per task for flat element-wise sweeps.
constexpr int64_t kElemGrain = 16384;

}  // namespace

void AddInPlace(const Matrix& src, Matrix* dst, const exec::Context* ctx) {
  OPENIMA_CHECK(dst->SameShape(src));
  float* d = dst->data();
  const float* s = src.data();
  exec::Get(ctx).ParallelFor(dst->size(), kElemGrain,
                             [&](int64_t i0, int64_t i1) {
                               for (int64_t i = i0; i < i1; ++i) d[i] += s[i];
                             });
}

void ScaleInPlace(float alpha, Matrix* m, const exec::Context* ctx) {
  float* d = m->data();
  exec::Get(ctx).ParallelFor(m->size(), kElemGrain,
                             [&](int64_t i0, int64_t i1) {
                               for (int64_t i = i0; i < i1; ++i) d[i] *= alpha;
                             });
}

void AxpyInPlace(float alpha, const Matrix& src, Matrix* dst,
                 const exec::Context* ctx) {
  OPENIMA_CHECK(dst->SameShape(src));
  float* d = dst->data();
  const float* s = src.data();
  exec::Get(ctx).ParallelFor(
      dst->size(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) d[i] += alpha * s[i];
      });
}

void HadamardAddInPlace(const Matrix& a, const Matrix& b, Matrix* dst,
                        const exec::Context* ctx) {
  OPENIMA_CHECK(dst->SameShape(a));
  OPENIMA_CHECK(dst->SameShape(b));
  float* d = dst->data();
  const float* pa = a.data();
  const float* pb = b.data();
  exec::Get(ctx).ParallelFor(
      dst->size(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) d[i] += pa[i] * pb[i];
      });
}

Matrix MatmulTN(const Matrix& a, const Matrix& b, const exec::Context* ctx) {
  OPENIMA_CHECK_EQ(a.rows(), b.rows());
  Matrix at = Transpose(a, ctx);
  Matrix c(at.rows(), b.cols());
  MatmulAccumulate(at, b, 1.0f, &c, ctx);
  return c;
}

Matrix MatmulNT(const Matrix& a, const Matrix& b, const exec::Context* ctx) {
  OPENIMA_CHECK_EQ(a.cols(), b.cols());
  Matrix bt = Transpose(b, ctx);
  Matrix c(a.rows(), bt.cols());
  MatmulAccumulate(a, bt, 1.0f, &c, ctx);
  return c;
}

Matrix MatmulReference(const Matrix& a, const Matrix& b) {
  OPENIMA_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b.Row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix Transpose(const Matrix& m, const exec::Context* ctx) {
  constexpr int kTile = 32;
  const int rows = m.rows(), cols = m.cols();
  Matrix t(cols, rows);
  const int64_t col_blocks = (cols + kTile - 1) / kTile;
  // Parallel over column blocks of the source — disjoint row bands of the
  // destination.
  exec::Get(ctx).ParallelFor(col_blocks, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t blk = b0; blk < b1; ++blk) {
      const int j0 = static_cast<int>(blk) * kTile;
      const int j1 = std::min(cols, j0 + kTile);
      for (int i0 = 0; i0 < rows; i0 += kTile) {
        const int i1 = std::min(rows, i0 + kTile);
        for (int j = j0; j < j1; ++j) {
          float* trow = t.Row(j);
          for (int i = i0; i < i1; ++i) trow[i] = m(i, j);
        }
      }
    }
  });
  return t;
}

namespace {

/// Rows per task so one task touches at least ~8k elements.
int64_t RowGrain(int cols) {
  return std::max<int64_t>(1, 8192 / std::max(1, cols));
}

}  // namespace

Matrix RowSoftmax(const Matrix& logits, const exec::Context* ctx) {
  Matrix out = logits;
  exec::Get(ctx).ParallelFor(
      out.rows(), RowGrain(out.cols()), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* row = out.Row(static_cast<int>(i));
          float mx = row[0];
          for (int j = 1; j < out.cols(); ++j) mx = std::max(mx, row[j]);
          double sum = 0.0;
          for (int j = 0; j < out.cols(); ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
          }
          const float inv = static_cast<float>(1.0 / sum);
          for (int j = 0; j < out.cols(); ++j) row[j] *= inv;
        }
      });
  return out;
}

Matrix RowLogSoftmax(const Matrix& logits, const exec::Context* ctx) {
  Matrix out = logits;
  exec::Get(ctx).ParallelFor(
      out.rows(), RowGrain(out.cols()), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* row = out.Row(static_cast<int>(i));
          float mx = row[0];
          for (int j = 1; j < out.cols(); ++j) mx = std::max(mx, row[j]);
          double sum = 0.0;
          for (int j = 0; j < out.cols(); ++j) sum += std::exp(row[j] - mx);
          const float lse = mx + static_cast<float>(std::log(sum));
          for (int j = 0; j < out.cols(); ++j) row[j] -= lse;
        }
      });
  return out;
}

Matrix RowL2NormalizeInPlace(Matrix* m, float eps, const exec::Context* ctx) {
  Matrix norms(m->rows(), 1);
  exec::Get(ctx).ParallelFor(
      m->rows(), RowGrain(m->cols()), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* row = m->Row(static_cast<int>(i));
          double sq = 0.0;
          for (int j = 0; j < m->cols(); ++j) {
            sq += static_cast<double>(row[j]) * row[j];
          }
          const float norm = static_cast<float>(std::sqrt(sq));
          norms(static_cast<int>(i), 0) = norm;
          if (norm > eps) {
            const float inv = 1.0f / norm;
            for (int j = 0; j < m->cols(); ++j) row[j] *= inv;
          }
        }
      });
  return norms;
}

Matrix RowL2Norms(const Matrix& m, const exec::Context* ctx) {
  Matrix norms(m.rows(), 1);
  exec::Get(ctx).ParallelFor(
      m.rows(), RowGrain(m.cols()), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* row = m.Row(static_cast<int>(i));
          double sq = 0.0;
          for (int j = 0; j < m.cols(); ++j) {
            sq += static_cast<double>(row[j]) * row[j];
          }
          norms(static_cast<int>(i), 0) = static_cast<float>(std::sqrt(sq));
        }
      });
  return norms;
}

std::vector<int> RowArgmax(const Matrix& m, const exec::Context* ctx) {
  OPENIMA_CHECK_GT(m.cols(), 0);
  std::vector<int> out(static_cast<size_t>(m.rows()));
  const backend::KernelBackend& be = backend::Resolve(ctx);
  exec::Get(ctx).ParallelFor(
      m.rows(), RowGrain(m.cols()), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          out[static_cast<size_t>(i)] = static_cast<int>(
              be.RowArgmax(m.Row(static_cast<int>(i)), m.cols()));
        }
      });
  return out;
}

std::vector<float> RowMax(const Matrix& m, const exec::Context* ctx) {
  OPENIMA_CHECK_GT(m.cols(), 0);
  std::vector<float> out(static_cast<size_t>(m.rows()));
  const backend::KernelBackend& be = backend::Resolve(ctx);
  exec::Get(ctx).ParallelFor(
      m.rows(), RowGrain(m.cols()), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          out[static_cast<size_t>(i)] =
              be.RowMax(m.Row(static_cast<int>(i)), m.cols());
        }
      });
  return out;
}

Matrix RowSums(const Matrix& m, const exec::Context* ctx) {
  Matrix out(m.rows(), 1);
  exec::Get(ctx).ParallelFor(
      m.rows(), RowGrain(m.cols()), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* row = m.Row(static_cast<int>(i));
          double s = 0.0;
          for (int j = 0; j < m.cols(); ++j) s += row[j];
          out(static_cast<int>(i), 0) = static_cast<float>(s);
        }
      });
  return out;
}

Matrix ColMeans(const Matrix& m) {
  Matrix out(1, m.cols());
  if (m.rows() == 0) return out;
  std::vector<double> acc(static_cast<size_t>(m.cols()), 0.0);
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    for (int j = 0; j < m.cols(); ++j) acc[static_cast<size_t>(j)] += row[j];
  }
  for (int j = 0; j < m.cols(); ++j) {
    out(0, j) = static_cast<float>(acc[static_cast<size_t>(j)] / m.rows());
  }
  return out;
}

Matrix GatherRows(const Matrix& m, const std::vector<int>& rows,
                  const exec::Context* ctx) {
  Matrix out(static_cast<int>(rows.size()), m.cols());
  exec::Get(ctx).ParallelFor(
      static_cast<int64_t>(rows.size()), RowGrain(m.cols()),
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          out.SetRow(static_cast<int>(i), m, rows[static_cast<size_t>(i)]);
        }
      });
  return out;
}

Matrix VStack(const Matrix& a, const Matrix& b) {
  if (a.rows() == 0) return b;
  if (b.rows() == 0) return a;
  OPENIMA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) out.SetRow(r, a, r);
  for (int r = 0; r < b.rows(); ++r) out.SetRow(a.rows() + r, b, r);
  return out;
}

}  // namespace openima::la
