#include "src/la/matrix_ops.h"

#include <algorithm>
#include <cmath>

namespace openima::la {

Matrix Matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  MatmulAccumulate(a, b, 1.0f, &c);
  return c;
}

void MatmulAccumulate(const Matrix& a, const Matrix& b, float alpha,
                      Matrix* c) {
  OPENIMA_CHECK_EQ(a.cols(), b.rows());
  OPENIMA_CHECK_EQ(c->rows(), a.rows());
  OPENIMA_CHECK_EQ(c->cols(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    for (int p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Matrix MatmulTN(const Matrix& a, const Matrix& b) {
  OPENIMA_CHECK_EQ(a.rows(), b.rows());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (int p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.Row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatmulNT(const Matrix& a, const Matrix& b) {
  OPENIMA_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float dot = 0.0f;
      for (int p = 0; p < k; ++p) dot += arow[p] * brow[p];
      crow[j] = dot;
    }
  }
  return c;
}

Matrix RowSoftmax(const Matrix& logits) {
  Matrix out = logits;
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.Row(i);
    float mx = row[0];
    for (int j = 1; j < out.cols(); ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int j = 0; j < out.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < out.cols(); ++j) row[j] *= inv;
  }
  return out;
}

Matrix RowLogSoftmax(const Matrix& logits) {
  Matrix out = logits;
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.Row(i);
    float mx = row[0];
    for (int j = 1; j < out.cols(); ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int j = 0; j < out.cols(); ++j) sum += std::exp(row[j] - mx);
    const float lse = mx + static_cast<float>(std::log(sum));
    for (int j = 0; j < out.cols(); ++j) row[j] -= lse;
  }
  return out;
}

Matrix RowL2NormalizeInPlace(Matrix* m, float eps) {
  Matrix norms(m->rows(), 1);
  for (int i = 0; i < m->rows(); ++i) {
    float* row = m->Row(i);
    double sq = 0.0;
    for (int j = 0; j < m->cols(); ++j) sq += static_cast<double>(row[j]) * row[j];
    const float norm = static_cast<float>(std::sqrt(sq));
    norms(i, 0) = norm;
    if (norm > eps) {
      const float inv = 1.0f / norm;
      for (int j = 0; j < m->cols(); ++j) row[j] *= inv;
    }
  }
  return norms;
}

Matrix RowL2Norms(const Matrix& m) {
  Matrix norms(m.rows(), 1);
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    double sq = 0.0;
    for (int j = 0; j < m.cols(); ++j) sq += static_cast<double>(row[j]) * row[j];
    norms(i, 0) = static_cast<float>(std::sqrt(sq));
  }
  return norms;
}

std::vector<int> RowArgmax(const Matrix& m) {
  OPENIMA_CHECK_GT(m.cols(), 0);
  std::vector<int> out(static_cast<size_t>(m.rows()));
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    int best = 0;
    for (int j = 1; j < m.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

std::vector<float> RowMax(const Matrix& m) {
  OPENIMA_CHECK_GT(m.cols(), 0);
  std::vector<float> out(static_cast<size_t>(m.rows()));
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    float mx = row[0];
    for (int j = 1; j < m.cols(); ++j) mx = std::max(mx, row[j]);
    out[static_cast<size_t>(i)] = mx;
  }
  return out;
}

Matrix RowSums(const Matrix& m) {
  Matrix out(m.rows(), 1);
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    double s = 0.0;
    for (int j = 0; j < m.cols(); ++j) s += row[j];
    out(i, 0) = static_cast<float>(s);
  }
  return out;
}

Matrix ColMeans(const Matrix& m) {
  Matrix out(1, m.cols());
  if (m.rows() == 0) return out;
  std::vector<double> acc(static_cast<size_t>(m.cols()), 0.0);
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    for (int j = 0; j < m.cols(); ++j) acc[static_cast<size_t>(j)] += row[j];
  }
  for (int j = 0; j < m.cols(); ++j) {
    out(0, j) = static_cast<float>(acc[static_cast<size_t>(j)] / m.rows());
  }
  return out;
}

Matrix PairwiseSquaredDistances(const Matrix& x, const Matrix& c) {
  OPENIMA_CHECK_EQ(x.cols(), c.cols());
  Matrix dots = MatmulNT(x, c);  // n x k
  std::vector<float> xsq(static_cast<size_t>(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    const float* row = x.Row(i);
    double s = 0.0;
    for (int j = 0; j < x.cols(); ++j) s += static_cast<double>(row[j]) * row[j];
    xsq[static_cast<size_t>(i)] = static_cast<float>(s);
  }
  std::vector<float> csq(static_cast<size_t>(c.rows()));
  for (int i = 0; i < c.rows(); ++i) {
    const float* row = c.Row(i);
    double s = 0.0;
    for (int j = 0; j < c.cols(); ++j) s += static_cast<double>(row[j]) * row[j];
    csq[static_cast<size_t>(i)] = static_cast<float>(s);
  }
  for (int i = 0; i < dots.rows(); ++i) {
    float* row = dots.Row(i);
    for (int j = 0; j < dots.cols(); ++j) {
      row[j] = std::max(
          0.0f, xsq[static_cast<size_t>(i)] + csq[static_cast<size_t>(j)] -
                    2.0f * row[j]);
    }
  }
  return dots;
}

Matrix GatherRows(const Matrix& m, const std::vector<int>& rows) {
  Matrix out(static_cast<int>(rows.size()), m.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    out.SetRow(static_cast<int>(i), m, rows[i]);
  }
  return out;
}

Matrix VStack(const Matrix& a, const Matrix& b) {
  if (a.rows() == 0) return b;
  if (b.rows() == 0) return a;
  OPENIMA_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) out.SetRow(r, a, r);
  for (int r = 0; r < b.rows(); ++r) out.SetRow(a.rows() + r, b, r);
  return out;
}

}  // namespace openima::la
