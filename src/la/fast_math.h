#ifndef OPENIMA_LA_FAST_MATH_H_
#define OPENIMA_LA_FAST_MATH_H_

#include <bit>
#include <cstdint>

namespace openima::la {

// Branch-free float kernels for the softmax-shaped inner loops (SupCon's
// b x b probability matrices). Everything here is plain scalar C++ written
// so the compiler can auto-vectorize it: no libm calls, no data-dependent
// branches, fixed accumulation order (deterministic run-to-run and across
// thread counts; lane counts only depend on the compile-time unroll below).

/// exp(x) via the Cephes polynomial: range reduction x = n*ln2 + r with
/// |r| <= ln2/2, degree-5 minimax for e^r, and 2^n applied through the
/// exponent bits. Relative error < 3 ulp over [-87, 88]; inputs are clamped
/// to that range, so x <= -87.34 returns ~1.2e-38 (effectively zero for a
/// softmax denominator) instead of a denormal, and -inf is safe.
inline float FastExp(float x) {
  constexpr float kLog2e = 1.44269504088896341f;
  constexpr float kLn2Hi = 0.693359375f;
  constexpr float kLn2Lo = -2.12194440e-4f;
  constexpr float kMagic = 12582912.0f;  // 1.5 * 2^23: rounds to nearest
  x = x < -87.33654f ? -87.33654f : x;
  x = x > 88.72283f ? 88.72283f : x;
  const float t = x * kLog2e + kMagic;
  const std::int32_t n =
      std::bit_cast<std::int32_t>(t) - std::bit_cast<std::int32_t>(kMagic);
  const float fn = t - kMagic;
  float r = x - fn * kLn2Hi;
  r -= fn * kLn2Lo;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = p * r * r + r + 1.0f;
  const std::int32_t bits = std::bit_cast<std::int32_t>(p) + (n << 23);
  return std::bit_cast<float>(bits);
}

/// out[k] = FastExp(in[k] - shift) for k in [0, n).
inline void ExpShifted(const float* in, float shift, float* out,
                       std::int64_t n) {
  for (std::int64_t k = 0; k < n; ++k) out[k] = FastExp(in[k] - shift);
}

/// Sum of a float row in double, 8 fixed partial accumulators (breaks the
/// loop-carried dependency; same result on every run).
inline double RowSum(const float* p, std::int64_t n) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::int64_t k = 0;
  for (; k + 8 <= n; k += 8) {
    for (int j = 0; j < 8; ++j) acc[j] += p[k + j];
  }
  for (; k < n; ++k) acc[0] += p[k];
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

/// Max of a float row, 8 fixed partial lanes. `n` must be >= 1; -inf
/// entries are valid inputs.
inline float RowMax(const float* p, std::int64_t n) {
  float m = p[0];
  if (n >= 8) {
    float acc[8];
    for (int j = 0; j < 8; ++j) acc[j] = p[j];
    std::int64_t k = 8;
    for (; k + 8 <= n; k += 8) {
      for (int j = 0; j < 8; ++j) acc[j] = acc[j] < p[k + j] ? p[k + j] : acc[j];
    }
    for (int j = 1; j < 8; ++j) acc[0] = acc[0] < acc[j] ? acc[j] : acc[0];
    m = acc[0];
    for (; k < n; ++k) m = m < p[k] ? p[k] : m;
  } else {
    for (std::int64_t k = 1; k < n; ++k) m = m < p[k] ? p[k] : m;
  }
  return m;
}

}  // namespace openima::la

#endif  // OPENIMA_LA_FAST_MATH_H_
