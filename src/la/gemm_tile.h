#ifndef OPENIMA_LA_GEMM_TILE_H_
#define OPENIMA_LA_GEMM_TILE_H_

#include <algorithm>
#include <cstdint>

/// The register-tiled GEMM micro-kernel, shared between the Matmul family
/// (src/la/matrix_ops.cc) and the blocked distance kernels
/// (src/la/distance.cc). Header-only so each consumer inlines the tile loop
/// into its own driver; the accumulation order per output element is a pure
/// ascending sweep over the contraction dimension, which is what makes the
/// blocked kernels bit-identical to their naive reference loops.
namespace openima::la::gemm {

// GEMM tiling parameters. A kMr x kNr register tile accumulates over a
// kKc-long k-panel; the B sub-panel touched by one (k-panel, j-tile) pair is
// kKc * kNr * 4 bytes = 32 KB, which stays cache-resident while the row
// blocks sweep it. kNr = 16 floats is two AVX vectors; kMr = 4 amortizes
// each B load across four output rows.
constexpr int kMr = 4;
constexpr int kNr = 16;
constexpr int kKc = 512;

/// Full kMr x kNr register tile: C-tile += alpha * A-rows * B-panel over
/// p in [p0, p1). The loop shape is deliberate: the rows are unrolled by
/// hand and the q-loop is innermost over a __restrict__ row, which is what
/// keeps GCC holding the whole accumulator tile in vector registers (an
/// r-q loop nest over acc[r][q] gets SLP-vectorized at 128 bits with the
/// tile spilled to the stack — ~6x slower). For each output element the
/// accumulation over p ascends, making the blocked kernel bit-identical to
/// the naive i-k-j loop.
inline void MicroTileFull(const float* __restrict__ a, int64_t lda,
                          const float* __restrict__ b, int64_t ldb,
                          float alpha, float* __restrict__ c, int64_t ldc,
                          int p0, int p1) {
  static_assert(kMr == 4, "row unroll below is written for kMr == 4");
  float acc[kMr][kNr];
  for (int r = 0; r < kMr; ++r) {
    for (int q = 0; q < kNr; ++q) acc[r][q] = c[r * ldc + q];
  }
  for (int p = p0; p < p1; ++p) {
    const float* __restrict__ brow = b + static_cast<int64_t>(p) * ldb;
    const float av0 = alpha * a[0 * lda + p];
    const float av1 = alpha * a[1 * lda + p];
    const float av2 = alpha * a[2 * lda + p];
    const float av3 = alpha * a[3 * lda + p];
    for (int q = 0; q < kNr; ++q) {
      const float bq = brow[q];
      acc[0][q] += av0 * bq;
      acc[1][q] += av1 * bq;
      acc[2][q] += av2 * bq;
      acc[3][q] += av3 * bq;
    }
  }
  for (int r = 0; r < kMr; ++r) {
    for (int q = 0; q < kNr; ++q) c[r * ldc + q] = acc[r][q];
  }
}

/// Ragged edge tile (mr < kMr and/or nr < kNr), same accumulation order.
inline void MicroTileEdge(const float* __restrict__ a, int64_t lda,
                          const float* __restrict__ b, int64_t ldb,
                          float alpha, float* __restrict__ c, int64_t ldc,
                          int mr, int nr, int p0, int p1) {
  float acc[kMr][kNr];
  for (int r = 0; r < mr; ++r) {
    for (int q = 0; q < nr; ++q) acc[r][q] = c[r * ldc + q];
  }
  for (int p = p0; p < p1; ++p) {
    const float* brow = b + static_cast<int64_t>(p) * ldb;
    for (int r = 0; r < mr; ++r) {
      const float av = alpha * a[r * lda + p];
      for (int q = 0; q < nr; ++q) acc[r][q] += av * brow[q];
    }
  }
  for (int r = 0; r < mr; ++r) {
    for (int q = 0; q < nr; ++q) c[r * ldc + q] = acc[r][q];
  }
}

/// Raw-pointer blocked accumulation C[r0, r1) += alpha * A[r0, r1) * B over
/// k-panels and register tiles: A is (rows x k) with stride lda, B is
/// (k x n) with stride ldb, C is (rows x n) with stride ldc. Row ranges are
/// independent, so any parallel row partition yields the same bits.
inline void GemmRowRange(const float* a, int64_t lda, const float* b,
                         int64_t ldb, float alpha, float* c, int64_t ldc,
                         int64_t r0, int64_t r1, int k, int64_t n) {
  for (int p0 = 0; p0 < k; p0 += kKc) {
    const int p1 = std::min(k, p0 + kKc);
    for (int64_t j0 = 0; j0 < n; j0 += kNr) {
      const int nr = static_cast<int>(std::min<int64_t>(kNr, n - j0));
      const float* bj = b + j0;
      for (int64_t i0 = r0; i0 < r1; i0 += kMr) {
        const int mr = static_cast<int>(std::min<int64_t>(kMr, r1 - i0));
        const float* ai = a + i0 * lda;
        float* ci = c + i0 * ldc + j0;
        if (mr == kMr && nr == kNr) {
          MicroTileFull(ai, lda, bj, ldb, alpha, ci, ldc, p0, p1);
        } else {
          MicroTileEdge(ai, lda, bj, ldb, alpha, ci, ldc, mr, nr, p0, p1);
        }
      }
    }
  }
}

}  // namespace openima::la::gemm

#endif  // OPENIMA_LA_GEMM_TILE_H_
