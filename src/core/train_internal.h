#ifndef OPENIMA_CORE_TRAIN_INTERNAL_H_
#define OPENIMA_CORE_TRAIN_INTERNAL_H_

#include <memory>
#include <vector>

#include "src/autograd/tape.h"
#include "src/core/openima.h"
#include "src/exec/replica.h"
#include "src/graph/splits.h"
#include "src/la/pool.h"
#include "src/obs/telemetry.h"
#include "src/util/thread_pool.h"

namespace openima::core {

/// Validation/test quality snapshot from the deterministic head argmax (no
/// RNG draw, so recording it cannot perturb the training stream). Shared by
/// the full-graph, sampled, and data-parallel epoch records. Defined in
/// openima.cc.
void FillQualitySnapshot(const std::vector<int>& preds,
                         const graph::OpenWorldSplit& split,
                         obs::EpochRecord* record);

/// One persistent worker replica of the data-parallel trainer. Member order
/// matters: the pool is declared first so it outlives the model parameters
/// and tape blocks drawn from it.
struct OpenImaModel::WorkerReplica {
  la::Pool pool;
  autograd::Tape tape;
  exec::Context* ctx = nullptr;  ///< owned by the ReplicaSet
  std::unique_ptr<EncoderWithHead> model;
  std::unique_ptr<graph::NeighborSampler> sampler;
  MicrobatchResult result;
};

/// All data-parallel substrate, built once by EnsureDataParallel
/// (data_parallel.cc). Destruction order (reverse of declaration): the
/// refresh TaskGroup is destroyed first and waits for any in-flight
/// background refresh, then the refresh thread joins, and only then do the
/// models and pools go away.
struct OpenImaModel::DataParallelState {
  // Worker substrate — threaded mode only (null in reference mode).
  std::unique_ptr<exec::ReplicaSet> set;
  std::vector<std::unique_ptr<WorkerReplica>> replicas;

  // Reference-mode gradient accumulators: one buffer per round slot per
  // parameter, standing in for the replicas' gradient buffers.
  std::vector<std::vector<la::Matrix>> ref_grads;

  // Pipelined pseudo-label refresh (both modes; the reference runs the
  // compute inline at the same schedule points).
  la::Pool refresh_pool;
  exec::Context refresh_ctx{1};
  std::unique_ptr<EncoderWithHead> refresh_model;
  RefreshOutcome pending;
  bool refresh_pending = false;
  uint64_t refresh_counter = 0;
  int active_snapshot_epoch = -1;  ///< snapshot epoch of the labels in use
  std::unique_ptr<ThreadPool> refresh_thread;  // one real thread; null = ref
  std::unique_ptr<TaskGroup> refresh_group;

  // Scratch reused across rounds.
  std::vector<la::Matrix*> reduce_grid;
  std::vector<const la::Matrix*> reduced;
};

}  // namespace openima::core

#endif  // OPENIMA_CORE_TRAIN_INTERNAL_H_
