#ifndef OPENIMA_CORE_OPENIMA_H_
#define OPENIMA_CORE_OPENIMA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/autograd/tape.h"
#include "src/core/clusterer.h"
#include "src/core/encoder_with_head.h"
#include "src/core/pseudo_labels.h"
#include "src/graph/dataset.h"
#include "src/graph/sampler.h"
#include "src/graph/splits.h"
#include "src/la/pool.h"
#include "src/nn/adam.h"
#include "src/obs/json.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace openima::core {

/// Full configuration of OpenIMA (Eq. 6: L = L_BPCL + eta * L_CE) and its
/// ablations. The loss-component switches reproduce every row of the
/// paper's Table V; disabling pseudo labels and/or manual-label positives
/// also yields the two-stage CL baselines (InfoNCE ladder).
struct OpenImaConfig {
  nn::GatEncoderConfig encoder;

  int num_seen = 1;   ///< |C_l|
  int num_novel = 1;  ///< |C_n| (a hyper-parameter when unknown, §V-E)

  // §VII hyper-parameters.
  float eta = 1.0f;              ///< CE scaling factor
  float tau = 0.7f;              ///< contrastive temperature
  double rho_pct = 75.0;         ///< pseudo-label selection rate (%)
  float lr = 1e-3f;
  float weight_decay = 1e-4f;
  int epochs = 20;
  int batch_size = 2048;         ///< contrastive batch Nb (nodes per block)

  // Loss-component switches (Table V ablations).
  bool use_bpcl_emb = true;
  bool use_bpcl_logit = true;
  bool use_ce = true;
  bool use_pseudo_labels = true;     ///< false = "ours w/o PL"
  bool use_manual_positives = true;  ///< false + no PL/CE = pure InfoNCE

  // Large-graph refinements (§V-B observation 7).
  bool large_graph_mode = false;
  float pairwise_loss_weight = 0.5f;  ///< pairwise BCE weight in large mode

  /// In large-graph mode, predict with the classification head (the paper's
  /// refinement) vs mini-batch K-Means + alignment. Head prediction needs a
  /// well-trained head; K-Means is the robust fallback.
  bool large_graph_head_predict = true;

  /// Regenerate pseudo labels every this many epochs.
  int pseudo_refresh_every = 1;

  /// Epochs trained with manual labels only before pseudo-labeling starts —
  /// K-Means over randomly initialized embeddings yields noise.
  int pseudo_warmup_epochs = 2;

  // Neighbor-sampled minibatch training (GraphSAGE-style blocks). Makes an
  // epoch cost O(batch * fanout^depth) instead of O(n * E) — the mode that
  // trains unscaled ogbn-sized graphs with bounded memory. Pseudo-label
  // refreshes still run full eval-mode embeddings through mini-batch
  // K-Means (the paper's large-graph recipe); only the gradient steps are
  // sampled. Requires an encoder with SupportsSampled() (GAT).
  bool sampled_training = false;

  /// Per-layer neighbor fanout; 0 keeps the full 1-hop neighborhood of
  /// every destination (exhaustive — sampled structure, exact
  /// neighborhoods).
  int sample_fanout = 10;

  /// Seed nodes per sampled minibatch (each takes one optimizer step).
  int batch_nodes = 1024;

  /// Route training-step storage (matrices, graph nodes, kernel scratch)
  /// through the model's memory arena: the first epoch populates the pool,
  /// every later epoch recycles it, making steady-state epochs
  /// (near-)allocation-free. Results are bit-identical with or without the
  /// pool — storage origin never changes kernel semantics. Off exists for
  /// benchmarking the allocator against the plain heap path.
  bool use_memory_pool = true;

  /// Clustering algorithm used by pseudo-labeling and two-stage prediction
  /// (full-batch modes only; large-graph mode always uses mini-batch
  /// K-Means).
  ClustererKind clusterer = ClustererKind::kKMeans;

  /// K-Means settings for pseudo-labeling and two-stage prediction.
  int kmeans_max_iterations = 50;
  int kmeans_num_init = 1;
  int minibatch_kmeans_batch = 1024;
  int minibatch_kmeans_iterations = 60;

  /// Execution context threaded through the encoder, losses, clustering and
  /// pseudo-labeling (nullptr = process default). Propagated into
  /// `encoder.exec` when that is unset. Every parallel reduction downstream
  /// is deterministic, so training/prediction are bit-identical for any
  /// thread count. Must outlive the model.
  const exec::Context* exec = nullptr;

  // Deterministic data-parallel training (DESIGN.md §2.8). `workers` > 0
  // shards each round of up to `workers` consecutive sampled minibatches
  // across that many persistent model replicas (own arena, tape, sampler
  // stream per replica), tree-reduces their gradients in a fixed topology,
  // and takes ONE Adam step per round — bit-identical to accumulating the
  // same microbatches serially and stepping once, for any worker count
  // including 1. Requires sampled_training. 0 = the serial
  // one-step-per-batch trainer (unchanged PR 7 semantics).
  int workers = 0;

  /// Run the data-parallel *schedule* (round accumulation, single step per
  /// round, pipelined pseudo-label refresh) serially on the primary model —
  /// the reference the threaded path must match bit-for-bit. Only
  /// meaningful with workers > 0; tests diff the two.
  bool data_parallel_reference = false;

  /// Train() stops after this absolute epoch count (0 = train all
  /// config.epochs). The schedule — refresh boundaries, refresh-launch
  /// lookahead, microbatch stream tags — is still planned against the full
  /// `epochs`, so a run stopped at E, checkpointed, and resumed is
  /// bit-identical (telemetry bytes included) to the uninterrupted run.
  /// This is the time-budget / crash-simulation knob behind
  /// `quickstart --stop-after` and the resume tests (SERVING.md).
  int stop_after_epochs = 0;

  int num_classes() const { return num_seen + num_novel; }
};

/// Summary statistics of one training run.
struct TrainStats {
  std::vector<double> epoch_losses;
  int pseudo_labeled_last_epoch = 0;

  /// Per-epoch loss components of Eq. 6, recorded unconditionally (they are
  /// scalar reads of already-computed graph values): the eta-scaled CE
  /// term, the two BPCL (SupCon) terms, and the large-graph pairwise BCE
  /// term. Entries are 0 for disabled components.
  std::vector<double> epoch_ce_losses;
  std::vector<double> epoch_bpcl_emb_losses;
  std::vector<double> epoch_bpcl_logit_losses;
  std::vector<double> epoch_pairwise_losses;

  /// Per-epoch global gradient L2 norm over all parameters, measured after
  /// the backward pass. Only filled while the telemetry sink is active
  /// (obs::TelemetryEnabled()) — the extra pass over the parameters is
  /// skipped otherwise, keeping BM_TrainEpoch untouched.
  std::vector<double> epoch_grad_norms;

  /// Per pseudo-label refresh (parallel to refresh_unpooled_allocs):
  /// confident pseudo-label count, precision vs ground truth
  /// (metrics::PseudoLabelPrecision; -1 on a failed refresh) and Hungarian
  /// alignment churn vs the previous refresh (assign::AlignmentChurn; -1 for
  /// the first refresh). The paper's Fig. 1b/2 quality curves.
  std::vector<int> refresh_pseudo_counts;
  std::vector<double> refresh_pseudo_precision;
  std::vector<double> refresh_alignment_churn;

  /// Per-epoch heap allocations that bypassed the memory pool (matrix and
  /// scratch storage only; diffs of la::UnpooledAllocCount). With the pool
  /// enabled, steady-state entries are 0.
  std::vector<int64_t> epoch_unpooled_allocs;

  /// Per-epoch pool misses (fresh heap allocations made by the pool). The
  /// first epoch populates the buckets; steady-state entries are 0.
  std::vector<int64_t> epoch_pool_misses;

  /// Same counters scoped to each pseudo-label refresh (the clustering +
  /// alignment call inside the epoch). The first refresh populates the
  /// pool's clustering buckets; with the pool enabled, every later refresh
  /// is allocation-free — entries after index 0 are 0.
  std::vector<int64_t> refresh_unpooled_allocs;
  std::vector<int64_t> refresh_pool_misses;

  /// Final counters of the model's pool / tape after Train().
  la::PoolStats pool_stats;
  autograd::TapeStats tape_stats;
};

/// Serializes a TrainStats into an ordered JSON object (epoch losses,
/// per-epoch and per-refresh allocation counters, final pool / tape stats)
/// for embedding in an obs::RunReport "train" section.
obs::json::Value TrainStatsJson(const TrainStats& stats);

/// OpenIMA: trains a GAT encoder + linear head from scratch with
/// contrastive learning on bias-reduced pseudo labels, then predicts
/// two-stage (K-Means + Hungarian alignment). See DESIGN.md and the paper's
/// §IV.
class OpenImaModel {
 public:
  /// `in_dim` must match the dataset's feature dimension; `seed` controls
  /// initialization, dropout, batching and clustering.
  OpenImaModel(const OpenImaConfig& config, int in_dim, uint64_t seed);

  /// Runs the training loop from epochs_done() through config.epochs (or
  /// config.stop_after_epochs when set). A fresh model trains from epoch 0;
  /// after LoadCheckpoint, training resumes mid-run. Error once all
  /// config.epochs epochs are done.
  Status Train(const graph::Dataset& dataset,
               const graph::OpenWorldSplit& split);

  /// Epochs completed so far by Train() (across resumes).
  int epochs_done() const { return epochs_done_; }

  /// Writes a versioned binary checkpoint (src/io/checkpoint.h; format spec
  /// in SERVING.md): encoder+head weights, Adam moments + step count, the
  /// cached K-Means centers and pseudo labels, the Hungarian alignment
  /// carry, the sequential RNG stream state, and — under data-parallel
  /// training — the pipelined-refresh pipeline state (an in-flight
  /// background refresh is joined and its outcome serialized). Saving at an
  /// epoch boundary makes the resumed run bit-identical to an
  /// uninterrupted one. Not const: joining the background refresh mutates
  /// dp_.
  Status SaveCheckpoint(const std::string& path);

  /// Restores a checkpoint into this (untrained) model. The model must
  /// have been constructed with the same seed, encoder geometry, class
  /// counts and worker count the checkpoint was written under (validated
  /// against the checkpoint's meta section); config.epochs may differ —
  /// Train() then continues from the checkpointed epoch.
  Status LoadCheckpoint(const std::string& path);

  /// Two-stage prediction (Section IV-B): K-Means over eval-mode embeddings
  /// of all nodes with |C_l| + |C_n| clusters, Eq. 5 alignment on the
  /// training nodes, prediction for every node. In large-graph mode,
  /// predicts with the classification head instead (§V-B point 7) — novel
  /// head outputs are already class ids.
  StatusOr<std::vector<int>> Predict(const graph::Dataset& dataset,
                                     const graph::OpenWorldSplit& split);

  /// Eval-mode embeddings for metric computation.
  la::Matrix Embeddings(const graph::Dataset& dataset) const {
    return model_->EvalEmbeddings(dataset);
  }

  /// Head-argmax prediction over all nodes.
  std::vector<int> HeadPredict(const graph::Dataset& dataset) const;

  const OpenImaConfig& config() const { return config_; }
  const EncoderWithHead& model() const { return *model_; }
  const TrainStats& train_stats() const { return stats_; }

  ~OpenImaModel();  // out-of-line: DataParallelState is incomplete here

 private:
  struct WorkerReplica;     // one model replica (data_parallel.cc)
  struct DataParallelState;  // replicas + pipelined-refresh state

  /// Scalar results of one sampled microbatch (losses are the unscaled
  /// graph values; `stepped` is false for degenerate <2-node batches, whose
  /// gradients are zeroed so they are identity elements of the reduction).
  struct MicrobatchResult {
    bool stepped = false;
    double loss = 0.0;
    double ce = 0.0;
    double bpcl_emb = 0.0;
    double bpcl_logit = 0.0;
    double pairwise = 0.0;
  };

  /// Result of one pseudo-label refresh computation (the clustering +
  /// bias-reduced selection over eval-mode embeddings), decoupled from the
  /// bookkeeping that applies it so the data-parallel trainer can run the
  /// compute on a background thread and apply at the next epoch boundary.
  struct RefreshOutcome {
    bool ok = false;
    PseudoLabels result;
    int64_t unpooled_allocs = 0;  ///< -1 when concurrent (counter is global)
    int64_t pool_misses = 0;
    int snapshot_epoch = -1;  ///< epoch whose weights produced the labels
    std::string error;        ///< failure message when !ok
  };

  /// Pipelined-refresh pipeline state restored by LoadCheckpoint before the
  /// data-parallel substrate exists; EnsureDataParallel installs it into
  /// dp_ so the first resumed refresh boundary swaps in exactly what the
  /// uninterrupted run would have (SaveCheckpoint joins the in-flight
  /// background refresh and serializes its completed outcome).
  struct RestoredRefreshState {
    RefreshOutcome pending;
    bool refresh_pending = false;
    uint64_t refresh_counter = 0;
    int active_snapshot_epoch = -1;
  };
  /// Effective per-node labels feeding the contrastive positive sets for
  /// the current epoch (manual, pseudo, or -1).
  std::vector<int> ContrastiveLabels(const graph::Dataset& dataset,
                                     const graph::OpenWorldSplit& split,
                                     int epoch);

  /// One forward/backward/step. Every graph node and temporary built here
  /// dies before this returns, so the caller may Reset() the tape right
  /// after. `nb` is the clamped contrastive block size.
  Status TrainOneEpoch(const graph::Dataset& dataset,
                       const graph::OpenWorldSplit& split,
                       const std::vector<int>& ce_labels, int nb, int epoch);

  /// Sampled-minibatch epoch: shuffled seed batches of config_.batch_nodes
  /// nodes, each sampled into a 2-layer block (sample phase), features
  /// gathered through the backend kernel (gather phase), Eq. 6 losses over
  /// the batch, one optimizer step per batch. The tape is Reset() after
  /// every batch, so per-batch scratch recycles within the epoch.
  Status TrainOneEpochSampled(const graph::Dataset& dataset,
                              const graph::OpenWorldSplit& split,
                              graph::NeighborSampler* sampler, int epoch);

  /// One sampled microbatch — sample, gather, forward, Eq. 6 losses,
  /// backward — shared verbatim between the serial trainer (inv_round = 1,
  /// where the scaling op is skipped so the graph is byte-identical to the
  /// one-step-per-batch trainer's) and the data-parallel workers (inv_round
  /// = 1/R, so summing R replica gradients equals the gradient of the mean
  /// loss). Leaves the reduced gradients in `model`'s parameters; the
  /// caller owns the optimizer step and the tape reset. `rng` must be the
  /// counter-keyed stream for exactly this microbatch —
  /// Rng(DeriveStreamSeed(seed, tag)) — which both the serial trainer and
  /// the data-parallel workers derive identically, making the draws a pure
  /// function of position. Static: touches no model state, so replicas can
  /// run it concurrently.
  static MicrobatchResult RunSampledMicrobatch(
      const OpenImaConfig& config, EncoderWithHead* model,
      graph::NeighborSampler* sampler, const graph::Dataset& dataset,
      const std::vector<int>& seeds, const std::vector<int>& cl_labels,
      const std::vector<int>& train_label_of, uint64_t tag, float inv_round,
      Rng* rng, const exec::Context* ctx);

  /// Data-parallel epoch (config_.workers > 0): rounds of up to W
  /// microbatches on persistent replicas, fixed-topology tree all-reduce,
  /// one optimizer step per round, primary-to-replica weight broadcast, and
  /// the pipelined pseudo-label refresh swap/launch at refresh boundaries.
  /// With config_.data_parallel_reference, the identical schedule runs
  /// inline on the primary model. Defined in data_parallel.cc.
  Status TrainOneEpochDataParallel(const graph::Dataset& dataset,
                                   const graph::OpenWorldSplit& split,
                                   graph::NeighborSampler* sampler, int epoch,
                                   int num_epochs);

  /// Builds dp_ (replica set, refresh replica, reference buffers) on the
  /// first data-parallel epoch. Defined in data_parallel.cc.
  Status EnsureDataParallel(const graph::Dataset& dataset);

  /// The refresh computation: eval-mode embeddings of `model`, row
  /// normalization, bias-reduced pseudo-label generation (warm-started from
  /// `warm_centers`). Pure with respect to *this — safe on a background
  /// thread against a snapshot model. Allocation counters are measured
  /// around the generate call against `pool`.
  static RefreshOutcome ComputeRefresh(const OpenImaConfig& config,
                                       const EncoderWithHead& model,
                                       const graph::Dataset& dataset,
                                       const graph::OpenWorldSplit& split,
                                       const la::Matrix& warm_centers,
                                       Rng* rng, const exec::Context* ctx,
                                       la::Pool* pool);

  /// Applies a refresh outcome to the cached labels/centers and pushes the
  /// per-refresh stats — the bookkeeping half of a refresh, shared between
  /// the synchronous serial path and the data-parallel swap.
  void ApplyRefreshOutcome(RefreshOutcome outcome,
                           const graph::Dataset& dataset,
                           const graph::OpenWorldSplit& split);

  // The arena members are declared first: everything below may retain
  // pooled storage (parameter gradients, Adam moments, cached centers), and
  // members are destroyed in reverse order — the pool must die last.
  la::Pool pool_;
  autograd::Tape tape_;

  OpenImaConfig config_;
  uint64_t seed_;  // also seeds the neighbor sampler's counter-based RNG
  Rng rng_;
  std::unique_ptr<EncoderWithHead> model_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::vector<int> cached_pseudo_labels_;  // refreshed on cadence
  la::Matrix cached_pseudo_centers_;       // warm start for the next refresh
  TrainStats stats_;

  /// Epochs completed so far; Train() resumes here (0 = fresh model, set by
  /// LoadCheckpoint for mid-run resume).
  int epochs_done_ = 0;

  // Telemetry carry state: the latest refresh's alignment (for churn
  // against the next one) and quality numbers, re-emitted into every
  // epoch's record until the next refresh replaces them.
  assign::ClusterAlignment last_alignment_;
  bool has_last_alignment_ = false;
  int last_pseudo_count_ = -1;
  double last_pseudo_precision_ = -1.0;
  double last_alignment_churn_ = -1.0;
  bool refreshed_this_epoch_ = false;

  // Refresh-pipeline state carried from a checkpoint until
  // EnsureDataParallel installs it (null otherwise).
  std::unique_ptr<RestoredRefreshState> restored_refresh_;

  // Data-parallel substrate (replica contexts/threads, the background
  // refresh replica, reference-mode gradient buffers). Built lazily on the
  // first data-parallel epoch; declared last so its pools (which back the
  // replica parameters) outlive nothing of ours and die first.
  std::unique_ptr<DataParallelState> dp_;
};

}  // namespace openima::core

#endif  // OPENIMA_CORE_OPENIMA_H_
