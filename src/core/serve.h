#ifndef OPENIMA_CORE_SERVE_H_
#define OPENIMA_CORE_SERVE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/encoder_with_head.h"
#include "src/exec/context.h"
#include "src/graph/dataset.h"
#include "src/graph/sampler.h"
#include "src/la/matrix.h"
#include "src/obs/drift.h"
#include "src/util/status.h"

/// Frozen-model open-world inference (SERVING.md): a training checkpoint
/// (src/io/checkpoint.h) loaded once, then batched classify-node queries
/// answered through the trained encoder and the checkpointed K-Means
/// centers + Hungarian alignment — the same two-stage rule Predict() uses,
/// but per-request over sampled neighborhoods instead of a full-graph
/// forward. `openima_serve` drives this from the command line and writes
/// BENCH_serve.json.
namespace openima::core {

/// Inference configuration.
struct ServeOptions {
  /// Per-layer neighbor fanout of the query block (0 = exhaustive: the full
  /// 2-hop neighborhood — exact eval-mode embeddings, the default; > 0
  /// trades exactness for bounded block size on high-degree graphs).
  int sample_fanout = 0;

  /// Execution context for the service-level kernels (nullptr = process
  /// default). Sessions run their own single-threaded contexts regardless —
  /// concurrency comes from running many sessions, not from intra-request
  /// threading.
  const exec::Context* exec = nullptr;

  /// Online drift monitoring over classified traffic (policy kOff, the
  /// default, disables it — see obs::DriftMonitorOptions /
  /// obs::DriftOptionsFromEnv for the OPENIMA_DRIFT knobs). Shared by all
  /// sessions of the service; under kAbort every Classify() surfaces the
  /// trip as an error once drift is detected.
  obs::DriftMonitorOptions drift;
};

/// One classified node.
struct ClassifyResult {
  int class_id = -1;    ///< seen ids in [0, num_seen); novel ids >= num_seen
  bool is_novel = false;
  int cluster = -1;     ///< raw nearest-center cluster id
  float distance2 = 0.0f;  ///< squared distance to the nearest center
  float margin = 0.0f;  ///< runner-up distance2 minus distance2 (confidence)
};

class InferenceSession;

/// A frozen OpenIMA model behind a classify API. Load() reads the
/// checkpoint's meta/params/kmeans/alignment sections, rebuilds the encoder
/// geometry, and precomputes the cluster -> final-class table (seen classes
/// via the Hungarian alignment, leftover clusters numbered as novel classes
/// in cluster-id order — exactly Predict()'s rule). The service itself is
/// immutable after Load(); each driver thread makes its own
/// InferenceSession, which owns the mutable per-request state (sampler
/// workspace, a model replica, a single-threaded exec context), so any
/// number of sessions classify concurrently with bit-identical results.
class InferenceService {
 public:
  /// `dataset` must outlive the service and match the checkpoint's feature
  /// dimension; its labels are never read. Errors on a corrupt checkpoint,
  /// a geometry mismatch, or a checkpoint saved before the first
  /// pseudo-label refresh (no centers to classify against).
  static StatusOr<std::unique_ptr<InferenceService>> Load(
      const std::string& checkpoint_path, const graph::Dataset* dataset,
      const ServeOptions& options);

  std::unique_ptr<InferenceSession> NewSession() const;

  int num_seen() const { return num_seen_; }
  int num_clusters() const { return centers_.rows(); }
  int epochs_done() const { return epochs_done_; }
  const la::Matrix& centers() const { return centers_; }

  /// Cluster id -> final open-world class id (size num_clusters()).
  const std::vector<int>& cluster_to_final_class() const {
    return cluster_final_class_;
  }

  /// The shared drift monitor, or nullptr when disabled (policy kOff or
  /// OPENIMA_OBS=OFF). Sessions feed it per classified node.
  obs::DriftMonitor* drift_monitor() const { return drift_.get(); }

 private:
  friend class InferenceSession;
  InferenceService() = default;

  const graph::Dataset* dataset_ = nullptr;
  ServeOptions options_;
  nn::GatEncoderConfig encoder_config_;
  int num_seen_ = 0;
  int num_novel_ = 0;
  int epochs_done_ = 0;
  std::vector<la::Matrix> weights_;  ///< checkpointed parameter tensors
  la::Matrix centers_;               ///< K-Means centers (unit-sphere space)
  std::vector<int> cluster_final_class_;
  std::unique_ptr<obs::DriftMonitor> drift_;
};

/// Per-thread classify handle (one per driver thread; an instance is
/// single-threaded because the sampler workspace is reused across calls).
class InferenceSession {
 public:
  /// Classifies a batch of distinct node ids. `tag` keys the sampler's
  /// counter-based draws (any scheme works; requests with the same tag and
  /// nodes get bit-identical answers — with fanout 0 the tag is irrelevant).
  /// `out` is resized to nodes.size(), row i answering nodes[i]. Phases
  /// "serve_sample" / "serve_gather" / "serve_forward" / "serve_distance"
  /// are recorded into the obs registry per request.
  Status Classify(const std::vector<int>& nodes, uint64_t tag,
                  std::vector<ClassifyResult>* out);

 private:
  friend class InferenceService;
  explicit InferenceSession(const InferenceService* service);

  const InferenceService* service_;
  exec::Context ctx_{1};
  std::unique_ptr<EncoderWithHead> model_;  ///< session-private replica
  std::unique_ptr<graph::NeighborSampler> sampler_;
  std::vector<char> seen_;  ///< duplicate-id scratch, |V| entries
};

}  // namespace openima::core

#endif  // OPENIMA_CORE_SERVE_H_
