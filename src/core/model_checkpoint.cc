// OpenImaModel::SaveCheckpoint / LoadCheckpoint — the model-level layer over
// the versioned container in src/io/checkpoint.h (byte-level spec in
// SERVING.md). A checkpoint taken at an epoch boundary captures everything
// the training loop's next epoch reads: parameters, Adam moments + step
// count, the sequential RNG stream, the cached pseudo-label state and
// telemetry carries, and — under data-parallel training — the pipelined
// refresh pipeline (the in-flight background refresh is joined and its
// completed outcome serialized, so the resumed run swaps in the same labels
// the uninterrupted run would have).

#include <algorithm>
#include <utility>
#include <vector>

#include "src/core/openima.h"
#include "src/core/train_internal.h"
#include "src/io/checkpoint.h"
#include "src/util/string_util.h"

namespace openima::core {

namespace {

// Section names of the model checkpoint (container version 1).
constexpr char kMetaSection[] = "meta";
constexpr char kParamsSection[] = "params";
constexpr char kAdamSection[] = "adam";
constexpr char kRngSection[] = "rng";
constexpr char kKMeansSection[] = "kmeans";
constexpr char kAlignmentSection[] = "alignment";
constexpr char kDpSection[] = "dp";

void WriteAlignment(io::ByteSink* sink, const assign::ClusterAlignment& a) {
  io::WriteI32Vector(sink, a.cluster_to_class);
  sink->PutI32(a.num_matched);
}

Status ReadAlignment(io::ByteSource* src, assign::ClusterAlignment* out) {
  OPENIMA_RETURN_IF_ERROR(io::ReadI32Vector(src, &out->cluster_to_class));
  int32_t matched = 0;
  OPENIMA_RETURN_IF_ERROR(src->ReadI32(&matched));
  out->num_matched = matched;
  return Status::OK();
}

Status CheckMetaField(const char* name, int64_t expected, int64_t found) {
  if (expected == found) return Status::OK();
  return Status::InvalidArgument(StrFormat(
      "checkpoint %s mismatch: model was built with %lld, checkpoint "
      "was written under %lld",
      name, static_cast<long long>(expected), static_cast<long long>(found)));
}

}  // namespace

Status OpenImaModel::SaveCheckpoint(const std::string& path) {
  // A pipelined refresh may still be running on the background thread; its
  // outcome is part of the training state (the next boundary swaps it in),
  // so join it and serialize the completed result.
  if (dp_ != nullptr && dp_->refresh_pending && dp_->refresh_group != nullptr) {
    dp_->refresh_group->Wait();
  }

  io::CheckpointWriter writer;

  io::ByteSink meta;
  meta.PutU64(seed_);
  meta.PutU8(static_cast<uint8_t>(config_.encoder.arch));
  meta.PutI32(config_.encoder.in_dim);
  meta.PutI32(config_.encoder.hidden_dim);
  meta.PutI32(config_.encoder.embedding_dim);
  meta.PutI32(config_.encoder.num_heads);
  meta.PutI32(config_.num_seen);
  meta.PutI32(config_.num_novel);
  meta.PutI32(config_.workers);
  meta.PutI32(epochs_done_);
  OPENIMA_RETURN_IF_ERROR(writer.AddSection(kMetaSection, meta));

  const std::vector<autograd::Variable> params = model_->parameters();
  io::ByteSink psink;
  psink.PutU32(static_cast<uint32_t>(params.size()));
  for (const auto& p : params) io::WriteMatrix(&psink, p.value());
  OPENIMA_RETURN_IF_ERROR(writer.AddSection(kParamsSection, psink));

  io::ByteSink adam;
  adam.PutI64(optimizer_->step_count());
  adam.PutU32(static_cast<uint32_t>(params.size()));
  for (const auto& m : optimizer_->first_moments()) {
    io::WriteMatrix(&adam, m);
  }
  for (const auto& v : optimizer_->second_moments()) {
    io::WriteMatrix(&adam, v);
  }
  OPENIMA_RETURN_IF_ERROR(writer.AddSection(kAdamSection, adam));

  io::ByteSink rng;
  const Rng::State rng_state = rng_.state();
  for (int i = 0; i < 4; ++i) rng.PutU64(rng_state.s[i]);
  rng.PutU8(rng_state.have_cached_normal ? 1 : 0);
  rng.PutF64(rng_state.cached_normal);
  OPENIMA_RETURN_IF_ERROR(writer.AddSection(kRngSection, rng));

  io::ByteSink kmeans;
  io::WriteMatrix(&kmeans, cached_pseudo_centers_);
  io::WriteI32Vector(&kmeans, cached_pseudo_labels_);
  OPENIMA_RETURN_IF_ERROR(writer.AddSection(kKMeansSection, kmeans));

  io::ByteSink align;
  align.PutU8(has_last_alignment_ ? 1 : 0);
  WriteAlignment(&align, last_alignment_);
  align.PutI32(last_pseudo_count_);
  align.PutF64(last_pseudo_precision_);
  align.PutF64(last_alignment_churn_);
  align.PutI32(stats_.pseudo_labeled_last_epoch);
  OPENIMA_RETURN_IF_ERROR(writer.AddSection(kAlignmentSection, align));

  if (dp_ != nullptr) {
    io::ByteSink dp;
    dp.PutU64(dp_->refresh_counter);
    dp.PutI32(dp_->active_snapshot_epoch);
    dp.PutU8(dp_->refresh_pending ? 1 : 0);
    if (dp_->refresh_pending) {
      const RefreshOutcome& o = dp_->pending;
      dp.PutU8(o.ok ? 1 : 0);
      dp.PutString(o.error);
      dp.PutI32(o.snapshot_epoch);
      dp.PutI64(o.unpooled_allocs);
      dp.PutI64(o.pool_misses);
      io::WriteI32Vector(&dp, o.result.labels);
      dp.PutI32(o.result.num_pseudo_labeled);
      io::WriteI32Vector(&dp, o.result.cluster_assignments);
      io::WriteMatrix(&dp, o.result.centers);
      WriteAlignment(&dp, o.result.alignment);
    }
    OPENIMA_RETURN_IF_ERROR(writer.AddSection(kDpSection, dp));
  }

  return writer.Finish(path);
}

Status OpenImaModel::LoadCheckpoint(const std::string& path) {
  if (epochs_done_ > 0) {
    return Status::FailedPrecondition(
        "LoadCheckpoint requires a freshly constructed model (this one has "
        "already trained)");
  }
  auto reader_or = io::CheckpointReader::Open(path);
  if (!reader_or.ok()) return reader_or.status();
  const io::CheckpointReader& reader = *reader_or;
  for (const char* name :
       {kMetaSection, kParamsSection, kAdamSection, kRngSection,
        kKMeansSection, kAlignmentSection}) {
    if (!reader.HasSection(name)) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint %s is missing required section \"%s\"", path.c_str(),
          name));
    }
  }

  // ---- meta: the geometry contract between writer and this model ----------
  auto meta_or = reader.Section(kMetaSection);
  if (!meta_or.ok()) return meta_or.status();
  io::ByteSource meta = std::move(*meta_or);
  uint64_t seed = 0;
  uint8_t arch = 0;
  int32_t in_dim = 0, hidden_dim = 0, embedding_dim = 0, num_heads = 0;
  int32_t num_seen = 0, num_novel = 0, workers = 0, epochs_done = 0;
  OPENIMA_RETURN_IF_ERROR(meta.ReadU64(&seed));
  OPENIMA_RETURN_IF_ERROR(meta.ReadU8(&arch));
  OPENIMA_RETURN_IF_ERROR(meta.ReadI32(&in_dim));
  OPENIMA_RETURN_IF_ERROR(meta.ReadI32(&hidden_dim));
  OPENIMA_RETURN_IF_ERROR(meta.ReadI32(&embedding_dim));
  OPENIMA_RETURN_IF_ERROR(meta.ReadI32(&num_heads));
  OPENIMA_RETURN_IF_ERROR(meta.ReadI32(&num_seen));
  OPENIMA_RETURN_IF_ERROR(meta.ReadI32(&num_novel));
  OPENIMA_RETURN_IF_ERROR(meta.ReadI32(&workers));
  OPENIMA_RETURN_IF_ERROR(meta.ReadI32(&epochs_done));
  OPENIMA_RETURN_IF_ERROR(meta.ExpectEnd());
  if (seed != seed_) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint seed mismatch: model was built with %llu, checkpoint "
        "was written under %llu (resume must replay the same RNG streams)",
        static_cast<unsigned long long>(seed_),
        static_cast<unsigned long long>(seed)));
  }
  OPENIMA_RETURN_IF_ERROR(CheckMetaField(
      "encoder arch", static_cast<int>(config_.encoder.arch), arch));
  OPENIMA_RETURN_IF_ERROR(
      CheckMetaField("encoder in_dim", config_.encoder.in_dim, in_dim));
  OPENIMA_RETURN_IF_ERROR(CheckMetaField(
      "encoder hidden_dim", config_.encoder.hidden_dim, hidden_dim));
  OPENIMA_RETURN_IF_ERROR(CheckMetaField(
      "encoder embedding_dim", config_.encoder.embedding_dim, embedding_dim));
  OPENIMA_RETURN_IF_ERROR(CheckMetaField(
      "encoder num_heads", config_.encoder.num_heads, num_heads));
  OPENIMA_RETURN_IF_ERROR(
      CheckMetaField("num_seen", config_.num_seen, num_seen));
  OPENIMA_RETURN_IF_ERROR(
      CheckMetaField("num_novel", config_.num_novel, num_novel));
  OPENIMA_RETURN_IF_ERROR(CheckMetaField("workers", config_.workers, workers));
  if (epochs_done < 0) {
    return Status::InvalidArgument("checkpoint epochs_done must be >= 0");
  }

  // ---- params -------------------------------------------------------------
  std::vector<autograd::Variable> params = model_->parameters();
  auto psrc_or = reader.Section(kParamsSection);
  if (!psrc_or.ok()) return psrc_or.status();
  io::ByteSource psrc = std::move(*psrc_or);
  uint32_t param_count = 0;
  OPENIMA_RETURN_IF_ERROR(psrc.ReadU32(&param_count));
  if (param_count != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint parameter count mismatch: model has %zu tensors, "
        "checkpoint holds %u",
        params.size(), static_cast<unsigned>(param_count)));
  }
  // Decode every tensor before touching the model so a corrupt record can
  // never leave the parameters half-restored.
  std::vector<la::Matrix> values;
  values.reserve(params.size());
  for (const auto& p : params) {
    la::Matrix m;
    OPENIMA_RETURN_IF_ERROR(
        io::ReadMatrixExpect(&psrc, p.rows(), p.cols(), &m));
    values.push_back(std::move(m));
  }
  OPENIMA_RETURN_IF_ERROR(psrc.ExpectEnd());

  // ---- adam ---------------------------------------------------------------
  auto asrc_or = reader.Section(kAdamSection);
  if (!asrc_or.ok()) return asrc_or.status();
  io::ByteSource asrc = std::move(*asrc_or);
  int64_t step_count = 0;
  uint32_t adam_count = 0;
  OPENIMA_RETURN_IF_ERROR(asrc.ReadI64(&step_count));
  OPENIMA_RETURN_IF_ERROR(asrc.ReadU32(&adam_count));
  if (adam_count != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint Adam tensor count mismatch: model has %zu tensors, "
        "checkpoint holds %u",
        params.size(), static_cast<unsigned>(adam_count)));
  }
  std::vector<la::Matrix> moments_m, moments_v;
  moments_m.reserve(params.size());
  moments_v.reserve(params.size());
  for (const auto& p : params) {
    la::Matrix m;
    OPENIMA_RETURN_IF_ERROR(
        io::ReadMatrixExpect(&asrc, p.rows(), p.cols(), &m));
    moments_m.push_back(std::move(m));
  }
  for (const auto& p : params) {
    la::Matrix v;
    OPENIMA_RETURN_IF_ERROR(
        io::ReadMatrixExpect(&asrc, p.rows(), p.cols(), &v));
    moments_v.push_back(std::move(v));
  }
  OPENIMA_RETURN_IF_ERROR(asrc.ExpectEnd());

  // ---- rng ----------------------------------------------------------------
  auto rsrc_or = reader.Section(kRngSection);
  if (!rsrc_or.ok()) return rsrc_or.status();
  io::ByteSource rsrc = std::move(*rsrc_or);
  Rng::State rng_state;
  for (int i = 0; i < 4; ++i) {
    OPENIMA_RETURN_IF_ERROR(rsrc.ReadU64(&rng_state.s[i]));
  }
  uint8_t have_cached = 0;
  OPENIMA_RETURN_IF_ERROR(rsrc.ReadU8(&have_cached));
  OPENIMA_RETURN_IF_ERROR(rsrc.ReadF64(&rng_state.cached_normal));
  rng_state.have_cached_normal = have_cached != 0;
  OPENIMA_RETURN_IF_ERROR(rsrc.ExpectEnd());

  // ---- kmeans -------------------------------------------------------------
  auto ksrc_or = reader.Section(kKMeansSection);
  if (!ksrc_or.ok()) return ksrc_or.status();
  io::ByteSource ksrc = std::move(*ksrc_or);
  la::Matrix centers;
  std::vector<int> pseudo_labels;
  OPENIMA_RETURN_IF_ERROR(io::ReadMatrix(&ksrc, &centers));
  OPENIMA_RETURN_IF_ERROR(io::ReadI32Vector(&ksrc, &pseudo_labels));
  OPENIMA_RETURN_IF_ERROR(ksrc.ExpectEnd());

  // ---- alignment (telemetry carries) --------------------------------------
  auto lsrc_or = reader.Section(kAlignmentSection);
  if (!lsrc_or.ok()) return lsrc_or.status();
  io::ByteSource lsrc = std::move(*lsrc_or);
  uint8_t has_alignment = 0;
  assign::ClusterAlignment alignment;
  int32_t pseudo_count = 0, pseudo_labeled_last = 0;
  double pseudo_precision = 0.0, alignment_churn = 0.0;
  OPENIMA_RETURN_IF_ERROR(lsrc.ReadU8(&has_alignment));
  OPENIMA_RETURN_IF_ERROR(ReadAlignment(&lsrc, &alignment));
  OPENIMA_RETURN_IF_ERROR(lsrc.ReadI32(&pseudo_count));
  OPENIMA_RETURN_IF_ERROR(lsrc.ReadF64(&pseudo_precision));
  OPENIMA_RETURN_IF_ERROR(lsrc.ReadF64(&alignment_churn));
  OPENIMA_RETURN_IF_ERROR(lsrc.ReadI32(&pseudo_labeled_last));
  OPENIMA_RETURN_IF_ERROR(lsrc.ExpectEnd());

  // ---- dp (pipelined-refresh pipeline, data-parallel runs only) -----------
  std::unique_ptr<RestoredRefreshState> restored;
  if (reader.HasSection(kDpSection)) {
    auto dsrc_or = reader.Section(kDpSection);
    if (!dsrc_or.ok()) return dsrc_or.status();
    io::ByteSource dsrc = std::move(*dsrc_or);
    restored = std::make_unique<RestoredRefreshState>();
    uint8_t pending = 0;
    int32_t active_epoch = 0;
    OPENIMA_RETURN_IF_ERROR(dsrc.ReadU64(&restored->refresh_counter));
    OPENIMA_RETURN_IF_ERROR(dsrc.ReadI32(&active_epoch));
    restored->active_snapshot_epoch = active_epoch;
    OPENIMA_RETURN_IF_ERROR(dsrc.ReadU8(&pending));
    restored->refresh_pending = pending != 0;
    if (restored->refresh_pending) {
      RefreshOutcome& o = restored->pending;
      uint8_t ok = 0;
      int32_t snapshot_epoch = 0, num_pl = 0;
      OPENIMA_RETURN_IF_ERROR(dsrc.ReadU8(&ok));
      o.ok = ok != 0;
      OPENIMA_RETURN_IF_ERROR(dsrc.ReadString(&o.error));
      OPENIMA_RETURN_IF_ERROR(dsrc.ReadI32(&snapshot_epoch));
      o.snapshot_epoch = snapshot_epoch;
      OPENIMA_RETURN_IF_ERROR(dsrc.ReadI64(&o.unpooled_allocs));
      OPENIMA_RETURN_IF_ERROR(dsrc.ReadI64(&o.pool_misses));
      OPENIMA_RETURN_IF_ERROR(io::ReadI32Vector(&dsrc, &o.result.labels));
      OPENIMA_RETURN_IF_ERROR(dsrc.ReadI32(&num_pl));
      o.result.num_pseudo_labeled = num_pl;
      OPENIMA_RETURN_IF_ERROR(
          io::ReadI32Vector(&dsrc, &o.result.cluster_assignments));
      OPENIMA_RETURN_IF_ERROR(io::ReadMatrix(&dsrc, &o.result.centers));
      OPENIMA_RETURN_IF_ERROR(ReadAlignment(&dsrc, &o.result.alignment));
    }
    OPENIMA_RETURN_IF_ERROR(dsrc.ExpectEnd());
  }

  // ---- everything validated; commit ---------------------------------------
  for (size_t t = 0; t < params.size(); ++t) {
    autograd::Variable p = params[t];
    la::Matrix& value = p.mutable_value();
    std::copy(values[t].data(), values[t].data() + values[t].size(),
              value.data());
  }
  OPENIMA_RETURN_IF_ERROR(
      optimizer_->RestoreState(moments_m, moments_v, step_count));
  rng_.set_state(rng_state);
  cached_pseudo_centers_ = std::move(centers);
  cached_pseudo_labels_ = std::move(pseudo_labels);
  has_last_alignment_ = has_alignment != 0;
  last_alignment_ = std::move(alignment);
  last_pseudo_count_ = pseudo_count;
  last_pseudo_precision_ = pseudo_precision;
  last_alignment_churn_ = alignment_churn;
  stats_.pseudo_labeled_last_epoch = pseudo_labeled_last;
  restored_refresh_ = std::move(restored);
  epochs_done_ = epochs_done;
  return Status::OK();
}

}  // namespace openima::core
