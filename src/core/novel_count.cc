#include "src/core/novel_count.h"

#include <algorithm>

#include "src/cluster/kmeans.h"
#include "src/cluster/silhouette.h"
#include "src/la/distance.h"
#include "src/metrics/sc_acc.h"
#include "src/obs/obs.h"

namespace openima::core {

StatusOr<NovelCountEstimate> EstimateNovelClassCount(
    const la::Matrix& embeddings, const NovelCountOptions& options, Rng* rng) {
  if (options.min_novel < 1 || options.max_novel < options.min_novel) {
    return Status::InvalidArgument("invalid novel-count range");
  }
  OPENIMA_OBS_PHASE("novel_count_sweep");
  NovelCountEstimate est;
  const int n = embeddings.rows();
  // Point squared norms are k-independent: compute once and share across
  // every candidate's K-Means and silhouette call.
  const std::vector<float> xsq = la::RowSquaredNorms(embeddings, options.exec);
  la::Matrix prev_centers;
  std::vector<int> prev_assignments;
  std::vector<float> assigned_dist(static_cast<size_t>(n));
  for (int c = options.min_novel; c <= options.max_novel; ++c) {
    const int k = options.num_seen + c;
    if (k > n) break;
    cluster::KMeansOptions km;
    km.num_clusters = k;
    km.max_iterations = options.kmeans_max_iterations;
    km.row_sq_norms = &xsq;
    km.exec = options.exec;
    if (options.warm_start_sweep && prev_centers.rows() == k - 1) {
      // Previous candidate's centers plus the worst-covered point: the new
      // cluster starts where the k-1 solution is weakest.
      la::AssignedEuclideanDistancesInto(embeddings, prev_centers,
                                         prev_assignments,
                                         assigned_dist.data(), options.exec);
      int farthest = 0;
      for (int i = 1; i < n; ++i) {
        if (assigned_dist[static_cast<size_t>(i)] >
            assigned_dist[static_cast<size_t>(farthest)]) {
          farthest = i;
        }
      }
      la::Matrix init(k, embeddings.cols());
      for (int r = 0; r < k - 1; ++r) init.SetRow(r, prev_centers, r);
      init.SetRow(k - 1, embeddings, farthest);
      km.initial_centers = std::move(init);
    }
    auto result = cluster::KMeans(embeddings, km, rng);
    OPENIMA_RETURN_IF_ERROR(result.status());
    cluster::SilhouetteOptions so;
    so.max_samples = options.silhouette_max_samples;
    so.row_sq_norms = &xsq;
    so.exec = options.exec;
    auto sc = cluster::SilhouetteCoefficient(embeddings, result->assignments,
                                             so, rng);
    OPENIMA_RETURN_IF_ERROR(sc.status());
    est.silhouettes.push_back(*sc);
    prev_centers = std::move(result->centers);
    prev_assignments = std::move(result->assignments);
  }
  if (est.silhouettes.empty()) {
    return Status::FailedPrecondition("no feasible novel-count candidate");
  }
  est.best_novel =
      options.min_novel + metrics::ArgmaxIndex(est.silhouettes);
  return est;
}

}  // namespace openima::core
