#include "src/core/novel_count.h"

#include "src/cluster/kmeans.h"
#include "src/cluster/silhouette.h"
#include "src/metrics/sc_acc.h"

namespace openima::core {

StatusOr<NovelCountEstimate> EstimateNovelClassCount(
    const la::Matrix& embeddings, const NovelCountOptions& options, Rng* rng) {
  if (options.min_novel < 1 || options.max_novel < options.min_novel) {
    return Status::InvalidArgument("invalid novel-count range");
  }
  NovelCountEstimate est;
  for (int c = options.min_novel; c <= options.max_novel; ++c) {
    const int k = options.num_seen + c;
    if (k > embeddings.rows()) break;
    cluster::KMeansOptions km;
    km.num_clusters = k;
    km.max_iterations = options.kmeans_max_iterations;
    km.exec = options.exec;
    auto result = cluster::KMeans(embeddings, km, rng);
    OPENIMA_RETURN_IF_ERROR(result.status());
    cluster::SilhouetteOptions so;
    so.max_samples = options.silhouette_max_samples;
    so.exec = options.exec;
    auto sc = cluster::SilhouetteCoefficient(embeddings, result->assignments,
                                             so, rng);
    OPENIMA_RETURN_IF_ERROR(sc.status());
    est.silhouettes.push_back(*sc);
  }
  if (est.silhouettes.empty()) {
    return Status::FailedPrecondition("no feasible novel-count candidate");
  }
  est.best_novel =
      options.min_novel + metrics::ArgmaxIndex(est.silhouettes);
  return est;
}

}  // namespace openima::core
