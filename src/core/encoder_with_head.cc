#include "src/core/encoder_with_head.h"

#include "src/util/logging.h"

namespace openima::core {

EncoderWithHead::EncoderWithHead(const nn::GatEncoderConfig& encoder_config,
                                 int num_classes, Rng* rng) {
  OPENIMA_CHECK_GT(num_classes, 0);
  encoder_ = nn::MakeEncoder(encoder_config, rng);
  head_ = std::make_unique<nn::Linear>(encoder_config.embedding_dim,
                                       num_classes, /*use_bias=*/false, rng,
                                       encoder_config.exec);
  RegisterSubmodule(*encoder_);
  RegisterSubmodule(*head_);
}

autograd::Variable EncoderWithHead::Embed(const graph::Dataset& dataset,
                                          bool training, Rng* rng) const {
  autograd::Variable features =
      autograd::Variable::Leaf(dataset.features, /*requires_grad=*/false);
  return encoder_->Forward(dataset.graph, features, training, rng);
}

autograd::Variable EncoderWithHead::EmbedSampled(
    const graph::SampledBlock& block, const la::Matrix& gathered,
    bool training, Rng* rng) const {
  autograd::Variable features =
      autograd::Variable::Leaf(gathered, /*requires_grad=*/false);
  return encoder_->ForwardSampled(block, features, training, rng);
}

autograd::Variable EncoderWithHead::Logits(
    const autograd::Variable& embeddings) const {
  return head_->Forward(embeddings);
}

la::Matrix EncoderWithHead::EvalEmbeddings(
    const graph::Dataset& dataset) const {
  return Embed(dataset, /*training=*/false, nullptr).value();
}

la::Matrix EncoderWithHead::EvalLogits(const graph::Dataset& dataset) const {
  autograd::Variable z = Embed(dataset, /*training=*/false, nullptr);
  return Logits(z).value();
}

}  // namespace openima::core
