#ifndef OPENIMA_CORE_NOVEL_COUNT_H_
#define OPENIMA_CORE_NOVEL_COUNT_H_

#include <vector>

#include "src/exec/context.h"
#include "src/la/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace openima::core {

/// Options for the §V-E rough estimate of the number of novel classes.
struct NovelCountOptions {
  int num_seen = 1;
  int min_novel = 1;
  int max_novel = 10;
  int kmeans_max_iterations = 50;
  int silhouette_max_samples = 1000;

  /// Warm-start each candidate's K-Means from the previous candidate's
  /// solution: the k-1 converged centers plus the point farthest from its
  /// assigned center (k grows by one per step, so consecutive solutions
  /// nest). Skips the k-means++ seeding entirely for those candidates — a
  /// different (usually better-converged) optimum than cold seeding, and
  /// the rng stream is consumed only by the first candidate.
  bool warm_start_sweep = true;

  /// Execution context for the K-Means/silhouette sweep (nullptr = process
  /// default).
  const exec::Context* exec = nullptr;
};

/// Result of the estimation sweep.
struct NovelCountEstimate {
  int best_novel = 1;
  /// Silhouette per candidate (index 0 = min_novel).
  std::vector<double> silhouettes;
};

/// The paper's pre-training estimate: run K-Means over (typically
/// InfoNCE-learned) embeddings with num_seen + c clusters for each candidate
/// c and pick the candidate with the best silhouette coefficient. The final
/// choice of c is then refined with SC&ACC over trained models (Table VI) —
/// that loop lives in the eval harness.
StatusOr<NovelCountEstimate> EstimateNovelClassCount(
    const la::Matrix& embeddings, const NovelCountOptions& options, Rng* rng);

}  // namespace openima::core

#endif  // OPENIMA_CORE_NOVEL_COUNT_H_
