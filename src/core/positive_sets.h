#ifndef OPENIMA_CORE_POSITIVE_SETS_H_
#define OPENIMA_CORE_POSITIVE_SETS_H_

#include <vector>

namespace openima::core {

/// Builds the in-batch positive index sets P(i) for the paper's contrastive
/// losses (Eq. 7 / Eq. 8).
///
/// A contrastive batch holds 2*Nb data points: two encoder views of each of
/// the Nb sampled nodes, laid out as [view1[0..Nb), view2[0..Nb)] so that
/// data points i and i + Nb are SimCSE dropout twins.
///
/// `batch_labels[i]` is the (manual or pseudo) class label of batch node i,
/// or -1 when the node has neither. Positives of an anchor are every other
/// data point sharing its label; unlabeled anchors fall back to their twin
/// only, which reduces Eq. 7 to InfoNCE for them. Every set is non-empty and
/// excludes the anchor itself.
std::vector<std::vector<int>> BuildPositiveSets(
    const std::vector<int>& batch_labels);

}  // namespace openima::core

#endif  // OPENIMA_CORE_POSITIVE_SETS_H_
