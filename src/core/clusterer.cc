#include "src/core/clusterer.h"

#include "src/cluster/constrained_kmeans.h"
#include "src/cluster/gmm.h"
#include "src/util/string_util.h"

namespace openima::core {

StatusOr<ClustererKind> ParseClustererKind(const std::string& name) {
  if (name == "kmeans") return ClustererKind::kKMeans;
  if (name == "spherical") return ClustererKind::kSphericalKMeans;
  if (name == "constrained") return ClustererKind::kConstrainedKMeans;
  if (name == "gmm") return ClustererKind::kGmm;
  return Status::NotFound(StrFormat("unknown clusterer '%s'", name.c_str()));
}

std::string ClustererKindName(ClustererKind kind) {
  switch (kind) {
    case ClustererKind::kKMeans:
      return "kmeans";
    case ClustererKind::kSphericalKMeans:
      return "spherical";
    case ClustererKind::kConstrainedKMeans:
      return "constrained";
    case ClustererKind::kGmm:
      return "gmm";
  }
  return "unknown";
}

StatusOr<cluster::KMeansResult> RunClusterer(
    ClustererKind kind, const la::Matrix& points, int num_clusters,
    const std::vector<int>& labeled_nodes,
    const std::vector<int>& labeled_classes, int num_seen,
    int max_iterations, int num_init, Rng* rng,
    const exec::Context* exec_ctx, const la::Matrix* initial_centers) {
  switch (kind) {
    case ClustererKind::kKMeans:
    case ClustererKind::kSphericalKMeans: {
      cluster::KMeansOptions options;
      options.num_clusters = num_clusters;
      options.max_iterations = max_iterations;
      options.num_init = num_init;
      options.spherical = kind == ClustererKind::kSphericalKMeans;
      options.exec = exec_ctx;
      if (initial_centers != nullptr && !initial_centers->empty()) {
        options.initial_centers = *initial_centers;
      }
      return cluster::KMeans(points, options, rng);
    }
    case ClustererKind::kConstrainedKMeans: {
      cluster::ConstrainedKMeansOptions options;
      options.num_clusters = num_clusters;
      options.max_iterations = max_iterations;
      options.exec = exec_ctx;
      return cluster::ConstrainedKMeans(points, labeled_nodes, labeled_classes,
                                        num_seen, options, rng);
    }
    case ClustererKind::kGmm: {
      cluster::GmmOptions options;
      options.num_components = num_clusters;
      options.max_iterations = max_iterations;
      options.exec = exec_ctx;
      auto gmm = cluster::FitGmm(points, options, rng);
      OPENIMA_RETURN_IF_ERROR(gmm.status());
      cluster::KMeansResult result;
      result.centers = std::move(gmm->means);
      result.assignments = std::move(gmm->assignments);
      result.iterations = gmm->iterations;
      result.inertia = cluster::Inertia(points, result.centers,
                                        result.assignments, exec_ctx);
      return result;
    }
  }
  return Status::Internal("unreachable clusterer kind");
}

}  // namespace openima::core
