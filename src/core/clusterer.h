#ifndef OPENIMA_CORE_CLUSTERER_H_
#define OPENIMA_CORE_CLUSTERER_H_

#include <string>
#include <vector>

#include "src/cluster/kmeans.h"
#include "src/util/status.h"

namespace openima::core {

/// The clustering algorithms OpenIMA can plug into its pseudo-labeling and
/// two-stage prediction (the paper's §IV-B notes "other clustering
/// algorithms can also be employed" and §V-A compares against the
/// semi-supervised K-Means of GCD).
enum class ClustererKind {
  kKMeans,             ///< Lloyd + k-means++ (the paper's default)
  kSphericalKMeans,    ///< cosine K-Means on the unit sphere
  kConstrainedKMeans,  ///< GCD-style: labeled nodes pinned to class clusters
  kGmm,                ///< diagonal Gaussian mixture via EM
};

/// Parse/format helpers ("kmeans", "spherical", "constrained", "gmm").
StatusOr<ClustererKind> ParseClustererKind(const std::string& name);
std::string ClustererKindName(ClustererKind kind);

/// Runs the chosen clusterer over `points` with `num_clusters` clusters and
/// returns a uniform (centers, assignments) result. The labeled arrays are
/// only used by the constrained variant (classes in [0, num_seen); cluster
/// ids 0..num_seen-1 then correspond to seen classes). `exec` (nullptr =
/// process default) is forwarded into the clusterer's kernels.
/// `initial_centers` (nullptr or empty = cold start) warm-starts the plain
/// and spherical K-Means variants from a previous solution; the constrained
/// and GMM variants ignore it.
StatusOr<cluster::KMeansResult> RunClusterer(
    ClustererKind kind, const la::Matrix& points, int num_clusters,
    const std::vector<int>& labeled_nodes,
    const std::vector<int>& labeled_classes, int num_seen,
    int max_iterations, int num_init, Rng* rng,
    const exec::Context* exec = nullptr,
    const la::Matrix* initial_centers = nullptr);

}  // namespace openima::core

#endif  // OPENIMA_CORE_CLUSTERER_H_
