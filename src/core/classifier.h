#ifndef OPENIMA_CORE_CLASSIFIER_H_
#define OPENIMA_CORE_CLASSIFIER_H_

#include <string>
#include <vector>

#include "src/graph/dataset.h"
#include "src/graph/splits.h"
#include "src/la/matrix.h"
#include "src/util/status.h"

namespace openima::core {

/// Common interface of OpenIMA and every baseline: train on a partially
/// labeled graph, then emit a prediction id for every node (ids are
/// arbitrary; evaluation Hungarian-aligns them) plus embeddings for the
/// silhouette / variance metrics.
class OpenWorldClassifier {
 public:
  virtual ~OpenWorldClassifier() = default;

  /// Trains on the dataset with the given open-world split. Single use.
  virtual Status Train(const graph::Dataset& dataset,
                       const graph::OpenWorldSplit& split) = 0;

  /// Prediction ids for all nodes (callers slice out test/val subsets).
  virtual StatusOr<std::vector<int>> Predict(
      const graph::Dataset& dataset, const graph::OpenWorldSplit& split) = 0;

  /// Eval-mode embeddings for all nodes.
  virtual la::Matrix Embeddings(const graph::Dataset& dataset) const = 0;

  /// Display name, e.g. "ORCA" or "OpenIMA".
  virtual std::string name() const = 0;
};

}  // namespace openima::core

#endif  // OPENIMA_CORE_CLASSIFIER_H_
