#ifndef OPENIMA_CORE_ENCODER_WITH_HEAD_H_
#define OPENIMA_CORE_ENCODER_WITH_HEAD_H_

#include <memory>

#include "src/graph/dataset.h"
#include "src/nn/encoder.h"
#include "src/nn/gat.h"
#include "src/nn/gcn.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace openima::core {

/// The model shared by OpenIMA and every end-to-end baseline: a graph
/// encoder (GAT by default, GCN via config.arch) producing node embeddings
/// plus a bias-free linear classification head producing logits over
/// num_classes = |C_l| + |C_n| outputs.
class EncoderWithHead : public nn::Module {
 public:
  EncoderWithHead(const nn::GatEncoderConfig& encoder_config, int num_classes,
                  Rng* rng);

  /// Embeddings for all nodes; training=true draws fresh dropout masks.
  autograd::Variable Embed(const graph::Dataset& dataset, bool training,
                           Rng* rng) const;

  /// Sampled-minibatch embeddings for a block's seed nodes. `gathered`
  /// holds the features of the block's input frontier (block.num_input() x
  /// in_dim, gathered by the caller — the trainer routes this through the
  /// backend GatherRows kernel under the "gather" phase timer). Only valid
  /// when encoder().SupportsSampled().
  autograd::Variable EmbedSampled(const graph::SampledBlock& block,
                                  const la::Matrix& gathered, bool training,
                                  Rng* rng) const;

  /// Head logits from embeddings.
  autograd::Variable Logits(const autograd::Variable& embeddings) const;

  /// Deterministic (eval-mode) embeddings as a plain matrix.
  la::Matrix EvalEmbeddings(const graph::Dataset& dataset) const;

  /// Deterministic (eval-mode) head logits for all nodes.
  la::Matrix EvalLogits(const graph::Dataset& dataset) const;

  const nn::Encoder& encoder() const { return *encoder_; }
  const nn::Linear& head() const { return *head_; }
  int num_classes() const { return head_->out_dim(); }

 private:
  std::unique_ptr<nn::Encoder> encoder_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace openima::core

#endif  // OPENIMA_CORE_ENCODER_WITH_HEAD_H_
