#include "src/core/positive_sets.h"

#include <unordered_map>

#include "src/util/logging.h"

namespace openima::core {

std::vector<std::vector<int>> BuildPositiveSets(
    const std::vector<int>& batch_labels) {
  const int nb = static_cast<int>(batch_labels.size());
  OPENIMA_CHECK_GT(nb, 0);
  const int total = 2 * nb;

  // Group data-point indices by label.
  std::unordered_map<int, std::vector<int>> by_label;
  for (int i = 0; i < total; ++i) {
    const int label = batch_labels[static_cast<size_t>(i % nb)];
    if (label >= 0) by_label[label].push_back(i);
  }

  std::vector<std::vector<int>> positives(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) {
    const int twin = (i + nb) % total;
    const int label = batch_labels[static_cast<size_t>(i % nb)];
    auto& set = positives[static_cast<size_t>(i)];
    if (label < 0) {
      set.push_back(twin);
      continue;
    }
    const auto& group = by_label[label];
    set.reserve(group.size() - 1);
    for (int j : group) {
      if (j != i) set.push_back(j);
    }
    OPENIMA_CHECK(!set.empty());
  }
  return positives;
}

}  // namespace openima::core
