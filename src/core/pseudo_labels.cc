#include "src/core/pseudo_labels.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/la/distance.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace openima::core {

StatusOr<PseudoLabels> GenerateBiasReducedPseudoLabels(
    const la::Matrix& embeddings, const std::vector<int>& train_nodes,
    const std::vector<int>& train_labels, int num_seen,
    const PseudoLabelOptions& options, Rng* rng) {
  const int n = embeddings.rows();
  if (train_nodes.size() != train_labels.size()) {
    return Status::InvalidArgument("train nodes/labels size mismatch");
  }
  if (options.num_clusters < num_seen) {
    return Status::InvalidArgument(
        StrFormat("num_clusters (%d) must be >= num_seen (%d)",
                  options.num_clusters, num_seen));
  }
  if (options.select_rate_pct < 0.0 || options.select_rate_pct > 100.0) {
    return Status::InvalidArgument("select_rate_pct must be in [0, 100]");
  }

  // 1. Unsupervised clustering over all nodes, warm-started from the
  //    previous refresh's centers when the caller kept them (shape-checked
  //    here so stale centers degrade to a cold start, never an error).
  const bool warm =
      options.warm_start_centers.rows() == options.num_clusters &&
      options.warm_start_centers.cols() == embeddings.cols();
  cluster::KMeansResult km;
  {
    OPENIMA_OBS_PHASE("kmeans");
    if (options.use_minibatch) {
      auto mb_options = options.minibatch;
      mb_options.num_clusters = options.num_clusters;
      mb_options.final_full_assignment = true;
      if (warm) mb_options.initial_centers = options.warm_start_centers;
      auto result = cluster::MiniBatchKMeans(embeddings, mb_options, rng);
      OPENIMA_RETURN_IF_ERROR(result.status());
      km = std::move(*result);
    } else {
      auto result = RunClusterer(options.clusterer, embeddings,
                                 options.num_clusters, train_nodes,
                                 train_labels, num_seen,
                                 options.kmeans.max_iterations,
                                 options.kmeans.num_init, rng,
                                 options.kmeans.exec,
                                 warm ? &options.warm_start_centers : nullptr);
      OPENIMA_RETURN_IF_ERROR(result.status());
      km = std::move(*result);
    }
  }

  // 2. Confidence ranking: nodes closest to their centers are most reliable
  //    (double direct distance family — byte-identical values to the
  //    historical inline loop, so the stable sort is unchanged).
  std::vector<float> dist(static_cast<size_t>(n));
  la::AssignedEuclideanDistancesInto(embeddings, km.centers, km.assignments,
                                     dist.data(), options.kmeans.exec);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return dist[static_cast<size_t>(a)] < dist[static_cast<size_t>(b)];
  });
  const int num_reliable =
      static_cast<int>(std::floor(n * options.select_rate_pct / 100.0));
  std::vector<bool> reliable(static_cast<size_t>(n), false);
  for (int i = 0; i < num_reliable; ++i) {
    reliable[static_cast<size_t>(order[static_cast<size_t>(i)])] = true;
  }

  // 3. Hungarian alignment of clusters with seen classes on labeled nodes.
  OPENIMA_OBS_PHASE("alignment");
  std::vector<int> train_clusters;
  train_clusters.reserve(train_nodes.size());
  for (int v : train_nodes) {
    if (v < 0 || v >= n) return Status::InvalidArgument("train node id out of range");
    train_clusters.push_back(km.assignments[static_cast<size_t>(v)]);
  }
  auto alignment = assign::AlignClustersWithLabels(
      train_clusters, train_labels, options.num_clusters, num_seen);
  OPENIMA_RETURN_IF_ERROR(alignment.status());

  // 4. Final pseudo labels: manual labels dominate; reliable unlabeled nodes
  //    get the aligned cluster id.
  PseudoLabels out;
  out.labels.assign(static_cast<size_t>(n), -1);
  out.alignment = std::move(*alignment);
  std::vector<int> full_pred =
      assign::ApplyAlignment(km.assignments, out.alignment, num_seen);
  std::vector<bool> is_labeled(static_cast<size_t>(n), false);
  for (size_t t = 0; t < train_nodes.size(); ++t) {
    out.labels[static_cast<size_t>(train_nodes[t])] = train_labels[t];
    is_labeled[static_cast<size_t>(train_nodes[t])] = true;
  }
  for (int i = 0; i < n; ++i) {
    if (is_labeled[static_cast<size_t>(i)] || !reliable[static_cast<size_t>(i)]) {
      continue;
    }
    out.labels[static_cast<size_t>(i)] = full_pred[static_cast<size_t>(i)];
    ++out.num_pseudo_labeled;
  }
  out.cluster_assignments = std::move(km.assignments);
  out.centers = std::move(km.centers);
  return out;
}

}  // namespace openima::core
