/// Deterministic data-parallel minibatch training (DESIGN.md §2.8).
///
/// Each epoch shards the shuffled sampled-minibatch sequence into rounds of
/// up to W consecutive microbatches. A round runs its microbatches on W
/// persistent worker replicas (own parameter copy, memory pool, tape,
/// sampler and counter-keyed RNG stream each), combines the replica
/// gradients with a fixed-topology binary-tree all-reduce, and takes ONE
/// Adam step on the primary model, whose weights are then broadcast back to
/// every replica. The result is bit-identical to the serial reference
/// (config.data_parallel_reference): the same rounds executed one
/// microbatch at a time on the primary model, gradients accumulated into
/// per-slot buffers and reduced by the same tree.
///
/// Why the bits match, for any worker count and thread schedule:
///  - a replica's forward/backward runs on a Context(1) pinned to the same
///    kernel backend as the primary, and the kernel layer is
///    thread-count- and storage-origin-invariant (exec/context.h,
///    la/pool.h);
///  - every microbatch draws dropout from Rng(DeriveStreamSeed(seed, tag)),
///    a pure function of the (seed, microbatch) pair — no shared generator
///    state, so draw order across threads is irrelevant;
///  - the neighbor sampler is a pure function of (graph, seed, tag);
///  - the tree all-reduce adds the same operands in the same order no
///    matter which threads produced them, and runs on the coordinator.
/// Induction over rounds: equal weights in, equal gradients out, equal
/// Adam step, equal weights broadcast.
///
/// The pseudo-label refresh is pipelined behind training: at each refresh
/// boundary the previously launched background refresh (eval-mode
/// embeddings + K-Means on a weight *snapshot*) is joined and swapped in,
/// and a new one is launched from the current weights. Labels therefore lag
/// one refresh period behind the serial trainer — a schedule difference,
/// not a nondeterminism: the reference mode runs the identical compute
/// inline at the identical points.

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "src/autograd/tape.h"
#include "src/core/openima.h"
#include "src/core/train_internal.h"
#include "src/exec/replica.h"
#include "src/la/backend/backend.h"
#include "src/la/pool.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace openima::core {

namespace {

/// Stream-domain salt separating refresh RNG streams from microbatch
/// streams that share the model seed.
constexpr uint64_t kRefreshStreamSalt = 0x9e3779b97f4a7c15ULL;

/// dst += src, element-wise, in plain scalar order. Both modes reduce with
/// exactly this loop, so the reduction itself can never diverge between
/// them (and it is backend-independent by construction).
void AddInto(la::Matrix* dst, const la::Matrix& src) {
  OPENIMA_CHECK_EQ(dst->rows(), src.rows());
  OPENIMA_CHECK_EQ(dst->cols(), src.cols());
  float* d = dst->data();
  const float* s = src.data();
  const int64_t n = dst->size();
  for (int64_t i = 0; i < n; ++i) d[i] += s[i];
}

/// Fixed-topology binary-tree (distance-doubling) reduction over the grid
/// slots, leaving the sum in grid[0]. The topology depends only on the slot
/// count, never on thread timing.
void TreeReduce(std::vector<la::Matrix*>* grid) {
  const size_t m = grid->size();
  for (size_t s = 1; s < m; s *= 2) {
    for (size_t i = 0; i + s < m; i += 2 * s) {
      AddInto((*grid)[i], *(*grid)[i + s]);
    }
  }
}

/// Copies parameter values src -> dst (shapes fixed at construction, so
/// this is a flat element copy — no allocation).
void CopyParamValues(const EncoderWithHead& src, EncoderWithHead* dst) {
  const auto& sp = src.parameters();
  const auto& tp = dst->parameters();
  OPENIMA_CHECK_EQ(sp.size(), tp.size());
  for (size_t k = 0; k < sp.size(); ++k) {
    const la::Matrix& sv = sp[k].value();
    la::Matrix& dv = tp[k].node()->value;
    OPENIMA_CHECK_EQ(sv.size(), dv.size());
    std::copy(sv.data(), sv.data() + sv.size(), dv.data());
  }
}

}  // namespace

OpenImaModel::~OpenImaModel() = default;

Status OpenImaModel::EnsureDataParallel(const graph::Dataset& dataset) {
  if (dp_ != nullptr) return Status::OK();
  dp_ = std::make_unique<DataParallelState>();
  const int W = config_.workers;
  const size_t P = model_->parameters().size();

  graph::SamplerConfig sc;
  sc.num_layers = 2;
  sc.fanout = config_.sample_fanout;
  sc.seed = seed_;

  // Replica models are initialized from a throwaway RNG and immediately
  // overwritten with the primary weights — construction must not consume
  // draws from rng_ (the serial reference makes none here).
  if (!config_.data_parallel_reference) {
    dp_->set = std::make_unique<exec::ReplicaSet>(W);
    for (int i = 0; i < W; ++i) {
      auto rep = std::make_unique<WorkerReplica>();
      rep->ctx = dp_->set->context(i);
      // Pin the replica context to the primary's kernel backend so a
      // backend override (--backend / OPENIMA_BACKEND / config exec pin)
      // applies uniformly across replicas.
      rep->ctx->set_kernel_backend(&la::backend::Resolve(config_.exec));
      nn::GatEncoderConfig enc = config_.encoder;
      enc.exec = rep->ctx;
      Rng init(seed_);
      rep->model =
          std::make_unique<EncoderWithHead>(enc, config_.num_classes(), &init);
      CopyParamValues(*model_, rep->model.get());
      rep->sampler = std::make_unique<graph::NeighborSampler>(&dataset.graph, sc);
      dp_->replicas.push_back(std::move(rep));
    }
  } else {
    dp_->ref_grads.resize(static_cast<size_t>(W));
    for (int j = 0; j < W; ++j) {
      auto& slot = dp_->ref_grads[static_cast<size_t>(j)];
      slot.reserve(P);
      for (const auto& p : model_->parameters()) {
        slot.emplace_back(p.rows(), p.cols());
      }
    }
  }

  if (config_.use_pseudo_labels) {
    dp_->refresh_ctx.set_kernel_backend(&la::backend::Resolve(config_.exec));
    nn::GatEncoderConfig enc = config_.encoder;
    enc.exec = &dp_->refresh_ctx;
    Rng init(seed_);
    dp_->refresh_model =
        std::make_unique<EncoderWithHead>(enc, config_.num_classes(), &init);
    if (!config_.data_parallel_reference) {
      dp_->refresh_thread =
          std::make_unique<ThreadPool>(1, /*inline_when_single=*/false);
      dp_->refresh_group =
          std::make_unique<TaskGroup>(dp_->refresh_thread.get());
    }
  }

  // Checkpoint resume: re-install the refresh pipeline exactly as the save
  // captured it — the joined outcome of the refresh that was in flight, the
  // stream counter, and the snapshot epoch of the labels in use. The next
  // refresh boundary then swaps in the same outcome the uninterrupted run
  // would have (SaveCheckpoint / LoadCheckpoint in model_checkpoint.cc).
  if (restored_refresh_ != nullptr) {
    dp_->pending = std::move(restored_refresh_->pending);
    dp_->refresh_pending = restored_refresh_->refresh_pending;
    dp_->refresh_counter = restored_refresh_->refresh_counter;
    dp_->active_snapshot_epoch = restored_refresh_->active_snapshot_epoch;
    restored_refresh_.reset();
  }
  return Status::OK();
}

Status OpenImaModel::TrainOneEpochDataParallel(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split,
    graph::NeighborSampler* sampler, int epoch, int num_epochs) {
  const bool pairwise_on =
      config_.large_graph_mode && config_.pairwise_loss_weight > 0.0f;
  if (!config_.use_bpcl_emb && !config_.use_bpcl_logit && !config_.use_ce &&
      !pairwise_on) {
    return Status::FailedPrecondition(
        "no loss component enabled in OpenImaConfig");
  }
  const int n = dataset.num_nodes();
  const bool pooled = config_.use_memory_pool;
  const bool reference = config_.data_parallel_reference;
  refreshed_this_epoch_ = false;

  // ---- Pipelined pseudo-label refresh: swap then launch at boundaries ----
  const int refresh_every = std::max(1, config_.pseudo_refresh_every);
  const bool boundary = config_.use_pseudo_labels &&
                        epoch >= config_.pseudo_warmup_epochs &&
                        (epoch - config_.pseudo_warmup_epochs) % refresh_every ==
                            0;
  if (boundary) {
    // (1) Join and swap in the refresh launched one period ago (no-op at
    // the first boundary — nothing is in flight yet, so the first swap
    // happens one refresh period after the serial trainer's first refresh).
    if (dp_->refresh_pending) {
      if (dp_->refresh_group != nullptr) dp_->refresh_group->Wait();
      dp_->refresh_pending = false;
      OPENIMA_OBS_COUNT("train.pseudo_label_refreshes", 1);
      RefreshOutcome outcome = std::move(dp_->pending);
      dp_->pending = RefreshOutcome();
      dp_->active_snapshot_epoch = outcome.snapshot_epoch;
      // Re-home the centers into the coordinator's ambient storage: the
      // background matrix draws from dp_->refresh_pool, but the cached copy
      // (cached_pseudo_centers_) outlives dp_ — a pooled matrix must never
      // outlive its pool. Everything else in the outcome is plain vectors.
      outcome.result.centers = la::Matrix(outcome.result.centers);
      ApplyRefreshOutcome(std::move(outcome), dataset, split);
    }
    // (2) Snapshot the current weights and launch the next refresh — unless
    // no boundary remains to swap it in (its labels would never be used).
    if (epoch + refresh_every < num_epochs) {
      CopyParamValues(*model_, dp_->refresh_model.get());
      const uint64_t stream = dp_->refresh_counter++;
      // Warm-start from the centers active right now (just swapped in, or
      // empty before the first swap -> cold start), copied because the
      // background task outlives this scope.
      la::Matrix warm = cached_pseudo_centers_;
      auto task = [this, &dataset, &split, warm = std::move(warm), stream,
                   epoch, pooled] {
        OPENIMA_OBS_PHASE("pseudo_label_refresh");
        // The refresh replica has its own arena; its misses are the same
        // in threaded and reference mode because nothing else touches it.
        la::PoolBinding pool_binding(pooled ? &dp_->refresh_pool : nullptr);
        Rng refresh_rng(
            DeriveStreamSeed(seed_ ^ kRefreshStreamSalt, stream));
        RefreshOutcome out = ComputeRefresh(
            config_, *dp_->refresh_model, dataset, split, warm, &refresh_rng,
            &dp_->refresh_ctx, &dp_->refresh_pool);
        out.snapshot_epoch = epoch;
        // The global unpooled-allocation counter is shared with concurrent
        // worker allocations, so its diff is meaningless here; record the
        // sentinel in BOTH modes to keep their stats identical.
        out.unpooled_allocs = -1;
        dp_->pending = std::move(out);
      };
      dp_->refresh_pending = true;
      if (dp_->refresh_group != nullptr) {
        dp_->refresh_group->Submit(std::move(task));
      } else {
        task();  // reference mode: same compute, inline, same schedule point
      }
    }
  }

  // Labels for this epoch: the double-buffered pseudo labels once the first
  // swap has happened, manual labels before that (mirrors the serial
  // trainer's warmup behavior).
  std::vector<int> cl_labels(static_cast<size_t>(n), -1);
  if (config_.use_pseudo_labels && !cached_pseudo_labels_.empty()) {
    cl_labels = cached_pseudo_labels_;
  } else if (config_.use_manual_positives) {
    for (int v : split.train_nodes) {
      cl_labels[static_cast<size_t>(v)] =
          split.remapped_labels[static_cast<size_t>(v)];
    }
  }

  std::vector<int> train_label_of(static_cast<size_t>(n), -1);
  for (int v : split.train_nodes) {
    train_label_of[static_cast<size_t>(v)] =
        split.remapped_labels[static_cast<size_t>(v)];
  }

  // ---- Executable microbatches, sharded into rounds of up to W ----------
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(&order);
  const int bn = std::max(2, std::min(config_.batch_nodes, n));
  const int num_batches = (n + bn - 1) / bn;

  struct Microbatch {
    uint64_t tag;
    std::vector<int> seeds;
  };
  std::vector<Microbatch> batches;
  batches.reserve(static_cast<size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    const int begin = b * bn;
    const int end = std::min(n, begin + bn);
    if (end - begin < 2) continue;
    batches.push_back(
        {static_cast<uint64_t>(epoch) * static_cast<uint64_t>(num_batches) +
             static_cast<uint64_t>(b),
         std::vector<int>(order.begin() + begin, order.begin() + end)});
  }

  const int W = config_.workers;
  const size_t P = model_->parameters().size();
  double loss_sum = 0.0, ce_sum = 0.0, bpcl_emb_sum = 0.0,
         bpcl_logit_sum = 0.0, pairwise_sum = 0.0;
  int batches_stepped = 0;
  int rounds_stepped = 0;
  double grad_norm_sum = 0.0;
  obs::GradNormAccumulator last_grad_norms;
  const int64_t watchdog_before = obs::Watchdog::events();

  std::vector<MicrobatchResult> round_results(static_cast<size_t>(W));

  for (size_t first = 0; first < batches.size();
       first += static_cast<size_t>(W)) {
    const int R = static_cast<int>(
        std::min(static_cast<size_t>(W), batches.size() - first));
    // Backpropagating loss/R makes the reduced gradient the gradient of the
    // round's mean loss — one serial Adam step over R accumulated
    // microbatches. R == 1 keeps the exact unscaled graph.
    const float inv_round = 1.0f / static_cast<float>(R);

    if (!reference) {
      TaskGroup group(dp_->set->task_pool());
      for (int j = 0; j < R; ++j) {
        WorkerReplica* rep = dp_->replicas[static_cast<size_t>(j)].get();
        const Microbatch& mb = batches[first + static_cast<size_t>(j)];
        group.Submit([this, rep, &mb, &dataset, &cl_labels, &train_label_of,
                      inv_round, pooled] {
          // Every inner phase lands under "worker/..." on this thread's
          // private phase stack.
          OPENIMA_OBS_PHASE("worker");
          la::PoolBinding pool_binding(pooled ? &rep->pool : nullptr);
          autograd::TapeBinding tape_binding(pooled ? &rep->tape : nullptr);
          Rng mb_rng(DeriveStreamSeed(seed_, mb.tag));
          rep->result = RunSampledMicrobatch(
              config_, rep->model.get(), rep->sampler.get(), dataset,
              mb.seeds, cl_labels, train_label_of, mb.tag, inv_round, &mb_rng,
              rep->ctx);
        });
      }
      group.Wait();
      for (int j = 0; j < R; ++j) {
        round_results[static_cast<size_t>(j)] =
            dp_->replicas[static_cast<size_t>(j)]->result;
      }
    } else {
      for (int j = 0; j < R; ++j) {
        const Microbatch& mb = batches[first + static_cast<size_t>(j)];
        Rng mb_rng(DeriveStreamSeed(seed_, mb.tag));
        const MicrobatchResult result = RunSampledMicrobatch(
            config_, model_.get(), sampler, dataset, mb.seeds, cl_labels,
            train_label_of, mb.tag, inv_round, &mb_rng, config_.exec);
        round_results[static_cast<size_t>(j)] = result;
        if (result.stepped) {
          // Accumulate this slot's gradients; the primary's own buffers are
          // overwritten by the next microbatch's backward.
          const auto& params = model_->parameters();
          auto& slot = dp_->ref_grads[static_cast<size_t>(j)];
          for (size_t k = 0; k < P; ++k) {
            const la::Matrix& g = params[k].grad();
            std::copy(g.data(), g.data() + g.size(), slot[k].data());
          }
        }
        if (pooled) tape_.Reset();
      }
    }

    // Stepped slots in microbatch order; degenerate (unstepped) slots are
    // excluded from the reduction rather than zero-filled, so the operand
    // list — and therefore every bit of the sum — matches across modes.
    std::vector<int> stepped;
    stepped.reserve(static_cast<size_t>(R));
    for (int j = 0; j < R; ++j) {
      if (round_results[static_cast<size_t>(j)].stepped) stepped.push_back(j);
    }
    if (!stepped.empty()) {
      dp_->reduced.assign(P, nullptr);
      {
        OPENIMA_OBS_PHASE("allreduce");
        for (size_t k = 0; k < P; ++k) {
          auto& grid = dp_->reduce_grid;
          grid.clear();
          for (int j : stepped) {
            la::Matrix* g =
                reference
                    ? &dp_->ref_grads[static_cast<size_t>(j)][k]
                    : &dp_->replicas[static_cast<size_t>(j)]
                           ->model->parameters()[k]
                           .node()
                           ->grad;
            grid.push_back(g);
          }
          TreeReduce(&grid);
          dp_->reduced[k] = grid[0];
        }
      }
      if (obs::TelemetryEnabled()) {
        obs::GradNormAccumulator acc;
        for (size_t k = 0; k < P; ++k) {
          acc.Add(dp_->reduced[k]->data(), dp_->reduced[k]->size());
        }
        grad_norm_sum += acc.global();
        last_grad_norms = std::move(acc);
      }
      optimizer_->Step(dp_->reduced);
      OPENIMA_RETURN_IF_ERROR(obs::Watchdog::ConsumeStatus());
      ++rounds_stepped;
      if (!reference) {
        // Broadcast the stepped weights so every replica starts the next
        // round from the primary's exact bits.
        for (auto& rep : dp_->replicas) {
          CopyParamValues(*model_, rep->model.get());
        }
      }
    }
    for (int j = 0; j < R; ++j) {
      const MicrobatchResult& r = round_results[static_cast<size_t>(j)];
      if (!r.stepped) continue;
      loss_sum += r.loss;
      ce_sum += r.ce;
      bpcl_emb_sum += r.bpcl_emb;
      bpcl_logit_sum += r.bpcl_logit;
      pairwise_sum += r.pairwise;
      ++batches_stepped;
    }
    if (!reference && pooled) {
      // Worker graphs are dead (results copied, grads consumed); recycle
      // each replica's tape on the coordinator — no worker is running.
      for (int j = 0; j < R; ++j) {
        if (round_results[static_cast<size_t>(j)].stepped) {
          dp_->replicas[static_cast<size_t>(j)]->tape.Reset();
        }
      }
    }
  }

  if (batches_stepped == 0) {
    return Status::FailedPrecondition(
        "sampled training produced no trainable batches");
  }

  // Epoch aggregates: identical formulas to the serial sampled trainer —
  // loss means over stepped microbatches, gradient norms over the reduced
  // per-round gradients the optimizer actually consumed.
  const double inv = 1.0 / static_cast<double>(batches_stepped);
  const double loss = loss_sum * inv;
  stats_.epoch_losses.push_back(loss);
  stats_.epoch_ce_losses.push_back(ce_sum * inv);
  stats_.epoch_bpcl_emb_losses.push_back(bpcl_emb_sum * inv);
  stats_.epoch_bpcl_logit_losses.push_back(bpcl_logit_sum * inv);
  stats_.epoch_pairwise_losses.push_back(pairwise_sum * inv);
  OPENIMA_OBS_GAUGE("train.loss", loss);
  // Windowed training throughput for the live exporter: microbatches and
  // optimizer rounds land in the current epoch's tick.
  OPENIMA_OBS_ROLLING_COUNT("train.microbatches", batches_stepped);
  OPENIMA_OBS_ROLLING_COUNT("train.rounds", rounds_stepped);

  if (obs::TelemetryEnabled()) {
    const double grad_norm =
        grad_norm_sum / static_cast<double>(std::max(1, rounds_stepped));
    stats_.epoch_grad_norms.push_back(grad_norm);
    obs::EpochRecord record;
    record.trainer = "OpenIMA";
    record.epoch = epoch;
    record.loss = loss;
    record.has_components = true;
    record.loss_ce = ce_sum * inv;
    record.loss_bpcl_emb = bpcl_emb_sum * inv;
    record.loss_bpcl_logit = bpcl_logit_sum * inv;
    record.loss_pairwise = pairwise_sum * inv;
    record.grad_norm = grad_norm;  // mean of per-round reduced-grad norms
    record.param_grad_norms = last_grad_norms.per_param();  // last round
    record.watchdog_events = obs::Watchdog::events() - watchdog_before;
    record.pseudo_labels = last_pseudo_count_;
    record.pseudo_precision = last_pseudo_precision_;
    record.alignment_churn = last_alignment_churn_;
    record.refreshed = refreshed_this_epoch_;
    record.refresh_snapshot_epoch = dp_->active_snapshot_epoch;
    FillQualitySnapshot(HeadPredict(dataset), split, &record);
    OPENIMA_RETURN_IF_ERROR(obs::AppendTelemetry(record));
  }
  return Status::OK();
}

}  // namespace openima::core
