#include "src/core/serve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "src/assign/cluster_alignment.h"
#include "src/io/checkpoint.h"
#include "src/la/backend/backend.h"
#include "src/la/matrix_ops.h"
#include "src/obs/obs.h"
#include "src/util/string_util.h"

namespace openima::core {

namespace {

// Reads one field group of the checkpoint's meta section (the writer is
// OpenImaModel::SaveCheckpoint in model_checkpoint.cc; byte layout in
// SERVING.md).
struct CheckpointMeta {
  uint64_t seed = 0;
  uint8_t arch = 0;
  int32_t in_dim = 0;
  int32_t hidden_dim = 0;
  int32_t embedding_dim = 0;
  int32_t num_heads = 0;
  int32_t num_seen = 0;
  int32_t num_novel = 0;
  int32_t workers = 0;
  int32_t epochs_done = 0;
};

Status ReadMeta(const io::CheckpointReader& reader, CheckpointMeta* out) {
  auto src_or = reader.Section("meta");
  if (!src_or.ok()) return src_or.status();
  io::ByteSource src = std::move(*src_or);
  OPENIMA_RETURN_IF_ERROR(src.ReadU64(&out->seed));
  OPENIMA_RETURN_IF_ERROR(src.ReadU8(&out->arch));
  OPENIMA_RETURN_IF_ERROR(src.ReadI32(&out->in_dim));
  OPENIMA_RETURN_IF_ERROR(src.ReadI32(&out->hidden_dim));
  OPENIMA_RETURN_IF_ERROR(src.ReadI32(&out->embedding_dim));
  OPENIMA_RETURN_IF_ERROR(src.ReadI32(&out->num_heads));
  OPENIMA_RETURN_IF_ERROR(src.ReadI32(&out->num_seen));
  OPENIMA_RETURN_IF_ERROR(src.ReadI32(&out->num_novel));
  OPENIMA_RETURN_IF_ERROR(src.ReadI32(&out->workers));
  OPENIMA_RETURN_IF_ERROR(src.ReadI32(&out->epochs_done));
  return src.ExpectEnd();
}

}  // namespace

StatusOr<std::unique_ptr<InferenceService>> InferenceService::Load(
    const std::string& checkpoint_path, const graph::Dataset* dataset,
    const ServeOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("serve requires a dataset (graph+features)");
  }
  auto reader_or = io::CheckpointReader::Open(checkpoint_path);
  if (!reader_or.ok()) return reader_or.status();
  const io::CheckpointReader& reader = *reader_or;

  CheckpointMeta meta;
  OPENIMA_RETURN_IF_ERROR(ReadMeta(reader, &meta));
  if (meta.in_dim != dataset->feature_dim()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint expects %d-dim features, dataset has %d",
        meta.in_dim, dataset->feature_dim()));
  }
  if (meta.arch != static_cast<uint8_t>(nn::EncoderArch::kGat)) {
    return Status::InvalidArgument(
        "serve requires a GAT checkpoint (sampled forward support)");
  }

  auto service = std::unique_ptr<InferenceService>(new InferenceService());
  service->dataset_ = dataset;
  service->options_ = options;
  service->num_seen_ = meta.num_seen;
  service->num_novel_ = meta.num_novel;
  service->epochs_done_ = meta.epochs_done;
  service->encoder_config_.arch = nn::EncoderArch::kGat;
  service->encoder_config_.in_dim = meta.in_dim;
  service->encoder_config_.hidden_dim = meta.hidden_dim;
  service->encoder_config_.embedding_dim = meta.embedding_dim;
  service->encoder_config_.num_heads = meta.num_heads;
  service->encoder_config_.dropout = 0.0f;  // eval-only; never sampled
  service->encoder_config_.attn_dropout = 0.0f;

  // Parameter tensors, validated against the rebuilt geometry by shape: a
  // throwaway replica provides the authoritative tensor list.
  Rng probe_rng(0);
  EncoderWithHead probe(service->encoder_config_,
                        meta.num_seen + meta.num_novel, &probe_rng);
  const std::vector<autograd::Variable>& probe_params = probe.parameters();
  auto psrc_or = reader.Section("params");
  if (!psrc_or.ok()) return psrc_or.status();
  io::ByteSource psrc = std::move(*psrc_or);
  uint32_t param_count = 0;
  OPENIMA_RETURN_IF_ERROR(psrc.ReadU32(&param_count));
  if (param_count != probe_params.size()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint parameter count mismatch: rebuilt model has %zu "
        "tensors, checkpoint holds %u",
        probe_params.size(), static_cast<unsigned>(param_count)));
  }
  service->weights_.reserve(probe_params.size());
  for (const auto& p : probe_params) {
    la::Matrix w;
    OPENIMA_RETURN_IF_ERROR(
        io::ReadMatrixExpect(&psrc, p.rows(), p.cols(), &w));
    service->weights_.push_back(std::move(w));
  }
  OPENIMA_RETURN_IF_ERROR(psrc.ExpectEnd());

  auto ksrc_or = reader.Section("kmeans");
  if (!ksrc_or.ok()) return ksrc_or.status();
  io::ByteSource ksrc = std::move(*ksrc_or);
  std::vector<int> pseudo_labels;
  OPENIMA_RETURN_IF_ERROR(io::ReadMatrix(&ksrc, &service->centers_));
  OPENIMA_RETURN_IF_ERROR(io::ReadI32Vector(&ksrc, &pseudo_labels));
  OPENIMA_RETURN_IF_ERROR(ksrc.ExpectEnd());
  if (service->centers_.rows() == 0) {
    return Status::FailedPrecondition(
        "checkpoint holds no K-Means centers (saved before the first "
        "pseudo-label refresh) — nothing to classify against; train past "
        "pseudo_warmup_epochs before serving");
  }
  if (service->centers_.cols() != meta.embedding_dim) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint centers are %d-dim but the encoder embeds into %d",
        service->centers_.cols(), meta.embedding_dim));
  }

  auto lsrc_or = reader.Section("alignment");
  if (!lsrc_or.ok()) return lsrc_or.status();
  io::ByteSource lsrc = std::move(*lsrc_or);
  uint8_t has_alignment = 0;
  assign::ClusterAlignment alignment;
  OPENIMA_RETURN_IF_ERROR(lsrc.ReadU8(&has_alignment));
  OPENIMA_RETURN_IF_ERROR(io::ReadI32Vector(&lsrc, &alignment.cluster_to_class));
  int32_t num_matched = 0;
  OPENIMA_RETURN_IF_ERROR(lsrc.ReadI32(&num_matched));
  alignment.num_matched = num_matched;
  // Telemetry carries follow; serve does not need them.
  if (has_alignment == 0) {
    return Status::FailedPrecondition(
        "checkpoint holds no cluster->class alignment — train past "
        "pseudo_warmup_epochs before serving");
  }
  if (static_cast<int>(alignment.cluster_to_class.size()) !=
      service->centers_.rows()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint alignment covers %zu clusters but there are %d centers",
        alignment.cluster_to_class.size(), service->centers_.rows()));
  }

  // Precompute cluster -> final class exactly as Predict() would apply it:
  // seen classes through the Hungarian alignment, leftover clusters become
  // novel class ids >= num_seen in cluster-id order.
  std::vector<int> identity(
      static_cast<size_t>(service->centers_.rows()));
  std::iota(identity.begin(), identity.end(), 0);
  service->cluster_final_class_ =
      assign::ApplyAlignment(identity, alignment, meta.num_seen);

  if (obs::kCompiledIn && options.drift.policy != obs::WatchdogPolicy::kOff) {
    service->drift_ = std::make_unique<obs::DriftMonitor>(
        options.drift, service->centers_.rows());
  }
  return service;
}

std::unique_ptr<InferenceSession> InferenceService::NewSession() const {
  return std::unique_ptr<InferenceSession>(new InferenceSession(this));
}

InferenceSession::InferenceSession(const InferenceService* service)
    : service_(service) {
  // The replica's random init is immediately overwritten by the
  // checkpointed weights; any seed works.
  Rng init_rng(0);
  model_ = std::make_unique<EncoderWithHead>(
      service->encoder_config_, service->num_seen_ + service->num_novel_,
      &init_rng);
  const std::vector<autograd::Variable>& params = model_->parameters();
  for (size_t t = 0; t < params.size(); ++t) {
    autograd::Variable p = params[t];
    const la::Matrix& w = service->weights_[t];
    std::copy(w.data(), w.data() + w.size(), p.mutable_value().data());
  }
  graph::SamplerConfig sc;
  sc.num_layers = 2;
  sc.fanout = service->options_.sample_fanout;
  sc.seed = 0;  // fanout 0 (exhaustive) never draws; any seed is fine
  sampler_ = std::make_unique<graph::NeighborSampler>(
      &service->dataset_->graph, sc);
  seen_.assign(static_cast<size_t>(service->dataset_->num_nodes()), 0);
}

Status InferenceSession::Classify(const std::vector<int>& nodes, uint64_t tag,
                                  std::vector<ClassifyResult>* out) {
  // Live request metrics: windowed latency (rolling p50/p99 over the last
  // N requests) plus a sampled root span the inner phases nest under.
  obs::RollingScopedTimer request_timer("serve.request_ns");
  obs::RequestTrace request_trace("serve_request");
  const graph::Dataset& dataset = *service_->dataset_;
  const int n = dataset.num_nodes();
  if (nodes.empty()) {
    return Status::InvalidArgument("classify request has no nodes");
  }
  for (int v : nodes) {
    if (v < 0 || v >= n) {
      return Status::InvalidArgument(
          StrFormat("node id %d out of range [0, %d)", v, n));
    }
  }
  for (int v : nodes) {
    if (seen_[static_cast<size_t>(v)]) {
      for (int u : nodes) seen_[static_cast<size_t>(u)] = 0;
      return Status::InvalidArgument(StrFormat(
          "duplicate node id %d in request (ids must be distinct)", v));
    }
    seen_[static_cast<size_t>(v)] = 1;
  }
  for (int v : nodes) seen_[static_cast<size_t>(v)] = 0;

  graph::SampledBlock block;
  {
    OPENIMA_OBS_PHASE("serve_sample");
    block = sampler_->Sample(nodes, tag, &ctx_);
  }

  const int fd = dataset.feature_dim();
  const la::backend::KernelBackend& be = la::backend::Resolve(&ctx_);
  la::Matrix feats(block.num_input(), fd);
  {
    OPENIMA_OBS_PHASE("serve_gather");
    be.GatherRows(dataset.features.data(), fd, block.input_nodes.data(),
                  block.num_input(), fd, feats.data(), fd);
  }

  // Eval-mode embeddings of the seed rows (deterministic — no dropout), on
  // the unit sphere where the centers live.
  la::Matrix emb;
  {
    OPENIMA_OBS_PHASE("serve_forward");
    emb = model_->EmbedSampled(block, feats, /*training=*/false, nullptr)
              .value();
    la::RowL2NormalizeInPlace(&emb, 1e-12f, &ctx_);
  }

  // Numeric-health gate on the frozen forward pass (same watchdog the
  // training loop uses): a checkpoint served against corrupted features can
  // emit NaN/Inf embeddings, and nearest-center argmin over NaN distances
  // would silently classify garbage — reject the request instead.
  if (obs::Watchdog::active()) {
    const int64_t bad = obs::Watchdog::CheckTensor(
        "serve.forward", emb.data(), static_cast<int64_t>(emb.size()));
    if (bad > 0) {
      OPENIMA_OBS_COUNT("serve.watchdog_rejects", 1);
      return Status::Internal(StrFormat(
          "classify request produced %lld non-finite encoder outputs "
          "(watchdog policy %s) — rejecting instead of classifying garbage",
          static_cast<long long>(bad),
          obs::WatchdogPolicyName(obs::Watchdog::options().policy)));
    }
  }

  {
    OPENIMA_OBS_PHASE("serve_distance");
    const la::Matrix dist =
        la::PairwiseSquaredDistances(emb, service_->centers_, &ctx_);
    const int k = dist.cols();
    out->resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      const float* row = dist.Row(static_cast<int>(i));
      int best = 0;
      float best_d = row[0];
      float second_d = std::numeric_limits<float>::infinity();
      for (int c = 1; c < k; ++c) {
        if (row[c] < best_d) {
          second_d = best_d;
          best_d = row[c];
          best = c;
        } else if (row[c] < second_d) {
          second_d = row[c];
        }
      }
      ClassifyResult& r = (*out)[i];
      r.cluster = best;
      r.class_id = service_->cluster_final_class_[static_cast<size_t>(best)];
      r.is_novel = r.class_id >= service_->num_seen_;
      r.distance2 = best_d;
      r.margin = k > 1 ? second_d - best_d
                       : std::numeric_limits<float>::infinity();
    }
  }

  int64_t novel_count = 0;
  for (const ClassifyResult& r : *out) {
    if (r.is_novel) ++novel_count;
  }
  request_trace.SetMeta("batch", static_cast<int64_t>(nodes.size()));
  request_trace.SetMeta("tag", static_cast<int64_t>(tag));
  request_trace.SetMeta("novel", novel_count);
  request_trace.SetMeta("clusters",
                        static_cast<int64_t>(service_->centers_.rows()));

  OPENIMA_OBS_COUNT("serve.requests", 1);
  OPENIMA_OBS_COUNT("serve.nodes", static_cast<int64_t>(nodes.size()));
  OPENIMA_OBS_ROLLING_COUNT("serve.requests", 1);
  OPENIMA_OBS_ROLLING_COUNT("serve.nodes", static_cast<int64_t>(nodes.size()));
  OPENIMA_OBS_ROLLING_COUNT("serve.novel", novel_count);

  if (obs::DriftMonitor* drift = service_->drift_monitor()) {
    for (const ClassifyResult& r : *out) {
      drift->Observe(r.class_id, r.is_novel,
                     static_cast<double>(r.distance2));
    }
    OPENIMA_RETURN_IF_ERROR(drift->ConsumeStatus());
  }

  // The serve path's logical clock is the request counter: one tick per
  // completed request, so "the last 64 ticks" means the last 64 requests.
  OPENIMA_OBS_TICK();
  return Status::OK();
}

}  // namespace openima::core
