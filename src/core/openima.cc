#include "src/core/openima.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/autograd/ops.h"
#include "src/core/positive_sets.h"
#include "src/core/train_internal.h"
#include "src/la/backend/backend.h"
#include "src/la/matrix_ops.h"
#include "src/metrics/clustering_accuracy.h"
#include "src/metrics/info_metrics.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::core {

namespace ops = autograd::ops;
using autograd::Variable;

namespace {

obs::json::Value Int64Array(const std::vector<int64_t>& values) {
  obs::json::Value arr = obs::json::Value::Array();
  for (int64_t v : values) arr.Append(obs::json::Value::Int(v));
  return arr;
}

obs::json::Value IntArray(const std::vector<int>& values) {
  obs::json::Value arr = obs::json::Value::Array();
  for (int v : values) arr.Append(obs::json::Value::Int(v));
  return arr;
}

obs::json::Value DoubleArray(const std::vector<double>& values) {
  obs::json::Value arr = obs::json::Value::Array();
  for (double v : values) arr.Append(obs::json::Value::Double(v));
  return arr;
}

}  // namespace

// Declared in train_internal.h; the data-parallel trainer shares it.
void FillQualitySnapshot(const std::vector<int>& preds,
                         const graph::OpenWorldSplit& split,
                         obs::EpochRecord* record) {
  if (!split.val_nodes.empty()) {
    std::vector<int> val_preds, val_labels;
    val_preds.reserve(split.val_nodes.size());
    val_labels.reserve(split.val_nodes.size());
    for (int v : split.val_nodes) {
      val_preds.push_back(preds[static_cast<size_t>(v)]);
      val_labels.push_back(split.remapped_labels[static_cast<size_t>(v)]);
    }
    if (auto acc = metrics::ClusteringAccuracy(val_preds, val_labels,
                                               split.num_seen);
        acc.ok()) {
      record->has_quality = true;
      record->val_acc = *acc;
    }
  }
  std::vector<int> eval_preds, eval_labels;
  const std::vector<int> unlabeled = split.UnlabeledNodes();
  eval_preds.reserve(unlabeled.size());
  eval_labels.reserve(unlabeled.size());
  for (int v : unlabeled) {
    eval_preds.push_back(preds[static_cast<size_t>(v)]);
    eval_labels.push_back(split.remapped_labels[static_cast<size_t>(v)]);
  }
  if (auto nmi = metrics::NormalizedMutualInformation(eval_preds, eval_labels);
      nmi.ok()) {
    record->has_quality = true;
    record->val_nmi = *nmi;
  }
  if (!split.test_nodes.empty()) {
    std::vector<int> test_preds, test_labels;
    test_preds.reserve(split.test_nodes.size());
    test_labels.reserve(split.test_nodes.size());
    for (int v : split.test_nodes) {
      test_preds.push_back(preds[static_cast<size_t>(v)]);
      test_labels.push_back(split.remapped_labels[static_cast<size_t>(v)]);
    }
    if (auto open = metrics::EvaluateOpenWorld(test_preds, test_labels,
                                               split.num_seen,
                                               split.num_total_classes());
        open.ok()) {
      record->has_quality = true;
      record->acc_all = open->all;
      record->acc_seen = open->seen;
      record->acc_novel = open->novel;
    }
  }
}

obs::json::Value TrainStatsJson(const TrainStats& stats) {
  using obs::json::Value;
  Value losses = Value::Array();
  for (double l : stats.epoch_losses) losses.Append(Value::Double(l));

  Value pool = Value::Object();
  pool.Set("acquires", Value::Int(stats.pool_stats.acquires));
  pool.Set("hits", Value::Int(stats.pool_stats.hits));
  pool.Set("misses", Value::Int(stats.pool_stats.misses));
  pool.Set("releases", Value::Int(stats.pool_stats.releases));
  pool.Set("outstanding", Value::Int(stats.pool_stats.outstanding));
  pool.Set("bytes_acquired", Value::Int(stats.pool_stats.bytes_acquired));
  pool.Set("bytes_cached", Value::Int(stats.pool_stats.bytes_cached));
  pool.Set("bytes_allocated", Value::Int(stats.pool_stats.bytes_allocated));

  Value tape = Value::Object();
  tape.Set("nodes", Value::Int(stats.tape_stats.nodes));
  tape.Set("hits", Value::Int(stats.tape_stats.hits));
  tape.Set("misses", Value::Int(stats.tape_stats.misses));
  tape.Set("outstanding", Value::Int(stats.tape_stats.outstanding));
  tape.Set("resets", Value::Int(stats.tape_stats.resets));
  tape.Set("bytes_allocated", Value::Int(stats.tape_stats.bytes_allocated));

  Value out = Value::Object();
  out.Set("epochs", Value::Int(static_cast<int64_t>(stats.epoch_losses.size())));
  out.Set("epoch_losses", std::move(losses));
  out.Set("pseudo_labeled_last_epoch",
          Value::Int(stats.pseudo_labeled_last_epoch));
  out.Set("epoch_ce_losses", DoubleArray(stats.epoch_ce_losses));
  out.Set("epoch_bpcl_emb_losses", DoubleArray(stats.epoch_bpcl_emb_losses));
  out.Set("epoch_bpcl_logit_losses",
          DoubleArray(stats.epoch_bpcl_logit_losses));
  out.Set("epoch_pairwise_losses", DoubleArray(stats.epoch_pairwise_losses));
  out.Set("epoch_grad_norms", DoubleArray(stats.epoch_grad_norms));
  out.Set("refresh_pseudo_counts", IntArray(stats.refresh_pseudo_counts));
  out.Set("refresh_pseudo_precision",
          DoubleArray(stats.refresh_pseudo_precision));
  out.Set("refresh_alignment_churn",
          DoubleArray(stats.refresh_alignment_churn));
  out.Set("epoch_unpooled_allocs", Int64Array(stats.epoch_unpooled_allocs));
  out.Set("epoch_pool_misses", Int64Array(stats.epoch_pool_misses));
  out.Set("refresh_unpooled_allocs", Int64Array(stats.refresh_unpooled_allocs));
  out.Set("refresh_pool_misses", Int64Array(stats.refresh_pool_misses));
  out.Set("pool", std::move(pool));
  out.Set("tape", std::move(tape));
  return out;
}

OpenImaModel::OpenImaModel(const OpenImaConfig& config, int in_dim,
                           uint64_t seed)
    : config_(config), seed_(seed), rng_(seed) {
  OPENIMA_CHECK_GT(config.num_seen, 0);
  OPENIMA_CHECK_GT(config.num_novel, 0);
  nn::GatEncoderConfig enc = config.encoder;
  enc.in_dim = in_dim;
  if (enc.exec == nullptr) enc.exec = config.exec;
  config_.encoder = enc;
  model_ = std::make_unique<EncoderWithHead>(enc, config.num_classes(), &rng_);
  nn::AdamOptions adam;
  adam.lr = config.lr;
  adam.weight_decay = config.weight_decay;
  optimizer_ = std::make_unique<nn::Adam>(model_->parameters(), adam);
}

std::vector<int> OpenImaModel::ContrastiveLabels(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split,
    int epoch) {
  const int n = dataset.num_nodes();
  std::vector<int> labels(static_cast<size_t>(n), -1);
  auto fill_manual = [&] {
    for (int v : split.train_nodes) {
      labels[static_cast<size_t>(v)] =
          split.remapped_labels[static_cast<size_t>(v)];
    }
  };
  if (!config_.use_pseudo_labels) {
    if (config_.use_manual_positives) fill_manual();
    return labels;
  }
  if (epoch < config_.pseudo_warmup_epochs) {
    if (config_.use_manual_positives) fill_manual();
    return labels;
  }

  const int refresh = std::max(1, config_.pseudo_refresh_every);
  if ((epoch - config_.pseudo_warmup_epochs) % refresh == 0 ||
      cached_pseudo_labels_.empty()) {
    OPENIMA_OBS_PHASE("pseudo_label_refresh");
    OPENIMA_OBS_COUNT("train.pseudo_label_refreshes", 1);
    RefreshOutcome outcome =
        ComputeRefresh(config_, *model_, dataset, split,
                       cached_pseudo_centers_, &rng_, config_.exec, &pool_);
    ApplyRefreshOutcome(std::move(outcome), dataset, split);
  }
  labels = cached_pseudo_labels_;
  if (!config_.use_manual_positives) {
    // Pathological combination (pseudo labels without manual positives) —
    // still keep the pseudo labels, manual ones are a superset anyway.
  }
  return labels;
}

OpenImaModel::RefreshOutcome OpenImaModel::ComputeRefresh(
    const OpenImaConfig& config, const EncoderWithHead& model,
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split,
    const la::Matrix& warm_centers, Rng* rng, const exec::Context* ctx,
    la::Pool* pool) {
  RefreshOutcome out;
  // Cluster on the unit sphere — the geometry the contrastive losses
  // actually optimize.
  la::Matrix emb = model.EvalEmbeddings(dataset);
  la::RowL2NormalizeInPlace(&emb, 1e-12f, ctx);
  std::vector<int> train_labels;
  train_labels.reserve(split.train_nodes.size());
  for (int v : split.train_nodes) {
    train_labels.push_back(split.remapped_labels[static_cast<size_t>(v)]);
  }
  PseudoLabelOptions pl;
  pl.clusterer = config.clusterer;
  pl.num_clusters = config.num_classes();
  pl.select_rate_pct = config.rho_pct;
  pl.kmeans.max_iterations = config.kmeans_max_iterations;
  pl.kmeans.num_init = config.kmeans_num_init;
  pl.kmeans.exec = ctx;
  pl.use_minibatch = config.large_graph_mode;
  pl.minibatch.batch_size = config.minibatch_kmeans_batch;
  pl.minibatch.max_iterations = config.minibatch_kmeans_iterations;
  pl.minibatch.exec = ctx;
  // Seed clustering from the previous refresh's centers — embeddings
  // drift slowly between refreshes, so Lloyd converges in a few
  // iterations instead of re-running k-means++ from scratch. The first
  // refresh (empty cache) stays a cold start.
  pl.warm_start_centers = warm_centers;
  const int64_t unpooled_before = la::UnpooledAllocCount();
  const int64_t pool_misses_before = pool->stats().misses;
  auto result = GenerateBiasReducedPseudoLabels(
      emb, split.train_nodes, train_labels, config.num_seen, pl, rng);
  out.unpooled_allocs = la::UnpooledAllocCount() - unpooled_before;
  out.pool_misses = pool->stats().misses - pool_misses_before;
  if (!result.ok()) {
    out.ok = false;
    out.error = result.status().ToString();
    return out;
  }
  out.ok = true;
  out.result = std::move(*result);
  return out;
}

void OpenImaModel::ApplyRefreshOutcome(RefreshOutcome outcome,
                                       const graph::Dataset& dataset,
                                       const graph::OpenWorldSplit& split) {
  const int n = dataset.num_nodes();
  stats_.refresh_unpooled_allocs.push_back(outcome.unpooled_allocs);
  stats_.refresh_pool_misses.push_back(outcome.pool_misses);
  refreshed_this_epoch_ = true;
  if (!outcome.ok) {
    OPENIMA_LOG(Warning) << "pseudo-labeling failed (" << outcome.error
                         << "); falling back to manual labels";
    std::vector<int> labels(static_cast<size_t>(n), -1);
    for (int v : split.train_nodes) {
      labels[static_cast<size_t>(v)] =
          split.remapped_labels[static_cast<size_t>(v)];
    }
    cached_pseudo_labels_ = std::move(labels);
    last_pseudo_count_ = 0;
    last_pseudo_precision_ = -1.0;
    last_alignment_churn_ = -1.0;
  } else {
    PseudoLabels& result = outcome.result;
    cached_pseudo_labels_ = result.labels;
    cached_pseudo_centers_ = std::move(result.centers);
    stats_.pseudo_labeled_last_epoch = result.num_pseudo_labeled;
    OPENIMA_OBS_GAUGE("train.pseudo_labels", result.num_pseudo_labeled);
    // Telemetry-grade quality of this refresh: precision of the selected
    // pseudo labels against ground truth (manual nodes excluded — their
    // labels are copied, not predicted) and how much of the Eq. 5
    // cluster -> class alignment changed since the previous refresh.
    std::vector<bool> is_manual(static_cast<size_t>(n), false);
    for (int v : split.train_nodes) is_manual[static_cast<size_t>(v)] = true;
    last_pseudo_count_ = result.num_pseudo_labeled;
    last_pseudo_precision_ = metrics::PseudoLabelPrecision(
        result.labels, split.remapped_labels, is_manual, config_.num_seen);
    last_alignment_churn_ =
        has_last_alignment_
            ? assign::AlignmentChurn(last_alignment_, result.alignment)
            : -1.0;
    last_alignment_ = std::move(result.alignment);
    has_last_alignment_ = true;
  }
  stats_.refresh_pseudo_counts.push_back(last_pseudo_count_);
  stats_.refresh_pseudo_precision.push_back(last_pseudo_precision_);
  stats_.refresh_alignment_churn.push_back(last_alignment_churn_);
}

Status OpenImaModel::Train(const graph::Dataset& dataset,
                           const graph::OpenWorldSplit& split) {
  if (epochs_done_ >= config_.epochs) {
    return Status::FailedPrecondition("model already trained");
  }
  if (config_.stop_after_epochs < 0) {
    return Status::InvalidArgument("stop_after_epochs must be >= 0");
  }
  if (dataset.feature_dim() != config_.encoder.in_dim) {
    return Status::InvalidArgument("feature dim does not match encoder");
  }
  if (split.num_seen != config_.num_seen) {
    return Status::InvalidArgument("split num_seen != config num_seen");
  }
  if (config_.workers < 0) {
    return Status::InvalidArgument("workers must be >= 0");
  }
  if (config_.workers > 0 && !config_.sampled_training) {
    return Status::InvalidArgument(
        "workers > 0 requires sampled_training (the data-parallel trainer "
        "shards sampled minibatches across replicas)");
  }
  const int n = dataset.num_nodes();
  const int nb = std::max(2, std::min(config_.batch_size, n));

  std::vector<int> train_labels;
  train_labels.reserve(split.train_nodes.size());
  for (int v : split.train_nodes) {
    train_labels.push_back(split.remapped_labels[static_cast<size_t>(v)]);
  }
  // CE uses both encoder views of the labeled nodes.
  std::vector<int> ce_labels = train_labels;
  ce_labels.insert(ce_labels.end(), train_labels.begin(), train_labels.end());

  // Sampled minibatch mode: a deterministic neighbor sampler over the
  // dataset's CSR graph, depth matched to the 2-layer encoder. Constructed
  // once so its dense global->local workspace is reused by every batch.
  std::unique_ptr<graph::NeighborSampler> sampler;
  if (config_.sampled_training) {
    if (!model_->encoder().SupportsSampled()) {
      return Status::InvalidArgument(
          "sampled_training requires an encoder with sampled-forward "
          "support (GAT); the GCN ablation trains full-graph only");
    }
    graph::SamplerConfig sc;
    sc.num_layers = 2;
    sc.fanout = config_.sample_fanout;
    sc.seed = seed_;
    sampler = std::make_unique<graph::NeighborSampler>(&dataset.graph, sc);
  }

  // Data-parallel substrate (replica models/contexts/threads, the refresh
  // replica, reference-mode gradient buffers) — built before the pool
  // bindings below so its long-lived storage stays off the training arena.
  if (config_.workers > 0) {
    OPENIMA_RETURN_IF_ERROR(EnsureDataParallel(dataset));
  }

  // Activate the model's memory arena for the whole loop: matrices and
  // graph nodes built on this thread recycle through pool_/tape_ (the
  // nullptr bindings below are the plain-heap ablation path).
  const bool pooled = config_.use_memory_pool;
  la::PoolBinding pool_binding(pooled ? &pool_ : nullptr);
  autograd::TapeBinding tape_binding(pooled ? &tape_ : nullptr);

  // Resume-aware epoch window: a fresh model starts at 0; after
  // LoadCheckpoint the loop continues where the checkpointed run stopped.
  // stop_after_epochs truncates the window without changing the schedule —
  // refresh boundaries and microbatch tags stay keyed to config_.epochs, so
  // stop-save-resume replays the identical epoch sequence.
  const int last_epoch = config_.stop_after_epochs > 0
                             ? std::min(config_.epochs,
                                        config_.stop_after_epochs)
                             : config_.epochs;
  for (int epoch = epochs_done_; epoch < last_epoch; ++epoch) {
    OPENIMA_OBS_PHASE("epoch");
    OPENIMA_OBS_COUNT("train.epochs", 1);
    const int64_t unpooled_before = la::UnpooledAllocCount();
    const int64_t pool_misses_before = pool_.stats().misses;
    if (config_.workers > 0) {
      OPENIMA_RETURN_IF_ERROR(TrainOneEpochDataParallel(
          dataset, split, sampler.get(), epoch, config_.epochs));
    } else if (sampler != nullptr) {
      OPENIMA_RETURN_IF_ERROR(
          TrainOneEpochSampled(dataset, split, sampler.get(), epoch));
    } else {
      OPENIMA_RETURN_IF_ERROR(
          TrainOneEpoch(dataset, split, ce_labels, nb, epoch));
    }
    // TrainOneEpoch's graph is fully freed by now; recycle its tape blocks.
    if (pooled) tape_.Reset();
    stats_.epoch_unpooled_allocs.push_back(la::UnpooledAllocCount() -
                                           unpooled_before);
    stats_.epoch_pool_misses.push_back(pool_.stats().misses -
                                       pool_misses_before);
    epochs_done_ = epoch + 1;
    // Epoch heartbeat for live observers: the trainer's logical clock is
    // the epoch counter, and the exporter (if one is running) is nudged so
    // the on-disk snapshot never lags a slow epoch by a full interval.
    OPENIMA_OBS_GAUGE("train.epoch", epochs_done_);
    OPENIMA_OBS_ROLLING_COUNT("train.epochs", 1);
    OPENIMA_OBS_TICK();
    obs::NotifyMetricsExporter();
  }
  // A stop_after_epochs exit can leave a pipelined refresh in flight whose
  // task captures the caller's dataset/split by reference; join it before
  // returning so Train() never hands back control with live references to
  // caller stack state. The completed outcome stays queued in dp_ and is
  // swapped in (or checkpointed) exactly as if it were still pending.
  if (last_epoch < config_.epochs && dp_ != nullptr &&
      dp_->refresh_pending && dp_->refresh_group != nullptr) {
    dp_->refresh_group->Wait();
  }
  stats_.pool_stats = pool_.stats();
  stats_.tape_stats = tape_.stats();
  return Status::OK();
}

Status OpenImaModel::TrainOneEpoch(const graph::Dataset& dataset,
                                   const graph::OpenWorldSplit& split,
                                   const std::vector<int>& ce_labels, int nb,
                                   int epoch) {
  const int n = dataset.num_nodes();
  refreshed_this_epoch_ = false;
  const std::vector<int> cl_labels = ContrastiveLabels(dataset, split, epoch);

  // Eval-mode embeddings for the pairwise-loss neighbor search.
  la::Matrix pair_emb;
  if (config_.large_graph_mode && config_.pairwise_loss_weight > 0.0f) {
    pair_emb = model_->EvalEmbeddings(dataset);
    la::RowL2NormalizeInPlace(&pair_emb, 1e-12f, config_.exec);
  }

  // Two stochastic views of the whole graph (SimCSE positive pairs).
  Variable z1, z2, logits1, logits2;
  {
    OPENIMA_OBS_PHASE("forward");
    z1 = model_->Embed(dataset, /*training=*/true, &rng_);
    z2 = model_->Embed(dataset, /*training=*/true, &rng_);
    const bool need_logits = config_.use_bpcl_logit || config_.use_ce ||
                             (config_.large_graph_mode &&
                              config_.pairwise_loss_weight > 0.0f);
    if (need_logits) {
      logits1 = model_->Logits(z1);
      logits2 = model_->Logits(z2);
    }
  }

  // Contrastive blocks over a shuffled node order.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(&order);
  const int num_blocks = (n + nb - 1) / nb;
  const float block_scale = 1.0f / static_cast<float>(num_blocks);

  Variable total;
  // Component sums are plain double reads of already-computed 1x1 graph
  // values — the accumulation graph itself is untouched, so the total loss
  // stays bit-identical to the unrecorded path.
  double ce_sum = 0.0, bpcl_emb_sum = 0.0, bpcl_logit_sum = 0.0,
         pairwise_sum = 0.0;
  auto add_loss = [&total](const Variable& piece, double* component) {
    *component += static_cast<double>(piece.value()(0, 0));
    total = total.defined() ? ops::Add(total, piece) : piece;
  };

  for (int blk = 0; blk < num_blocks; ++blk) {
    const int begin = blk * nb;
    const int end = std::min(n, begin + nb);
    if (end - begin < 2) continue;
    std::vector<int> nodes(order.begin() + begin, order.begin() + end);
    std::vector<int> batch_labels;
    batch_labels.reserve(nodes.size());
    for (int v : nodes) {
      batch_labels.push_back(cl_labels[static_cast<size_t>(v)]);
    }
    const auto positives = BuildPositiveSets(batch_labels);

    // Fused L2-normalize + SupCon (one op, one backward sweep) — gradients
    // identical to the composed RowL2Normalize/SupConLoss chain.
    if (config_.use_bpcl_emb) {
      Variable zb = ops::ConcatRows(
          {ops::GatherRows(z1, nodes), ops::GatherRows(z2, nodes)});
      add_loss(ops::Scale(ops::NormalizedSupCon(zb, positives, config_.tau,
                                                1e-12f, config_.exec),
                          block_scale),
               &bpcl_emb_sum);
    }
    if (config_.use_bpcl_logit) {
      Variable eb = ops::ConcatRows(
          {ops::GatherRows(logits1, nodes), ops::GatherRows(logits2, nodes)});
      add_loss(ops::Scale(ops::NormalizedSupCon(eb, positives, config_.tau,
                                                1e-12f, config_.exec),
                          block_scale),
               &bpcl_logit_sum);
    }
    if (config_.large_graph_mode && config_.pairwise_loss_weight > 0.0f) {
      // ORCA-style pairwise objective: each block node is paired with its
      // most similar block peer (cosine over current eval embeddings).
      std::vector<ops::Pair> pairs;
      pairs.reserve(nodes.size());
      for (size_t a = 0; a < nodes.size(); ++a) {
        const float* za = pair_emb.Row(nodes[a]);
        int best = -1;
        float best_sim = -2.0f;
        for (size_t b = 0; b < nodes.size(); ++b) {
          if (a == b) continue;
          const float* zb = pair_emb.Row(nodes[b]);
          float sim = 0.0f;
          for (int j = 0; j < pair_emb.cols(); ++j) sim += za[j] * zb[j];
          if (sim > best_sim) {
            best_sim = sim;
            best = static_cast<int>(b);
          }
        }
        pairs.push_back({static_cast<int>(nodes[a]), nodes[static_cast<size_t>(best)], 1.0f});
      }
      Variable pw = ops::PairwiseDotBce(logits1, pairs);
      add_loss(ops::Scale(pw, config_.pairwise_loss_weight * block_scale),
               &pairwise_sum);
    }
  }

  if (config_.use_ce && !split.train_nodes.empty()) {
    Variable tl = ops::ConcatRows({ops::GatherRows(logits1, split.train_nodes),
                                   ops::GatherRows(logits2, split.train_nodes)});
    add_loss(ops::Scale(ops::SoftmaxCrossEntropy(tl, ce_labels), config_.eta),
             &ce_sum);
  }

  if (!total.defined()) {
    return Status::FailedPrecondition(
        "no loss component enabled in OpenImaConfig");
  }
  const int64_t watchdog_before = obs::Watchdog::events();
  {
    OPENIMA_OBS_PHASE("backward");
    model_->ZeroGrad();
    total.Backward();
  }

  // Gradient L2 norms (global + per parameter, deterministic sequential
  // accumulation in parameter order) — measured between backward and the
  // optimizer step, only while a telemetry sink wants them.
  obs::GradNormAccumulator grad_norms;
  if (obs::TelemetryEnabled()) {
    for (const auto& p : model_->parameters()) {
      if (!p.HasGrad()) continue;
      grad_norms.Add(p.grad().data(), p.grad().size());
    }
    stats_.epoch_grad_norms.push_back(grad_norms.global());
  }

  optimizer_->Step();
  // Surface a numeric-watchdog trip (kAbort policy) as a training error
  // instead of optimizing on NaN for the remaining epochs.
  OPENIMA_RETURN_IF_ERROR(obs::Watchdog::ConsumeStatus());

  const double loss = total.value()(0, 0);
  stats_.epoch_losses.push_back(loss);
  stats_.epoch_ce_losses.push_back(ce_sum);
  stats_.epoch_bpcl_emb_losses.push_back(bpcl_emb_sum);
  stats_.epoch_bpcl_logit_losses.push_back(bpcl_logit_sum);
  stats_.epoch_pairwise_losses.push_back(pairwise_sum);
  OPENIMA_OBS_GAUGE("train.loss", loss);

  if (obs::TelemetryEnabled()) {
    obs::EpochRecord record;
    record.trainer = "OpenIMA";
    record.epoch = epoch;
    record.loss = loss;
    record.has_components = true;
    record.loss_ce = ce_sum;
    record.loss_bpcl_emb = bpcl_emb_sum;
    record.loss_bpcl_logit = bpcl_logit_sum;
    record.loss_pairwise = pairwise_sum;
    record.grad_norm = grad_norms.global();
    record.param_grad_norms = grad_norms.per_param();
    record.watchdog_events = obs::Watchdog::events() - watchdog_before;
    record.pseudo_labels = last_pseudo_count_;
    record.pseudo_precision = last_pseudo_precision_;
    record.alignment_churn = last_alignment_churn_;
    record.refreshed = refreshed_this_epoch_;

    // Validation-quality snapshot — training stays bit-identical with
    // telemetry on or off (see FillQualitySnapshot).
    FillQualitySnapshot(HeadPredict(dataset), split, &record);
    OPENIMA_RETURN_IF_ERROR(obs::AppendTelemetry(record));
  }
  return Status::OK();
}

Status OpenImaModel::TrainOneEpochSampled(const graph::Dataset& dataset,
                                          const graph::OpenWorldSplit& split,
                                          graph::NeighborSampler* sampler,
                                          int epoch) {
  const bool pairwise_on =
      config_.large_graph_mode && config_.pairwise_loss_weight > 0.0f;
  if (!config_.use_bpcl_emb && !config_.use_bpcl_logit && !config_.use_ce &&
      !pairwise_on) {
    return Status::FailedPrecondition(
        "no loss component enabled in OpenImaConfig");
  }
  const int n = dataset.num_nodes();
  refreshed_this_epoch_ = false;
  // Pseudo-label refresh is unchanged from the full-graph trainer: full
  // eval-mode embeddings through (mini-batch) K-Means on the paper's
  // cadence — only the gradient steps below are sampled.
  const std::vector<int> cl_labels = ContrastiveLabels(dataset, split, epoch);

  // Remapped label per node for per-batch CE (-1 = unlabeled).
  std::vector<int> train_label_of(static_cast<size_t>(n), -1);
  for (int v : split.train_nodes) {
    train_label_of[static_cast<size_t>(v)] =
        split.remapped_labels[static_cast<size_t>(v)];
  }

  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(&order);
  const int bn = std::max(2, std::min(config_.batch_nodes, n));
  const int num_batches = (n + bn - 1) / bn;
  const bool pooled = config_.use_memory_pool;

  double loss_sum = 0.0, ce_sum = 0.0, bpcl_emb_sum = 0.0,
         bpcl_logit_sum = 0.0, pairwise_sum = 0.0;
  int batches_stepped = 0;
  double grad_norm_sum = 0.0;
  obs::GradNormAccumulator last_grad_norms;
  const int64_t watchdog_before = obs::Watchdog::events();

  for (int b = 0; b < num_batches; ++b) {
    const int begin = b * bn;
    const int end = std::min(n, begin + bn);
    if (end - begin < 2) continue;
    const std::vector<int> seeds(order.begin() + begin, order.begin() + end);
    const uint64_t tag =
        static_cast<uint64_t>(epoch) * static_cast<uint64_t>(num_batches) +
        static_cast<uint64_t>(b);
    // inv_round == 1 keeps the loss graph byte-identical to the
    // pre-extraction one-step-per-batch trainer (no scaling op at all).
    // The microbatch RNG is counter-keyed off (seed, tag) — a pure
    // function, never the sequential model stream — so every microbatch's
    // randomness is independent of which thread or replica runs it: the
    // data-parallel trainer derives the SAME stream for the SAME tag,
    // which is what makes workers=1 bit-identical to this loop
    // (tests/data_parallel_test.cc).
    Rng mb_rng(DeriveStreamSeed(seed_, tag));
    const MicrobatchResult result = RunSampledMicrobatch(
        config_, model_.get(), sampler, dataset, seeds, cl_labels,
        train_label_of, tag, /*inv_round=*/1.0f, &mb_rng, config_.exec);
    // A CE-only batch without labeled seeds has nothing to optimize.
    if (!result.stepped) continue;
    if (obs::TelemetryEnabled()) {
      obs::GradNormAccumulator acc;
      for (const auto& p : model_->parameters()) {
        if (!p.HasGrad()) continue;
        acc.Add(p.grad().data(), p.grad().size());
      }
      grad_norm_sum += acc.global();
      last_grad_norms = std::move(acc);
    }
    optimizer_->Step();
    OPENIMA_RETURN_IF_ERROR(obs::Watchdog::ConsumeStatus());
    loss_sum += result.loss;
    ce_sum += result.ce;
    bpcl_emb_sum += result.bpcl_emb;
    bpcl_logit_sum += result.bpcl_logit;
    pairwise_sum += result.pairwise;
    // Per-batch scratch (block-sized matrices and graph nodes, all dead
    // once RunSampledMicrobatch returns) recycles within the epoch — the
    // sampled trainer's zero-allocation steady state is per batch, not per
    // epoch.
    if (pooled) tape_.Reset();
    ++batches_stepped;
  }
  if (batches_stepped == 0) {
    return Status::FailedPrecondition(
        "sampled training produced no trainable batches");
  }

  // Epoch aggregates are means over stepped batches (the full-graph
  // trainer's block_scale averaging, applied post hoc).
  const double inv = 1.0 / static_cast<double>(batches_stepped);
  const double loss = loss_sum * inv;
  stats_.epoch_losses.push_back(loss);
  stats_.epoch_ce_losses.push_back(ce_sum * inv);
  stats_.epoch_bpcl_emb_losses.push_back(bpcl_emb_sum * inv);
  stats_.epoch_bpcl_logit_losses.push_back(bpcl_logit_sum * inv);
  stats_.epoch_pairwise_losses.push_back(pairwise_sum * inv);
  OPENIMA_OBS_GAUGE("train.loss", loss);

  if (obs::TelemetryEnabled()) {
    stats_.epoch_grad_norms.push_back(grad_norm_sum * inv);
    obs::EpochRecord record;
    record.trainer = "OpenIMA";
    record.epoch = epoch;
    record.loss = loss;
    record.has_components = true;
    record.loss_ce = ce_sum * inv;
    record.loss_bpcl_emb = bpcl_emb_sum * inv;
    record.loss_bpcl_logit = bpcl_logit_sum * inv;
    record.loss_pairwise = pairwise_sum * inv;
    record.grad_norm = grad_norm_sum * inv;  // mean of per-batch globals
    record.param_grad_norms = last_grad_norms.per_param();  // last batch
    record.watchdog_events = obs::Watchdog::events() - watchdog_before;
    record.pseudo_labels = last_pseudo_count_;
    record.pseudo_precision = last_pseudo_precision_;
    record.alignment_churn = last_alignment_churn_;
    record.refreshed = refreshed_this_epoch_;
    FillQualitySnapshot(HeadPredict(dataset), split, &record);
    OPENIMA_RETURN_IF_ERROR(obs::AppendTelemetry(record));
  }
  return Status::OK();
}

OpenImaModel::MicrobatchResult OpenImaModel::RunSampledMicrobatch(
    const OpenImaConfig& config, EncoderWithHead* model,
    graph::NeighborSampler* sampler, const graph::Dataset& dataset,
    const std::vector<int>& seeds, const std::vector<int>& cl_labels,
    const std::vector<int>& train_label_of, uint64_t tag, float inv_round,
    Rng* rng, const exec::Context* ctx) {
  const bool pairwise_on =
      config.large_graph_mode && config.pairwise_loss_weight > 0.0f;
  const int fd = dataset.feature_dim();
  const la::backend::KernelBackend& be = la::backend::Resolve(ctx);
  MicrobatchResult out;

  graph::SampledBlock block;
  {
    OPENIMA_OBS_PHASE("sample");
    block = sampler->Sample(seeds, tag, ctx);
  }

  // Compact feature rows for the block's input frontier via the
  // backend gather kernel (bit-identical across backends).
  la::Matrix feats(block.num_input(), fd);
  {
    OPENIMA_OBS_PHASE("gather");
    be.GatherRows(dataset.features.data(), fd, block.input_nodes.data(),
                  block.num_input(), fd, feats.data(), fd);
  }

  // Two stochastic views of the same block (SimCSE positive pairs);
  // z rows align with `seeds` because the seeds are the block's
  // output prefix in order.
  Variable z1, z2, logits1, logits2;
  {
    OPENIMA_OBS_PHASE("forward");
    z1 = model->EmbedSampled(block, feats, /*training=*/true, rng);
    z2 = model->EmbedSampled(block, feats, /*training=*/true, rng);
    if (config.use_bpcl_logit || config.use_ce || pairwise_on) {
      logits1 = model->Logits(z1);
      logits2 = model->Logits(z2);
    }
  }

  std::vector<int> batch_labels;
  batch_labels.reserve(seeds.size());
  for (int v : seeds) {
    batch_labels.push_back(cl_labels[static_cast<size_t>(v)]);
  }
  const auto positives = BuildPositiveSets(batch_labels);

  Variable total;
  double bce = 0.0, bemb = 0.0, blogit = 0.0, bpw = 0.0;
  auto add_loss = [&total](const Variable& piece, double* component) {
    *component += static_cast<double>(piece.value()(0, 0));
    total = total.defined() ? ops::Add(total, piece) : piece;
  };

  if (config.use_bpcl_emb) {
    add_loss(ops::NormalizedSupCon(ops::ConcatRows({z1, z2}), positives,
                                   config.tau, 1e-12f, ctx),
             &bemb);
  }
  if (config.use_bpcl_logit) {
    add_loss(ops::NormalizedSupCon(ops::ConcatRows({logits1, logits2}),
                                   positives, config.tau, 1e-12f, ctx),
             &blogit);
  }
  if (pairwise_on) {
    // ORCA-style pairwise objective on batch-local geometry: each seed
    // pairs with its most cosine-similar batch peer under the current
    // view's embeddings (z1 values, normalized on the fly). Unlike the
    // full-graph trainer there is no O(n*E) eval forward per epoch —
    // the batch IS the candidate pool. Indices are batch-local, which
    // is what the batch-local logits1 expects.
    const la::Matrix& zv = z1.value();
    const int bsz = zv.rows();
    const int fz = zv.cols();
    std::vector<float> norms(static_cast<size_t>(bsz));
    for (int a = 0; a < bsz; ++a) {
      double sq = 0.0;
      const float* row = zv.Row(a);
      for (int j = 0; j < fz; ++j) {
        sq += static_cast<double>(row[j]) * row[j];
      }
      norms[static_cast<size_t>(a)] =
          static_cast<float>(std::sqrt(std::max(sq, 1e-24)));
    }
    std::vector<ops::Pair> pairs;
    pairs.reserve(static_cast<size_t>(bsz));
    for (int a = 0; a < bsz; ++a) {
      const float* za = zv.Row(a);
      int best = -1;
      float best_sim = -2.0f;
      for (int c = 0; c < bsz; ++c) {
        if (a == c) continue;
        const float* zc = zv.Row(c);
        float dot = 0.0f;
        for (int j = 0; j < fz; ++j) dot += za[j] * zc[j];
        const float sim = dot / (norms[static_cast<size_t>(a)] *
                                 norms[static_cast<size_t>(c)]);
        if (sim > best_sim) {
          best_sim = sim;
          best = c;
        }
      }
      pairs.push_back({a, best, 1.0f});
    }
    add_loss(ops::Scale(ops::PairwiseDotBce(logits1, pairs),
                        config.pairwise_loss_weight),
             &bpw);
  }
  if (config.use_ce) {
    std::vector<int> labeled_local, labels;
    for (size_t i = 0; i < seeds.size(); ++i) {
      const int l = train_label_of[static_cast<size_t>(seeds[i])];
      if (l >= 0) {
        labeled_local.push_back(static_cast<int>(i));
        labels.push_back(l);
      }
    }
    if (!labeled_local.empty()) {
      std::vector<int> both = labels;
      both.insert(both.end(), labels.begin(), labels.end());
      Variable tl = ops::ConcatRows({ops::GatherRows(logits1, labeled_local),
                                     ops::GatherRows(logits2, labeled_local)});
      add_loss(ops::Scale(ops::SoftmaxCrossEntropy(tl, both), config.eta),
               &bce);
    }
  }

  // A CE-only batch without labeled seeds has nothing to optimize.
  if (!total.defined()) return out;

  {
    OPENIMA_OBS_PHASE("backward");
    model->ZeroGrad();
    // Data-parallel rounds backpropagate loss/R so that summing the R
    // replica gradients yields the gradient of the round's mean loss. The
    // scaling op is skipped entirely at inv_round == 1 — the serial trainer
    // and 1-microbatch rounds keep the exact unscaled graph.
    if (inv_round != 1.0f) {
      ops::Scale(total, inv_round).Backward();
    } else {
      total.Backward();
    }
  }
  out.stepped = true;
  out.loss = static_cast<double>(total.value()(0, 0));
  out.ce = bce;
  out.bpcl_emb = bemb;
  out.bpcl_logit = blogit;
  out.pairwise = bpw;
  return out;
}

std::vector<int> OpenImaModel::HeadPredict(
    const graph::Dataset& dataset) const {
  return la::RowArgmax(model_->EvalLogits(dataset));
}

StatusOr<std::vector<int>> OpenImaModel::Predict(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split) {
  const bool head_trained = config_.use_ce || config_.use_bpcl_logit;
  if (config_.large_graph_mode && head_trained &&
      config_.large_graph_head_predict) {
    // §V-B point 7: predict with the classification head on large graphs.
    return HeadPredict(dataset);
  }
  la::Matrix emb = model_->EvalEmbeddings(dataset);
  // Cluster in the contrastive geometry.
  la::RowL2NormalizeInPlace(&emb, 1e-12f, config_.exec);
  cluster::KMeansResult kmeans_result;
  if (config_.large_graph_mode) {
    // Head untrained (pure contrastive variants): mini-batch K-Means.
    cluster::MiniBatchKMeansOptions mb;
    mb.num_clusters = config_.num_classes();
    mb.batch_size = config_.minibatch_kmeans_batch;
    mb.max_iterations = config_.minibatch_kmeans_iterations;
    mb.exec = config_.exec;
    auto result = cluster::MiniBatchKMeans(emb, mb, &rng_);
    OPENIMA_RETURN_IF_ERROR(result.status());
    kmeans_result = std::move(*result);
  } else {
    std::vector<int> tc, tl;
    tc.reserve(split.train_nodes.size());
    tl.reserve(split.train_nodes.size());
    for (int v : split.train_nodes) {
      tc.push_back(v);
      tl.push_back(split.remapped_labels[static_cast<size_t>(v)]);
    }
    auto result = RunClusterer(config_.clusterer, emb, config_.num_classes(),
                               tc, tl, split.num_seen,
                               config_.kmeans_max_iterations,
                               std::max(config_.kmeans_num_init, 3), &rng_,
                               config_.exec);
    OPENIMA_RETURN_IF_ERROR(result.status());
    kmeans_result = std::move(*result);
  }
  const cluster::KMeansResult* result = &kmeans_result;

  std::vector<int> train_clusters, train_labels;
  train_clusters.reserve(split.train_nodes.size());
  train_labels.reserve(split.train_nodes.size());
  for (int v : split.train_nodes) {
    train_clusters.push_back(result->assignments[static_cast<size_t>(v)]);
    train_labels.push_back(split.remapped_labels[static_cast<size_t>(v)]);
  }
  auto alignment = assign::AlignClustersWithLabels(
      train_clusters, train_labels, config_.num_classes(), split.num_seen);
  OPENIMA_RETURN_IF_ERROR(alignment.status());
  return assign::ApplyAlignment(result->assignments, *alignment,
                                split.num_seen);
}

}  // namespace openima::core
