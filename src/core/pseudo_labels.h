#ifndef OPENIMA_CORE_PSEUDO_LABELS_H_
#define OPENIMA_CORE_PSEUDO_LABELS_H_

#include <vector>

#include "src/assign/cluster_alignment.h"
#include "src/cluster/kmeans.h"
#include "src/core/clusterer.h"
#include "src/la/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace openima::core {

/// Options for bias-reduced pseudo-label generation (§IV-C of the paper).
struct PseudoLabelOptions {
  /// Number of clusters = |C_l| + |C_n| (seen plus novel classes).
  int num_clusters = 2;

  /// The paper's rho (%): fraction of highest-confidence cluster predictions
  /// kept as reliable pseudo labels. Confidence is inversely proportional to
  /// the distance to the assigned cluster center.
  double select_rate_pct = 75.0;

  /// Clustering algorithm (the paper's default is K-Means; §IV-B notes
  /// alternatives can be swapped in).
  ClustererKind clusterer = ClustererKind::kKMeans;

  /// Full-batch K-Means settings.
  cluster::KMeansOptions kmeans;

  /// Mini-batch K-Means instead of Lloyd (the paper's choice for the
  /// ogbn-scale graphs).
  bool use_minibatch = false;
  cluster::MiniBatchKMeansOptions minibatch;

  /// Warm start: centers from a previous refresh (num_clusters x dim).
  /// Embeddings drift slowly between refreshes, so seeding Lloyd (or the
  /// mini-batch online phase) from the last solution replaces the k-means++
  /// pass + restarts with a few refinement iterations. Empty or
  /// shape-mismatched centers fall back to cold seeding. Applied to the
  /// plain/spherical K-Means and mini-batch paths only.
  la::Matrix warm_start_centers;
};

/// Output of pseudo-label generation.
struct PseudoLabels {
  /// Per node: a class id (seen ids in [0, num_seen); unaligned novel
  /// clusters get ids >= num_seen) or -1 when the node received no pseudo
  /// label. Labeled training nodes always keep their manual label here.
  std::vector<int> labels;

  /// Number of unlabeled nodes that received a pseudo label.
  int num_pseudo_labeled = 0;

  /// Raw K-Means cluster ids for every node (for SC computation).
  std::vector<int> cluster_assignments;

  /// Cluster centers (num_clusters x d).
  la::Matrix centers;

  /// The Eq. 5 cluster -> seen-class alignment.
  assign::ClusterAlignment alignment;
};

/// The paper's bias-reduced pseudo-labeling: unsupervised K-Means over all
/// node embeddings, distance-based confidence ranking across labeled and
/// unlabeled nodes jointly, top-rho% selection, and Hungarian alignment of
/// clusters with seen classes on the labeled nodes. Unlabeled nodes in the
/// reliable set get m*(o_i); labeled nodes keep manual labels.
///
/// `train_nodes`/`train_labels` are parallel; labels are remapped seen-class
/// ids in [0, num_seen).
StatusOr<PseudoLabels> GenerateBiasReducedPseudoLabels(
    const la::Matrix& embeddings, const std::vector<int>& train_nodes,
    const std::vector<int>& train_labels, int num_seen,
    const PseudoLabelOptions& options, Rng* rng);

}  // namespace openima::core

#endif  // OPENIMA_CORE_PSEUDO_LABELS_H_
