#ifndef OPENIMA_CLUSTER_KMEANS_H_
#define OPENIMA_CLUSTER_KMEANS_H_

#include <vector>

#include "src/exec/context.h"
#include "src/la/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace openima::cluster {

/// Options for Lloyd's K-Means with k-means++ seeding (Arthur &
/// Vassilvitskii, SODA 2007 — the paper's reference [32]).
struct KMeansOptions {
  int num_clusters = 2;
  int max_iterations = 100;
  /// Converged when the relative inertia improvement drops below this.
  double tol = 1e-4;
  /// Independent restarts; the result with the lowest inertia wins.
  int num_init = 1;
  /// k-means++ D^2 seeding (true) vs uniform random seeding (false).
  bool kmeanspp = true;

  /// Spherical K-Means: centers are re-normalized to unit length after
  /// every update step, so assignment becomes cosine similarity for
  /// L2-normalized inputs (callers should pass normalized points).
  bool spherical = false;

  /// Warm start: when non-empty (must be num_clusters x dim), Lloyd runs
  /// once from these centers — no k-means++ seeding and no restarts.
  /// Callers that re-cluster slowly drifting data (the pseudo-label refresh)
  /// seed from the previous solution and converge in a few iterations.
  la::Matrix initial_centers;

  /// Triangle-inequality accelerated Lloyd (Hamerly-style per-point lower
  /// bounds maintained from per-iteration center drift, exact recompute on
  /// bound failure). Assignments, inertia, centers and iteration counts are
  /// bit-identical to the plain path — the parity suite enforces it — so
  /// this is purely a speed knob; `false` exists for benchmarking and for
  /// the parity tests themselves.
  bool accelerated = true;

  /// Optional precomputed per-point squared L2 norms (size = points.rows(),
  /// borrowed — must outlive the call). The novel-count k-sweep computes
  /// them once and shares them across every k; when null they are computed
  /// internally into pooled scratch.
  const std::vector<float>* row_sq_norms = nullptr;

  /// Execution context (nullptr = process default). All reductions are
  /// deterministic chunked combines, so results are bit-identical for any
  /// thread count.
  const exec::Context* exec = nullptr;
};

/// Clustering result.
struct KMeansResult {
  la::Matrix centers;            ///< num_clusters x dim
  std::vector<int> assignments;  ///< per point, in [0, num_clusters)
  double inertia = 0.0;          ///< sum of squared distances to centers
  int iterations = 0;            ///< Lloyd iterations of the winning run
  /// Accelerated-path instrumentation: points whose k-1 non-assigned
  /// distance evaluations were pruned by the lower bound vs points that
  /// fell back to an exact row scan (zero when accelerated = false).
  int64_t bound_prunes = 0;
  int64_t bound_failures = 0;
};

/// Full-batch Lloyd K-Means. Empty clusters are re-seeded with the point
/// farthest from its current center. Deterministic in (points, options, rng
/// state).
StatusOr<KMeansResult> KMeans(const la::Matrix& points,
                              const KMeansOptions& options, Rng* rng);

/// Options for mini-batch K-Means (Sculley, WWW 2010 — the paper's [66]),
/// used for the ogbn-scale graphs.
struct MiniBatchKMeansOptions {
  int num_clusters = 2;
  int batch_size = 1024;
  int max_iterations = 100;  ///< number of mini-batch steps
  bool kmeanspp = true;      ///< seed from a sample with k-means++
  /// After the online phase, run one full assignment pass to produce labels
  /// and inertia.
  bool final_full_assignment = true;

  /// Warm start: when non-empty (num_clusters x dim), the online phase
  /// continues from these centers instead of seeding from a sample.
  la::Matrix initial_centers;

  /// Execution context (nullptr = process default); the sequential online
  /// updates keep their order, only assignments/inertia parallelize.
  const exec::Context* exec = nullptr;
};

/// Mini-batch K-Means with per-center learning rates 1/count.
StatusOr<KMeansResult> MiniBatchKMeans(const la::Matrix& points,
                                       const MiniBatchKMeansOptions& options,
                                       Rng* rng);

/// Assigns each point to its nearest center (used to re-predict with fixed
/// centers). Returns per-point cluster ids.
std::vector<int> AssignToNearest(const la::Matrix& points,
                                 const la::Matrix& centers,
                                 const exec::Context* ctx = nullptr);

/// Sum of squared distances of points to their assigned centers
/// (deterministic chunked reduction).
double Inertia(const la::Matrix& points, const la::Matrix& centers,
               const std::vector<int>& assignments,
               const exec::Context* ctx = nullptr);

}  // namespace openima::cluster

#endif  // OPENIMA_CLUSTER_KMEANS_H_
