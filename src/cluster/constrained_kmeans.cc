#include "src/cluster/constrained_kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/la/distance.h"
#include "src/la/matrix_ops.h"
#include "src/la/pool.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace openima::cluster {

StatusOr<KMeansResult> ConstrainedKMeans(
    const la::Matrix& points, const std::vector<int>& labeled_nodes,
    const std::vector<int>& labeled_classes, int num_classes,
    const ConstrainedKMeansOptions& options, Rng* rng) {
  const int n = points.rows(), d = points.cols();
  const int k = options.num_clusters;
  if (n == 0 || d == 0) return Status::InvalidArgument("points empty");
  if (labeled_nodes.size() != labeled_classes.size()) {
    return Status::InvalidArgument("labeled nodes/classes size mismatch");
  }
  if (num_classes < 1 || k < num_classes || k > n) {
    return Status::InvalidArgument(
        StrFormat("need 1 <= num_classes (%d) <= num_clusters (%d) <= n (%d)",
                  num_classes, k, n));
  }

  // Pinned assignment for labeled points (-1 = free).
  std::vector<int> pinned(static_cast<size_t>(n), -1);
  for (size_t t = 0; t < labeled_nodes.size(); ++t) {
    const int v = labeled_nodes[t];
    const int c = labeled_classes[t];
    if (v < 0 || v >= n) return Status::InvalidArgument("node out of range");
    if (c < 0 || c >= num_classes) {
      return Status::InvalidArgument("class out of range");
    }
    pinned[static_cast<size_t>(v)] = c;
  }

  // Initialization: class clusters at labeled means; free clusters seeded
  // from the unlabeled points via k-means++-style D^2 sampling against the
  // class centers.
  la::Matrix centers(k, d);
  {
    std::vector<int> counts(static_cast<size_t>(num_classes), 0);
    for (size_t t = 0; t < labeled_nodes.size(); ++t) {
      const int c = labeled_classes[t];
      ++counts[static_cast<size_t>(c)];
      float* row = centers.Row(c);
      const float* p = points.Row(labeled_nodes[t]);
      for (int j = 0; j < d; ++j) row[j] += p[j];
    }
    for (int c = 0; c < num_classes; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        return Status::InvalidArgument(
            StrFormat("class %d has no labeled points", c));
      }
      float* row = centers.Row(c);
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      for (int j = 0; j < d; ++j) row[j] *= inv;
    }
    std::vector<int> unlabeled;
    for (int v = 0; v < n; ++v) {
      if (pinned[static_cast<size_t>(v)] < 0) unlabeled.push_back(v);
    }
    std::vector<double> dist2(unlabeled.size(),
                              std::numeric_limits<double>::max());
    auto refresh = [&](int center_row) {
      la::UpdateNearestSquaredDistancesSubset(points, centers.Row(center_row),
                                              unlabeled, dist2.data());
    };
    for (int c = 0; c < num_classes; ++c) refresh(c);
    for (int c = num_classes; c < k; ++c) {
      double total = 0.0;
      for (double v : dist2) total += v;
      int pick;
      if (unlabeled.empty()) {
        pick = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
        centers.SetRow(c, points, pick);
        continue;
      }
      if (total <= 0.0) {
        pick = unlabeled[static_cast<size_t>(
            rng->UniformInt(static_cast<uint64_t>(unlabeled.size())))];
      } else {
        double u = rng->Uniform() * total;
        pick = unlabeled.back();
        double acc = 0.0;
        for (size_t i = 0; i < unlabeled.size(); ++i) {
          acc += dist2[i];
          if (u < acc) {
            pick = unlabeled[i];
            break;
          }
        }
      }
      centers.SetRow(c, points, pick);
      refresh(c);
    }
  }

  // Constrained Lloyd iterations. Assignment + accumulation parallelize
  // over fixed point chunks; per-chunk partials (inertia, per-cluster sums
  // and counts) combine in ascending chunk order, so the result is
  // bit-identical for any thread count.
  const exec::Context& ex = exec::Get(options.exec);
  const exec::Context* ctx = &ex;
  const int64_t grain = exec::Context::GrainForMaxChunks(n, 256, 64);
  const int64_t chunks = exec::Context::NumChunks(n, grain);
  std::vector<double> inertia_partial(static_cast<size_t>(chunks), 0.0);
  std::vector<la::Matrix> sum_partial(
      static_cast<size_t>(chunks), la::Matrix(k, d));
  std::vector<std::vector<int>> count_partial(
      static_cast<size_t>(chunks), std::vector<int>(static_cast<size_t>(k)));
  // Steady-state iteration scratch, hoisted out of the loop and drawn from
  // the context-resolved pool: point norms once, the n x k distance matrix
  // and the combined sums reused every iteration.
  la::PoolBuffer xsq(n, ctx);
  la::RowSquaredNormsInto(points, xsq.data(), ctx);
  la::PoolBuffer d2(static_cast<int64_t>(n) * k, ctx);
  la::Matrix sums(k, d);
  KMeansResult result;
  result.assignments.assign(static_cast<size_t>(n), 0);
  double prev_inertia = std::numeric_limits<double>::max();
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    la::PairwiseSquaredDistancesInto(points, centers, xsq.data(), nullptr,
                                     d2.data(), ctx);
    ex.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
      double t = 0.0;
      la::Matrix& psums = sum_partial[static_cast<size_t>(chunk)];
      std::vector<int>& pcounts = count_partial[static_cast<size_t>(chunk)];
      psums.Fill(0.0f);
      std::fill(pcounts.begin(), pcounts.end(), 0);
      for (int64_t i = b; i < e; ++i) {
        int best = pinned[static_cast<size_t>(i)];
        const float* row = d2.data() + i * k;
        if (best < 0) {
          best = 0;
          for (int c = 1; c < k; ++c) {
            if (row[c] < row[best]) best = c;
          }
        }
        result.assignments[static_cast<size_t>(i)] = best;
        t += row[best];
        ++pcounts[static_cast<size_t>(best)];
        float* srow = psums.Row(best);
        const float* prow = points.Row(static_cast<int>(i));
        for (int j = 0; j < d; ++j) srow[j] += prow[j];
      }
      inertia_partial[static_cast<size_t>(chunk)] = t;
    });
    double inertia = 0.0;
    sums.Fill(0.0f);
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int64_t ch = 0; ch < chunks; ++ch) {
      inertia += inertia_partial[static_cast<size_t>(ch)];
      const la::Matrix& psums = sum_partial[static_cast<size_t>(ch)];
      const std::vector<int>& pcounts = count_partial[static_cast<size_t>(ch)];
      for (int c = 0; c < k; ++c) {
        counts[static_cast<size_t>(c)] += pcounts[static_cast<size_t>(c)];
        float* srow = sums.Row(c);
        const float* prow = psums.Row(c);
        for (int j = 0; j < d; ++j) srow[j] += prow[j];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep old center
      float* crow = centers.Row(c);
      const float* srow = sums.Row(c);
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      for (int j = 0; j < d; ++j) crow[j] = srow[j] * inv;
    }
    result.inertia = inertia;
    if (prev_inertia - inertia <= options.tol * std::max(prev_inertia, 1e-12)) {
      ++iter;
      break;
    }
    prev_inertia = inertia;
  }
  result.centers = std::move(centers);
  result.iterations = iter;
  return result;
}

}  // namespace openima::cluster
