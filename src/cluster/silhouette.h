#ifndef OPENIMA_CLUSTER_SILHOUETTE_H_
#define OPENIMA_CLUSTER_SILHOUETTE_H_

#include <vector>

#include "src/exec/context.h"
#include "src/la/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace openima::cluster {

/// Options for the silhouette coefficient (Rousseeuw, 1987 — the paper's
/// [69], one half of its SC&ACC model-selection metric).
struct SilhouetteOptions {
  /// Anchors are subsampled beyond this size (distances still computed
  /// against all points). 0 means exact.
  int max_samples = 2000;

  /// Tiled fast path: anchor-block x point-tile distances through the
  /// register-tiled expansion kernel (float, see DESIGN.md §2.3) instead of
  /// the scalar per-pair double loop. Scores differ from the scalar path
  /// only by float-vs-double rounding (~1e-3 on unit-scale data); `false`
  /// keeps the historical scalar reference for tests and benchmarks.
  bool use_blocked = true;

  /// Optional precomputed per-point squared L2 norms for the blocked path
  /// (size = points.rows(), borrowed — must outlive the call). The
  /// novel-count k-sweep shares one copy across every k; when null they are
  /// computed internally into pooled scratch.
  const std::vector<float>* row_sq_norms = nullptr;

  /// Execution context (nullptr = process default); anchors are scored in
  /// parallel with a deterministic chunked sum.
  const exec::Context* exec = nullptr;
};

/// Mean silhouette value over (sampled) points with Euclidean distances:
/// s(i) = (b_i - a_i) / max(a_i, b_i), a = mean intra-cluster distance,
/// b = smallest mean distance to another cluster. Points in singleton
/// clusters contribute 0. Returns a value in [-1, 1]; errors when fewer
/// than 2 clusters are present.
StatusOr<double> SilhouetteCoefficient(const la::Matrix& points,
                                       const std::vector<int>& assignments,
                                       const SilhouetteOptions& options,
                                       Rng* rng);

}  // namespace openima::cluster

#endif  // OPENIMA_CLUSTER_SILHOUETTE_H_
