#ifndef OPENIMA_CLUSTER_GMM_H_
#define OPENIMA_CLUSTER_GMM_H_

#include <vector>

#include "src/exec/context.h"
#include "src/la/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace openima::cluster {

/// Options for a diagonal-covariance Gaussian mixture fitted with EM — one
/// of the alternative clustering algorithms the paper notes can replace
/// K-Means in OpenIMA's pseudo-labeling and prediction ([53]-[56], [19]).
struct GmmOptions {
  int num_components = 2;
  int max_iterations = 50;
  /// Converged when the mean log-likelihood improves by less than this.
  double tol = 1e-4;
  /// Variance floor, preventing components collapsing onto single points.
  double min_variance = 1e-4;
  /// Lloyd iterations of the K-Means used for initialization.
  int init_kmeans_iterations = 10;

  /// Execution context (nullptr = process default). E- and M-step use
  /// deterministic chunked reductions — bit-identical for any thread count.
  const exec::Context* exec = nullptr;
};

/// Fitted mixture.
struct GmmResult {
  la::Matrix means;              ///< k x d
  la::Matrix variances;          ///< k x d (diagonal covariances)
  std::vector<double> weights;   ///< k, sums to 1
  std::vector<int> assignments;  ///< argmax responsibility per point
  double mean_log_likelihood = 0.0;
  int iterations = 0;
};

/// Fits the mixture with EM (K-Means init, log-domain E-step).
StatusOr<GmmResult> FitGmm(const la::Matrix& points, const GmmOptions& options,
                           Rng* rng);

}  // namespace openima::cluster

#endif  // OPENIMA_CLUSTER_GMM_H_
