#include "src/cluster/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace openima::cluster {

StatusOr<double> SilhouetteCoefficient(const la::Matrix& points,
                                       const std::vector<int>& assignments,
                                       const SilhouetteOptions& options,
                                       Rng* rng) {
  const int n = points.rows();
  if (n == 0) return Status::InvalidArgument("no points");
  if (static_cast<int>(assignments.size()) != n) {
    return Status::InvalidArgument("assignments size mismatch");
  }
  int k = 0;
  for (int a : assignments) {
    if (a < 0) return Status::InvalidArgument("negative cluster id");
    k = std::max(k, a + 1);
  }
  if (k < 2) {
    return Status::FailedPrecondition(
        "silhouette requires at least 2 clusters");
  }
  std::vector<int> cluster_size(static_cast<size_t>(k), 0);
  for (int a : assignments) ++cluster_size[static_cast<size_t>(a)];

  std::vector<int> anchors;
  if (options.max_samples > 0 && n > options.max_samples) {
    OPENIMA_CHECK(rng != nullptr);
    anchors = rng->SampleWithoutReplacement(n, options.max_samples);
  } else {
    anchors.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) anchors[static_cast<size_t>(i)] = i;
  }

  // Anchors score independently; the total is a deterministic chunked
  // reduction (chunk layout depends only on the anchor count, per-chunk
  // partials combine in ascending chunk order).
  const int d = points.cols();
  const int64_t num_anchors = static_cast<int64_t>(anchors.size());
  const int64_t grain = exec::Context::GrainForMaxChunks(num_anchors, 16, 64);
  const int64_t chunks = exec::Context::NumChunks(num_anchors, grain);
  std::vector<double> partial(static_cast<size_t>(chunks), 0.0);
  exec::Get(options.exec)
      .ParallelForChunks(num_anchors, grain,
                         [&](int64_t chunk, int64_t begin, int64_t end) {
    double t = 0.0;
    std::vector<double> sum_dist(static_cast<size_t>(k));
    for (int64_t ai = begin; ai < end; ++ai) {
      const int i = anchors[static_cast<size_t>(ai)];
      const int own = assignments[static_cast<size_t>(i)];
      if (cluster_size[static_cast<size_t>(own)] <= 1) continue;  // s(i) = 0
      std::fill(sum_dist.begin(), sum_dist.end(), 0.0);
      const float* pi = points.Row(i);
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const float* pj = points.Row(j);
        double s = 0.0;
        for (int c = 0; c < d; ++c) {
          const double diff = static_cast<double>(pi[c]) - pj[c];
          s += diff * diff;
        }
        sum_dist[static_cast<size_t>(assignments[static_cast<size_t>(j)])] +=
            std::sqrt(s);
      }
      const double a =
          sum_dist[static_cast<size_t>(own)] /
          (cluster_size[static_cast<size_t>(own)] - 1);
      double b = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        if (c == own || cluster_size[static_cast<size_t>(c)] == 0) continue;
        b = std::min(b, sum_dist[static_cast<size_t>(c)] /
                            cluster_size[static_cast<size_t>(c)]);
      }
      if (b == std::numeric_limits<double>::max()) continue;
      t += (b - a) / std::max(a, b);
    }
    partial[static_cast<size_t>(chunk)] = t;
  });
  double total = 0.0;
  for (int64_t ch = 0; ch < chunks; ++ch) {
    total += partial[static_cast<size_t>(ch)];
  }
  return total / static_cast<double>(anchors.size());
}

}  // namespace openima::cluster
