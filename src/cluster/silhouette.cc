#include "src/cluster/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/la/distance.h"
#include "src/la/matrix_ops.h"
#include "src/la/pool.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::cluster {

namespace {

// Blocked-path tile shape: kAnchorBlock anchor rows against kTileN-point
// tiles of the transposed point matrix. One tile is kAnchorBlock * kTileN
// floats (32 KB) of distances plus the B-panel the GEMM micro-kernel streams
// — both cache-resident.
constexpr int kAnchorBlock = 16;
constexpr int64_t kTileN = 512;

}  // namespace

StatusOr<double> SilhouetteCoefficient(const la::Matrix& points,
                                       const std::vector<int>& assignments,
                                       const SilhouetteOptions& options,
                                       Rng* rng) {
  const int n = points.rows();
  OPENIMA_OBS_PHASE("silhouette");
  OPENIMA_OBS_COUNT("silhouette.evaluations", 1);
  if (n == 0) return Status::InvalidArgument("no points");
  if (static_cast<int>(assignments.size()) != n) {
    return Status::InvalidArgument("assignments size mismatch");
  }
  int k = 0;
  for (int a : assignments) {
    if (a < 0) return Status::InvalidArgument("negative cluster id");
    k = std::max(k, a + 1);
  }
  if (k < 2) {
    return Status::FailedPrecondition(
        "silhouette requires at least 2 clusters");
  }
  if (options.row_sq_norms != nullptr &&
      static_cast<int>(options.row_sq_norms->size()) != n) {
    return Status::InvalidArgument("row_sq_norms size mismatch");
  }
  std::vector<int> cluster_size(static_cast<size_t>(k), 0);
  for (int a : assignments) ++cluster_size[static_cast<size_t>(a)];

  std::vector<int> anchors;
  if (options.max_samples > 0 && n > options.max_samples) {
    OPENIMA_CHECK(rng != nullptr);
    anchors = rng->SampleWithoutReplacement(n, options.max_samples);
  } else {
    anchors.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) anchors[static_cast<size_t>(i)] = i;
  }

  // Anchors score independently; the total is a deterministic chunked
  // reduction (chunk layout depends only on the anchor count, per-chunk
  // partials combine in ascending chunk order).
  const int d = points.cols();
  const int64_t num_anchors = static_cast<int64_t>(anchors.size());
  const int64_t grain = exec::Context::GrainForMaxChunks(num_anchors, 16, 64);
  const int64_t chunks = exec::Context::NumChunks(num_anchors, grain);
  std::vector<double> partial(static_cast<size_t>(chunks), 0.0);
  const exec::Context& ex = exec::Get(options.exec);
  const exec::Context* ctx = options.exec;

  if (!options.use_blocked) {
    // Scalar reference path: per-pair double-precision loop.
    ex.ParallelForChunks(num_anchors, grain,
                         [&](int64_t chunk, int64_t begin, int64_t end) {
      double t = 0.0;
      std::vector<double> sum_dist(static_cast<size_t>(k));
      for (int64_t ai = begin; ai < end; ++ai) {
        const int i = anchors[static_cast<size_t>(ai)];
        const int own = assignments[static_cast<size_t>(i)];
        if (cluster_size[static_cast<size_t>(own)] <= 1) continue;  // s(i) = 0
        std::fill(sum_dist.begin(), sum_dist.end(), 0.0);
        const float* pi = points.Row(i);
        for (int j = 0; j < n; ++j) {
          if (j == i) continue;
          sum_dist[static_cast<size_t>(assignments[static_cast<size_t>(j)])] +=
              std::sqrt(la::DirectSquaredDistance(pi, points.Row(j), d));
        }
        const double a =
            sum_dist[static_cast<size_t>(own)] /
            (cluster_size[static_cast<size_t>(own)] - 1);
        double b = std::numeric_limits<double>::max();
        for (int c = 0; c < k; ++c) {
          if (c == own || cluster_size[static_cast<size_t>(c)] == 0) continue;
          b = std::min(b, sum_dist[static_cast<size_t>(c)] /
                              cluster_size[static_cast<size_t>(c)]);
        }
        if (b == std::numeric_limits<double>::max()) continue;
        t += (b - a) / std::max(a, b);
      }
      partial[static_cast<size_t>(chunk)] = t;
    });
    double total = 0.0;
    for (int64_t ch = 0; ch < chunks; ++ch) {
      total += partial[static_cast<size_t>(ch)];
    }
    return total / static_cast<double>(anchors.size());
  }

  // Blocked fast path: gather kAnchorBlock anchors, sweep the points in
  // kTileN tiles through the register-tiled expansion kernel, sqrt the float
  // tile, and bucket the distances by cluster in double. Each anchor's
  // per-cluster sums accumulate in ascending tile/point order regardless of
  // the thread partition, so the result is thread-count invariant.
  la::Matrix pt = la::Transpose(points, ctx);  // d x n
  la::PoolBuffer ysq_store;
  const float* ysq = options.row_sq_norms != nullptr
                         ? options.row_sq_norms->data()
                         : nullptr;
  if (ysq == nullptr) {
    ysq_store = la::PoolBuffer(n, ctx);
    la::RowSquaredNormsInto(points, ysq_store.data(), ctx);
    ysq = ysq_store.data();
  }
  // Per-chunk scratch carved from buffers allocated on this thread (worker
  // threads carry no pool binding).
  la::PoolBuffer tile_all(chunks * kAnchorBlock * kTileN, ctx);
  la::PoolBuffer abuf_all(chunks * static_cast<int64_t>(kAnchorBlock) * d, ctx);
  la::PoolBuffer axsq_all(chunks * kAnchorBlock, ctx);
  const la::backend::KernelBackend& kbe = la::backend::Resolve(ctx);
  ex.ParallelForChunks(num_anchors, grain,
                       [&](int64_t chunk, int64_t begin, int64_t end) {
    double t = 0.0;
    float* tile = tile_all.data() + chunk * kAnchorBlock * kTileN;
    float* abuf = abuf_all.data() + chunk * kAnchorBlock * d;
    float* axsq = axsq_all.data() + chunk * kAnchorBlock;
    std::vector<double> sum_dist(static_cast<size_t>(kAnchorBlock) * k);
    for (int64_t a0 = begin; a0 < end; a0 += kAnchorBlock) {
      const int m = static_cast<int>(std::min<int64_t>(kAnchorBlock, end - a0));
      for (int r = 0; r < m; ++r) {
        const int i = anchors[static_cast<size_t>(a0 + r)];
        const float* prow = points.Row(i);
        std::copy(prow, prow + d, abuf + r * d);
        axsq[r] = ysq[i];
      }
      std::fill(sum_dist.begin(), sum_dist.begin() + m * k, 0.0);
      for (int64_t j0 = 0; j0 < n; j0 += kTileN) {
        const int nb = static_cast<int>(std::min<int64_t>(kTileN, n - j0));
        la::ExpansionDistanceTile(abuf, m, d, pt.data(), n, j0, nb, axsq, ysq,
                                  tile, kTileN, &kbe);
        for (int r = 0; r < m; ++r) {
          const int i = anchors[static_cast<size_t>(a0 + r)];
          float* trow = tile + r * kTileN;
          // The anchor's own entry must contribute exactly 0 (the expansion
          // formula can leave a tiny positive self-distance).
          if (i >= j0 && i < j0 + nb) trow[i - j0] = 0.0f;
          for (int q = 0; q < nb; ++q) trow[q] = std::sqrt(trow[q]);
          double* srow = sum_dist.data() + r * k;
          for (int q = 0; q < nb; ++q) {
            srow[assignments[static_cast<size_t>(j0 + q)]] += trow[q];
          }
        }
      }
      for (int r = 0; r < m; ++r) {
        const int i = anchors[static_cast<size_t>(a0 + r)];
        const int own = assignments[static_cast<size_t>(i)];
        if (cluster_size[static_cast<size_t>(own)] <= 1) continue;  // s(i) = 0
        const double* srow = sum_dist.data() + r * k;
        const double a =
            srow[own] / (cluster_size[static_cast<size_t>(own)] - 1);
        double b = std::numeric_limits<double>::max();
        for (int c = 0; c < k; ++c) {
          if (c == own || cluster_size[static_cast<size_t>(c)] == 0) continue;
          b = std::min(b, srow[c] / cluster_size[static_cast<size_t>(c)]);
        }
        if (b == std::numeric_limits<double>::max()) continue;
        t += (b - a) / std::max(a, b);
      }
    }
    partial[static_cast<size_t>(chunk)] = t;
  });
  double total = 0.0;
  for (int64_t ch = 0; ch < chunks; ++ch) {
    total += partial[static_cast<size_t>(ch)];
  }
  return total / static_cast<double>(anchors.size());
}

}  // namespace openima::cluster
