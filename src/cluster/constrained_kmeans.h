#ifndef OPENIMA_CLUSTER_CONSTRAINED_KMEANS_H_
#define OPENIMA_CLUSTER_CONSTRAINED_KMEANS_H_

#include <vector>

#include "src/cluster/kmeans.h"

namespace openima::cluster {

/// Options for the GCD-style semi-supervised ("constrained") K-Means the
/// paper discusses in §V-A: labeled points are *forced* into the cluster of
/// their class, so clusters 0..num_classes-1 correspond to the seen classes
/// and the remaining clusters are free. The paper found plain K-Means works
/// better on its graph datasets (a labeled class with diverse
/// representations drags unrelated points into its cluster); this
/// implementation lets the library reproduce that comparison.
struct ConstrainedKMeansOptions {
  int num_clusters = 2;
  int max_iterations = 100;
  double tol = 1e-4;

  /// Execution context (nullptr = process default); assignment and center
  /// accumulation use deterministic chunked reductions.
  const exec::Context* exec = nullptr;
};

/// Runs constrained K-Means. `labeled_nodes`/`labeled_classes` are parallel
/// (classes in [0, num_classes)); num_clusters >= num_classes required.
/// Free clusters are seeded by k-means++ over the unlabeled points.
StatusOr<KMeansResult> ConstrainedKMeans(
    const la::Matrix& points, const std::vector<int>& labeled_nodes,
    const std::vector<int>& labeled_classes, int num_classes,
    const ConstrainedKMeansOptions& options, Rng* rng);

}  // namespace openima::cluster

#endif  // OPENIMA_CLUSTER_CONSTRAINED_KMEANS_H_
