#include "src/cluster/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/cluster/kmeans.h"
#include "src/la/matrix_ops.h"
#include "src/util/logging.h"

namespace openima::cluster {

StatusOr<GmmResult> FitGmm(const la::Matrix& points, const GmmOptions& options,
                           Rng* rng) {
  const int n = points.rows(), d = points.cols();
  const int k = options.num_components;
  if (n == 0 || d == 0) return Status::InvalidArgument("points empty");
  if (k < 1 || k > n) {
    return Status::InvalidArgument("num_components out of range");
  }
  if (options.min_variance <= 0.0) {
    return Status::InvalidArgument("min_variance must be positive");
  }

  const exec::Context& ex = exec::Get(options.exec);
  const int64_t grain = exec::Context::GrainForMaxChunks(n, 256, 64);
  const int64_t chunks = exec::Context::NumChunks(n, grain);

  // K-Means initialization.
  KMeansOptions km;
  km.num_clusters = k;
  km.max_iterations = options.init_kmeans_iterations;
  km.exec = options.exec;
  auto init = KMeans(points, km, rng);
  OPENIMA_RETURN_IF_ERROR(init.status());

  GmmResult result;
  result.means = std::move(init->centers);
  result.variances = la::Matrix(k, d);
  result.weights.assign(static_cast<size_t>(k), 1.0 / k);
  {
    // Per-component variance from the K-Means partition.
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
      ++counts[static_cast<size_t>(init->assignments[static_cast<size_t>(i)])];
    }
    for (int i = 0; i < n; ++i) {
      const int c = init->assignments[static_cast<size_t>(i)];
      const float* p = points.Row(i);
      const float* m = result.means.Row(c);
      float* v = result.variances.Row(c);
      for (int j = 0; j < d; ++j) {
        const float diff = p[j] - m[j];
        v[j] += diff * diff;
      }
    }
    for (int c = 0; c < k; ++c) {
      float* v = result.variances.Row(c);
      const float inv =
          1.0f / std::max(1, counts[static_cast<size_t>(c)]);
      for (int j = 0; j < d; ++j) {
        v[j] = std::max(v[j] * inv,
                        static_cast<float>(options.min_variance));
      }
      result.weights[static_cast<size_t>(c)] =
          std::max(1, counts[static_cast<size_t>(c)]) /
          static_cast<double>(n);
    }
  }

  la::Matrix resp(n, k);  // responsibilities
  constexpr double kLog2Pi = 1.8378770664093453;
  double prev_ll = -std::numeric_limits<double>::max();
  // Chunk-indexed partial accumulators, combined in ascending chunk order
  // after each parallel pass (chunk layout depends only on n — results are
  // bit-identical for any thread count).
  std::vector<double> ll_partial(static_cast<size_t>(chunks), 0.0);
  std::vector<la::Matrix> acc_partial(
      static_cast<size_t>(chunks), la::Matrix(k, d));
  std::vector<std::vector<double>> nk_partial(
      static_cast<size_t>(chunks), std::vector<double>(static_cast<size_t>(k)));
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // E-step (log domain): responsibilities are row-disjoint writes, the
    // log-likelihood is a chunked reduction.
    ex.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
      double t = 0.0;
      std::vector<double> logp(static_cast<size_t>(k));
      for (int64_t i = b; i < e; ++i) {
        const float* p = points.Row(static_cast<int>(i));
        float* r = resp.Row(static_cast<int>(i));
        double mx = -std::numeric_limits<double>::max();
        for (int c = 0; c < k; ++c) {
          const float* m = result.means.Row(c);
          const float* v = result.variances.Row(c);
          double lp = std::log(result.weights[static_cast<size_t>(c)]);
          for (int j = 0; j < d; ++j) {
            const double diff = static_cast<double>(p[j]) - m[j];
            lp -= 0.5 * (kLog2Pi + std::log(static_cast<double>(v[j])) +
                         diff * diff / v[j]);
          }
          logp[static_cast<size_t>(c)] = lp;
          mx = std::max(mx, lp);
        }
        double denom = 0.0;
        for (int c = 0; c < k; ++c) {
          denom += std::exp(logp[static_cast<size_t>(c)] - mx);
        }
        t += mx + std::log(denom);
        const double inv = 1.0 / denom;
        for (int c = 0; c < k; ++c) {
          r[c] = static_cast<float>(
              std::exp(logp[static_cast<size_t>(c)] - mx) * inv);
        }
      }
      ll_partial[static_cast<size_t>(chunk)] = t;
    });
    double total_ll = 0.0;
    for (int64_t ch = 0; ch < chunks; ++ch) {
      total_ll += ll_partial[static_cast<size_t>(ch)];
    }
    const double mean_ll = total_ll / n;
    result.mean_log_likelihood = mean_ll;
    if (mean_ll - prev_ll < options.tol) {
      ++iter;
      break;
    }
    prev_ll = mean_ll;

    // M-step, two chunked passes over points (i-outer so each chunk scans
    // its rows once; the r == 0 skip of the serial version is dropped so
    // the accumulation order is a pure function of the chunk layout).
    // Pass 1: soft counts + weighted sums -> weights and means.
    ex.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
      la::Matrix& acc = acc_partial[static_cast<size_t>(chunk)];
      std::vector<double>& nks = nk_partial[static_cast<size_t>(chunk)];
      acc.Fill(0.0f);
      std::fill(nks.begin(), nks.end(), 0.0);
      for (int64_t i = b; i < e; ++i) {
        const float* p = points.Row(static_cast<int>(i));
        const float* r = resp.Row(static_cast<int>(i));
        for (int c = 0; c < k; ++c) {
          nks[static_cast<size_t>(c)] += r[c];
          float* m = acc.Row(c);
          for (int j = 0; j < d; ++j) m[j] += r[c] * p[j];
        }
      }
    });
    std::vector<double> nk(static_cast<size_t>(k), 0.0);
    std::vector<float> inv_nk(static_cast<size_t>(k));
    result.means.Fill(0.0f);
    for (int64_t ch = 0; ch < chunks; ++ch) {
      const la::Matrix& acc = acc_partial[static_cast<size_t>(ch)];
      for (int c = 0; c < k; ++c) {
        nk[static_cast<size_t>(c)] +=
            nk_partial[static_cast<size_t>(ch)][static_cast<size_t>(c)];
        float* m = result.means.Row(c);
        const float* a = acc.Row(c);
        for (int j = 0; j < d; ++j) m[j] += a[j];
      }
    }
    for (int c = 0; c < k; ++c) {
      const double nkc = std::max(nk[static_cast<size_t>(c)], 1e-10);
      result.weights[static_cast<size_t>(c)] = nkc / n;
      inv_nk[static_cast<size_t>(c)] = static_cast<float>(1.0 / nkc);
      float* m = result.means.Row(c);
      for (int j = 0; j < d; ++j) m[j] *= inv_nk[static_cast<size_t>(c)];
    }
    // Pass 2: weighted squared deviations from the new means -> variances.
    ex.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
      la::Matrix& acc = acc_partial[static_cast<size_t>(chunk)];
      acc.Fill(0.0f);
      for (int64_t i = b; i < e; ++i) {
        const float* p = points.Row(static_cast<int>(i));
        const float* r = resp.Row(static_cast<int>(i));
        for (int c = 0; c < k; ++c) {
          const float* m = result.means.Row(c);
          float* v = acc.Row(c);
          for (int j = 0; j < d; ++j) {
            const float diff = p[j] - m[j];
            v[j] += r[c] * diff * diff;
          }
        }
      }
    });
    result.variances.Fill(0.0f);
    for (int64_t ch = 0; ch < chunks; ++ch) {
      const la::Matrix& acc = acc_partial[static_cast<size_t>(ch)];
      for (int c = 0; c < k; ++c) {
        float* v = result.variances.Row(c);
        const float* a = acc.Row(c);
        for (int j = 0; j < d; ++j) v[j] += a[j];
      }
    }
    for (int c = 0; c < k; ++c) {
      float* v = result.variances.Row(c);
      for (int j = 0; j < d; ++j) {
        v[j] = std::max(v[j] * inv_nk[static_cast<size_t>(c)],
                        static_cast<float>(options.min_variance));
      }
    }
  }
  result.iterations = iter;
  result.assignments = la::RowArgmax(resp, &ex);
  return result;
}

}  // namespace openima::cluster
