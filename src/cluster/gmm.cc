#include "src/cluster/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/cluster/kmeans.h"
#include "src/util/logging.h"

namespace openima::cluster {

StatusOr<GmmResult> FitGmm(const la::Matrix& points, const GmmOptions& options,
                           Rng* rng) {
  const int n = points.rows(), d = points.cols();
  const int k = options.num_components;
  if (n == 0 || d == 0) return Status::InvalidArgument("points empty");
  if (k < 1 || k > n) {
    return Status::InvalidArgument("num_components out of range");
  }
  if (options.min_variance <= 0.0) {
    return Status::InvalidArgument("min_variance must be positive");
  }

  // K-Means initialization.
  KMeansOptions km;
  km.num_clusters = k;
  km.max_iterations = options.init_kmeans_iterations;
  auto init = KMeans(points, km, rng);
  OPENIMA_RETURN_IF_ERROR(init.status());

  GmmResult result;
  result.means = std::move(init->centers);
  result.variances = la::Matrix(k, d);
  result.weights.assign(static_cast<size_t>(k), 1.0 / k);
  {
    // Per-component variance from the K-Means partition.
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
      ++counts[static_cast<size_t>(init->assignments[static_cast<size_t>(i)])];
    }
    for (int i = 0; i < n; ++i) {
      const int c = init->assignments[static_cast<size_t>(i)];
      const float* p = points.Row(i);
      const float* m = result.means.Row(c);
      float* v = result.variances.Row(c);
      for (int j = 0; j < d; ++j) {
        const float diff = p[j] - m[j];
        v[j] += diff * diff;
      }
    }
    for (int c = 0; c < k; ++c) {
      float* v = result.variances.Row(c);
      const float inv =
          1.0f / std::max(1, counts[static_cast<size_t>(c)]);
      for (int j = 0; j < d; ++j) {
        v[j] = std::max(v[j] * inv,
                        static_cast<float>(options.min_variance));
      }
      result.weights[static_cast<size_t>(c)] =
          std::max(1, counts[static_cast<size_t>(c)]) /
          static_cast<double>(n);
    }
  }

  la::Matrix resp(n, k);  // responsibilities
  constexpr double kLog2Pi = 1.8378770664093453;
  double prev_ll = -std::numeric_limits<double>::max();
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // E-step (log domain).
    double total_ll = 0.0;
    for (int i = 0; i < n; ++i) {
      const float* p = points.Row(i);
      float* r = resp.Row(i);
      double mx = -std::numeric_limits<double>::max();
      std::vector<double> logp(static_cast<size_t>(k));
      for (int c = 0; c < k; ++c) {
        const float* m = result.means.Row(c);
        const float* v = result.variances.Row(c);
        double lp = std::log(result.weights[static_cast<size_t>(c)]);
        for (int j = 0; j < d; ++j) {
          const double diff = static_cast<double>(p[j]) - m[j];
          lp -= 0.5 * (kLog2Pi + std::log(static_cast<double>(v[j])) +
                       diff * diff / v[j]);
        }
        logp[static_cast<size_t>(c)] = lp;
        mx = std::max(mx, lp);
      }
      double denom = 0.0;
      for (int c = 0; c < k; ++c) {
        denom += std::exp(logp[static_cast<size_t>(c)] - mx);
      }
      total_ll += mx + std::log(denom);
      const double inv = 1.0 / denom;
      for (int c = 0; c < k; ++c) {
        r[c] = static_cast<float>(
            std::exp(logp[static_cast<size_t>(c)] - mx) * inv);
      }
    }
    const double mean_ll = total_ll / n;
    result.mean_log_likelihood = mean_ll;
    if (mean_ll - prev_ll < options.tol) {
      ++iter;
      break;
    }
    prev_ll = mean_ll;

    // M-step.
    for (int c = 0; c < k; ++c) {
      double nk = 0.0;
      for (int i = 0; i < n; ++i) nk += resp(i, c);
      nk = std::max(nk, 1e-10);
      result.weights[static_cast<size_t>(c)] = nk / n;
      float* m = result.means.Row(c);
      std::fill(m, m + d, 0.0f);
      for (int i = 0; i < n; ++i) {
        const float r = resp(i, c);
        if (r == 0.0f) continue;
        const float* p = points.Row(i);
        for (int j = 0; j < d; ++j) m[j] += r * p[j];
      }
      const float inv = static_cast<float>(1.0 / nk);
      for (int j = 0; j < d; ++j) m[j] *= inv;
      float* v = result.variances.Row(c);
      std::fill(v, v + d, 0.0f);
      for (int i = 0; i < n; ++i) {
        const float r = resp(i, c);
        if (r == 0.0f) continue;
        const float* p = points.Row(i);
        for (int j = 0; j < d; ++j) {
          const float diff = p[j] - m[j];
          v[j] += r * diff * diff;
        }
      }
      for (int j = 0; j < d; ++j) {
        v[j] = std::max(v[j] * inv,
                        static_cast<float>(options.min_variance));
      }
    }
  }
  result.iterations = iter;
  result.assignments.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const float* r = resp.Row(i);
    int best = 0;
    for (int c = 1; c < k; ++c) {
      if (r[c] > r[best]) best = c;
    }
    result.assignments[static_cast<size_t>(i)] = best;
  }
  return result;
}

}  // namespace openima::cluster
