#include "src/cluster/kmeans.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <limits>

#include "src/la/distance.h"
#include "src/la/matrix_ops.h"
#include "src/la/pool.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace openima::cluster {

namespace {

using exec::Context;

/// Grain for chunked reductions over points: depends only on n (never the
/// thread count) and caps per-chunk accumulator memory at 64 chunks.
int64_t ReduceGrain(int64_t n) {
  return Context::GrainForMaxChunks(n, 256, 64);
}

/// k-means++ D^2 seeding over `points`. The rng-driven picks stay strictly
/// sequential; the per-center distance refresh runs through the shared
/// float expansion kernel (vectorized, deterministic ascending chunk
/// combine). `row_sq_norms` optionally supplies precomputed point squared
/// norms; nullptr computes them into pooled scratch.
la::Matrix KMeansPlusPlusSeed(const la::Matrix& points, int k, Rng* rng,
                              const float* row_sq_norms, const Context& ex) {
  const int n = points.rows();
  la::Matrix centers(k, points.cols());
  const int first = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
  centers.SetRow(0, points, first);
  la::PoolBuffer xsq_buf;
  if (row_sq_norms == nullptr) {
    xsq_buf = la::PoolBuffer(n, &ex);
    la::RowSquaredNormsInto(points, xsq_buf.data(), &ex);
    row_sq_norms = xsq_buf.data();
  }
  std::vector<double> dist2(static_cast<size_t>(n),
                            std::numeric_limits<double>::max());
  const int64_t grain = ReduceGrain(n);
  for (int c = 1; c < k; ++c) {
    // Update nearest-center distances with the last added center.
    const double total = la::UpdateNearestSquaredDistances(
        points, centers.Row(c - 1), row_sq_norms, grain, dist2.data(), &ex);
    int pick;
    if (total <= 0.0) {
      pick = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    } else {
      double u = rng->Uniform() * total;
      pick = n - 1;
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        acc += dist2[static_cast<size_t>(i)];
        if (u < acc) {
          pick = i;
          break;
        }
      }
    }
    centers.SetRow(c, points, pick);
  }
  return centers;
}

la::Matrix UniformSeed(const la::Matrix& points, int k, Rng* rng) {
  la::Matrix centers(k, points.cols());
  std::vector<int> picks = rng->SampleWithoutReplacement(points.rows(), k);
  for (int c = 0; c < k; ++c) centers.SetRow(c, points, picks[static_cast<size_t>(c)]);
  return centers;
}

/// Nearest-center assignment into an existing vector, with optionally
/// precomputed point squared norms and pooled scratch for the n x k matrix.
void AssignToNearestInto(const la::Matrix& points, const la::Matrix& centers,
                         const float* xsq, std::vector<int>* out,
                         const Context* ctx) {
  const int64_t n = points.rows();
  const int k = centers.rows();
  la::PoolBuffer d2(n * k, ctx);
  la::PairwiseSquaredDistancesInto(points, centers, xsq, nullptr, d2.data(),
                                   ctx);
  out->resize(static_cast<size_t>(n));
  exec::Get(ctx).ParallelFor(n, ReduceGrain(n), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = d2.data() + i * k;
      int best = 0;
      for (int c = 1; c < k; ++c) {
        if (row[c] < row[best]) best = c;
      }
      (*out)[static_cast<size_t>(i)] = best;
    }
  });
}

/// One Lloyd run's knobs (subset of KMeansOptions that the inner loop sees).
struct LloydConfig {
  int max_iterations;
  double tol;
  bool spherical;
  bool accelerated;
  const float* row_sq_norms;  // optional precomputed ||x_i||^2, size n
};

/// One Lloyd run from the given initial centers. Assignment and center
/// accumulation parallelize with deterministic chunked reductions: chunk
/// boundaries depend only on n, per-chunk partial sums/counts combine in
/// ascending chunk order — bit-identical for any thread count.
///
/// With cfg.accelerated, iterations after the first replace the full n x k
/// distance matrix with a Hamerly-style bounded pass (see DESIGN.md §2.3).
/// Per point we keep a lower bound on the Euclidean distance to every
/// *non-assigned* center, decayed each iteration by the largest center
/// drift. The pass always recomputes the exact assigned-center distance f_a
/// (through the same single-instance primitive the full matrix uses, so the
/// bits match), then prunes the other k-1 distance evaluations when
///
///     lb^2 - err > f_a,   err = eps * (d + 16) * (||x||^2 + max_c ||c||^2)
///
/// `err` dominates the worst-case rounding of the expansion formula, so a
/// successful prune proves every other computed distance would be strictly
/// larger than f_a — the plain argmin (including its lowest-index tie-break;
/// ties can never satisfy the strict inequality) must keep the current
/// assignment. On bound failure the full row is recomputed exactly as the
/// matrix pass would. Assignments, inertia, centers and iteration counts are
/// therefore bit-identical to the plain path; the parity suite
/// (tests/cluster_parity_test.cc) enforces this.
KMeansResult LloydRun(const la::Matrix& points, la::Matrix centers,
                      const LloydConfig& cfg, const Context& ex) {
  const int n = points.rows(), d = points.cols(), k = centers.rows();
  const Context* ctx = &ex;
  // One backend instance for the whole run: the full-matrix pass, the
  // bounded upper-bound checks, and the rescans must all execute the same
  // compiled ExpansionSquaredDistance for the pruning proof to hold.
  const la::backend::KernelBackend& kbe = la::backend::Resolve(ctx);
  KMeansResult result;
  result.assignments.assign(static_cast<size_t>(n), 0);
  const int64_t grain = ReduceGrain(n);
  const int64_t chunks = Context::NumChunks(n, grain);
  std::vector<double> inertia_partial(static_cast<size_t>(chunks), 0.0);
  la::Matrix sums(k, d);
  std::vector<la::Matrix> sum_partial(
      static_cast<size_t>(chunks), la::Matrix(k, d));
  std::vector<std::vector<int>> count_partial(
      static_cast<size_t>(chunks), std::vector<int>(static_cast<size_t>(k)));

  // All float scratch is drawn from the context-resolved pool on this
  // thread (worker threads inside ParallelFor carry no pool binding, so
  // per-chunk slices are carved out of buffers allocated here).
  la::PoolBuffer xsq_store;
  const float* xsq = cfg.row_sq_norms;
  if (xsq == nullptr) {
    xsq_store = la::PoolBuffer(n, ctx);
    la::RowSquaredNormsInto(points, xsq_store.data(), ctx);
    xsq = xsq_store.data();
  }
  la::PoolBuffer csq(k, ctx);
  la::PoolBuffer assigned_d2(n, ctx);
  la::PoolBuffer d2(static_cast<int64_t>(n) * k, ctx);
  la::PoolBuffer lower, scan;
  la::Matrix old_centers;
  std::vector<int64_t> prune_partial, fail_partial;
  if (cfg.accelerated) {
    lower = la::PoolBuffer(n, ctx);
    scan = la::PoolBuffer(chunks * k, ctx);
    old_centers = la::Matrix(k, d);
    prune_partial.assign(static_cast<size_t>(chunks), 0);
    fail_partial.assign(static_cast<size_t>(chunks), 0);
  }
  // Rounding margins of the pruning test. err_scale bounds the absolute
  // error of the float expansion formula relative to exact arithmetic
  // (~eps * (d/2 + 4) * (||x||^2 + ||c||^2), doubled for safety);
  // lb_shrink/drift inflation absorb the sqrt and subtraction roundings in
  // the bound maintenance itself.
  const double err_scale = static_cast<double>(FLT_EPSILON) * (d + 16);
  const float lb_shrink = 1.0f - 4.0f * FLT_EPSILON;
  float max_drift = 0.0f;
  bool have_bounds = false;

  const float kInf = std::numeric_limits<float>::infinity();
  double prev_inertia = std::numeric_limits<double>::max();
  int iter = 0;
  for (; iter < cfg.max_iterations; ++iter) {
    la::RowSquaredNormsInto(centers, csq.data(), ctx);
    float max_csq = 0.0f;
    for (int c = 0; c < k; ++c) max_csq = std::max(max_csq, csq[c]);

    const bool bounded = cfg.accelerated && have_bounds;
    if (!bounded) {
      // Full assignment matrix: per-point argmin (disjoint writes) fused
      // with chunked inertia + center accumulation.
      la::PairwiseSquaredDistancesInto(points, centers, xsq, csq.data(),
                                       d2.data(), ctx);
      ex.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
        double t = 0.0;
        la::Matrix& psums = sum_partial[static_cast<size_t>(chunk)];
        std::vector<int>& pcounts = count_partial[static_cast<size_t>(chunk)];
        psums.Fill(0.0f);
        std::fill(pcounts.begin(), pcounts.end(), 0);
        for (int64_t i = b; i < e; ++i) {
          const float* row = d2.data() + i * k;
          int best = 0;
          float fb = row[0];
          float second = kInf;
          for (int c = 1; c < k; ++c) {
            if (row[c] < fb) {
              second = fb;
              fb = row[c];
              best = c;
            } else if (row[c] < second) {
              second = row[c];
            }
          }
          result.assignments[static_cast<size_t>(i)] = best;
          assigned_d2[i] = fb;
          t += fb;
          if (cfg.accelerated) {
            const double err = err_scale * (static_cast<double>(xsq[i]) + max_csq);
            const double lb2 = static_cast<double>(second) - err;
            lower[i] = lb2 > 0.0
                           ? static_cast<float>(std::sqrt(lb2)) * lb_shrink
                           : 0.0f;
          }
          // Update-step accumulation fused into the same chunk pass.
          ++pcounts[static_cast<size_t>(best)];
          float* srow = psums.Row(best);
          const float* prow = points.Row(static_cast<int>(i));
          for (int j = 0; j < d; ++j) srow[j] += prow[j];
        }
        inertia_partial[static_cast<size_t>(chunk)] = t;
      });
      have_bounds = cfg.accelerated;
    } else {
      // Bounded pass: exact assigned distance, pruned or exact row scan.
      ex.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
        double t = 0.0;
        la::Matrix& psums = sum_partial[static_cast<size_t>(chunk)];
        std::vector<int>& pcounts = count_partial[static_cast<size_t>(chunk)];
        psums.Fill(0.0f);
        std::fill(pcounts.begin(), pcounts.end(), 0);
        float* row = scan.data() + chunk * k;
        int64_t prunes = 0, fails = 0;
        for (int64_t i = b; i < e; ++i) {
          const float* pi = points.Row(static_cast<int>(i));
          int best = result.assignments[static_cast<size_t>(i)];
          const float fa = kbe.ExpansionSquaredDistance(pi, centers.Row(best),
                                                        d, xsq[i], csq[best]);
          const double err = err_scale * (static_cast<double>(xsq[i]) + max_csq);
          float lb = lower[i] - max_drift;
          lb = lb > 0.0f ? lb * lb_shrink : 0.0f;
          float fb = fa;
          if (static_cast<double>(lb) * lb - err > fa) {
            lower[i] = lb;
            ++prunes;
          } else {
            for (int c = 0; c < k; ++c) {
              row[c] = kbe.ExpansionSquaredDistance(pi, centers.Row(c), d,
                                                    xsq[i], csq[c]);
            }
            best = 0;
            fb = row[0];
            float second = kInf;
            for (int c = 1; c < k; ++c) {
              if (row[c] < fb) {
                second = fb;
                fb = row[c];
                best = c;
              } else if (row[c] < second) {
                second = row[c];
              }
            }
            result.assignments[static_cast<size_t>(i)] = best;
            const double lb2 = static_cast<double>(second) - err;
            lower[i] = lb2 > 0.0
                           ? static_cast<float>(std::sqrt(lb2)) * lb_shrink
                           : 0.0f;
            ++fails;
          }
          assigned_d2[i] = fb;
          t += fb;
          ++pcounts[static_cast<size_t>(best)];
          float* srow = psums.Row(best);
          for (int j = 0; j < d; ++j) srow[j] += pi[j];
        }
        inertia_partial[static_cast<size_t>(chunk)] = t;
        prune_partial[static_cast<size_t>(chunk)] = prunes;
        fail_partial[static_cast<size_t>(chunk)] = fails;
      });
    }
    // Ordered combine of the chunk partials.
    double inertia = 0.0;
    sums.Fill(0.0f);
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int64_t ch = 0; ch < chunks; ++ch) {
      inertia += inertia_partial[static_cast<size_t>(ch)];
      const la::Matrix& psums = sum_partial[static_cast<size_t>(ch)];
      const std::vector<int>& pcounts = count_partial[static_cast<size_t>(ch)];
      for (int c = 0; c < k; ++c) {
        counts[static_cast<size_t>(c)] += pcounts[static_cast<size_t>(c)];
        float* srow = sums.Row(c);
        const float* prow = psums.Row(c);
        for (int j = 0; j < d; ++j) srow[j] += prow[j];
      }
    }
    if (bounded) {
      for (int64_t ch = 0; ch < chunks; ++ch) {
        result.bound_prunes += prune_partial[static_cast<size_t>(ch)];
        result.bound_failures += fail_partial[static_cast<size_t>(ch)];
      }
    }
    // Snapshot the centers the bounds refer to: the coming update (empty-
    // cluster reseeds included) is what the next iteration's drift decay
    // must cover.
    if (cfg.accelerated) {
      std::copy(centers.data(), centers.data() + centers.size(),
                old_centers.data());
    }
    // Update step.
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Re-seed an empty cluster with the point farthest from its center.
        int farthest = 0;
        double best = -1.0;
        for (int i = 0; i < n; ++i) {
          const double dd = assigned_d2[i];
          if (dd > best) {
            best = dd;
            farthest = i;
          }
        }
        centers.SetRow(c, points, farthest);
        continue;
      }
      float* crow = centers.Row(c);
      const float* srow = sums.Row(c);
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      for (int j = 0; j < d; ++j) crow[j] = srow[j] * inv;
    }
    if (cfg.spherical) la::RowL2NormalizeInPlace(&centers, 1e-12f, ctx);
    if (cfg.accelerated) {
      double maxd2 = 0.0;
      for (int c = 0; c < k; ++c) {
        maxd2 = std::max(maxd2, la::DirectSquaredDistance(
                                    old_centers.Row(c), centers.Row(c), d));
      }
      max_drift = static_cast<float>(std::sqrt(maxd2)) *
                  (1.0f + 8.0f * FLT_EPSILON);
    }
    result.inertia = inertia;
    if (prev_inertia - inertia <= cfg.tol * std::max(prev_inertia, 1e-12)) {
      ++iter;
      break;
    }
    prev_inertia = inertia;
  }
  // Final assignment against the final centers.
  AssignToNearestInto(points, centers, xsq, &result.assignments, ctx);
  result.inertia = Inertia(points, centers, result.assignments, ctx);
  result.centers = std::move(centers);
  result.iterations = iter;
  return result;
}

Status ValidateCommon(const la::Matrix& points, int k) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("points must be non-empty");
  }
  if (k < 1 || k > points.rows()) {
    return Status::InvalidArgument(
        StrFormat("num_clusters=%d must be in [1, num_points=%d]", k,
                  points.rows()));
  }
  return Status::OK();
}

}  // namespace

std::vector<int> AssignToNearest(const la::Matrix& points,
                                 const la::Matrix& centers,
                                 const Context* ctx) {
  std::vector<int> out;
  AssignToNearestInto(points, centers, nullptr, &out, ctx);
  return out;
}

double Inertia(const la::Matrix& points, const la::Matrix& centers,
               const std::vector<int>& assignments, const Context* ctx) {
  OPENIMA_CHECK_EQ(static_cast<int>(assignments.size()), points.rows());
  const int64_t n = points.rows();
  const int64_t grain = ReduceGrain(n);
  const int64_t chunks = Context::NumChunks(n, grain);
  std::vector<double> partial(static_cast<size_t>(chunks), 0.0);
  exec::Get(ctx).ParallelForChunks(
      n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
        double t = 0.0;
        for (int64_t i = b; i < e; ++i) {
          t += la::DirectSquaredDistance(
              points.Row(static_cast<int>(i)),
              centers.Row(assignments[static_cast<size_t>(i)]), points.cols());
        }
        partial[static_cast<size_t>(chunk)] = t;
      });
  double total = 0.0;
  for (int64_t ch = 0; ch < chunks; ++ch) {
    total += partial[static_cast<size_t>(ch)];
  }
  return total;
}

StatusOr<KMeansResult> KMeans(const la::Matrix& points,
                              const KMeansOptions& options, Rng* rng) {
  OPENIMA_RETURN_IF_ERROR(ValidateCommon(points, options.num_clusters));
  if (options.num_init < 1 || options.max_iterations < 1) {
    return Status::InvalidArgument("num_init and max_iterations must be >= 1");
  }
  if (options.row_sq_norms != nullptr &&
      static_cast<int>(options.row_sq_norms->size()) != points.rows()) {
    return Status::InvalidArgument(
        StrFormat("row_sq_norms must have %d entries, got %zu", points.rows(),
                  options.row_sq_norms->size()));
  }
  const Context& ex = exec::Get(options.exec);
  // Span + counters: where inference time goes (DESIGN.md §2.3/§2.4) and
  // whether the triangle-inequality pruning is actually firing.
  OPENIMA_OBS_PHASE("lloyd");
  const auto record_obs = [](const KMeansResult& r) {
    OPENIMA_OBS_COUNT("kmeans.runs", 1);
    OPENIMA_OBS_COUNT("kmeans.iterations", r.iterations);
    OPENIMA_OBS_COUNT("kmeans.bound_prunes", r.bound_prunes);
    OPENIMA_OBS_COUNT("kmeans.bound_failures", r.bound_failures);
  };
  const LloydConfig cfg{
      options.max_iterations, options.tol, options.spherical,
      options.accelerated,
      options.row_sq_norms != nullptr ? options.row_sq_norms->data() : nullptr};
  if (!options.initial_centers.empty()) {
    // Warm start: one Lloyd run from the caller's centers (no seeding, no
    // restarts — restarts from the same centers would be identical anyway).
    if (options.initial_centers.rows() != options.num_clusters ||
        options.initial_centers.cols() != points.cols()) {
      return Status::InvalidArgument(
          StrFormat("initial_centers must be %d x %d, got %d x %d",
                    options.num_clusters, points.cols(),
                    options.initial_centers.rows(),
                    options.initial_centers.cols()));
    }
    KMeansResult result = LloydRun(points, options.initial_centers, cfg, ex);
    record_obs(result);
    return result;
  }
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (int run = 0; run < options.num_init; ++run) {
    la::Matrix init =
        options.kmeanspp
            ? KMeansPlusPlusSeed(points, options.num_clusters, rng,
                                 cfg.row_sq_norms, ex)
            : UniformSeed(points, options.num_clusters, rng);
    KMeansResult result = LloydRun(points, std::move(init), cfg, ex);
    if (result.inertia < best.inertia) best = std::move(result);
  }
  record_obs(best);
  return best;
}

StatusOr<KMeansResult> MiniBatchKMeans(const la::Matrix& points,
                                       const MiniBatchKMeansOptions& options,
                                       Rng* rng) {
  OPENIMA_RETURN_IF_ERROR(ValidateCommon(points, options.num_clusters));
  if (options.batch_size < 1 || options.max_iterations < 1) {
    return Status::InvalidArgument(
        "batch_size and max_iterations must be >= 1");
  }
  const Context& ex = exec::Get(options.exec);
  const Context* ctx = &ex;
  OPENIMA_OBS_PHASE("minibatch_kmeans");
  OPENIMA_OBS_COUNT("kmeans.minibatch_runs", 1);
  const int n = points.rows(), d = points.cols(), k = options.num_clusters;
  const int b = std::min(options.batch_size, n);

  // Seed from a random sample (capped) for speed, or continue from the
  // caller's centers when warm-starting.
  la::Matrix centers;
  if (!options.initial_centers.empty()) {
    if (options.initial_centers.rows() != k ||
        options.initial_centers.cols() != d) {
      return Status::InvalidArgument(
          StrFormat("initial_centers must be %d x %d, got %d x %d", k, d,
                    options.initial_centers.rows(),
                    options.initial_centers.cols()));
    }
    centers = options.initial_centers;
  } else {
    const int sample = std::min(n, std::max(10 * k, b));
    std::vector<int> idx = rng->SampleWithoutReplacement(n, sample);
    la::Matrix sub = la::GatherRows(points, idx, ctx);
    centers = options.kmeanspp ? KMeansPlusPlusSeed(sub, k, rng, nullptr, ex)
                               : UniformSeed(sub, k, rng);
  }

  // The online updates are order-dependent (per-center learning rates), so
  // they stay sequential; only the batch assignment parallelizes (through
  // the shared pairwise kernel — pooled scratch, no scalar per-point loop).
  std::vector<int64_t> counts(static_cast<size_t>(k), 0);
  std::vector<int> assign;
  for (int step = 0; step < options.max_iterations; ++step) {
    std::vector<int> batch = rng->SampleWithoutReplacement(n, b);
    la::Matrix sub = la::GatherRows(points, batch, ctx);
    AssignToNearestInto(sub, centers, nullptr, &assign, ctx);
    for (int i = 0; i < b; ++i) {
      const int c = assign[static_cast<size_t>(i)];
      const float lr =
          1.0f / static_cast<float>(++counts[static_cast<size_t>(c)]);
      float* crow = centers.Row(c);
      const float* prow = sub.Row(i);
      for (int j = 0; j < d; ++j) {
        crow[j] += lr * (prow[j] - crow[j]);
      }
    }
  }

  KMeansResult result;
  result.iterations = options.max_iterations;
  if (options.final_full_assignment) {
    result.assignments = AssignToNearest(points, centers, ctx);
    result.inertia = Inertia(points, centers, result.assignments, ctx);
  }
  result.centers = std::move(centers);
  return result;
}

}  // namespace openima::cluster
