#include "src/cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/la/matrix_ops.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace openima::cluster {

namespace {

/// Squared Euclidean distance between a point row and a center row.
double SquaredDistance(const float* a, const float* b, int d) {
  double s = 0.0;
  for (int j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - b[j];
    s += diff * diff;
  }
  return s;
}

/// k-means++ D^2 seeding over `points`.
la::Matrix KMeansPlusPlusSeed(const la::Matrix& points, int k, Rng* rng) {
  const int n = points.rows(), d = points.cols();
  la::Matrix centers(k, d);
  const int first = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
  centers.SetRow(0, points, first);
  std::vector<double> dist2(static_cast<size_t>(n),
                            std::numeric_limits<double>::max());
  for (int c = 1; c < k; ++c) {
    // Update nearest-center distances with the last added center.
    const float* last = centers.Row(c - 1);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double d2 = SquaredDistance(points.Row(i), last, d);
      if (d2 < dist2[static_cast<size_t>(i)]) dist2[static_cast<size_t>(i)] = d2;
      total += dist2[static_cast<size_t>(i)];
    }
    int pick;
    if (total <= 0.0) {
      pick = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    } else {
      double u = rng->Uniform() * total;
      pick = n - 1;
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        acc += dist2[static_cast<size_t>(i)];
        if (u < acc) {
          pick = i;
          break;
        }
      }
    }
    centers.SetRow(c, points, pick);
  }
  return centers;
}

la::Matrix UniformSeed(const la::Matrix& points, int k, Rng* rng) {
  la::Matrix centers(k, points.cols());
  std::vector<int> picks = rng->SampleWithoutReplacement(points.rows(), k);
  for (int c = 0; c < k; ++c) centers.SetRow(c, points, picks[static_cast<size_t>(c)]);
  return centers;
}

/// One Lloyd run from the given initial centers.
KMeansResult LloydRun(const la::Matrix& points, la::Matrix centers,
                      int max_iterations, double tol,
                      bool spherical = false) {
  const int n = points.rows(), d = points.cols(), k = centers.rows();
  KMeansResult result;
  result.assignments.assign(static_cast<size_t>(n), 0);
  double prev_inertia = std::numeric_limits<double>::max();
  int iter = 0;
  for (; iter < max_iterations; ++iter) {
    // Assignment step.
    la::Matrix d2 = la::PairwiseSquaredDistances(points, centers);
    double inertia = 0.0;
    for (int i = 0; i < n; ++i) {
      const float* row = d2.Row(i);
      int best = 0;
      for (int c = 1; c < k; ++c) {
        if (row[c] < row[best]) best = c;
      }
      result.assignments[static_cast<size_t>(i)] = best;
      inertia += row[best];
    }
    // Update step.
    la::Matrix sums(k, d);
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
      const int c = result.assignments[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      float* srow = sums.Row(c);
      const float* prow = points.Row(i);
      for (int j = 0; j < d; ++j) srow[j] += prow[j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Re-seed an empty cluster with the point farthest from its center.
        int farthest = 0;
        double best = -1.0;
        for (int i = 0; i < n; ++i) {
          const double dd = d2(i, result.assignments[static_cast<size_t>(i)]);
          if (dd > best) {
            best = dd;
            farthest = i;
          }
        }
        centers.SetRow(c, points, farthest);
        continue;
      }
      float* crow = centers.Row(c);
      const float* srow = sums.Row(c);
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      for (int j = 0; j < d; ++j) crow[j] = srow[j] * inv;
    }
    if (spherical) la::RowL2NormalizeInPlace(&centers);
    result.inertia = inertia;
    if (prev_inertia - inertia <= tol * std::max(prev_inertia, 1e-12)) {
      ++iter;
      break;
    }
    prev_inertia = inertia;
  }
  // Final assignment against the final centers.
  result.assignments = AssignToNearest(points, centers);
  result.inertia = Inertia(points, centers, result.assignments);
  result.centers = std::move(centers);
  result.iterations = iter;
  return result;
}

Status ValidateCommon(const la::Matrix& points, int k) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("points must be non-empty");
  }
  if (k < 1 || k > points.rows()) {
    return Status::InvalidArgument(
        StrFormat("num_clusters=%d must be in [1, num_points=%d]", k,
                  points.rows()));
  }
  return Status::OK();
}

}  // namespace

std::vector<int> AssignToNearest(const la::Matrix& points,
                                 const la::Matrix& centers) {
  la::Matrix d2 = la::PairwiseSquaredDistances(points, centers);
  std::vector<int> out(static_cast<size_t>(points.rows()));
  for (int i = 0; i < points.rows(); ++i) {
    const float* row = d2.Row(i);
    int best = 0;
    for (int c = 1; c < centers.rows(); ++c) {
      if (row[c] < row[best]) best = c;
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

double Inertia(const la::Matrix& points, const la::Matrix& centers,
               const std::vector<int>& assignments) {
  OPENIMA_CHECK_EQ(static_cast<int>(assignments.size()), points.rows());
  double total = 0.0;
  for (int i = 0; i < points.rows(); ++i) {
    total += SquaredDistance(points.Row(i),
                             centers.Row(assignments[static_cast<size_t>(i)]),
                             points.cols());
  }
  return total;
}

StatusOr<KMeansResult> KMeans(const la::Matrix& points,
                              const KMeansOptions& options, Rng* rng) {
  OPENIMA_RETURN_IF_ERROR(ValidateCommon(points, options.num_clusters));
  if (options.num_init < 1 || options.max_iterations < 1) {
    return Status::InvalidArgument("num_init and max_iterations must be >= 1");
  }
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (int run = 0; run < options.num_init; ++run) {
    la::Matrix init = options.kmeanspp
                          ? KMeansPlusPlusSeed(points, options.num_clusters, rng)
                          : UniformSeed(points, options.num_clusters, rng);
    KMeansResult result = LloydRun(points, std::move(init),
                                   options.max_iterations, options.tol,
                                   options.spherical);
    if (result.inertia < best.inertia) best = std::move(result);
  }
  return best;
}

StatusOr<KMeansResult> MiniBatchKMeans(const la::Matrix& points,
                                       const MiniBatchKMeansOptions& options,
                                       Rng* rng) {
  OPENIMA_RETURN_IF_ERROR(ValidateCommon(points, options.num_clusters));
  if (options.batch_size < 1 || options.max_iterations < 1) {
    return Status::InvalidArgument(
        "batch_size and max_iterations must be >= 1");
  }
  const int n = points.rows(), d = points.cols(), k = options.num_clusters;
  const int b = std::min(options.batch_size, n);

  // Seed from a random sample (capped) for speed.
  la::Matrix centers;
  {
    const int sample = std::min(n, std::max(10 * k, b));
    std::vector<int> idx = rng->SampleWithoutReplacement(n, sample);
    la::Matrix sub = la::GatherRows(points, idx);
    centers = options.kmeanspp ? KMeansPlusPlusSeed(sub, k, rng)
                               : UniformSeed(sub, k, rng);
  }

  std::vector<int64_t> counts(static_cast<size_t>(k), 0);
  for (int step = 0; step < options.max_iterations; ++step) {
    std::vector<int> batch = rng->SampleWithoutReplacement(n, b);
    la::Matrix sub = la::GatherRows(points, batch);
    std::vector<int> assign = AssignToNearest(sub, centers);
    for (int i = 0; i < b; ++i) {
      const int c = assign[static_cast<size_t>(i)];
      const float lr =
          1.0f / static_cast<float>(++counts[static_cast<size_t>(c)]);
      float* crow = centers.Row(c);
      const float* prow = sub.Row(i);
      for (int j = 0; j < d; ++j) {
        crow[j] += lr * (prow[j] - crow[j]);
      }
    }
  }

  KMeansResult result;
  result.iterations = options.max_iterations;
  if (options.final_full_assignment) {
    result.assignments = AssignToNearest(points, centers);
    result.inertia = Inertia(points, centers, result.assignments);
  }
  result.centers = std::move(centers);
  return result;
}

}  // namespace openima::cluster
