#include "src/cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/la/matrix_ops.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace openima::cluster {

namespace {

using exec::Context;

/// Grain for chunked reductions over points: depends only on n (never the
/// thread count) and caps per-chunk accumulator memory at 64 chunks.
int64_t ReduceGrain(int64_t n) {
  return Context::GrainForMaxChunks(n, 256, 64);
}

/// Squared Euclidean distance between a point row and a center row.
double SquaredDistance(const float* a, const float* b, int d) {
  double s = 0.0;
  for (int j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - b[j];
    s += diff * diff;
  }
  return s;
}

/// k-means++ D^2 seeding over `points`. The rng-driven picks stay strictly
/// sequential; the per-center distance refresh parallelizes as a chunked
/// reduction (per-chunk totals combined in ascending chunk order).
la::Matrix KMeansPlusPlusSeed(const la::Matrix& points, int k, Rng* rng,
                              const Context& ex) {
  const int n = points.rows(), d = points.cols();
  la::Matrix centers(k, d);
  const int first = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
  centers.SetRow(0, points, first);
  std::vector<double> dist2(static_cast<size_t>(n),
                            std::numeric_limits<double>::max());
  const int64_t grain = ReduceGrain(n);
  const int64_t chunks = Context::NumChunks(n, grain);
  std::vector<double> partial(static_cast<size_t>(chunks), 0.0);
  for (int c = 1; c < k; ++c) {
    // Update nearest-center distances with the last added center.
    const float* last = centers.Row(c - 1);
    ex.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
      double t = 0.0;
      for (int64_t i = b; i < e; ++i) {
        const double d2 =
            SquaredDistance(points.Row(static_cast<int>(i)), last, d);
        if (d2 < dist2[static_cast<size_t>(i)]) {
          dist2[static_cast<size_t>(i)] = d2;
        }
        t += dist2[static_cast<size_t>(i)];
      }
      partial[static_cast<size_t>(chunk)] = t;
    });
    double total = 0.0;
    for (int64_t ch = 0; ch < chunks; ++ch) {
      total += partial[static_cast<size_t>(ch)];
    }
    int pick;
    if (total <= 0.0) {
      pick = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    } else {
      double u = rng->Uniform() * total;
      pick = n - 1;
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        acc += dist2[static_cast<size_t>(i)];
        if (u < acc) {
          pick = i;
          break;
        }
      }
    }
    centers.SetRow(c, points, pick);
  }
  return centers;
}

la::Matrix UniformSeed(const la::Matrix& points, int k, Rng* rng) {
  la::Matrix centers(k, points.cols());
  std::vector<int> picks = rng->SampleWithoutReplacement(points.rows(), k);
  for (int c = 0; c < k; ++c) centers.SetRow(c, points, picks[static_cast<size_t>(c)]);
  return centers;
}

/// One Lloyd run from the given initial centers. Assignment and center
/// accumulation parallelize with deterministic chunked reductions: chunk
/// boundaries depend only on n, per-chunk partial sums/counts combine in
/// ascending chunk order — bit-identical for any thread count.
KMeansResult LloydRun(const la::Matrix& points, la::Matrix centers,
                      int max_iterations, double tol, bool spherical,
                      const Context& ex) {
  const int n = points.rows(), d = points.cols(), k = centers.rows();
  const Context* ctx = &ex;
  KMeansResult result;
  result.assignments.assign(static_cast<size_t>(n), 0);
  const int64_t grain = ReduceGrain(n);
  const int64_t chunks = Context::NumChunks(n, grain);
  std::vector<double> inertia_partial(static_cast<size_t>(chunks), 0.0);
  la::Matrix sums(k, d);
  std::vector<la::Matrix> sum_partial(
      static_cast<size_t>(chunks), la::Matrix(k, d));
  std::vector<std::vector<int>> count_partial(
      static_cast<size_t>(chunks), std::vector<int>(static_cast<size_t>(k)));
  double prev_inertia = std::numeric_limits<double>::max();
  int iter = 0;
  for (; iter < max_iterations; ++iter) {
    // Assignment step: per-point argmin (disjoint writes) + chunked inertia.
    la::Matrix d2 = la::PairwiseSquaredDistances(points, centers, ctx);
    ex.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
      double t = 0.0;
      la::Matrix& psums = sum_partial[static_cast<size_t>(chunk)];
      std::vector<int>& pcounts = count_partial[static_cast<size_t>(chunk)];
      psums.Fill(0.0f);
      std::fill(pcounts.begin(), pcounts.end(), 0);
      for (int64_t i = b; i < e; ++i) {
        const float* row = d2.Row(static_cast<int>(i));
        int best = 0;
        for (int c = 1; c < k; ++c) {
          if (row[c] < row[best]) best = c;
        }
        result.assignments[static_cast<size_t>(i)] = best;
        t += row[best];
        // Update-step accumulation fused into the same chunk pass.
        ++pcounts[static_cast<size_t>(best)];
        float* srow = psums.Row(best);
        const float* prow = points.Row(static_cast<int>(i));
        for (int j = 0; j < d; ++j) srow[j] += prow[j];
      }
      inertia_partial[static_cast<size_t>(chunk)] = t;
    });
    // Ordered combine of the chunk partials.
    double inertia = 0.0;
    sums.Fill(0.0f);
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int64_t ch = 0; ch < chunks; ++ch) {
      inertia += inertia_partial[static_cast<size_t>(ch)];
      const la::Matrix& psums = sum_partial[static_cast<size_t>(ch)];
      const std::vector<int>& pcounts = count_partial[static_cast<size_t>(ch)];
      for (int c = 0; c < k; ++c) {
        counts[static_cast<size_t>(c)] += pcounts[static_cast<size_t>(c)];
        float* srow = sums.Row(c);
        const float* prow = psums.Row(c);
        for (int j = 0; j < d; ++j) srow[j] += prow[j];
      }
    }
    // Update step.
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Re-seed an empty cluster with the point farthest from its center.
        int farthest = 0;
        double best = -1.0;
        for (int i = 0; i < n; ++i) {
          const double dd = d2(i, result.assignments[static_cast<size_t>(i)]);
          if (dd > best) {
            best = dd;
            farthest = i;
          }
        }
        centers.SetRow(c, points, farthest);
        continue;
      }
      float* crow = centers.Row(c);
      const float* srow = sums.Row(c);
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      for (int j = 0; j < d; ++j) crow[j] = srow[j] * inv;
    }
    if (spherical) la::RowL2NormalizeInPlace(&centers, 1e-12f, ctx);
    result.inertia = inertia;
    if (prev_inertia - inertia <= tol * std::max(prev_inertia, 1e-12)) {
      ++iter;
      break;
    }
    prev_inertia = inertia;
  }
  // Final assignment against the final centers.
  result.assignments = AssignToNearest(points, centers, ctx);
  result.inertia = Inertia(points, centers, result.assignments, ctx);
  result.centers = std::move(centers);
  result.iterations = iter;
  return result;
}

Status ValidateCommon(const la::Matrix& points, int k) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("points must be non-empty");
  }
  if (k < 1 || k > points.rows()) {
    return Status::InvalidArgument(
        StrFormat("num_clusters=%d must be in [1, num_points=%d]", k,
                  points.rows()));
  }
  return Status::OK();
}

}  // namespace

std::vector<int> AssignToNearest(const la::Matrix& points,
                                 const la::Matrix& centers,
                                 const Context* ctx) {
  la::Matrix d2 = la::PairwiseSquaredDistances(points, centers, ctx);
  std::vector<int> out(static_cast<size_t>(points.rows()));
  const int k = centers.rows();
  exec::Get(ctx).ParallelFor(
      points.rows(), ReduceGrain(points.rows()), [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* row = d2.Row(static_cast<int>(i));
          int best = 0;
          for (int c = 1; c < k; ++c) {
            if (row[c] < row[best]) best = c;
          }
          out[static_cast<size_t>(i)] = best;
        }
      });
  return out;
}

double Inertia(const la::Matrix& points, const la::Matrix& centers,
               const std::vector<int>& assignments, const Context* ctx) {
  OPENIMA_CHECK_EQ(static_cast<int>(assignments.size()), points.rows());
  const int64_t n = points.rows();
  const int64_t grain = ReduceGrain(n);
  const int64_t chunks = Context::NumChunks(n, grain);
  std::vector<double> partial(static_cast<size_t>(chunks), 0.0);
  exec::Get(ctx).ParallelForChunks(
      n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
        double t = 0.0;
        for (int64_t i = b; i < e; ++i) {
          t += SquaredDistance(
              points.Row(static_cast<int>(i)),
              centers.Row(assignments[static_cast<size_t>(i)]), points.cols());
        }
        partial[static_cast<size_t>(chunk)] = t;
      });
  double total = 0.0;
  for (int64_t ch = 0; ch < chunks; ++ch) {
    total += partial[static_cast<size_t>(ch)];
  }
  return total;
}

StatusOr<KMeansResult> KMeans(const la::Matrix& points,
                              const KMeansOptions& options, Rng* rng) {
  OPENIMA_RETURN_IF_ERROR(ValidateCommon(points, options.num_clusters));
  if (options.num_init < 1 || options.max_iterations < 1) {
    return Status::InvalidArgument("num_init and max_iterations must be >= 1");
  }
  const Context& ex = exec::Get(options.exec);
  if (!options.initial_centers.empty()) {
    // Warm start: one Lloyd run from the caller's centers (no seeding, no
    // restarts — restarts from the same centers would be identical anyway).
    if (options.initial_centers.rows() != options.num_clusters ||
        options.initial_centers.cols() != points.cols()) {
      return Status::InvalidArgument(
          StrFormat("initial_centers must be %d x %d, got %d x %d",
                    options.num_clusters, points.cols(),
                    options.initial_centers.rows(),
                    options.initial_centers.cols()));
    }
    return LloydRun(points, options.initial_centers, options.max_iterations,
                    options.tol, options.spherical, ex);
  }
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (int run = 0; run < options.num_init; ++run) {
    la::Matrix init =
        options.kmeanspp
            ? KMeansPlusPlusSeed(points, options.num_clusters, rng, ex)
            : UniformSeed(points, options.num_clusters, rng);
    KMeansResult result = LloydRun(points, std::move(init),
                                   options.max_iterations, options.tol,
                                   options.spherical, ex);
    if (result.inertia < best.inertia) best = std::move(result);
  }
  return best;
}

StatusOr<KMeansResult> MiniBatchKMeans(const la::Matrix& points,
                                       const MiniBatchKMeansOptions& options,
                                       Rng* rng) {
  OPENIMA_RETURN_IF_ERROR(ValidateCommon(points, options.num_clusters));
  if (options.batch_size < 1 || options.max_iterations < 1) {
    return Status::InvalidArgument(
        "batch_size and max_iterations must be >= 1");
  }
  const Context& ex = exec::Get(options.exec);
  const Context* ctx = &ex;
  const int n = points.rows(), d = points.cols(), k = options.num_clusters;
  const int b = std::min(options.batch_size, n);

  // Seed from a random sample (capped) for speed, or continue from the
  // caller's centers when warm-starting.
  la::Matrix centers;
  if (!options.initial_centers.empty()) {
    if (options.initial_centers.rows() != k ||
        options.initial_centers.cols() != d) {
      return Status::InvalidArgument(
          StrFormat("initial_centers must be %d x %d, got %d x %d", k, d,
                    options.initial_centers.rows(),
                    options.initial_centers.cols()));
    }
    centers = options.initial_centers;
  } else {
    const int sample = std::min(n, std::max(10 * k, b));
    std::vector<int> idx = rng->SampleWithoutReplacement(n, sample);
    la::Matrix sub = la::GatherRows(points, idx, ctx);
    centers = options.kmeanspp ? KMeansPlusPlusSeed(sub, k, rng, ex)
                               : UniformSeed(sub, k, rng);
  }

  // The online updates are order-dependent (per-center learning rates), so
  // they stay sequential; only the batch assignment parallelizes.
  std::vector<int64_t> counts(static_cast<size_t>(k), 0);
  for (int step = 0; step < options.max_iterations; ++step) {
    std::vector<int> batch = rng->SampleWithoutReplacement(n, b);
    la::Matrix sub = la::GatherRows(points, batch, ctx);
    std::vector<int> assign = AssignToNearest(sub, centers, ctx);
    for (int i = 0; i < b; ++i) {
      const int c = assign[static_cast<size_t>(i)];
      const float lr =
          1.0f / static_cast<float>(++counts[static_cast<size_t>(c)]);
      float* crow = centers.Row(c);
      const float* prow = sub.Row(i);
      for (int j = 0; j < d; ++j) {
        crow[j] += lr * (prow[j] - crow[j]);
      }
    }
  }

  KMeansResult result;
  result.iterations = options.max_iterations;
  if (options.final_full_assignment) {
    result.assignments = AssignToNearest(points, centers, ctx);
    result.inertia = Inertia(points, centers, result.assignments, ctx);
  }
  result.centers = std::move(centers);
  return result;
}

}  // namespace openima::cluster
