#ifndef OPENIMA_UTIL_TABLE_H_
#define OPENIMA_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace openima {

/// Accumulates rows of strings and renders an aligned ASCII table, used by
/// the benchmark harnesses to print paper-style result tables.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Optional title printed above the table.
  void SetTitle(std::string title) { title_ = std::move(title); }

  /// Appends a data row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Renders the table with padded, left-aligned (first column) /
  /// right-aligned (other columns) cells.
  std::string ToString() const;

  /// Renders as comma-separated values (no alignment, no separators).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

}  // namespace openima

#endif  // OPENIMA_UTIL_TABLE_H_
