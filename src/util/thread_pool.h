#ifndef OPENIMA_UTIL_THREAD_POOL_H_
#define OPENIMA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace openima {

/// Fixed-size worker pool. Tasks are `void()` callables; `Wait()` blocks
/// until the queue drains and all in-flight tasks finish.
///
/// On single-core hosts (num_threads <= 1) `Submit` runs the task inline,
/// which keeps the parallel code paths exercised without thread overhead.
class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency(). When
  /// `inline_when_single` is false a pool of max(1, num_threads) real
  /// worker threads is spawned even for a single thread — required when
  /// the point of the pool is to move work OFF the calling thread (the
  /// data-parallel trainer's background pseudo-label refresh, the W=1
  /// worker replica), not to speed it up.
  explicit ThreadPool(int num_threads = 0, bool inline_when_single = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

/// A batch of tasks whose completion — and failure — is tracked as a unit,
/// independently of whatever else runs on the shared pool. `Wait()` blocks
/// until every task submitted to THIS group has finished, then rethrows the
/// first exception (by submission order, so the choice is deterministic even
/// when several tasks fail concurrently) and resets the group for reuse.
///
/// With a null pool — or a pool without worker threads — Submit runs the
/// task inline but still defers its exception to Wait(), so callers get one
/// uniform control flow for the threaded and serial paths.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues one task on the group's pool (inline when it has no workers).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task completed; rethrows the first
  /// captured exception in submission order. The group is reusable after.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_;
  int pending_ = 0;
  std::vector<std::exception_ptr> errors_;  // slot per submitted task
};

/// Splits [0, n) into contiguous chunks and runs `fn(begin, end)` for each,
/// using `pool` if provided (and it has workers), else serially. Blocks until
/// every chunk completes.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Returns a process-wide default pool sized to the host CPU.
ThreadPool* DefaultThreadPool();

}  // namespace openima

#endif  // OPENIMA_UTIL_THREAD_POOL_H_
