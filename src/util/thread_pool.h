#ifndef OPENIMA_UTIL_THREAD_POOL_H_
#define OPENIMA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace openima {

/// Fixed-size worker pool. Tasks are `void()` callables; `Wait()` blocks
/// until the queue drains and all in-flight tasks finish.
///
/// On single-core hosts (num_threads <= 1) `Submit` runs the task inline,
/// which keeps the parallel code paths exercised without thread overhead.
class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits [0, n) into contiguous chunks and runs `fn(begin, end)` for each,
/// using `pool` if provided (and it has workers), else serially. Blocks until
/// every chunk completes.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Returns a process-wide default pool sized to the host CPU.
ThreadPool* DefaultThreadPool();

}  // namespace openima

#endif  // OPENIMA_UTIL_THREAD_POOL_H_
