#include "src/util/thread_pool.h"

#include <algorithm>

#include "src/util/logging.h"

namespace openima {

ThreadPool::ThreadPool(int num_threads, bool inline_when_single) {
  if (num_threads == 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  // With one hardware thread, inline execution beats a worker thread —
  // unless the caller explicitly wants the work off its own thread.
  if (num_threads <= 1) {
    if (inline_when_single) return;
    num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

TaskGroup::~TaskGroup() {
  // Tasks capture `this`; letting them outlive the group is a
  // use-after-free. A group abandoned with work in flight is a bug.
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::Submit(std::function<void()> task) {
  size_t index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = errors_.size();
    errors_.emplace_back(nullptr);
    ++pending_;
  }
  auto wrapped = [this, index, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (error) errors_[index] = error;
    if (--pending_ == 0) done_.notify_all();
  };
  if (pool_ != nullptr && pool_->num_threads() > 0) {
    pool_->Submit(std::move(wrapped));
  } else {
    wrapped();
  }
}

void TaskGroup::Wait() {
  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] { return pending_ == 0; });
    for (std::exception_ptr& e : errors_) {
      if (e != nullptr) {
        first = e;
        break;
      }
    }
    errors_.clear();
  }
  if (first) std::rethrow_exception(first);
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int workers = pool == nullptr ? 0 : pool->num_threads();
  if (workers <= 1) {
    fn(0, n);
    return;
  }
  const int64_t chunks = std::min<int64_t>(n, 4LL * workers);
  const int64_t chunk_size = (n + chunks - 1) / chunks;
  for (int64_t begin = 0; begin < n; begin += chunk_size) {
    const int64_t end = std::min(n, begin + chunk_size);
    pool->Submit([&fn, begin, end] { fn(begin, end); });
  }
  pool->Wait();
}

ThreadPool* DefaultThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

}  // namespace openima
