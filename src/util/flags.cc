#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/logging.h"

namespace openima {

Flags::Flags(int argc, char** argv) {
  program_name_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "Unrecognized argument '%s' (flags are --key=value)\n",
                   arg);
      std::exit(2);
    }
    std::string body = arg + 2;
    auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int Flags::GetInt(const std::string& key, int default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::atoi(it->second.c_str());
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace openima
