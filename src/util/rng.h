#ifndef OPENIMA_UTIL_RNG_H_
#define OPENIMA_UTIL_RNG_H_

#include <cstddef>
#include <utility>
#include <cstdint>
#include <vector>

namespace openima {

/// Deterministic, seedable pseudo-random number generator used by every
/// stochastic component in the library (data generation, init, dropout,
/// K-Means seeding, splits). Implementation: xoshiro256** seeded via
/// SplitMix64 — fast, high quality, and reproducible across platforms
/// (unlike std::normal_distribution, whose output is implementation-defined).
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic across platforms).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with a positive sum.
  int Categorical(const std::vector<double>& weights);

  /// Derives an independent generator (for parallel streams / sub-tasks).
  Rng Fork();

  /// Complete serializable generator state: the four xoshiro256** words
  /// plus the Box–Muller cache (Normal() produces values in pairs; dropping
  /// the cached second value would shift every later draw). Restoring a
  /// captured state resumes the stream exactly where it left off — the
  /// checkpoint/resume contract (src/io/checkpoint.h).
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };

  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, have_cached_normal_,
                 cached_normal_};
  }

  void set_state(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    have_cached_normal_ = state.have_cached_normal;
    cached_normal_ = state.cached_normal;
  }

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Counter-based stream derivation: a SplitMix64-finalized hash of the
/// (seed, stream) pair, suitable for seeding one independent Rng per task.
/// Unlike Fork(), the result is a pure function of its arguments — no
/// generator state is consumed — so per-microbatch / per-refresh streams
/// keyed as DeriveStreamSeed(seed, counter) are identical no matter which
/// thread draws them or in what order (the data-parallel trainer's
/// schedule-independence contract rests on this).
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream);

}  // namespace openima

#endif  // OPENIMA_UTIL_RNG_H_
