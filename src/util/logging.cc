#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace openima {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ =
      fatal || static_cast<int>(level) >=
                   g_min_level.load(std::memory_order_relaxed);
  if (enabled_) {
    // Keep only the basename for brevity.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging

}  // namespace openima
