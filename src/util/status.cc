#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace openima {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal_status {

void DieBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of errored StatusOr: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status

}  // namespace openima
