#ifndef OPENIMA_UTIL_STATUS_H_
#define OPENIMA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace openima {

/// Error categories for `Status`, loosely following the RocksDB/Abseil sets.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIOError,
};

/// A lightweight success-or-error result, used instead of exceptions across
/// all public API boundaries (RocksDB-style error handling).
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// human-readable message otherwise. Functions that produce a value on
/// success should return `StatusOr<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of an
/// errored `StatusOr` aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse: `return result;` / `return Status::InvalidArgument(...)`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieBadStatusAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!ok()) internal_status::DieBadStatusAccess(status_);
}

/// Propagates a non-OK status to the caller.
#define OPENIMA_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::openima::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace openima

#endif  // OPENIMA_UTIL_STATUS_H_
