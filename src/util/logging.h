#ifndef OPENIMA_UTIL_LOGGING_H_
#define OPENIMA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace openima {

/// Log severities, ordered by increasing importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message; emits on destruction. Not for direct use —
/// use the OPENIMA_LOG / OPENIMA_CHECK macros below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Usage: OPENIMA_LOG(INFO) << "trained " << n << " epochs";
#define OPENIMA_LOG(severity)                                        \
  ::openima::internal_logging::LogMessage(                           \
      ::openima::LogLevel::k##severity, __FILE__, __LINE__)          \
      .stream()

/// Aborts with a message when `cond` is false. For programming errors /
/// violated invariants only; recoverable errors should return Status.
#define OPENIMA_CHECK(cond)                                             \
  if (!(cond))                                                          \
  ::openima::internal_logging::LogMessage(::openima::LogLevel::kError,  \
                                          __FILE__, __LINE__, true)     \
          .stream()                                                     \
      << "Check failed: " #cond " "

#define OPENIMA_CHECK_EQ(a, b) OPENIMA_CHECK((a) == (b))
#define OPENIMA_CHECK_NE(a, b) OPENIMA_CHECK((a) != (b))
#define OPENIMA_CHECK_LT(a, b) OPENIMA_CHECK((a) < (b))
#define OPENIMA_CHECK_LE(a, b) OPENIMA_CHECK((a) <= (b))
#define OPENIMA_CHECK_GT(a, b) OPENIMA_CHECK((a) > (b))
#define OPENIMA_CHECK_GE(a, b) OPENIMA_CHECK((a) >= (b))

}  // namespace openima

#endif  // OPENIMA_UTIL_LOGGING_H_
