#ifndef OPENIMA_UTIL_STOPWATCH_H_
#define OPENIMA_UTIL_STOPWATCH_H_

#include <chrono>

namespace openima {

/// Wall-clock timer for coarse experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace openima

#endif  // OPENIMA_UTIL_STOPWATCH_H_
