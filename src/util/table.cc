#include "src/util/table.h"

#include <algorithm>

#include "src/util/logging.h"

namespace openima {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OPENIMA_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  OPENIMA_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

void Table::AddSeparator() { rows_.emplace_back(); }

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_sep = [&] {
    std::string line = "+";
    for (size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      size_t pad = widths[c] - cell.size();
      if (c == 0) {
        line += " " + cell + std::string(pad, ' ') + " |";
      } else {
        line += " " + std::string(pad, ' ') + cell + " |";
      }
    }
    line += "\n";
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += render_sep();
  out += render_row(headers_);
  out += render_sep();
  for (const auto& row : rows_) {
    out += row.empty() ? render_sep() : render_row(row);
  }
  out += render_sep();
  return out;
}

std::string Table::ToCsv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) line += ",";
      line += row[c];
    }
    line += "\n";
    return line;
  };
  std::string out = render(headers_);
  for (const auto& row : rows_) {
    if (!row.empty()) out += render(row);
  }
  return out;
}

}  // namespace openima
