#ifndef OPENIMA_UTIL_FLAGS_H_
#define OPENIMA_UTIL_FLAGS_H_

#include <map>
#include <string>

namespace openima {

/// Minimal `--key=value` command-line parser for the bench and example
/// binaries. Unrecognized positional arguments are rejected.
class Flags {
 public:
  /// Parses argv; aborts with a usage message on malformed input.
  Flags(int argc, char** argv);

  /// Typed getters with defaults. A flag given without "=value" parses as
  /// boolean true.
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int GetInt(const std::string& key, int default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
};

}  // namespace openima

#endif  // OPENIMA_UTIL_FLAGS_H_
