#include "src/util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace openima {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // vsnprintf writes the terminating NUL into needed+1 bytes; data() of a
    // non-const string has room for it since C++11.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(s);
  while (std::getline(in, field, delim)) out.push_back(field);
  if (!s.empty() && s.back() == delim) out.push_back("");
  return out;
}

std::string Pct(double fraction) { return StrFormat("%.1f", fraction * 100.0); }

}  // namespace openima
