#ifndef OPENIMA_UTIL_STRING_UTIL_H_
#define OPENIMA_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace openima {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single-character delimiter (empty fields kept).
std::vector<std::string> Split(const std::string& s, char delim);

/// Formats a fraction as a percentage with one decimal, e.g. 0.7312 -> "73.1".
std::string Pct(double fraction);

}  // namespace openima

#endif  // OPENIMA_UTIL_STRING_UTIL_H_
