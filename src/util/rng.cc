#include "src/util/rng.h"

#include <cmath>

#include "src/util/logging.h"

namespace openima {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  // Two finalizer passes over the pair so that neither nearby seeds nor
  // nearby stream counters produce correlated outputs.
  uint64_t state = seed ^ Rotl(stream + 0x9e3779b97f4a7c15ULL, 32);
  (void)SplitMix64(&state);
  return SplitMix64(&state);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  OPENIMA_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  OPENIMA_CHECK_GE(n, k);
  OPENIMA_CHECK_GE(k, 0);
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher–Yates: only the first k positions are needed.
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

int Rng::Categorical(const std::vector<double>& weights) {
  OPENIMA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    OPENIMA_CHECK_GE(w, 0.0);
    total += w;
  }
  OPENIMA_CHECK_GT(total, 0.0);
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace openima
