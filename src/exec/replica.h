#ifndef OPENIMA_EXEC_REPLICA_H_
#define OPENIMA_EXEC_REPLICA_H_

#include <memory>
#include <vector>

#include "src/exec/context.h"
#include "src/util/thread_pool.h"

namespace openima::exec {

/// Execution substrate for deterministic data-parallel training: W
/// single-threaded Contexts — one per model replica — plus a shared task
/// pool of W real worker threads that drives them.
///
/// Each replica Context runs its kernels inline (num_threads == 1) on
/// whichever worker thread picked up the replica's task. Combined with the
/// kernel layer's thread-count-invariance contract (Context determinism,
/// context.h) this makes a replica's forward/backward bit-identical to the
/// same computation on the primary context, no matter how the host
/// schedules the workers. The caller pins each context's memory pool /
/// kernel backend itself (see core's data-parallel trainer): the pins are
/// policy, the contexts and threads are substrate.
///
/// The task pool always has real threads — even for one replica — because
/// its purpose is moving replica work OFF the coordinating thread, not
/// speeding up a single replica.
class ReplicaSet {
 public:
  explicit ReplicaSet(int num_replicas)
      : tasks_(num_replicas, /*inline_when_single=*/false) {
    contexts_.reserve(static_cast<size_t>(num_replicas));
    for (int i = 0; i < num_replicas; ++i) {
      contexts_.push_back(std::make_unique<Context>(1));
    }
  }

  int size() const { return static_cast<int>(contexts_.size()); }
  Context* context(int i) { return contexts_[static_cast<size_t>(i)].get(); }
  ThreadPool* task_pool() { return &tasks_; }

 private:
  std::vector<std::unique_ptr<Context>> contexts_;
  ThreadPool tasks_;
};

}  // namespace openima::exec

#endif  // OPENIMA_EXEC_REPLICA_H_
