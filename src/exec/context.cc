#include "src/exec/context.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "src/util/logging.h"

namespace openima::exec {

namespace {

/// True while the current thread is executing a ParallelFor* range. Nested
/// parallel sections run inline instead of re-entering the pool: a worker
/// blocking in Wait() for sub-tasks could deadlock the pool, and inline
/// execution keeps the fixed chunk layout (and thus determinism) intact.
thread_local bool tls_in_parallel_region = false;

class ScopedParallelRegion {
 public:
  ScopedParallelRegion() : prev_(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~ScopedParallelRegion() { tls_in_parallel_region = prev_; }

 private:
  bool prev_;
};

}  // namespace

Context::Context(int num_threads) {
  if (num_threads == 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(1, num_threads);
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

Context::~Context() = default;

int64_t Context::NumChunks(int64_t n, int64_t grain) {
  if (n <= 0) return 0;
  grain = std::max<int64_t>(1, grain);
  return (n + grain - 1) / grain;
}

std::pair<int64_t, int64_t> Context::ChunkBounds(int64_t n, int64_t grain,
                                                 int64_t chunk) {
  grain = std::max<int64_t>(1, grain);
  const int64_t begin = chunk * grain;
  return {begin, std::min(n, begin + grain)};
}

int64_t Context::GrainForMaxChunks(int64_t n, int64_t min_grain,
                                   int64_t max_chunks) {
  max_chunks = std::max<int64_t>(1, max_chunks);
  const int64_t spread = (n + max_chunks - 1) / max_chunks;
  return std::max<int64_t>(std::max<int64_t>(1, min_grain), spread);
}

void Context::ParallelFor(
    int64_t n, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn) const {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  if (pool_ == nullptr || tls_in_parallel_region || n <= grain) {
    ScopedParallelRegion region;
    fn(0, n);
    return;
  }
  // At most 4 ranges per worker (load balancing), each at least `grain`
  // long. Range boundaries here are a scheduling detail: each index runs
  // exactly once, so disjoint-output kernels stay deterministic.
  const int64_t max_ranges =
      std::min<int64_t>((n + grain - 1) / grain, 4LL * num_threads_);
  const int64_t range_size = (n + max_ranges - 1) / max_ranges;
  for (int64_t begin = 0; begin < n; begin += range_size) {
    const int64_t end = std::min(n, begin + range_size);
    pool_->Submit([&fn, begin, end] {
      ScopedParallelRegion region;
      fn(begin, end);
    });
  }
  pool_->Wait();
}

void Context::ParallelForChunks(
    int64_t n, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) const {
  const int64_t chunks = NumChunks(n, grain);
  if (chunks <= 0) return;
  if (pool_ == nullptr || tls_in_parallel_region || chunks == 1) {
    ScopedParallelRegion region;
    for (int64_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = ChunkBounds(n, grain, c);
      fn(c, begin, end);
    }
    return;
  }
  for (int64_t c = 0; c < chunks; ++c) {
    const auto [begin, end] = ChunkBounds(n, grain, c);
    pool_->Submit([&fn, c, begin = begin, end = end] {
      ScopedParallelRegion region;
      fn(c, begin, end);
    });
  }
  pool_->Wait();
}

namespace {

std::mutex g_default_mu;
Context* g_default = nullptr;  // never freed: kernels may hold the pointer

int ThreadsFromEnv() {
  const char* env = std::getenv("OPENIMA_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  return std::max(1, std::atoi(env));
}

}  // namespace

Context* Default() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  if (g_default == nullptr) g_default = new Context(ThreadsFromEnv());
  return g_default;
}

void SetDefaultNumThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  g_default = new Context(num_threads);
}

}  // namespace openima::exec
