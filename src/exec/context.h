#ifndef OPENIMA_EXEC_CONTEXT_H_
#define OPENIMA_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "src/util/thread_pool.h"

namespace openima::la {
class Pool;  // src/la/pool.h — exec stores only a non-owning pointer
}

namespace openima::la::backend {
class KernelBackend;  // src/la/backend/backend.h — non-owning pointer too
}

namespace openima::exec {

/// Execution context: a thread-pool handle plus the chunking policy every
/// parallel kernel in the compute stack (la, nn, cluster, metrics) routes
/// through. Layers receive a `const Context*` — nullptr means "use the
/// process-wide default" (see Default() below) — so callers can pin a
/// model, a clustering run, or a whole experiment to an explicit thread
/// budget without touching globals.
///
/// Determinism contract: every reduction built on ParallelForChunks is
/// bit-identical for any thread count (including the inline num_threads<=1
/// path), because chunk boundaries depend only on (n, grain) — never on the
/// worker count — and callers combine per-chunk partials in chunk order.
/// ParallelFor makes the weaker (but sufficient) guarantee that each index
/// is processed exactly once; kernels that only write disjoint outputs
/// per-index are deterministic under it as well.
class Context {
 public:
  /// `num_threads == 0` sizes the pool to the host CPU;
  /// `num_threads <= 1` runs everything inline on the calling thread.
  explicit Context(int num_threads = 0);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Worker threads available (1 when running inline).
  int num_threads() const { return num_threads_; }

  /// Runs `fn(begin, end)` over a partition of [0, n) into contiguous
  /// ranges of at least `grain` indices, in parallel when the context has
  /// workers. Blocks until every range completes. Ranges may be merged for
  /// scheduling — use ParallelForChunks when chunk identity matters.
  /// Nested calls (from inside a running range) execute inline.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn) const;

  /// Deterministic chunked driver: partitions [0, n) into exactly
  /// NumChunks(n, grain) chunks whose boundaries depend only on (n, grain),
  /// and runs `fn(chunk, begin, end)` for each — possibly concurrently, but
  /// every chunk exactly once. Reductions allocate one private accumulator
  /// per chunk and combine them in ascending chunk order after this
  /// returns; the combine order makes the result independent of the thread
  /// count. Nested calls execute inline (chunk layout unchanged).
  void ParallelForChunks(
      int64_t n, int64_t grain,
      const std::function<void(int64_t chunk, int64_t begin, int64_t end)>& fn)
      const;

  /// Number of fixed chunks ParallelForChunks uses: ceil(n / max(1, grain)).
  static int64_t NumChunks(int64_t n, int64_t grain);

  /// [begin, end) of one fixed chunk.
  static std::pair<int64_t, int64_t> ChunkBounds(int64_t n, int64_t grain,
                                                 int64_t chunk);

  /// Grain that caps the chunk count (bounding per-chunk accumulator
  /// memory) while keeping chunks at least `min_grain` long. Depends only
  /// on n — safe for deterministic reductions.
  static int64_t GrainForMaxChunks(int64_t n, int64_t min_grain,
                                   int64_t max_chunks);

  /// Optional matrix-storage pool carried alongside the thread budget.
  /// Kernels resolve their scratch pool via la::ResolvePool(ctx): an
  /// explicit context pool wins over the thread-local PoolBinding. The pool
  /// must outlive every matrix/buffer drawn through this context. Non-owning.
  la::Pool* memory_pool() const { return memory_pool_; }
  void set_memory_pool(la::Pool* pool) { memory_pool_ = pool; }

  /// Optional kernel-backend pin carried alongside the thread budget.
  /// Kernels resolve their backend via la::backend::Resolve(ctx): an
  /// explicit context backend wins over the process default (which the
  /// OPENIMA_BACKEND env var / SetDefault select). The backend instances
  /// are process-lifetime singletons. Non-owning.
  const la::backend::KernelBackend* kernel_backend() const {
    return kernel_backend_;
  }
  void set_kernel_backend(const la::backend::KernelBackend* backend) {
    kernel_backend_ = backend;
  }

 private:
  int num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when running inline
  la::Pool* memory_pool_ = nullptr;
  const la::backend::KernelBackend* kernel_backend_ = nullptr;
};

/// Process-wide default context. Sized from the OPENIMA_THREADS environment
/// variable when set (<= 1 forces single-threaded execution), else from the
/// host CPU. Never destroyed.
Context* Default();

/// Replaces the default context with one of the given size (0 = host CPU).
/// The `--threads` flag of the bench binaries lands here. The previous
/// default is intentionally leaked: kernels may still hold it.
void SetDefaultNumThreads(int num_threads);

/// Resolves the ubiquitous "nullptr means default" convention.
inline const Context& Get(const Context* ctx) {
  return ctx != nullptr ? *ctx : *Default();
}

}  // namespace openima::exec

#endif  // OPENIMA_EXEC_CONTEXT_H_
