#ifndef OPENIMA_NN_ENCODER_H_
#define OPENIMA_NN_ENCODER_H_

#include "src/graph/graph.h"
#include "src/graph/sampler.h"
#include "src/nn/module.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace openima::nn {

/// Interface of a graph node encoder: features -> embeddings. Implemented
/// by GatEncoder (the paper's choice) and GcnEncoder (a common ablation).
class Encoder : public Module {
 public:
  /// features: num_nodes x in_dim (a constant leaf). Returns embeddings
  /// num_nodes x embedding_dim(). In training mode fresh dropout masks are
  /// drawn (two calls give the SimCSE positive pair).
  virtual autograd::Variable Forward(const graph::Graph& graph,
                                     const autograd::Variable& features,
                                     bool training, Rng* rng) const = 0;

  /// True when the encoder implements ForwardSampled (minibatch training
  /// over sampled blocks). Config validation rejects sampled training for
  /// encoders that do not.
  virtual bool SupportsSampled() const { return false; }

  /// Sampled counterpart of Forward: `features` covers the block's input
  /// frontier (block.num_input() x in_dim); returns block.num_output() x
  /// embedding_dim() rows for the seed nodes. Only valid when
  /// SupportsSampled() is true.
  virtual autograd::Variable ForwardSampled(const graph::SampledBlock& block,
                                            const autograd::Variable& features,
                                            bool training, Rng* rng) const {
    (void)block;
    (void)features;
    (void)training;
    (void)rng;
    OPENIMA_CHECK(false) << "encoder does not support sampled forward";
    return {};
  }

  virtual int embedding_dim() const = 0;
};

}  // namespace openima::nn

#endif  // OPENIMA_NN_ENCODER_H_
