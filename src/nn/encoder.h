#ifndef OPENIMA_NN_ENCODER_H_
#define OPENIMA_NN_ENCODER_H_

#include "src/graph/graph.h"
#include "src/nn/module.h"
#include "src/util/rng.h"

namespace openima::nn {

/// Interface of a graph node encoder: features -> embeddings. Implemented
/// by GatEncoder (the paper's choice) and GcnEncoder (a common ablation).
class Encoder : public Module {
 public:
  /// features: num_nodes x in_dim (a constant leaf). Returns embeddings
  /// num_nodes x embedding_dim(). In training mode fresh dropout masks are
  /// drawn (two calls give the SimCSE positive pair).
  virtual autograd::Variable Forward(const graph::Graph& graph,
                                     const autograd::Variable& features,
                                     bool training, Rng* rng) const = 0;

  virtual int embedding_dim() const = 0;
};

}  // namespace openima::nn

#endif  // OPENIMA_NN_ENCODER_H_
