#ifndef OPENIMA_NN_SERIALIZATION_H_
#define OPENIMA_NN_SERIALIZATION_H_

#include <string>

#include "src/nn/module.h"
#include "src/util/status.h"

namespace openima::nn {

/// Writes a module's parameters to a text checkpoint:
///
///   openima-params v1
///   tensors <count>
///   <rows> <cols>            (per tensor, in registration order)
///   <row-major float values>
///
/// Only values are stored; the loading side must construct an identically
/// shaped module (same config and registration order) first.
Status SaveParameters(const Module& module, const std::string& path);

/// Loads a checkpoint written by SaveParameters into `module`, which must
/// have exactly matching tensor count and shapes.
Status LoadParameters(Module* module, const std::string& path);

}  // namespace openima::nn

#endif  // OPENIMA_NN_SERIALIZATION_H_
