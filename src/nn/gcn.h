#ifndef OPENIMA_NN_GCN_H_
#define OPENIMA_NN_GCN_H_

#include <memory>

#include "src/nn/encoder.h"
#include "src/nn/gat.h"
#include "src/nn/linear.h"

namespace openima::nn {

/// Symmetric-normalized GCN aggregation (Kipf & Welling, ICLR 2017):
/// out = D^{-1/2} (A + I) D^{-1/2} x, where the self-loops are part of
/// `graph`. The operator is symmetric, so its backward is itself. Forward
/// and backward parallelize row-wise through `exec` (nullptr = process
/// default; an explicit context must outlive the backward pass).
autograd::Variable GcnAggregate(const graph::Graph& graph,
                                const autograd::Variable& x,
                                const exec::Context* exec = nullptr);

/// Two-layer GCN encoder:
///   z = Â · ELU( Â · dropout(X) W1 + b1 ) W2 + b2,  Â the normalized
/// adjacency. Reuses the shared GatEncoderConfig sizing fields (heads and
/// attention dropout are ignored).
class GcnEncoder : public Encoder {
 public:
  GcnEncoder(const GatEncoderConfig& config, Rng* rng);

  autograd::Variable Forward(const graph::Graph& graph,
                             const autograd::Variable& features, bool training,
                             Rng* rng) const override;

  int embedding_dim() const override { return config_.embedding_dim; }

  const GatEncoderConfig& config() const { return config_; }

 private:
  GatEncoderConfig config_;
  std::unique_ptr<Linear> layer1_;
  std::unique_ptr<Linear> layer2_;
};

/// Builds the encoder selected by `config.arch`.
std::unique_ptr<Encoder> MakeEncoder(const GatEncoderConfig& config, Rng* rng);

}  // namespace openima::nn

#endif  // OPENIMA_NN_GCN_H_
