#include "src/nn/adam.h"

#include <cmath>

#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::nn {

Adam::Adam(std::vector<autograd::Variable> params, const AdamOptions& options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    OPENIMA_CHECK(p.requires_grad());
    m_.emplace_back(p.rows(), p.cols());
    v_.emplace_back(p.rows(), p.cols());
  }
}

void Adam::Step() {
  grad_ptrs_.resize(params_.size());
  for (size_t k = 0; k < params_.size(); ++k) {
    // Parameters outside the current loss graph (e.g. an ablated head)
    // receive no gradient this step; skip them.
    grad_ptrs_[k] = params_[k].HasGrad() ? &params_[k].grad() : nullptr;
  }
  StepImpl(grad_ptrs_.data());
}

void Adam::Step(const std::vector<const la::Matrix*>& grads) {
  OPENIMA_CHECK_EQ(grads.size(), params_.size());
  StepImpl(grads.data());
}

Status Adam::RestoreState(const std::vector<la::Matrix>& m,
                          const std::vector<la::Matrix>& v,
                          int64_t step_count) {
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument(
        "Adam state has a different tensor count than this optimizer");
  }
  if (step_count < 0) {
    return Status::InvalidArgument("Adam step count must be >= 0");
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    if (m[k].rows() != params_[k].rows() || m[k].cols() != params_[k].cols() ||
        v[k].rows() != params_[k].rows() || v[k].cols() != params_[k].cols()) {
      return Status::InvalidArgument(
          "Adam moment shape mismatch against this optimizer's parameters");
    }
  }
  m_ = m;
  v_ = v;
  step_count_ = step_count;
  return Status::OK();
}

void Adam::StepImpl(const la::Matrix* const* grads) {
  // Every trainer (OpenIMA and all baselines) funnels through here, so this
  // one span gives the optimizer slice of every epoch's phase tree.
  OPENIMA_OBS_PHASE("adam");
  OPENIMA_OBS_COUNT("adam.steps", 1);
  ++step_count_;
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(step_count_));
  const float lr_t = static_cast<float>(options_.lr * std::sqrt(bc2) / bc1);
  // Numeric-health scans (off by default; a single relaxed load when
  // inactive, compiled out entirely under OPENIMA_OBS=OFF): the gradients
  // the step consumes, the parameters it produces, and the global gradient
  // norm against the explosion limit.
  const bool watch = obs::Watchdog::active();
  double grad_sq_sum = 0.0;
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    if (grads[k] == nullptr) continue;
    la::Matrix& value = p.mutable_value();
    const la::Matrix& grad = *grads[k];
    OPENIMA_CHECK_EQ(grad.rows(), value.rows());
    OPENIMA_CHECK_EQ(grad.cols(), value.cols());
    la::Matrix& m = m_[k];
    la::Matrix& v = v_[k];
    float* pv = value.data();
    const float* g = grad.data();
    float* mv = m.data();
    float* vv = v.data();
    if (watch) {
      obs::Watchdog::CheckTensor("adam.grad", g, grad.size());
      for (int64_t i = 0; i < grad.size(); ++i) {
        grad_sq_sum += static_cast<double>(g[i]) * static_cast<double>(g[i]);
      }
    }
    const float b1 = options_.beta1, b2 = options_.beta2;
    const float wd = options_.weight_decay, eps = options_.eps;
    for (int64_t i = 0; i < value.size(); ++i) {
      const float gi = g[i] + wd * pv[i];
      mv[i] = b1 * mv[i] + (1.0f - b1) * gi;
      vv[i] = b2 * vv[i] + (1.0f - b2) * gi * gi;
      pv[i] -= lr_t * mv[i] / (std::sqrt(vv[i]) + eps);
    }
    if (watch) {
      obs::Watchdog::CheckTensor("adam.param", pv, value.size());
    }
  }
  if (watch) {
    obs::Watchdog::CheckNorm("adam.grad_norm", std::sqrt(grad_sq_sum));
  }
}

}  // namespace openima::nn
