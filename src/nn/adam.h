#ifndef OPENIMA_NN_ADAM_H_
#define OPENIMA_NN_ADAM_H_

#include <vector>

#include "src/autograd/variable.h"
#include "src/util/status.h"

namespace openima::nn {

/// Adam optimizer options. The paper uses Adam with weight decay 1e-4
/// (§VII); `weight_decay` here is L2-in-gradient, matching torch.optim.Adam.
struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 1e-4f;
};

/// Adam (Kingma & Ba, 2015) over a fixed parameter list.
class Adam {
 public:
  Adam(std::vector<autograd::Variable> params, const AdamOptions& options);

  /// Applies one update from the parameters' current gradients, then leaves
  /// the gradients untouched (call ZeroGrad on the module afterwards).
  void Step();

  /// Applies one update from externally supplied gradient buffers instead
  /// of the parameters' own: `grads` is parallel to the constructor's
  /// parameter list, each entry either a matrix of the parameter's shape or
  /// nullptr (= skip, mirroring the no-gradient skip of Step()). This is
  /// the data-parallel trainer's entry point — it hands in the tree-reduced
  /// gradients of a worker round, so the moments and the step count advance
  /// exactly as if a single serial step had produced those gradients.
  void Step(const std::vector<const la::Matrix*>& grads);

  /// Changes the learning rate (for simple schedules).
  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }

  int64_t step_count() const { return step_count_; }

  /// Moment buffers, parallel to the constructor's parameter list (for
  /// checkpointing — resuming Adam without its moments changes every
  /// subsequent update).
  const std::vector<la::Matrix>& first_moments() const { return m_; }
  const std::vector<la::Matrix>& second_moments() const { return v_; }

  /// Restores moments + step count captured from an identically shaped
  /// optimizer (checkpoint load). Error when the buffer counts or any
  /// moment shape disagree with this optimizer's parameters.
  Status RestoreState(const std::vector<la::Matrix>& m,
                      const std::vector<la::Matrix>& v, int64_t step_count);

 private:
  /// Shared update loop over one gradient pointer per parameter (nullptr =
  /// skip that parameter this step).
  void StepImpl(const la::Matrix* const* grads);

  std::vector<autograd::Variable> params_;
  AdamOptions options_;
  std::vector<la::Matrix> m_;
  std::vector<la::Matrix> v_;
  std::vector<const la::Matrix*> grad_ptrs_;  // scratch for Step()
  int64_t step_count_ = 0;
};

}  // namespace openima::nn

#endif  // OPENIMA_NN_ADAM_H_
