#ifndef OPENIMA_NN_INIT_H_
#define OPENIMA_NN_INIT_H_

#include "src/la/matrix.h"
#include "src/util/rng.h"

namespace openima::nn {

/// Glorot (Xavier) uniform initialization: U(-a, a) with
/// a = sqrt(6 / (fan_in + fan_out)). The default for all weight matrices in
/// this library, matching the GAT reference implementation.
la::Matrix GlorotUniform(int fan_in, int fan_out, Rng* rng);

}  // namespace openima::nn

#endif  // OPENIMA_NN_INIT_H_
