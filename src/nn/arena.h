#ifndef OPENIMA_NN_ARENA_H_
#define OPENIMA_NN_ARENA_H_

#include "src/autograd/tape.h"
#include "src/la/pool.h"

namespace openima::nn {

/// Memory arena for a training loop: a la::Pool for matrix/buffer storage
/// plus an autograd::Tape for computation-graph nodes. The first epoch
/// populates both; every later epoch recycles, so steady-state training
/// steps perform (near-)zero heap allocations.
///
/// Owned by the trainer and declared BEFORE the model/optimizer members so
/// that storage they retain across epochs (parameter gradients, Adam
/// moments, cached centers) is released before the arena is destroyed —
/// the pool CHECKs at destruction that every buffer came back.
class TrainingArena {
 public:
  /// RAII activation: while alive, matrices and graph nodes built on this
  /// thread draw from the arena. Scope it to the training loop.
  class Binding {
   public:
    explicit Binding(TrainingArena* arena)
        : pool_bind_(&arena->pool_), tape_bind_(&arena->tape_) {}

   private:
    la::PoolBinding pool_bind_;
    autograd::TapeBinding tape_bind_;
  };

  /// Epoch boundary: call once the previous step's graph has been freed
  /// (the top of each epoch iteration is a natural place). CHECK-fails when
  /// graph nodes are still alive — a retained sub-graph would otherwise
  /// grow the arena every epoch.
  void EndEpoch() { tape_.Reset(); }

  la::Pool& pool() { return pool_; }
  autograd::Tape& tape() { return tape_; }

 private:
  la::Pool pool_;
  autograd::Tape tape_;
};

}  // namespace openima::nn

#endif  // OPENIMA_NN_ARENA_H_
