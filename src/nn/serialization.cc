#include "src/nn/serialization.h"

#include <cstdio>
#include <memory>

#include "src/util/string_util.h"

namespace openima::nn {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const auto& params = module.parameters();
  std::fprintf(f.get(), "openima-params v1\n");
  std::fprintf(f.get(), "tensors %zu\n", params.size());
  for (const auto& p : params) {
    const la::Matrix& v = p.value();
    std::fprintf(f.get(), "%d %d\n", v.rows(), v.cols());
    for (int64_t i = 0; i < v.size(); ++i) {
      std::fprintf(f.get(), "%.9g%c", static_cast<double>(v.data()[i]),
                   i + 1 == v.size() ? '\n' : ' ');
    }
  }
  if (std::ferror(f.get())) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(Module* module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IOError("cannot open " + path);
  char magic[32] = {0}, version[16] = {0};
  if (std::fscanf(f.get(), "%31s %15s", magic, version) != 2 ||
      std::string(magic) != "openima-params" ||
      std::string(version) != "v1") {
    return Status::InvalidArgument(path + ": not an openima-params v1 file");
  }
  size_t count = 0;
  if (std::fscanf(f.get(), " tensors %zu", &count) != 1) {
    return Status::InvalidArgument(path + ": missing tensor count");
  }
  const auto& params = module->parameters();
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("%s: checkpoint has %zu tensors, module has %zu",
                  path.c_str(), count, params.size()));
  }
  for (size_t t = 0; t < count; ++t) {
    autograd::Variable p = params[t];  // shares the underlying node
    int rows = -1, cols = -1;
    if (std::fscanf(f.get(), "%d %d", &rows, &cols) != 2 ||
        rows != p.rows() || cols != p.cols()) {
      return Status::InvalidArgument(
          StrFormat("%s: tensor %zu shape mismatch (got %dx%d, want %dx%d)",
                    path.c_str(), t, rows, cols, p.rows(), p.cols()));
    }
    la::Matrix& v = p.mutable_value();
    for (int64_t i = 0; i < v.size(); ++i) {
      if (std::fscanf(f.get(), "%f", &v.data()[i]) != 1) {
        return Status::InvalidArgument(
            StrFormat("%s: truncated tensor %zu", path.c_str(), t));
      }
    }
  }
  return Status::OK();
}

}  // namespace openima::nn
