#ifndef OPENIMA_NN_MODULE_H_
#define OPENIMA_NN_MODULE_H_

#include <vector>

#include "src/autograd/variable.h"

namespace openima::nn {

/// Base class for anything with trainable parameters. Parameters are leaf
/// Variables with requires_grad = true; they persist across forward passes
/// and are updated in place by an optimizer.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module (including registered
  /// sub-modules' parameters, in registration order).
  const std::vector<autograd::Variable>& parameters() const {
    return parameters_;
  }

  /// Zeroes the gradient buffers of all parameters.
  void ZeroGrad() {
    for (auto& p : parameters_) p.ZeroGrad();
  }

  /// Total number of scalar parameters.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const auto& p : parameters_) n += p.value().size();
    return n;
  }

 protected:
  Module() = default;

  /// Registers a new trainable parameter initialized to `init`.
  autograd::Variable AddParameter(la::Matrix init) {
    parameters_.push_back(
        autograd::Variable::Leaf(std::move(init), /*requires_grad=*/true));
    return parameters_.back();
  }

  /// Adopts all parameters of a sub-module (which must outlive this one).
  void RegisterSubmodule(const Module& sub) {
    for (const auto& p : sub.parameters()) parameters_.push_back(p);
  }

 private:
  std::vector<autograd::Variable> parameters_;
};

}  // namespace openima::nn

#endif  // OPENIMA_NN_MODULE_H_
