#include "src/nn/gcn.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/autograd/ops.h"
#include "src/util/logging.h"

namespace openima::nn {

namespace {
using autograd::MakeOp;
using autograd::Node;
using autograd::Variable;

/// out = Â x with Â = D^{-1/2} (A + I) D^{-1/2} (self-loops included in the
/// CSR). Parallel over output rows: each row only reads x and writes its
/// own slice, so the result is identical for any range split.
la::Matrix Aggregate(const graph::Graph& graph, const la::Matrix& x,
                     const std::vector<float>& inv_sqrt_deg,
                     const exec::Context& ex) {
  const int n = graph.num_nodes(), f = x.cols();
  la::Matrix out(n, f);
  const auto& row_ptr = graph.row_ptr();
  const auto& col_idx = graph.col_idx();
  ex.ParallelFor(n, std::max<int64_t>(64, n / 256),
                 [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* orow = out.Row(static_cast<int>(i));
      const float di = inv_sqrt_deg[static_cast<size_t>(i)];
      for (int64_t e = row_ptr[static_cast<size_t>(i)];
           e < row_ptr[static_cast<size_t>(i) + 1]; ++e) {
        const int j = col_idx[static_cast<size_t>(e)];
        const float c = di * inv_sqrt_deg[static_cast<size_t>(j)];
        const float* src = x.Row(j);
        for (int k = 0; k < f; ++k) orow[k] += c * src[k];
      }
    }
  });
  return out;
}

std::vector<float> InvSqrtDegrees(const graph::Graph& graph) {
  std::vector<float> out(static_cast<size_t>(graph.num_nodes()));
  for (int v = 0; v < graph.num_nodes(); ++v) {
    out[static_cast<size_t>(v)] =
        1.0f / std::sqrt(static_cast<float>(std::max(1, graph.Degree(v))));
  }
  return out;
}

}  // namespace

Variable GcnAggregate(const graph::Graph& graph, const Variable& x,
                      const exec::Context* exec_ctx) {
  OPENIMA_CHECK_EQ(x.rows(), graph.num_nodes());
  OPENIMA_CHECK(graph.has_self_loops())
      << "GCN normalization expects self-loops";
  std::vector<float> inv_sqrt_deg = InvSqrtDegrees(graph);
  la::Matrix out = Aggregate(graph, x.value(), inv_sqrt_deg,
                             exec::Get(exec_ctx));
  const graph::Graph* gptr = &graph;
  return MakeOp("gcn_aggregate", std::move(out), {x},
                [gptr, exec_ctx, inv_sqrt_deg = std::move(inv_sqrt_deg)](
                    Node* n) {
                  if (!n->inputs[0]->requires_grad) return;
                  // Â is symmetric: dX = Â * dOut.
                  n->inputs[0]->grad += Aggregate(*gptr, n->grad, inv_sqrt_deg,
                                                  exec::Get(exec_ctx));
                });
}

GcnEncoder::GcnEncoder(const GatEncoderConfig& config, Rng* rng)
    : config_(config) {
  OPENIMA_CHECK_GT(config.in_dim, 0);
  layer1_ = std::make_unique<Linear>(config.in_dim, config.hidden_dim,
                                     /*use_bias=*/true, rng, config.exec);
  layer2_ = std::make_unique<Linear>(config.hidden_dim, config.embedding_dim,
                                     /*use_bias=*/true, rng, config.exec);
  RegisterSubmodule(*layer1_);
  RegisterSubmodule(*layer2_);
}

Variable GcnEncoder::Forward(const graph::Graph& graph,
                             const Variable& features, bool training,
                             Rng* rng) const {
  namespace ops = autograd::ops;
  Variable x = ops::Dropout(features, config_.dropout, training, rng);
  x = GcnAggregate(graph, layer1_->Forward(x), config_.exec);
  x = ops::Elu(x);
  x = ops::Dropout(x, config_.dropout, training, rng);
  return GcnAggregate(graph, layer2_->Forward(x), config_.exec);
}

std::unique_ptr<Encoder> MakeEncoder(const GatEncoderConfig& config,
                                     Rng* rng) {
  switch (config.arch) {
    case EncoderArch::kGat:
      return std::make_unique<GatEncoder>(config, rng);
    case EncoderArch::kGcn:
      return std::make_unique<GcnEncoder>(config, rng);
  }
  OPENIMA_CHECK(false) << "unknown encoder arch";
  return nullptr;
}

}  // namespace openima::nn
