#include "src/nn/linear.h"

#include "src/autograd/ops.h"
#include "src/nn/init.h"

namespace openima::nn {

Linear::Linear(int in_dim, int out_dim, bool use_bias, Rng* rng,
               const exec::Context* exec)
    : exec_(exec) {
  weight_ = AddParameter(GlorotUniform(in_dim, out_dim, rng));
  if (use_bias) {
    bias_ = AddParameter(la::Matrix(1, out_dim));
  }
}

autograd::Variable Linear::Forward(const autograd::Variable& x) const {
  autograd::Variable out = autograd::ops::Matmul(x, weight_, exec_);
  if (bias_.defined()) {
    out = autograd::ops::AddRowBroadcast(out, bias_);
  }
  return out;
}

}  // namespace openima::nn
