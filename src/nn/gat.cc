#include "src/nn/gat.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/autograd/ops.h"
#include "src/exec/context.h"
#include "src/la/backend/backend.h"
#include "src/la/pool.h"
#include "src/nn/init.h"
#include "src/util/logging.h"

namespace openima::nn {

namespace {
using autograd::MakeOp;
using autograd::Node;
using autograd::Variable;

// Rows per task for node-range loops; disjoint-write kernels are
// deterministic under any split, so this only tunes task granularity.
int64_t NodeGrain(int64_t n) { return std::max<int64_t>(64, n / 256); }
}  // namespace

Variable GatAttention(const graph::Graph& graph, const Variable& wh,
                      const Variable& a_src, const Variable& a_dst,
                      float leaky_slope, float attn_dropout, bool training,
                      Rng* rng, const exec::Context* exec_ctx) {
  const int n = graph.num_nodes();
  const int f = wh.cols();
  OPENIMA_CHECK_EQ(wh.rows(), n);
  OPENIMA_CHECK_EQ(a_src.rows(), 1);
  OPENIMA_CHECK_EQ(a_src.cols(), f);
  OPENIMA_CHECK_EQ(a_dst.rows(), 1);
  OPENIMA_CHECK_EQ(a_dst.cols(), f);
  OPENIMA_CHECK(graph.has_self_loops())
      << "GAT requires self-loops so every node attends to itself";

  const exec::Context& ex = exec::Get(exec_ctx);
  const la::Matrix& whv = wh.value();
  const float* asrc = a_src.value().Row(0);
  const float* adst = a_dst.value().Row(0);
  const auto& row_ptr = graph.row_ptr();
  const auto& col_idx = graph.col_idx();
  const int64_t num_edges = graph.num_directed_edges();

  // Per-node attention scores s_src(i) = wh_i . a_src, s_dst likewise.
  // Disjoint writes per node; per-node accumulation order is fixed. Pooled
  // uninitialized scratch: every entry is written before it is read.
  la::PoolBuffer ssrc(n, exec_ctx), sdst(n, exec_ctx);
  ex.ParallelFor(n, std::max<int64_t>(1, 8192 / std::max(1, f)),
                 [&](int64_t r0, int64_t r1) {
                   for (int64_t i = r0; i < r1; ++i) {
                     const float* row = whv.Row(static_cast<int>(i));
                     double d1 = 0.0, d2 = 0.0;
                     for (int j = 0; j < f; ++j) {
                       d1 += static_cast<double>(row[j]) * asrc[j];
                       d2 += static_cast<double>(row[j]) * adst[j];
                     }
                     ssrc[static_cast<size_t>(i)] = static_cast<float>(d1);
                     sdst[static_cast<size_t>(i)] = static_cast<float>(d2);
                   }
                 });

  // Per-edge pre-activations, softmax coefficients, and dropout mask,
  // stored in CSR order for the backward pass. These live in the backward
  // closure, which std::function requires to be copyable — so they are
  // pool-backed la::Matrix rows rather than (move-only) PoolBuffers. Mask
  // generation stays serial: the Rng draw order is part of the
  // reproducibility contract.
  const int ne = static_cast<int>(num_edges);
  OPENIMA_CHECK_EQ(static_cast<int64_t>(ne), num_edges);
  la::Matrix pre(1, ne);
  la::Matrix alpha(1, ne);
  la::Matrix mask;  // empty when no attention dropout
  const bool use_mask = training && attn_dropout > 0.0f;
  if (use_mask) {
    OPENIMA_CHECK(rng != nullptr);
    mask = la::Matrix(1, ne);
    const float keep_scale = 1.0f / (1.0f - attn_dropout);
    for (int64_t e = 0; e < num_edges; ++e) {
      mask.data()[e] = rng->Bernoulli(attn_dropout) ? 0.0f : keep_scale;
    }
  }

  // Attention + aggregation, parallel over destination nodes. Each node
  // owns its CSR row of pre/alpha and its output row, so writes are
  // disjoint and the result is identical for any range split.
  la::Matrix out(n, f);
  ex.ParallelFor(n, NodeGrain(n), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const int64_t begin = row_ptr[static_cast<size_t>(i)];
      const int64_t end = row_ptr[static_cast<size_t>(i) + 1];
      float mx = -std::numeric_limits<float>::infinity();
      for (int64_t e = begin; e < end; ++e) {
        const int j = col_idx[static_cast<size_t>(e)];
        float v = sdst[static_cast<size_t>(i)] + ssrc[static_cast<size_t>(j)];
        if (v <= 0.0f) v *= leaky_slope;
        pre.data()[static_cast<size_t>(e)] = v;
        mx = std::max(mx, v);
      }
      double denom = 0.0;
      for (int64_t e = begin; e < end; ++e) {
        const float a = std::exp(pre.data()[static_cast<size_t>(e)] - mx);
        alpha.data()[static_cast<size_t>(e)] = a;
        denom += a;
      }
      const float inv = static_cast<float>(1.0 / denom);
      float* orow = out.Row(static_cast<int>(i));
      for (int64_t e = begin; e < end; ++e) {
        alpha.data()[static_cast<size_t>(e)] *= inv;
        float coeff = alpha.data()[static_cast<size_t>(e)];
        if (use_mask) coeff *= mask.data()[static_cast<size_t>(e)];
        const float* src = whv.Row(col_idx[static_cast<size_t>(e)]);
        for (int j = 0; j < f; ++j) orow[j] += coeff * src[j];
      }
    }
  });

  // The graph must outlive the backward pass (owned by the caller's
  // Dataset); captured by pointer. Likewise an explicit execution context.
  const graph::Graph* gptr = &graph;
  return MakeOp(
      "gat_attention", std::move(out), {wh, a_src, a_dst},
      [gptr, exec_ctx, leaky_slope, use_mask, pre = std::move(pre),
       alpha = std::move(alpha), mask = std::move(mask)](Node* nd) {
        const exec::Context& ex = exec::Get(exec_ctx);
        const la::Matrix& whv = nd->inputs[0]->value;
        const la::Matrix& g = nd->grad;
        const int n = gptr->num_nodes();
        const int f = whv.cols();
        const auto& row_ptr = gptr->row_ptr();
        const auto& col_idx = gptr->col_idx();
        const auto& rev = gptr->reverse_edge();
        const int64_t num_edges = gptr->num_directed_edges();

        const bool need_wh = nd->inputs[0]->requires_grad;
        const bool need_asrc = nd->inputs[1]->requires_grad;
        const bool need_adst = nd->inputs[2]->requires_grad;
        if (!need_wh && !need_asrc && !need_adst) return;

        // Two-pass gather formulation so every parallel write is row-local.
        //
        // Pass A (parallel over destination nodes i): per-edge gradient
        //   de_ij = dLeakyReLU(dSoftmax(g_i . wh_j)) stored densely in CSR
        //   order, plus dsdst[i] = sum_j de_ij (row-local accumulation).
        // Pooled uninitialized scratch: pass A writes every de/dsdst entry,
        // pass B writes every dssrc entry, before anything reads them.
        la::PoolBuffer de(num_edges, exec_ctx);
        la::PoolBuffer dssrc(n, exec_ctx);
        la::PoolBuffer dsdst(n, exec_ctx);
        la::Matrix* dwh = need_wh ? &nd->inputs[0]->grad : nullptr;

        ex.ParallelFor(n, NodeGrain(n), [&](int64_t r0, int64_t r1) {
          std::vector<float> dalpha;  // scratch reused across rows
          for (int64_t i = r0; i < r1; ++i) {
            const int64_t begin = row_ptr[static_cast<size_t>(i)];
            const int64_t end = row_ptr[static_cast<size_t>(i) + 1];
            const float* grow = g.Row(static_cast<int>(i));
            dalpha.resize(static_cast<size_t>(end - begin));

            // dalpha~_ij = g_i . wh_j ; route through mask and softmax.
            double weighted_sum = 0.0;  // sum_k alpha_ik * dalpha_ik
            for (int64_t e = begin; e < end; ++e) {
              const int j = col_idx[static_cast<size_t>(e)];
              const float* src = whv.Row(j);
              double dot = 0.0;
              for (int c = 0; c < f; ++c) {
                dot += static_cast<double>(grow[c]) * src[c];
              }
              float da = static_cast<float>(dot);
              if (use_mask) da *= mask.data()[static_cast<size_t>(e)];
              dalpha[static_cast<size_t>(e - begin)] = da;
              weighted_sum +=
                  static_cast<double>(alpha.data()[static_cast<size_t>(e)]) * da;
            }
            float acc = 0.0f;
            for (int64_t e = begin; e < end; ++e) {
              const float a = alpha.data()[static_cast<size_t>(e)];
              // Softmax backward.
              float d = a * (dalpha[static_cast<size_t>(e - begin)] -
                             static_cast<float>(weighted_sum));
              // LeakyReLU backward on the pre-activation.
              if (pre.data()[static_cast<size_t>(e)] <= 0.0f) d *= leaky_slope;
              de[static_cast<size_t>(e)] = d;
              acc += d;
            }
            dsdst[static_cast<size_t>(i)] = acc;
          }
        });

        // Pass B (parallel over source nodes j): the symmetric adjacency
        // lets us enumerate every edge with source j as the mirrors of row
        // j's entries (reverse_edge), turning the scatter-adds into
        // per-row gathers with a fixed (ascending-mirror) order —
        // bit-identical for any thread count.
        ex.ParallelFor(n, NodeGrain(n), [&](int64_t r0, int64_t r1) {
          for (int64_t j = r0; j < r1; ++j) {
            const int64_t begin = row_ptr[static_cast<size_t>(j)];
            const int64_t end = row_ptr[static_cast<size_t>(j) + 1];
            float acc = 0.0f;
            for (int64_t e = begin; e < end; ++e) {
              acc += de[static_cast<size_t>(rev[static_cast<size_t>(e)])];
            }
            dssrc[static_cast<size_t>(j)] = acc;
            if (need_wh) {
              // dwh_j += sum_i alpha~_ij * g_i (aggregation term); edge
              // (i -> j) is the mirror of row j's entry (j -> i).
              float* drow = dwh->Row(static_cast<int>(j));
              for (int64_t e = begin; e < end; ++e) {
                const int64_t m = rev[static_cast<size_t>(e)];
                float coeff = alpha.data()[static_cast<size_t>(m)];
                if (use_mask) coeff *= mask.data()[static_cast<size_t>(m)];
                const float* grow = g.Row(col_idx[static_cast<size_t>(e)]);
                for (int c = 0; c < f; ++c) drow[c] += coeff * grow[c];
              }
            }
          }
        });

        const float* asrc = nd->inputs[1]->value.Row(0);
        const float* adst = nd->inputs[2]->value.Row(0);
        if (need_wh) {
          // dwh_i += dssrc_i * a_src + dsdst_i * a_dst.
          ex.ParallelFor(n, NodeGrain(n), [&](int64_t r0, int64_t r1) {
            for (int64_t i = r0; i < r1; ++i) {
              float* drow = dwh->Row(static_cast<int>(i));
              const float d1 = dssrc[static_cast<size_t>(i)];
              const float d2 = dsdst[static_cast<size_t>(i)];
              for (int c = 0; c < f; ++c) {
                drow[c] += d1 * asrc[c] + d2 * adst[c];
              }
            }
          });
        }
        if (need_asrc || need_adst) {
          // da_src = sum_i dssrc_i * wh_i (da_dst likewise): deterministic
          // chunked reduction — chunk layout depends only on (n, grain),
          // per-chunk partials combine in ascending chunk order.
          const int64_t grain = exec::Context::GrainForMaxChunks(n, 256, 64);
          const int64_t chunks = exec::Context::NumChunks(n, grain);
          std::vector<double> partial(
              static_cast<size_t>(chunks) * 2 * static_cast<size_t>(f), 0.0);
          ex.ParallelForChunks(
              n, grain, [&](int64_t chunk, int64_t b, int64_t e) {
                double* ps = partial.data() +
                             static_cast<size_t>(chunk) * 2 *
                                 static_cast<size_t>(f);
                double* pd = ps + f;
                for (int64_t i = b; i < e; ++i) {
                  const float d1 = dssrc[static_cast<size_t>(i)];
                  const float d2 = dsdst[static_cast<size_t>(i)];
                  const float* row = whv.Row(static_cast<int>(i));
                  for (int c = 0; c < f; ++c) {
                    ps[c] += static_cast<double>(d1) * row[c];
                    pd[c] += static_cast<double>(d2) * row[c];
                  }
                }
              });
          float* das = need_asrc ? nd->inputs[1]->grad.Row(0) : nullptr;
          float* dad = need_adst ? nd->inputs[2]->grad.Row(0) : nullptr;
          for (int c = 0; c < f; ++c) {
            double ts = 0.0, td = 0.0;
            for (int64_t ch = 0; ch < chunks; ++ch) {
              const double* ps = partial.data() +
                                 static_cast<size_t>(ch) * 2 *
                                     static_cast<size_t>(f);
              ts += ps[c];
              td += ps[static_cast<size_t>(f) + c];
            }
            if (das != nullptr) das[c] += static_cast<float>(ts);
            if (dad != nullptr) dad[c] += static_cast<float>(td);
          }
        }
      });
}

Variable GatAttentionSampled(const graph::SampledLayer& layer,
                             const Variable& wh, const Variable& a_src,
                             const Variable& a_dst, float leaky_slope,
                             float attn_dropout, bool training, Rng* rng,
                             const exec::Context* exec_ctx) {
  const int num_src = layer.num_src;
  const int num_dst = layer.num_dst;
  const int f = wh.cols();
  OPENIMA_CHECK_EQ(wh.rows(), num_src);
  OPENIMA_CHECK_GE(num_src, num_dst);  // dst ids are a prefix of src ids
  OPENIMA_CHECK_EQ(a_src.rows(), 1);
  OPENIMA_CHECK_EQ(a_src.cols(), f);
  OPENIMA_CHECK_EQ(a_dst.rows(), 1);
  OPENIMA_CHECK_EQ(a_dst.cols(), f);

  const exec::Context& ex = exec::Get(exec_ctx);
  const la::backend::KernelBackend& be = la::backend::Resolve(exec_ctx);
  const la::Matrix& whv = wh.value();
  const float* asrc = a_src.value().Row(0);
  const float* adst = a_dst.value().Row(0);
  const int64_t num_edges = layer.num_edges();

  // Per-source attention scores s_src(j) = wh_j . a_src over the whole
  // frontier; s_dst(i) only over the dst prefix (wh row i doubles as dst
  // node i's projection). Same fixed per-row accumulation as the full-graph
  // kernel.
  la::PoolBuffer ssrc(num_src, exec_ctx), sdst(std::max(num_dst, 1), exec_ctx);
  ex.ParallelFor(num_src, std::max<int64_t>(1, 8192 / std::max(1, f)),
                 [&](int64_t r0, int64_t r1) {
                   for (int64_t i = r0; i < r1; ++i) {
                     const float* row = whv.Row(static_cast<int>(i));
                     double d1 = 0.0, d2 = 0.0;
                     for (int j = 0; j < f; ++j) {
                       d1 += static_cast<double>(row[j]) * asrc[j];
                       d2 += static_cast<double>(row[j]) * adst[j];
                     }
                     ssrc[static_cast<size_t>(i)] = static_cast<float>(d1);
                     if (i < num_dst) {
                       sdst[static_cast<size_t>(i)] = static_cast<float>(d2);
                     }
                   }
                 });

  // Per-edge pre-activations / coefficients / dropout mask in the sampled
  // layer's CSR order (see GatAttention for why these are pool-backed
  // Matrix rows and why the mask draw is serial).
  const int ne = static_cast<int>(num_edges);
  OPENIMA_CHECK_EQ(static_cast<int64_t>(ne), num_edges);
  la::Matrix pre(1, ne);
  la::Matrix alpha(1, ne);
  la::Matrix mask;
  const bool use_mask = training && attn_dropout > 0.0f;
  if (use_mask) {
    OPENIMA_CHECK(rng != nullptr);
    mask = la::Matrix(1, ne);
    const float keep_scale = 1.0f / (1.0f - attn_dropout);
    for (int64_t e = 0; e < num_edges; ++e) {
      mask.data()[e] = rng->Bernoulli(attn_dropout) ? 0.0f : keep_scale;
    }
  }

  const auto& row_ptr = layer.row_ptr;
  const auto& col_idx = layer.col_idx;

  // Attention + aggregation over destination rows (edge-softmax over the
  // sampled frontier). Row-local softmax with max-shift, accumulation via
  // the backend AxpyRow kernel (bit-identical across backends).
  la::Matrix out(num_dst, f);
  ex.ParallelFor(num_dst, NodeGrain(num_dst), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const int64_t begin = row_ptr[static_cast<size_t>(i)];
      const int64_t end = row_ptr[static_cast<size_t>(i) + 1];
      float mx = -std::numeric_limits<float>::infinity();
      for (int64_t e = begin; e < end; ++e) {
        const int j = col_idx[static_cast<size_t>(e)];
        float v = sdst[static_cast<size_t>(i)] + ssrc[static_cast<size_t>(j)];
        if (v <= 0.0f) v *= leaky_slope;
        pre.data()[static_cast<size_t>(e)] = v;
        mx = std::max(mx, v);
      }
      double denom = 0.0;
      for (int64_t e = begin; e < end; ++e) {
        const float a = std::exp(pre.data()[static_cast<size_t>(e)] - mx);
        alpha.data()[static_cast<size_t>(e)] = a;
        denom += a;
      }
      const float inv = static_cast<float>(1.0 / denom);
      float* orow = out.Row(static_cast<int>(i));
      for (int64_t e = begin; e < end; ++e) {
        alpha.data()[static_cast<size_t>(e)] *= inv;
        float coeff = alpha.data()[static_cast<size_t>(e)];
        if (use_mask) coeff *= mask.data()[static_cast<size_t>(e)];
        be.AxpyRow(coeff, whv.Row(col_idx[static_cast<size_t>(e)]), orow, f);
      }
    }
  });

  // The sampled layer is owned by the trainer's per-batch block and must
  // outlive the backward pass; captured by pointer like the full graph.
  const graph::SampledLayer* lptr = &layer;
  return MakeOp(
      "gat_attention_sampled", std::move(out), {wh, a_src, a_dst},
      [lptr, exec_ctx, leaky_slope, use_mask, pre = std::move(pre),
       alpha = std::move(alpha), mask = std::move(mask)](Node* nd) {
        const exec::Context& ex = exec::Get(exec_ctx);
        const la::backend::KernelBackend& be = la::backend::Resolve(exec_ctx);
        const la::Matrix& whv = nd->inputs[0]->value;
        const la::Matrix& g = nd->grad;
        const int num_src = lptr->num_src;
        const int num_dst = lptr->num_dst;
        const int f = whv.cols();
        const auto& row_ptr = lptr->row_ptr;
        const auto& col_idx = lptr->col_idx;
        const int64_t num_edges = lptr->num_edges();

        const bool need_wh = nd->inputs[0]->requires_grad;
        const bool need_asrc = nd->inputs[1]->requires_grad;
        const bool need_adst = nd->inputs[2]->requires_grad;
        if (!need_wh && !need_asrc && !need_adst) return;

        // Pass A (parallel over destination rows): per-edge gradient de
        // in CSR order plus dsdst (row-local). Identical structure to the
        // full-graph kernel.
        la::PoolBuffer de(num_edges, exec_ctx);
        la::PoolBuffer dssrc(num_src, exec_ctx);
        la::PoolBuffer dsdst(std::max(num_dst, 1), exec_ctx);
        la::Matrix* dwh = need_wh ? &nd->inputs[0]->grad : nullptr;

        ex.ParallelFor(num_dst, NodeGrain(num_dst), [&](int64_t r0,
                                                        int64_t r1) {
          std::vector<float> dalpha;  // scratch reused across rows
          for (int64_t i = r0; i < r1; ++i) {
            const int64_t begin = row_ptr[static_cast<size_t>(i)];
            const int64_t end = row_ptr[static_cast<size_t>(i) + 1];
            const float* grow = g.Row(static_cast<int>(i));
            dalpha.resize(static_cast<size_t>(end - begin));

            double weighted_sum = 0.0;  // sum_k alpha_ik * dalpha_ik
            for (int64_t e = begin; e < end; ++e) {
              const int j = col_idx[static_cast<size_t>(e)];
              const float* src = whv.Row(j);
              double dot = 0.0;
              for (int c = 0; c < f; ++c) {
                dot += static_cast<double>(grow[c]) * src[c];
              }
              float da = static_cast<float>(dot);
              if (use_mask) da *= mask.data()[static_cast<size_t>(e)];
              dalpha[static_cast<size_t>(e - begin)] = da;
              weighted_sum +=
                  static_cast<double>(alpha.data()[static_cast<size_t>(e)]) *
                  da;
            }
            float acc = 0.0f;
            for (int64_t e = begin; e < end; ++e) {
              const float a = alpha.data()[static_cast<size_t>(e)];
              float d = a * (dalpha[static_cast<size_t>(e - begin)] -
                             static_cast<float>(weighted_sum));
              if (pre.data()[static_cast<size_t>(e)] <= 0.0f) d *= leaky_slope;
              de[static_cast<size_t>(e)] = d;
              acc += d;
            }
            dsdst[static_cast<size_t>(i)] = acc;
          }
        });

        // Pass B (parallel over source rows): the sampled adjacency is NOT
        // symmetric, so instead of reverse_edge() the layer's transpose
        // (src-major) view enumerates every edge fed by source s —
        // scatter-adds become per-source gathers in ascending edge-position
        // order, bit-identical for any thread count.
        const auto& src_row_ptr = lptr->src_row_ptr;
        const auto& src_dst_idx = lptr->src_dst_idx;
        const auto& src_edge_pos = lptr->src_edge_pos;
        ex.ParallelFor(num_src, NodeGrain(num_src), [&](int64_t r0,
                                                        int64_t r1) {
          for (int64_t s = r0; s < r1; ++s) {
            const int64_t begin = src_row_ptr[static_cast<size_t>(s)];
            const int64_t end = src_row_ptr[static_cast<size_t>(s) + 1];
            float acc = 0.0f;
            for (int64_t t = begin; t < end; ++t) {
              acc += de[static_cast<size_t>(
                  src_edge_pos[static_cast<size_t>(t)])];
            }
            dssrc[static_cast<size_t>(s)] = acc;
            if (need_wh) {
              // dwh_s += sum over edges (i -> s) of alpha~ * g_i.
              float* drow = dwh->Row(static_cast<int>(s));
              for (int64_t t = begin; t < end; ++t) {
                const int64_t e = src_edge_pos[static_cast<size_t>(t)];
                float coeff = alpha.data()[static_cast<size_t>(e)];
                if (use_mask) coeff *= mask.data()[static_cast<size_t>(e)];
                be.AxpyRow(coeff,
                           g.Row(src_dst_idx[static_cast<size_t>(t)]), drow,
                           f);
              }
            }
          }
        });

        const float* asrc = nd->inputs[1]->value.Row(0);
        const float* adst = nd->inputs[2]->value.Row(0);
        if (need_wh) {
          // dwh_s += dssrc_s * a_src (+ dsdst_s * a_dst on the dst prefix).
          ex.ParallelFor(num_src, NodeGrain(num_src),
                         [&](int64_t r0, int64_t r1) {
                           for (int64_t i = r0; i < r1; ++i) {
                             float* drow = dwh->Row(static_cast<int>(i));
                             be.AxpyRow(dssrc[static_cast<size_t>(i)], asrc,
                                        drow, f);
                             if (i < num_dst) {
                               be.AxpyRow(dsdst[static_cast<size_t>(i)], adst,
                                          drow, f);
                             }
                           }
                         });
        }
        if (need_asrc || need_adst) {
          // Deterministic chunked reduction over the source frontier; the
          // dsdst term only exists on the dst prefix.
          const int64_t grain =
              exec::Context::GrainForMaxChunks(num_src, 256, 64);
          const int64_t chunks = exec::Context::NumChunks(num_src, grain);
          std::vector<double> partial(
              static_cast<size_t>(chunks) * 2 * static_cast<size_t>(f), 0.0);
          ex.ParallelForChunks(
              num_src, grain, [&](int64_t chunk, int64_t b, int64_t e) {
                double* ps = partial.data() +
                             static_cast<size_t>(chunk) * 2 *
                                 static_cast<size_t>(f);
                double* pd = ps + f;
                for (int64_t i = b; i < e; ++i) {
                  const float d1 = dssrc[static_cast<size_t>(i)];
                  const float* row = whv.Row(static_cast<int>(i));
                  for (int c = 0; c < f; ++c) {
                    ps[c] += static_cast<double>(d1) * row[c];
                  }
                  if (i < num_dst) {
                    const float d2 = dsdst[static_cast<size_t>(i)];
                    for (int c = 0; c < f; ++c) {
                      pd[c] += static_cast<double>(d2) * row[c];
                    }
                  }
                }
              });
          float* das = need_asrc ? nd->inputs[1]->grad.Row(0) : nullptr;
          float* dad = need_adst ? nd->inputs[2]->grad.Row(0) : nullptr;
          for (int c = 0; c < f; ++c) {
            double ts = 0.0, td = 0.0;
            for (int64_t ch = 0; ch < chunks; ++ch) {
              const double* ps = partial.data() +
                                 static_cast<size_t>(ch) * 2 *
                                     static_cast<size_t>(f);
              ts += ps[c];
              td += ps[static_cast<size_t>(f) + c];
            }
            if (das != nullptr) das[c] += static_cast<float>(ts);
            if (dad != nullptr) dad[c] += static_cast<float>(td);
          }
        }
      });
}

GatLayer::GatLayer(const GatLayerConfig& config, Rng* rng) : config_(config) {
  OPENIMA_CHECK_GT(config.in_dim, 0);
  OPENIMA_CHECK_GT(config.out_dim, 0);
  OPENIMA_CHECK_GT(config.num_heads, 0);
  for (int h = 0; h < config.num_heads; ++h) {
    weights_.push_back(
        AddParameter(GlorotUniform(config.in_dim, config.out_dim, rng)));
    a_src_.push_back(AddParameter(GlorotUniform(1, config.out_dim, rng)));
    a_dst_.push_back(AddParameter(GlorotUniform(1, config.out_dim, rng)));
  }
  const int final_dim = config.concat_heads
                            ? config.out_dim * config.num_heads
                            : config.out_dim;
  bias_ = AddParameter(la::Matrix(1, final_dim));
}

Variable GatLayer::Forward(const graph::Graph& graph, const Variable& x,
                           bool training, Rng* rng) const {
  namespace ops = autograd::ops;
  // Heads run sequentially on purpose: they share the dropout Rng stream,
  // and each head's kernels already parallelize internally over nodes.
  std::vector<Variable> heads;
  heads.reserve(static_cast<size_t>(config_.num_heads));
  for (int h = 0; h < config_.num_heads; ++h) {
    Variable wh = ops::Matmul(x, weights_[static_cast<size_t>(h)],
                              config_.exec);
    heads.push_back(GatAttention(graph, wh, a_src_[static_cast<size_t>(h)],
                                 a_dst_[static_cast<size_t>(h)],
                                 config_.leaky_slope, config_.attn_dropout,
                                 training, rng, config_.exec));
  }
  Variable out;
  if (config_.concat_heads) {
    out = ops::ConcatCols(heads);
  } else {
    out = heads[0];
    for (size_t h = 1; h < heads.size(); ++h) out = ops::Add(out, heads[h]);
    out = ops::Scale(out, 1.0f / static_cast<float>(heads.size()));
  }
  if (config_.fused_bias_elu) {
    return ops::AddBiasElu(out, bias_, 1.0f, config_.exec);
  }
  return ops::AddRowBroadcast(out, bias_);
}

Variable GatLayer::ForwardSampled(const graph::SampledLayer& layer,
                                  const Variable& x, bool training,
                                  Rng* rng) const {
  namespace ops = autograd::ops;
  // Same head sequencing as Forward: the shared Rng stream is part of the
  // reproducibility contract.
  std::vector<Variable> heads;
  heads.reserve(static_cast<size_t>(config_.num_heads));
  for (int h = 0; h < config_.num_heads; ++h) {
    Variable wh = ops::Matmul(x, weights_[static_cast<size_t>(h)],
                              config_.exec);
    heads.push_back(GatAttentionSampled(
        layer, wh, a_src_[static_cast<size_t>(h)],
        a_dst_[static_cast<size_t>(h)], config_.leaky_slope,
        config_.attn_dropout, training, rng, config_.exec));
  }
  Variable out;
  if (config_.concat_heads) {
    out = ops::ConcatCols(heads);
  } else {
    out = heads[0];
    for (size_t h = 1; h < heads.size(); ++h) out = ops::Add(out, heads[h]);
    out = ops::Scale(out, 1.0f / static_cast<float>(heads.size()));
  }
  if (config_.fused_bias_elu) {
    return ops::AddBiasElu(out, bias_, 1.0f, config_.exec);
  }
  return ops::AddRowBroadcast(out, bias_);
}

GatEncoder::GatEncoder(const GatEncoderConfig& config, Rng* rng)
    : config_(config) {
  OPENIMA_CHECK_GT(config.in_dim, 0);
  OPENIMA_CHECK_EQ(config.hidden_dim % config.num_heads, 0)
      << "hidden_dim must be divisible by num_heads";
  GatLayerConfig l1;
  l1.in_dim = config.in_dim;
  l1.out_dim = config.hidden_dim / config.num_heads;
  l1.num_heads = config.num_heads;
  l1.concat_heads = true;
  l1.attn_dropout = config.attn_dropout;
  l1.fused_bias_elu = true;  // hidden layer: bias + ELU in one node
  l1.exec = config.exec;
  layer1_ = std::make_unique<GatLayer>(l1, rng);
  RegisterSubmodule(*layer1_);

  GatLayerConfig l2;
  l2.in_dim = config.hidden_dim;
  l2.out_dim = config.embedding_dim;
  l2.num_heads = config.num_heads;
  l2.concat_heads = false;  // final layer averages heads
  l2.attn_dropout = config.attn_dropout;
  l2.exec = config.exec;
  layer2_ = std::make_unique<GatLayer>(l2, rng);
  RegisterSubmodule(*layer2_);
}

Variable GatEncoder::Forward(const graph::Graph& graph,
                             const Variable& features, bool training,
                             Rng* rng) const {
  namespace ops = autograd::ops;
  Variable x = ops::Dropout(features, config_.dropout, training, rng);
  // layer1 has fused_bias_elu set, so its output is already activated.
  x = layer1_->Forward(graph, x, training, rng);
  x = ops::Dropout(x, config_.dropout, training, rng);
  return layer2_->Forward(graph, x, training, rng);
}

Variable GatEncoder::ForwardSampled(const graph::SampledBlock& block,
                                    const Variable& features, bool training,
                                    Rng* rng) const {
  namespace ops = autograd::ops;
  OPENIMA_CHECK_EQ(block.layers.size(), 2u)
      << "GatEncoder is two layers deep; sample blocks with num_layers=2";
  OPENIMA_CHECK_EQ(features.rows(), block.num_input());
  Variable x = ops::Dropout(features, config_.dropout, training, rng);
  x = layer1_->ForwardSampled(block.layers[0], x, training, rng);
  x = ops::Dropout(x, config_.dropout, training, rng);
  return layer2_->ForwardSampled(block.layers[1], x, training, rng);
}

}  // namespace openima::nn
