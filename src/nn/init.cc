#include "src/nn/init.h"

#include <cmath>

namespace openima::nn {

la::Matrix GlorotUniform(int fan_in, int fan_out, Rng* rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return la::Matrix::Uniform(fan_in, fan_out, -a, a, rng);
}

}  // namespace openima::nn
