#ifndef OPENIMA_NN_LINEAR_H_
#define OPENIMA_NN_LINEAR_H_

#include "src/exec/context.h"
#include "src/nn/module.h"
#include "src/util/rng.h"

namespace openima::nn {

/// Fully connected layer: y = x W (+ b). The paper's classification head is
/// a bias-free Linear whose normalized outputs feed the logit-level BPCL
/// loss (Eq. 8).
class Linear : public Module {
 public:
  /// `exec` (nullptr = process default) runs the forward/backward matmuls;
  /// an explicit context must outlive the layer's backward passes.
  Linear(int in_dim, int out_dim, bool use_bias, Rng* rng,
         const exec::Context* exec = nullptr);

  autograd::Variable Forward(const autograd::Variable& x) const;

  const autograd::Variable& weight() const { return weight_; }

  int in_dim() const { return weight_.rows(); }
  int out_dim() const { return weight_.cols(); }

 private:
  autograd::Variable weight_;  // in_dim x out_dim
  autograd::Variable bias_;    // 1 x out_dim, undefined when bias disabled
  const exec::Context* exec_ = nullptr;
};

}  // namespace openima::nn

#endif  // OPENIMA_NN_LINEAR_H_
