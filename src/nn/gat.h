#ifndef OPENIMA_NN_GAT_H_
#define OPENIMA_NN_GAT_H_

#include <memory>
#include <vector>

#include "src/exec/context.h"
#include "src/graph/graph.h"
#include "src/graph/sampler.h"
#include "src/nn/encoder.h"
#include "src/nn/module.h"
#include "src/util/rng.h"

namespace openima::nn {

/// Fused graph-attention aggregation (one head), differentiable w.r.t. the
/// projected features `wh` and attention vectors `a_src`/`a_dst`:
///
///   e_ij     = LeakyReLU(wh_i . a_dst + wh_j . a_src)   for j in N(i)
///   alpha_ij = softmax_j(e_ij)
///   out_i    = sum_j alpha_ij * wh_j
///
/// (self-loops in `graph` make every node attend to itself). With
/// `attn_dropout` > 0 in training mode, normalized coefficients are dropped
/// (inverted dropout, no renormalization — GAT reference semantics).
/// Forward and backward are parallelized over node ranges through `exec`
/// (nullptr = process default); the backward pass is gather-based via
/// Graph::reverse_edge() and deterministic for any thread count.
autograd::Variable GatAttention(const graph::Graph& graph,
                                const autograd::Variable& wh,
                                const autograd::Variable& a_src,
                                const autograd::Variable& a_dst,
                                float leaky_slope, float attn_dropout,
                                bool training, Rng* rng,
                                const exec::Context* exec = nullptr);

/// GatAttention over one sampled bipartite layer: `wh` holds the projected
/// features of the layer's source frontier (num_src x f); the result is the
/// aggregation over the layer's destination rows (num_dst x f). Because dst
/// local ids are a prefix of the src ids, wh row i doubles as dst node i's
/// own projection for the s_dst score. The backward pass is gather-based
/// through the layer's transpose (src-major) view — the sampled analogue of
/// Graph::reverse_edge() — and bit-identical across thread counts. The
/// per-edge accumulations route through the backend AxpyRow kernel, which
/// is pinned bit-identical across backends, so sampled attention itself
/// never drifts between scalar and avx2. `layer` must outlive the backward
/// pass (the SampledBlock is owned by the trainer for the batch).
autograd::Variable GatAttentionSampled(const graph::SampledLayer& layer,
                                       const autograd::Variable& wh,
                                       const autograd::Variable& a_src,
                                       const autograd::Variable& a_dst,
                                       float leaky_slope, float attn_dropout,
                                       bool training, Rng* rng,
                                       const exec::Context* exec = nullptr);

/// Configuration shared by both GAT layers of the encoder.
struct GatLayerConfig {
  int in_dim = 0;
  int out_dim = 0;   ///< per-head output width
  int num_heads = 1;
  bool concat_heads = true;  ///< concat (hidden layers) vs average (final)
  float leaky_slope = 0.2f;
  float attn_dropout = 0.0f;

  /// When true, Forward applies the layer bias and an ELU activation as one
  /// fused node (ops::AddBiasElu) instead of leaving the bias-only output
  /// for the caller to activate — one graph node and one sweep fewer per
  /// step. Hidden layers of the encoder enable this; the final layer keeps
  /// the raw bias-only output.
  bool fused_bias_elu = false;

  /// Execution context for the layer's kernels; nullptr = process default.
  /// Must outlive the layer's backward passes.
  const exec::Context* exec = nullptr;
};

/// One multi-head graph attention layer (Velickovic et al., ICLR 2018).
class GatLayer : public Module {
 public:
  GatLayer(const GatLayerConfig& config, Rng* rng);

  /// x: num_nodes x in_dim. Returns num_nodes x (out_dim * heads) when
  /// concatenating, else num_nodes x out_dim.
  autograd::Variable Forward(const graph::Graph& graph,
                             const autograd::Variable& x, bool training,
                             Rng* rng) const;

  /// Sampled-layer counterpart: x covers the layer's source frontier
  /// (num_src x in_dim); returns num_dst rows.
  autograd::Variable ForwardSampled(const graph::SampledLayer& layer,
                                    const autograd::Variable& x, bool training,
                                    Rng* rng) const;

  const GatLayerConfig& config() const { return config_; }

 private:
  GatLayerConfig config_;
  std::vector<autograd::Variable> weights_;  // per head, in_dim x out_dim
  std::vector<autograd::Variable> a_src_;    // per head, 1 x out_dim
  std::vector<autograd::Variable> a_dst_;    // per head, 1 x out_dim
  autograd::Variable bias_;                  // 1 x final_out_dim
};

/// Which encoder architecture an EncoderWithHead builds.
enum class EncoderArch {
  kGat,  ///< graph attention network (the paper's encoder)
  kGcn,  ///< graph convolutional network (symmetric-normalized averaging)
};

/// Configuration of the paper's encoder (§VII): 2 GAT layers, hidden 128,
/// 8 heads, dropout 0.5. The CPU-scaled experiment configs shrink hidden
/// size and heads; tests use tiny values. `arch` switches the architecture
/// (GCN ignores the attention-specific fields).
struct GatEncoderConfig {
  EncoderArch arch = EncoderArch::kGat;
  int in_dim = 0;
  int hidden_dim = 64;    ///< total across heads (must divide num_heads)
  int embedding_dim = 64; ///< output width
  int num_heads = 4;
  float dropout = 0.5f;
  float attn_dropout = 0.0f;

  /// Execution context threaded into every layer kernel (projection
  /// matmuls, attention forward/backward, GCN aggregation); nullptr =
  /// process default. Must outlive the encoder's backward passes.
  const exec::Context* exec = nullptr;
};

/// Two-layer GAT producing node embeddings. Calling Forward twice in
/// training mode draws independent dropout masks — the SimCSE-style positive
/// pair construction used by the paper's contrastive losses.
class GatEncoder : public Encoder {
 public:
  GatEncoder(const GatEncoderConfig& config, Rng* rng);

  autograd::Variable Forward(const graph::Graph& graph,
                             const autograd::Variable& features, bool training,
                             Rng* rng) const override;

  bool SupportsSampled() const override { return true; }

  /// Sampled minibatch forward: `features` covers the block's input
  /// frontier (block.num_input() x in_dim, already gathered); the block
  /// must have exactly 2 layers (the encoder's depth). Returns
  /// block.num_output() x embedding_dim rows for the seed nodes.
  autograd::Variable ForwardSampled(const graph::SampledBlock& block,
                                    const autograd::Variable& features,
                                    bool training, Rng* rng) const override;

  int embedding_dim() const override { return config_.embedding_dim; }

  const GatEncoderConfig& config() const { return config_; }

 private:
  GatEncoderConfig config_;
  std::unique_ptr<GatLayer> layer1_;
  std::unique_ptr<GatLayer> layer2_;
};

}  // namespace openima::nn

#endif  // OPENIMA_NN_GAT_H_
