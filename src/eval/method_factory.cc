#include "src/eval/method_factory.h"

#include "src/baselines/cl_ladder.h"
#include "src/baselines/oodgat.h"
#include "src/baselines/opencon.h"
#include "src/baselines/openldn.h"
#include "src/baselines/openwgl.h"
#include "src/baselines/orca.h"
#include "src/baselines/simgcd.h"
#include "src/util/string_util.h"

namespace openima::eval {

const std::vector<std::string>& AllMethodKeys() {
  static const std::vector<std::string>* keys = new std::vector<std::string>{
      "oodgat",       "openwgl",        "orca_zm",
      "orca",         "simgcd",         "openldn",
      "opencon",      "opencon_2stage", "infonce",
      "infonce_supcon", "infonce_supcon_ce", "openima",
  };
  return *keys;
}

StatusOr<std::string> MethodDisplayName(const std::string& key) {
  if (key == "oodgat") return std::string("OODGAT+");
  if (key == "openwgl") return std::string("OpenWGL+");
  if (key == "orca_zm") return std::string("ORCA-ZM");
  if (key == "orca") return std::string("ORCA");
  if (key == "simgcd") return std::string("SimGCD");
  if (key == "openldn") return std::string("OpenLDN");
  if (key == "opencon") return std::string("OpenCon");
  if (key == "opencon_2stage") return std::string("OpenCon++");
  if (key == "infonce") return std::string("InfoNCE");
  if (key == "infonce_supcon") return std::string("InfoNCE+SupCon");
  if (key == "infonce_supcon_ce") return std::string("InfoNCE+SupCon+CE");
  if (key == "openima") return std::string("OpenIMA");
  return Status::NotFound(StrFormat("unknown method '%s'", key.c_str()));
}

core::OpenImaConfig MakeOpenImaConfig(const MethodContext& ctx) {
  core::OpenImaConfig config;
  config.encoder = ctx.encoder;
  config.encoder.in_dim = ctx.in_dim;
  config.exec = ctx.exec;
  config.num_seen = ctx.num_seen;
  config.num_novel = ctx.num_novel;
  config.eta = ctx.eta;
  config.tau = ctx.tau;
  config.rho_pct = ctx.rho_pct;
  config.pseudo_warmup_epochs = ctx.pseudo_warmup_epochs;
  config.lr = ctx.lr;
  config.weight_decay = ctx.weight_decay;
  config.epochs = ctx.epochs;
  config.batch_size = ctx.batch_size;
  config.large_graph_mode = ctx.large_scale;
  // Mini-batch K-Means prediction is the robust large-graph mode at our
  // step budget; the paper's head-predict refinement needs a longer-trained
  // head (see EXPERIMENTS.md).
  config.large_graph_head_predict = false;
  return config;
}

namespace {

baselines::BaselineConfig MakeBaselineConfig(const MethodContext& ctx) {
  baselines::BaselineConfig config;
  config.encoder = ctx.encoder;
  config.encoder.in_dim = ctx.in_dim;
  config.num_seen = ctx.num_seen;
  config.num_novel = ctx.num_novel;
  config.lr = ctx.lr;
  config.weight_decay = ctx.weight_decay;
  config.epochs = ctx.epochs;
  config.batch_size = ctx.batch_size;
  return config;
}

std::unique_ptr<core::OpenWorldClassifier> MakeLadder(
    const MethodContext& ctx, baselines::ClVariant variant) {
  return std::make_unique<baselines::ClLadderClassifier>(
      MakeOpenImaConfig(ctx), variant, ctx.in_dim, ctx.seed);
}

}  // namespace

StatusOr<std::unique_ptr<core::OpenWorldClassifier>> MakeClassifier(
    const std::string& key, const MethodContext& ctx) {
  using baselines::ClVariant;
  if (key == "openima") return MakeLadder(ctx, ClVariant::kOpenIma);
  if (key == "infonce") return MakeLadder(ctx, ClVariant::kInfoNce);
  if (key == "infonce_supcon") {
    return MakeLadder(ctx, ClVariant::kInfoNceSupCon);
  }
  if (key == "infonce_supcon_ce") {
    return MakeLadder(ctx, ClVariant::kInfoNceSupConCe);
  }
  if (key == "orca" || key == "orca_zm") {
    baselines::OrcaOptions options;
    options.margin_scale = key == "orca" ? 1.0f : 0.0f;
    return std::unique_ptr<core::OpenWorldClassifier>(
        std::make_unique<baselines::OrcaClassifier>(MakeBaselineConfig(ctx),
                                                    options, ctx.in_dim,
                                                    ctx.seed));
  }
  if (key == "simgcd") {
    return std::unique_ptr<core::OpenWorldClassifier>(
        std::make_unique<baselines::SimGcdClassifier>(
            MakeBaselineConfig(ctx), baselines::SimGcdOptions{}, ctx.in_dim,
            ctx.seed));
  }
  if (key == "openldn") {
    return std::unique_ptr<core::OpenWorldClassifier>(
        std::make_unique<baselines::OpenLdnClassifier>(
            MakeBaselineConfig(ctx), baselines::OpenLdnOptions{}, ctx.in_dim,
            ctx.seed));
  }
  if (key == "opencon" || key == "opencon_2stage") {
    baselines::OpenConOptions options;
    options.two_stage_predict = key == "opencon_2stage";
    return std::unique_ptr<core::OpenWorldClassifier>(
        std::make_unique<baselines::OpenConClassifier>(MakeBaselineConfig(ctx),
                                                       options, ctx.in_dim,
                                                       ctx.seed));
  }
  if (key == "oodgat") {
    return std::unique_ptr<core::OpenWorldClassifier>(
        std::make_unique<baselines::OodGatClassifier>(MakeBaselineConfig(ctx),
                                                      baselines::OodGatOptions{},
                                                      ctx.in_dim, ctx.seed));
  }
  if (key == "openwgl") {
    return std::unique_ptr<core::OpenWorldClassifier>(
        std::make_unique<baselines::OpenWglClassifier>(
            MakeBaselineConfig(ctx), baselines::OpenWglOptions{}, ctx.in_dim,
            ctx.seed));
  }
  return Status::NotFound(StrFormat("unknown method '%s'", key.c_str()));
}

}  // namespace openima::eval
