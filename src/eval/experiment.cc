#include "src/eval/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/cluster/silhouette.h"
#include "src/la/matrix_ops.h"
#include "src/obs/telemetry.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"

namespace openima::eval {

namespace {

double MeanOf(const std::vector<SeedResult>& seeds,
              double (*get)(const SeedResult&)) {
  if (seeds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : seeds) total += get(s);
  return total / static_cast<double>(seeds.size());
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

/// Adapter running an arbitrary OpenImaConfig (ablations, sweeps) through
/// the OpenWorldClassifier interface.
class VariantClassifier : public core::OpenWorldClassifier {
 public:
  VariantClassifier(const core::OpenImaConfig& config, int in_dim,
                    uint64_t seed)
      : model_(config, in_dim, seed) {}

  Status Train(const graph::Dataset& dataset,
               const graph::OpenWorldSplit& split) override {
    return model_.Train(dataset, split);
  }
  StatusOr<std::vector<int>> Predict(
      const graph::Dataset& dataset,
      const graph::OpenWorldSplit& split) override {
    return model_.Predict(dataset, split);
  }
  la::Matrix Embeddings(const graph::Dataset& dataset) const override {
    return model_.Embeddings(dataset);
  }
  std::string name() const override { return "OpenIMA-variant"; }

 private:
  core::OpenImaModel model_;
};

bool IsTwoStageMethod(const std::string& key) {
  return key == "openima" || key == "infonce" || key == "infonce_supcon" ||
         key == "infonce_supcon_ce";
}

/// Subset of `values` at the given node indices.
std::vector<int> Gather(const std::vector<int>& values,
                        const std::vector<int>& nodes) {
  std::vector<int> out;
  out.reserve(nodes.size());
  for (int v : nodes) out.push_back(values[static_cast<size_t>(v)]);
  return out;
}

}  // namespace

double MethodAggregate::MeanAll() const {
  return MeanOf(seeds, [](const SeedResult& s) { return s.test.all; });
}
double MethodAggregate::MeanSeen() const {
  return MeanOf(seeds, [](const SeedResult& s) { return s.test.seen; });
}
double MethodAggregate::MeanNovel() const {
  return MeanOf(seeds, [](const SeedResult& s) { return s.test.novel; });
}
double MethodAggregate::MeanSilhouette() const {
  return MeanOf(seeds, [](const SeedResult& s) { return s.silhouette; });
}
double MethodAggregate::MeanValAcc() const {
  return MeanOf(seeds, [](const SeedResult& s) { return s.val_acc; });
}
double MethodAggregate::MeanImbalance() const {
  return MeanOf(seeds,
                [](const SeedResult& s) { return s.variance.imbalance_rate; });
}
double MethodAggregate::MeanSeparation() const {
  return MeanOf(seeds,
                [](const SeedResult& s) { return s.variance.separation_rate; });
}
double MethodAggregate::SeenNovelGap() const {
  return std::fabs(MeanSeen() - MeanNovel());
}

MethodContext MakeContext(const graph::BenchmarkSpec& spec,
                          const std::string& method_key,
                          const ExperimentOptions& options, int num_seen,
                          int num_novel, int in_dim, uint64_t seed) {
  MethodContext ctx;
  ctx.in_dim = in_dim;
  ctx.num_seen = num_seen;
  ctx.num_novel = num_novel;
  ctx.seed = seed;
  ctx.encoder.hidden_dim = options.hidden_dim;
  ctx.encoder.num_heads = options.num_heads;
  ctx.encoder.embedding_dim = options.embedding_dim;
  ctx.encoder.dropout = options.dropout;
  ctx.encoder.exec = options.exec;
  ctx.exec = options.exec;
  ctx.epochs = IsTwoStageMethod(method_key) ? options.epochs_two_stage
                                            : options.epochs_end_to_end;
  ctx.batch_size = options.batch_size;
  ctx.large_scale = spec.large_scale;

  // Per-dataset hyper-parameters, following the structure of the paper's
  // SVII tuning (per-dataset eta/tau/rho and per-family learning rates) but
  // re-calibrated for the scaled synthetic substrate (see EXPERIMENTS.md):
  // the paper's eta in {10, 20} over-drives cross-entropy at our label
  // budget, so the CE scale is reduced where the paper raised it.
  const std::string& name = spec.name;
  ctx.tau = (name == "amazon_photos" || name == "amazon_computers" ||
             name == "coauthor_physics")
                ? 0.07f
                : 0.7f;
  ctx.eta = (name == "amazon_photos" || name == "coauthor_physics") ? 0.3f
                                                                    : 1.0f;
  ctx.rho_pct =
      (name == "citeseer" || name == "ogbn_arxiv") ? 25.0 : 75.0;
  ctx.pseudo_warmup_epochs =
      (name == "amazon_photos" || name == "coauthor_physics") ? 12 : 3;
  // Two-stage CL methods converge best at 1e-3 (3e-4 on Coauthor CS); the
  // end-to-end head classifiers need the larger 3e-3 to fit their heads
  // within the epoch budget.
  float lr = IsTwoStageMethod(method_key) ? 1e-3f : 3e-3f;
  if (IsTwoStageMethod(method_key) && name == "coauthor_cs") lr = 3e-4f;
  // The many-class ogbn heads need the larger step size to converge within
  // the budget.
  if (!IsTwoStageMethod(method_key) && spec.large_scale) lr = 1e-2f;
  ctx.lr = options.grid_lr > 0.0 ? static_cast<float>(options.grid_lr) : lr;
  return ctx;
}

StatusOr<graph::Dataset> MakeExperimentDataset(
    const graph::BenchmarkSpec& spec, const ExperimentOptions& options) {
  return graph::MakeDataset(spec, options.scale, options.max_feature_dim,
                            HashName(spec.name) ^ options.base_seed);
}

StatusOr<graph::OpenWorldSplit> MakeExperimentSplit(
    const graph::Dataset& dataset, const graph::BenchmarkSpec& spec,
    const ExperimentOptions& options, int seed_index) {
  graph::SplitOptions so;
  so.labeled_per_class = spec.labeled_per_class;
  so.val_per_class = spec.labeled_per_class;
  return graph::MakeOpenWorldSplit(
      dataset, so,
      options.base_seed + 1000ULL * static_cast<uint64_t>(seed_index) + 7ULL);
}

StatusOr<SeedResult> EvaluateClassifier(core::OpenWorldClassifier* classifier,
                                        const graph::Dataset& dataset,
                                        const graph::OpenWorldSplit& split,
                                        const ExperimentOptions& options,
                                        uint64_t metric_seed) {
  Stopwatch watch;
  OPENIMA_RETURN_IF_ERROR(classifier->Train(dataset, split));
  auto predictions = classifier->Predict(dataset, split);
  OPENIMA_RETURN_IF_ERROR(predictions.status());

  SeedResult result;
  result.train_seconds = watch.ElapsedSeconds();
  auto test_acc = metrics::EvaluateOpenWorld(
      Gather(*predictions, split.test_nodes),
      Gather(split.remapped_labels, split.test_nodes), split.num_seen,
      split.num_total_classes());
  OPENIMA_RETURN_IF_ERROR(test_acc.status());
  result.test = *test_acc;

  if (options.compute_extra_metrics) {
    la::Matrix emb = classifier->Embeddings(dataset);
    Rng metric_rng(metric_seed ^ 0xabcdef12345ULL);

    // Silhouette over val+test rows with predictions as cluster labels.
    std::vector<int> vt = split.UnlabeledNodes();
    la::Matrix vt_emb = la::GatherRows(emb, vt);
    std::vector<int> vt_pred = Gather(*predictions, vt);
    cluster::SilhouetteOptions so;
    so.max_samples = 800;
    so.exec = options.exec;
    auto sc = cluster::SilhouetteCoefficient(vt_emb, vt_pred, so, &metric_rng);
    result.silhouette = sc.ok() ? *sc : -1.0;

    // Hungarian-aligned validation accuracy (seen classes only).
    auto val_acc = metrics::ClusteringAccuracy(
        Gather(*predictions, split.val_nodes),
        Gather(split.remapped_labels, split.val_nodes), split.num_seen);
    result.val_acc = val_acc.ok() ? *val_acc : 0.0;

    // Imbalance / separation rates over test embeddings.
    la::Matrix test_emb = la::GatherRows(emb, split.test_nodes);
    auto vs = metrics::ComputeVarianceStats(
        test_emb, Gather(split.remapped_labels, split.test_nodes),
        split.num_seen, split.num_total_classes());
    if (vs.ok()) result.variance = *vs;
  }
  return result;
}

namespace {

/// Shared multi-seed loop. `make` builds a classifier for one (ctx) run.
StatusOr<MethodAggregate> RunSeeds(
    const graph::BenchmarkSpec& spec, const std::string& method_key,
    const std::string& display_name, const ExperimentOptions& options,
    const std::function<
        StatusOr<std::unique_ptr<core::OpenWorldClassifier>>(
            const MethodContext&)>& make) {
  auto dataset = MakeExperimentDataset(spec, options);
  OPENIMA_RETURN_IF_ERROR(dataset.status());

  MethodAggregate agg;
  agg.method_key = method_key;
  agg.display_name = display_name;

  for (int s = 0; s < options.num_seeds; ++s) {
    auto split = MakeExperimentSplit(*dataset, spec, options, s);
    OPENIMA_RETURN_IF_ERROR(split.status());
    const int num_novel = options.override_num_novel > 0
                              ? options.override_num_novel
                              : split->num_novel;
    MethodContext ctx = MakeContext(
        spec, method_key, options, split->num_seen, num_novel,
        dataset->feature_dim(),
        options.base_seed * 7919ULL + static_cast<uint64_t>(s) + 13ULL);
    auto classifier = make(ctx);
    OPENIMA_RETURN_IF_ERROR(classifier.status());
    // Label this run's telemetry records (e.g. "cora/OpenIMA/seed0") so a
    // multi-run harness process produces distinguishable JSONL series.
    obs::SetTelemetryRunLabel(spec.name + "/" + display_name + "/seed" +
                              std::to_string(s));
    auto result =
        EvaluateClassifier(classifier->get(), *dataset, *split, options,
                           ctx.seed);
    obs::SetTelemetryRunLabel("");
    OPENIMA_RETURN_IF_ERROR(result.status());
    agg.seeds.push_back(*result);
  }
  return agg;
}

}  // namespace

StatusOr<MethodAggregate> RunMethod(const graph::BenchmarkSpec& spec,
                                    const std::string& method_key,
                                    const ExperimentOptions& options) {
  auto display = MethodDisplayName(method_key);
  OPENIMA_RETURN_IF_ERROR(display.status());
  return RunSeeds(spec, method_key, *display, options,
                  [&method_key](const MethodContext& ctx) {
                    return MakeClassifier(method_key, ctx);
                  });
}

StatusOr<MethodAggregate> RunOpenImaVariant(
    const graph::BenchmarkSpec& spec, const std::string& display_name,
    const ExperimentOptions& options,
    const std::function<void(core::OpenImaConfig*)>& mutate) {
  return RunSeeds(
      spec, "openima", display_name, options,
      [&mutate](const MethodContext& ctx)
          -> StatusOr<std::unique_ptr<core::OpenWorldClassifier>> {
        core::OpenImaConfig config = MakeOpenImaConfig(ctx);
        if (mutate) mutate(&config);
        return std::unique_ptr<core::OpenWorldClassifier>(
            std::make_unique<VariantClassifier>(config, ctx.in_dim,
                                                ctx.seed));
      });
}

}  // namespace openima::eval
