#ifndef OPENIMA_EVAL_METHOD_FACTORY_H_
#define OPENIMA_EVAL_METHOD_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/classifier.h"
#include "src/core/openima.h"

namespace openima::eval {

/// Everything a method needs to be instantiated for one run.
struct MethodContext {
  int in_dim = 0;
  int num_seen = 1;
  int num_novel = 1;
  uint64_t seed = 0;

  nn::GatEncoderConfig encoder;

  // Generic optimization settings.
  float lr = 3e-3f;
  float weight_decay = 1e-4f;
  int epochs = 20;
  int batch_size = 512;

  // OpenIMA-family hyper-parameters (§VII).
  float eta = 1.0f;
  float tau = 0.7f;
  double rho_pct = 75.0;
  int pseudo_warmup_epochs = 3;

  /// ogbn-style large-graph mode (mini-batch K-Means, head prediction,
  /// pairwise regularizer).
  bool large_scale = false;

  /// Execution context handed to the method's compute kernels (nullptr =
  /// process default). Mirrored into `encoder.exec` by MakeContext.
  const exec::Context* exec = nullptr;
};

/// Canonical method keys, in the paper's Table III row order.
const std::vector<std::string>& AllMethodKeys();

/// Display name for a method key (e.g. "orca_zm" -> "ORCA-ZM").
StatusOr<std::string> MethodDisplayName(const std::string& key);

/// Builds the OpenIMA config implied by a context (shared by the CL-ladder
/// variants).
core::OpenImaConfig MakeOpenImaConfig(const MethodContext& ctx);

/// Instantiates a classifier by key: one of
///   oodgat, openwgl, orca_zm, orca, simgcd, openldn, opencon,
///   opencon_2stage, infonce, infonce_supcon, infonce_supcon_ce, openima.
StatusOr<std::unique_ptr<core::OpenWorldClassifier>> MakeClassifier(
    const std::string& key, const MethodContext& ctx);

}  // namespace openima::eval

#endif  // OPENIMA_EVAL_METHOD_FACTORY_H_
