#ifndef OPENIMA_EVAL_EXPERIMENT_H_
#define OPENIMA_EVAL_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/eval/method_factory.h"
#include "src/graph/benchmarks.h"
#include "src/graph/splits.h"
#include "src/metrics/clustering_accuracy.h"
#include "src/metrics/variance_stats.h"

namespace openima::eval {

/// CPU-scaled experiment settings. scale/max_feature_dim shrink the paper's
/// datasets (see DESIGN.md §1); raise them (and seeds/epochs) toward the
/// paper's protocol when more compute is available.
struct ExperimentOptions {
  double scale = 0.04;
  int max_feature_dim = 32;
  int num_seeds = 2;
  uint64_t base_seed = 1234;

  // Encoder sizing (the paper uses hidden 128 / 8 heads; scaled here).
  int hidden_dim = 64;
  int num_heads = 4;
  int embedding_dim = 64;
  float dropout = 0.5f;

  int epochs_two_stage = 45;    ///< paper: 20 (our scaled graphs need more)
  int epochs_end_to_end = 50;   ///< paper: 50-100
  int batch_size = 2048;        ///< paper: 2048/4096

  /// Override the number of novel classes the model assumes (-1 = truth) —
  /// the Table VI experiments.
  int override_num_novel = -1;

  /// Override the learning rate (< 0 = per-method default) — the Table VII
  /// hyper-parameter grid.
  double grid_lr = -1.0;

  /// Compute silhouette / validation-ACC / variance statistics per seed
  /// (adds a little cost; needed for Fig. 1b, Table VI, Table VII).
  bool compute_extra_metrics = false;

  /// Execution context threaded through every method's encoder, losses,
  /// clustering and metrics (nullptr = process default, which honors
  /// OPENIMA_THREADS / --threads). Must outlive the experiment.
  const exec::Context* exec = nullptr;
};

/// One seed's outcome.
struct SeedResult {
  metrics::OpenWorldAccuracy test;
  double silhouette = 0.0;      ///< over val+test embeddings (if enabled)
  double val_acc = 0.0;         ///< Hungarian-aligned validation accuracy
  metrics::VarianceStats variance;  ///< over test embeddings (if enabled)
  double train_seconds = 0.0;
};

/// Aggregated outcome of a (dataset, method) pair.
struct MethodAggregate {
  std::string method_key;
  std::string display_name;
  std::vector<SeedResult> seeds;

  double MeanAll() const;
  double MeanSeen() const;
  double MeanNovel() const;
  double MeanSilhouette() const;
  double MeanValAcc() const;
  double MeanImbalance() const;
  double MeanSeparation() const;
  /// |mean seen - mean novel| (Table VII's Gap column).
  double SeenNovelGap() const;
};

/// Builds the per-(dataset, method) context, applying the paper's §VII
/// per-dataset hyper-parameters (eta/tau/rho) and large-scale switches.
MethodContext MakeContext(const graph::BenchmarkSpec& spec,
                          const std::string& method_key,
                          const ExperimentOptions& options, int num_seen,
                          int num_novel, int in_dim, uint64_t seed);

/// Trains and evaluates one method across options.num_seeds split seeds on
/// the benchmark's synthetic stand-in dataset.
StatusOr<MethodAggregate> RunMethod(const graph::BenchmarkSpec& spec,
                                    const std::string& method_key,
                                    const ExperimentOptions& options);

/// Like RunMethod for OpenIMA, but lets the caller mutate the OpenIMA
/// config before each run — the hook behind the Table V ablations and the
/// Fig. 2 hyper-parameter sweeps.
StatusOr<MethodAggregate> RunOpenImaVariant(
    const graph::BenchmarkSpec& spec, const std::string& display_name,
    const ExperimentOptions& options,
    const std::function<void(core::OpenImaConfig*)>& mutate);

/// Evaluates an already-constructed classifier on one split: trains it,
/// predicts, and fills a SeedResult (extra metrics per options).
StatusOr<SeedResult> EvaluateClassifier(core::OpenWorldClassifier* classifier,
                                        const graph::Dataset& dataset,
                                        const graph::OpenWorldSplit& split,
                                        const ExperimentOptions& options,
                                        uint64_t metric_seed);

/// The dataset (generated deterministically from the spec name) and the
/// split used for the given seed index — exposed for benches that need
/// direct access (Fig. 1b, Table VI).
StatusOr<graph::Dataset> MakeExperimentDataset(const graph::BenchmarkSpec& spec,
                                               const ExperimentOptions& options);
StatusOr<graph::OpenWorldSplit> MakeExperimentSplit(
    const graph::Dataset& dataset, const graph::BenchmarkSpec& spec,
    const ExperimentOptions& options, int seed_index);

}  // namespace openima::eval

#endif  // OPENIMA_EVAL_EXPERIMENT_H_
