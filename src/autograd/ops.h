#ifndef OPENIMA_AUTOGRAD_OPS_H_
#define OPENIMA_AUTOGRAD_OPS_H_

#include <utility>
#include <vector>

#include "src/autograd/variable.h"
#include "src/exec/context.h"
#include "src/util/rng.h"

namespace openima::autograd::ops {

// ---------------------------------------------------------------------------
// Structural / element-wise operations
// ---------------------------------------------------------------------------

/// Element-wise sum (shapes must match).
Variable Add(const Variable& a, const Variable& b);

/// Element-wise difference.
Variable Sub(const Variable& a, const Variable& b);

/// Element-wise (Hadamard) product.
Variable Mul(const Variable& a, const Variable& b);

/// Multiplication by a scalar constant.
Variable Scale(const Variable& a, float s);

/// Adds a 1 x C bias row to every row of the N x C input.
Variable AddRowBroadcast(const Variable& x, const Variable& bias);

/// Dense matrix product a (MxK) * b (KxN). Forward and both backward
/// products route through `ctx` (nullptr = the process default context).
Variable Matmul(const Variable& a, const Variable& b,
                const exec::Context* ctx = nullptr);

/// max(x, slope * x), slope in [0, 1). slope=0 gives ReLU.
Variable LeakyRelu(const Variable& x, float slope);

/// ELU: x for x > 0, alpha * (exp(x) - 1) otherwise.
Variable Elu(const Variable& x, float alpha = 1.0f);

/// Fused elu(x + bias) with bias a 1 x C row broadcast over the N x C input.
/// One output buffer and one sweep instead of the AddRowBroadcast + Elu
/// chain's two intermediate nodes; the analytic backward branches on the
/// fused output (valid because alpha > 0 makes elu sign-preserving). `ctx`
/// only selects the kernel backend (la::backend::Resolve) — forward and
/// backward run on the calling thread; the captured backend is reused by
/// the backward so both sweeps share one instance.
Variable AddBiasElu(const Variable& x, const Variable& bias,
                    float alpha = 1.0f, const exec::Context* ctx = nullptr);

/// Element-wise exponential.
Variable Exp(const Variable& x);

/// Inverted dropout. In training mode zeroes entries with probability `rate`
/// and scales survivors by 1/(1-rate); identity in eval mode. The paper's
/// SimCSE-style positive pairs come from calling the encoder twice so that
/// two independent masks are drawn.
Variable Dropout(const Variable& x, float rate, bool training, Rng* rng);

/// Divides every row by its L2 norm (rows with norm <= eps pass through).
Variable RowL2Normalize(const Variable& x, float eps = 1e-12f);

/// Selects rows by index; backward scatter-adds into the source rows.
Variable GatherRows(const Variable& x, std::vector<int> rows);

/// Horizontal concatenation of equally tall blocks (multi-head outputs).
Variable ConcatCols(const std::vector<Variable>& parts);

/// Vertical concatenation of equally wide blocks (stacks the two SimCSE
/// views of a contrastive batch).
Variable ConcatRows(const std::vector<Variable>& parts);

/// Mean over every entry -> 1x1 scalar.
Variable MeanAll(const Variable& x);

/// Sum over every entry -> 1x1 scalar.
Variable SumAll(const Variable& x);

// ---------------------------------------------------------------------------
// Losses (each returns a 1x1 scalar)
// ---------------------------------------------------------------------------

/// Mean softmax cross-entropy over rows. `labels[i]` in [0, C).
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels);

/// Cross-entropy with a per-sample margin subtracted from the target logit
/// before the softmax (ORCA's uncertainty-adaptive margin mechanism).
Variable MarginSoftmaxCrossEntropy(const Variable& logits,
                                   const std::vector<int>& labels,
                                   const std::vector<float>& margins);

/// Mean cross-entropy against fixed soft targets (rows of `target_probs`
/// sum to 1): SimGCD-style self-distillation toward a sharpened teacher.
Variable SoftCrossEntropy(const Variable& logits,
                          const la::Matrix& target_probs);

/// The SupCon-family contrastive loss of the paper's Eq. 7/8:
///
///   L = -1/B sum_i 1/|P(i)| sum_{j in P(i)} log( exp(s_ij/tau)
///         / sum_{k != i} exp(s_ik/tau) ),   s = Z Z^T.
///
/// `z` must hold L2-normalized rows (compose with RowL2Normalize).
/// `positives[i]` lists the in-batch positive indices of anchor i and must
/// be non-empty and exclude i itself (a SimCSE dropout twin provides at
/// least one positive for every anchor). With |P(i)| == 1 for all i this is
/// exactly InfoNCE; with label-based positives it is SupCon; with pseudo
/// labels it is the paper's BPCL.
Variable SupConLoss(const Variable& z,
                    const std::vector<std::vector<int>>& positives, float tau,
                    const exec::Context* ctx = nullptr);

/// Fused RowL2Normalize + SupConLoss: takes raw (unnormalized) embeddings
/// and computes the contrastive loss on their normalized rows in one node.
/// Skips the intermediate normalize node and its stored copy; the backward
/// computes d(loss)/d(normalized) analytically and projects it through the
/// normalization Jacobian (I - z z^T) / ||x|| per row. Rows with norm <= eps
/// pass gradients through untouched, matching RowL2Normalize.
Variable NormalizedSupCon(const Variable& x,
                          const std::vector<std::vector<int>>& positives,
                          float tau, float eps = 1e-12f,
                          const exec::Context* ctx = nullptr);

/// Pairwise BCE on softmax-prediction agreement: for each (i, j, target)
/// with u = p_i . p_j,  loss = -[target log u + (1-target) log(1-u)],
/// averaged over pairs (ORCA's pairwise objective; OpenLDN's similarity
/// loss). Targets are 0/1.
struct Pair {
  int i;
  int j;
  float target;
};
Variable PairwiseDotBce(const Variable& logits, const std::vector<Pair>& pairs);

/// Negative entropy of the batch-mean prediction, -H(mean_i softmax(l_i)).
/// Minimizing this maximizes the entropy of the average prediction and
/// prevents all samples collapsing onto the seen classes (ORCA / SimGCD
/// regularizer).
Variable NegMeanPredictionEntropy(const Variable& logits);

/// Mean Shannon entropy of softmax(logits) over the given rows (all rows
/// when `rows` is empty). Used with positive weight to sharpen predictions
/// and negative weight to diffuse them (OODGAT's entropy-separation loss).
Variable MeanRowEntropy(const Variable& logits, const std::vector<int>& rows);

/// Mean KL( N(mu, exp(logvar)) || N(0, I) ) over rows — OpenWGL's
/// variational regularizer.
Variable GaussianKl(const Variable& mu, const Variable& logvar);

/// Mean squared error against a constant target.
Variable MseLoss(const Variable& pred, const la::Matrix& target);

}  // namespace openima::autograd::ops

#endif  // OPENIMA_AUTOGRAD_OPS_H_
