#include "src/autograd/tape.h"

#include <new>

#include "src/util/logging.h"

namespace openima::autograd {

namespace {
thread_local Tape* t_bound_tape = nullptr;
}  // namespace

Tape::~Tape() {
  OPENIMA_CHECK_EQ(stats_.outstanding, 0)
      << "Tape destroyed while graph nodes are still alive";
  for (auto& [bytes, blocks] : free_lists_) {
    (void)bytes;
    for (void* ptr : blocks) ::operator delete(ptr);
  }
}

void* Tape::AllocateBlock(std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.nodes;
    ++stats_.outstanding;
    for (auto& [size, blocks] : free_lists_) {
      if (size == bytes && !blocks.empty()) {
        void* ptr = blocks.back();
        blocks.pop_back();
        ++stats_.hits;
        return ptr;
      }
    }
    ++stats_.misses;
    stats_.bytes_allocated += static_cast<int64_t>(bytes);
  }
  return ::operator new(bytes);
}

void Tape::ReleaseBlock(void* ptr, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.outstanding;
  for (auto& [size, blocks] : free_lists_) {
    if (size == bytes) {
      blocks.push_back(ptr);
      return;
    }
  }
  free_lists_.emplace_back(bytes, std::vector<void*>{ptr});
}

void Tape::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  OPENIMA_CHECK_EQ(stats_.outstanding, 0)
      << "Tape::Reset with live graph nodes: a Variable from the previous "
         "step is still retained";
  ++stats_.resets;
}

void Tape::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  OPENIMA_CHECK_EQ(stats_.outstanding, 0);
  for (auto& [bytes, blocks] : free_lists_) {
    (void)bytes;
    for (void* ptr : blocks) ::operator delete(ptr);
    blocks.clear();
  }
  free_lists_.clear();
}

TapeStats Tape::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Tape::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t outstanding = stats_.outstanding;
  stats_ = TapeStats{};
  stats_.outstanding = outstanding;
}

TapeBinding::TapeBinding(Tape* tape) : previous_(t_bound_tape) {
  t_bound_tape = tape;
}

TapeBinding::~TapeBinding() { t_bound_tape = previous_; }

Tape* BoundTape() { return t_bound_tape; }

}  // namespace openima::autograd
