#include "src/autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/la/backend/backend.h"
#include "src/la/matrix_ops.h"
#include "src/util/logging.h"

namespace openima::autograd::ops {

namespace {

/// True when the k-th input participates in differentiation.
bool NeedsGrad(Node* node, size_t k) {
  return node->inputs[k]->requires_grad;
}

la::Matrix& InGrad(Node* node, size_t k) { return node->inputs[k]->grad; }
const la::Matrix& InVal(Node* node, size_t k) {
  return node->inputs[k]->value;
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  OPENIMA_CHECK(a.value().SameShape(b.value()));
  return MakeOp("add", a.value() + b.value(), {a, b}, [](Node* n) {
    if (NeedsGrad(n, 0)) InGrad(n, 0) += n->grad;
    if (NeedsGrad(n, 1)) InGrad(n, 1) += n->grad;
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  OPENIMA_CHECK(a.value().SameShape(b.value()));
  return MakeOp("sub", a.value() - b.value(), {a, b}, [](Node* n) {
    if (NeedsGrad(n, 0)) InGrad(n, 0) += n->grad;
    if (NeedsGrad(n, 1)) InGrad(n, 1) -= n->grad;
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  OPENIMA_CHECK(a.value().SameShape(b.value()));
  la::Matrix out = a.value();
  out.HadamardInPlace(b.value());
  return MakeOp("mul", std::move(out), {a, b}, [](Node* n) {
    if (NeedsGrad(n, 0)) la::HadamardAddInPlace(n->grad, InVal(n, 1), &InGrad(n, 0));
    if (NeedsGrad(n, 1)) la::HadamardAddInPlace(n->grad, InVal(n, 0), &InGrad(n, 1));
  });
}

Variable Scale(const Variable& a, float s) {
  return MakeOp("scale", a.value() * s, {a}, [s](Node* n) {
    if (NeedsGrad(n, 0)) InGrad(n, 0).Axpy(s, n->grad);
  });
}

Variable AddRowBroadcast(const Variable& x, const Variable& bias) {
  OPENIMA_CHECK_EQ(bias.rows(), 1);
  OPENIMA_CHECK_EQ(bias.cols(), x.cols());
  la::Matrix out = x.value();
  const float* b = bias.value().Row(0);
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.Row(i);
    for (int j = 0; j < out.cols(); ++j) row[j] += b[j];
  }
  return MakeOp("add_row_broadcast", std::move(out), {x, bias}, [](Node* n) {
    if (NeedsGrad(n, 0)) InGrad(n, 0) += n->grad;
    if (NeedsGrad(n, 1)) {
      float* db = InGrad(n, 1).Row(0);
      for (int i = 0; i < n->grad.rows(); ++i) {
        const float* g = n->grad.Row(i);
        for (int j = 0; j < n->grad.cols(); ++j) db[j] += g[j];
      }
    }
  });
}

Variable Matmul(const Variable& a, const Variable& b,
                const exec::Context* ctx) {
  // `ctx` is captured by pointer: explicit contexts must outlive the
  // backward pass (the process default always does).
  return MakeOp("matmul", la::Matmul(a.value(), b.value(), ctx), {a, b},
                [ctx](Node* n) {
                  if (NeedsGrad(n, 0)) {
                    InGrad(n, 0) += la::MatmulNT(n->grad, InVal(n, 1), ctx);
                  }
                  if (NeedsGrad(n, 1)) {
                    InGrad(n, 1) += la::MatmulTN(InVal(n, 0), n->grad, ctx);
                  }
                });
}

Variable LeakyRelu(const Variable& x, float slope) {
  OPENIMA_CHECK_GE(slope, 0.0f);
  OPENIMA_CHECK_LT(slope, 1.0f);
  la::Matrix out = x.value();
  for (int64_t i = 0; i < out.size(); ++i) {
    float v = out.data()[i];
    out.data()[i] = v > 0.0f ? v : slope * v;
  }
  return MakeOp("leaky_relu", std::move(out), {x}, [slope](Node* n) {
    if (!NeedsGrad(n, 0)) return;
    const la::Matrix& xv = InVal(n, 0);
    la::Matrix& dx = InGrad(n, 0);
    for (int64_t i = 0; i < xv.size(); ++i) {
      dx.data()[i] += n->grad.data()[i] * (xv.data()[i] > 0.0f ? 1.0f : slope);
    }
  });
}

Variable Elu(const Variable& x, float alpha) {
  la::Matrix out = x.value();
  for (int64_t i = 0; i < out.size(); ++i) {
    float v = out.data()[i];
    if (v <= 0.0f) out.data()[i] = alpha * (std::exp(v) - 1.0f);
  }
  // d(elu)/dx = 1 for x > 0, else elu(x) + alpha; the output values are the
  // node's own `value`, so the backward reads them there instead of keeping
  // a copy alive in the closure.
  return MakeOp("elu", std::move(out), {x}, [alpha](Node* n) {
    if (!NeedsGrad(n, 0)) return;
    const la::Matrix& xv = InVal(n, 0);
    la::Matrix& dx = InGrad(n, 0);
    for (int64_t i = 0; i < xv.size(); ++i) {
      const float deriv =
          xv.data()[i] > 0.0f ? 1.0f : n->value.data()[i] + alpha;
      dx.data()[i] += n->grad.data()[i] * deriv;
    }
  });
}

Variable AddBiasElu(const Variable& x, const Variable& bias, float alpha,
                    const exec::Context* ctx) {
  OPENIMA_CHECK_GT(alpha, 0.0f);
  OPENIMA_CHECK_EQ(bias.rows(), 1);
  OPENIMA_CHECK_EQ(bias.cols(), x.cols());
  const la::backend::KernelBackend& be = la::backend::Resolve(ctx);
  la::Matrix out = x.value();
  const float* b = bias.value().Row(0);
  for (int i = 0; i < out.rows(); ++i) {
    be.AddBiasEluRow(out.Row(i), b, alpha, out.cols());
  }
  // For alpha > 0, elu is sign-preserving: out > 0 iff the pre-activation
  // x + b > 0 (and the boundary value 0 lands in the same branch either
  // way), so the backward can branch on the node's own value without
  // keeping the pre-activation alive.
  // The backend pointer (a process-lifetime singleton) rides in the
  // closure so forward and backward share one instance.
  return MakeOp("add_bias_elu", std::move(out), {x, bias},
                [alpha, pbe = &be](Node* n) {
                  const bool need_x = NeedsGrad(n, 0);
                  const bool need_b = NeedsGrad(n, 1);
                  if (!need_x && !need_b) return;
                  float* db = need_b ? InGrad(n, 1).Row(0) : nullptr;
                  for (int i = 0; i < n->grad.rows(); ++i) {
                    float* dx = need_x ? InGrad(n, 0).Row(i) : nullptr;
                    pbe->AddBiasEluBackwardRow(n->grad.Row(i), n->value.Row(i),
                                               alpha, n->grad.cols(), dx, db);
                  }
                });
}

Variable Exp(const Variable& x) {
  la::Matrix out = x.value();
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::exp(out.data()[i]);
  }
  // d(exp)/dx = exp(x) = the node's own value; no capture needed.
  return MakeOp("exp", std::move(out), {x}, [](Node* n) {
    if (!NeedsGrad(n, 0)) return;
    la::HadamardAddInPlace(n->grad, n->value, &InGrad(n, 0));
  });
}

Variable Dropout(const Variable& x, float rate, bool training, Rng* rng) {
  OPENIMA_CHECK_GE(rate, 0.0f);
  OPENIMA_CHECK_LT(rate, 1.0f);
  if (!training || rate == 0.0f) {
    // Identity pass-through node (keeps graph structure uniform).
    return MakeOp("dropout_eval", x.value(), {x}, [](Node* n) {
      if (NeedsGrad(n, 0)) InGrad(n, 0) += n->grad;
    });
  }
  OPENIMA_CHECK(rng != nullptr);
  const float keep_scale = 1.0f / (1.0f - rate);
  la::Matrix mask(x.rows(), x.cols());
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng->Bernoulli(rate) ? 0.0f : keep_scale;
  }
  la::Matrix out = x.value();
  out.HadamardInPlace(mask);
  return MakeOp("dropout", std::move(out), {x},
                [mask = std::move(mask)](Node* n) {
                  if (!NeedsGrad(n, 0)) return;
                  la::HadamardAddInPlace(n->grad, mask, &InGrad(n, 0));
                });
}

Variable RowL2Normalize(const Variable& x, float eps) {
  la::Matrix out = x.value();
  la::Matrix norms = la::RowL2NormalizeInPlace(&out, eps);
  // The normalized rows are the node's own value; only the norms need a
  // place in the closure.
  return MakeOp(
      "row_l2_normalize", std::move(out), {x},
      [eps, norms = std::move(norms)](Node* n) {
        if (!NeedsGrad(n, 0)) return;
        const la::Matrix& z = n->value;
        la::Matrix& dx = InGrad(n, 0);
        for (int i = 0; i < z.rows(); ++i) {
          const float norm = norms(i, 0);
          const float* g = n->grad.Row(i);
          float* d = dx.Row(i);
          if (norm <= eps) {
            for (int j = 0; j < z.cols(); ++j) d[j] += g[j];
            continue;
          }
          const float* zr = z.Row(i);
          double dot = 0.0;
          for (int j = 0; j < z.cols(); ++j) dot += static_cast<double>(g[j]) * zr[j];
          const float inv = 1.0f / norm;
          const float dotf = static_cast<float>(dot);
          for (int j = 0; j < z.cols(); ++j) {
            d[j] += (g[j] - dotf * zr[j]) * inv;
          }
        }
      });
}

Variable GatherRows(const Variable& x, std::vector<int> rows) {
  la::Matrix out = la::GatherRows(x.value(), rows);
  return MakeOp("gather_rows", std::move(out), {x},
                [rows = std::move(rows)](Node* n) {
                  if (!NeedsGrad(n, 0)) return;
                  la::Matrix& dx = InGrad(n, 0);
                  for (size_t i = 0; i < rows.size(); ++i) {
                    const float* g = n->grad.Row(static_cast<int>(i));
                    float* d = dx.Row(rows[i]);
                    for (int j = 0; j < dx.cols(); ++j) d[j] += g[j];
                  }
                });
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  OPENIMA_CHECK(!parts.empty());
  const int rows = parts[0].rows();
  int total_cols = 0;
  for (const auto& p : parts) {
    OPENIMA_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
  }
  la::Matrix out(rows, total_cols);
  std::vector<int> offsets;
  int off = 0;
  for (const auto& p : parts) {
    offsets.push_back(off);
    const la::Matrix& v = p.value();
    for (int i = 0; i < rows; ++i) {
      float* dst = out.Row(i) + off;
      const float* src = v.Row(i);
      std::copy(src, src + v.cols(), dst);
    }
    off += v.cols();
  }
  return MakeOp("concat_cols", std::move(out), parts,
                [offsets = std::move(offsets)](Node* n) {
                  for (size_t k = 0; k < n->inputs.size(); ++k) {
                    if (!NeedsGrad(n, k)) continue;
                    la::Matrix& dx = InGrad(n, k);
                    const int off = offsets[k];
                    for (int i = 0; i < dx.rows(); ++i) {
                      const float* g = n->grad.Row(i) + off;
                      float* d = dx.Row(i);
                      for (int j = 0; j < dx.cols(); ++j) d[j] += g[j];
                    }
                  }
                });
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  OPENIMA_CHECK(!parts.empty());
  const int cols = parts[0].cols();
  int total_rows = 0;
  for (const auto& p : parts) {
    OPENIMA_CHECK_EQ(p.cols(), cols);
    total_rows += p.rows();
  }
  la::Matrix out(total_rows, cols);
  std::vector<int> offsets;
  int off = 0;
  for (const auto& p : parts) {
    offsets.push_back(off);
    for (int i = 0; i < p.rows(); ++i) out.SetRow(off + i, p.value(), i);
    off += p.rows();
  }
  return MakeOp("concat_rows", std::move(out), parts,
                [offsets = std::move(offsets)](Node* n) {
                  for (size_t k = 0; k < n->inputs.size(); ++k) {
                    if (!NeedsGrad(n, k)) continue;
                    la::Matrix& dx = InGrad(n, k);
                    const int off = offsets[k];
                    for (int i = 0; i < dx.rows(); ++i) {
                      const float* g = n->grad.Row(off + i);
                      float* d = dx.Row(i);
                      for (int j = 0; j < dx.cols(); ++j) d[j] += g[j];
                    }
                  }
                });
}

Variable MeanAll(const Variable& x) {
  OPENIMA_CHECK_GT(x.value().size(), 0);
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(x.value().Mean());
  const float inv = 1.0f / static_cast<float>(x.value().size());
  return MakeOp("mean_all", std::move(out), {x}, [inv](Node* n) {
    if (!NeedsGrad(n, 0)) return;
    const float g = n->grad(0, 0) * inv;
    la::Matrix& dx = InGrad(n, 0);
    for (int64_t i = 0; i < dx.size(); ++i) dx.data()[i] += g;
  });
}

Variable SumAll(const Variable& x) {
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(x.value().Sum());
  return MakeOp("sum_all", std::move(out), {x}, [](Node* n) {
    if (!NeedsGrad(n, 0)) return;
    const float g = n->grad(0, 0);
    la::Matrix& dx = InGrad(n, 0);
    for (int64_t i = 0; i < dx.size(); ++i) dx.data()[i] += g;
  });
}

namespace {

/// Shared implementation for the CE variants: cross entropy of softmax
/// against one-hot labels after subtracting `margins[i]` (possibly all-zero)
/// from the target logit of each row.
Variable CrossEntropyImpl(const char* name, const Variable& logits,
                          const std::vector<int>& labels,
                          const std::vector<float>& margins) {
  const int n = logits.rows(), c = logits.cols();
  OPENIMA_CHECK_EQ(static_cast<int>(labels.size()), n);
  OPENIMA_CHECK_GT(n, 0);
  for (int i = 0; i < n; ++i) {
    OPENIMA_CHECK_GE(labels[i], 0);
    OPENIMA_CHECK_LT(labels[i], c);
  }
  la::Matrix probs;
  if (margins.empty()) {
    // Plain CE reads the logits directly — no adjusted copy.
    probs = la::RowSoftmax(logits.value());
  } else {
    la::Matrix adjusted = logits.value();
    for (int i = 0; i < n; ++i) adjusted(i, labels[i]) -= margins[i];
    probs = la::RowSoftmax(adjusted);
  }
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    loss -= std::log(std::max(probs(i, labels[i]), 1e-12f));
  }
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss / n);
  return MakeOp(name, std::move(out), {logits},
                [labels, probs = std::move(probs)](Node* nd) {
                  if (!NeedsGrad(nd, 0)) return;
                  const float g = nd->grad(0, 0) / probs.rows();
                  la::Matrix& dl = InGrad(nd, 0);
                  for (int i = 0; i < probs.rows(); ++i) {
                    const float* p = probs.Row(i);
                    float* d = dl.Row(i);
                    for (int j = 0; j < probs.cols(); ++j) d[j] += g * p[j];
                    d[labels[static_cast<size_t>(i)]] -= g;
                  }
                });
}

}  // namespace

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels) {
  return CrossEntropyImpl("softmax_ce", logits, labels, {});
}

Variable MarginSoftmaxCrossEntropy(const Variable& logits,
                                   const std::vector<int>& labels,
                                   const std::vector<float>& margins) {
  OPENIMA_CHECK_EQ(margins.size(), labels.size());
  return CrossEntropyImpl("margin_softmax_ce", logits, labels, margins);
}

Variable SoftCrossEntropy(const Variable& logits,
                          const la::Matrix& target_probs) {
  OPENIMA_CHECK(logits.value().SameShape(target_probs));
  const int n = logits.rows();
  OPENIMA_CHECK_GT(n, 0);
  la::Matrix logp = la::RowLogSoftmax(logits.value());
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const float* t = target_probs.Row(i);
    const float* lp = logp.Row(i);
    for (int j = 0; j < logits.cols(); ++j) loss -= t[j] * lp[j];
  }
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss / n);
  la::Matrix probs = la::RowSoftmax(logits.value());
  return MakeOp("soft_ce", std::move(out), {logits},
                [target = target_probs, probs = std::move(probs)](Node* nd) {
                  if (!NeedsGrad(nd, 0)) return;
                  const float g = nd->grad(0, 0) / probs.rows();
                  la::Matrix& dl = InGrad(nd, 0);
                  for (int i = 0; i < probs.rows(); ++i) {
                    const float* p = probs.Row(i);
                    const float* t = target.Row(i);
                    float* d = dl.Row(i);
                    for (int j = 0; j < probs.cols(); ++j) {
                      d[j] += g * (p[j] - t[j]);
                    }
                  }
                });
}

Variable SupConLoss(const Variable& z,
                    const std::vector<std::vector<int>>& positives, float tau,
                    const exec::Context* ctx) {
  const int b = z.rows();
  OPENIMA_CHECK_GT(b, 1);
  OPENIMA_CHECK_EQ(static_cast<int>(positives.size()), b);
  OPENIMA_CHECK_GT(tau, 0.0f);
  const la::backend::KernelBackend& be = la::backend::Resolve(ctx);

  // Similarity logits s = Z Z^T / tau.
  la::Matrix s = la::MatmulNT(z.value(), z.value(), ctx);
  s *= 1.0f / tau;

  // Row-stable softmax over k != i.
  la::Matrix p(b, b);  // p_ik = exp(s_ik) / sum_{k' != i} exp(s_ik')
  double loss = 0.0;
  for (int i = 0; i < b; ++i) {
    float* srow = s.Row(i);
    // The stability anchor must be a k != i term — if the self-similarity
    // won the max, all other exponents could underflow and zero the
    // denominator. Park -inf on the diagonal just for the max pass.
    const float self_sim = srow[i];
    srow[i] = -std::numeric_limits<float>::infinity();
    const float mx = be.RowMax(srow, b);
    srow[i] = self_sim;
    float* prow = p.Row(i);
    be.ExpShifted(srow, mx, prow, b);
    double denom = be.RowSum(prow, b) - prow[i];
    prow[i] = 0.0f;
    const float inv = static_cast<float>(1.0 / denom);
    for (int k = 0; k < b; ++k) prow[k] *= inv;
    const double log_denom = std::log(denom) + mx;

    const auto& pos = positives[static_cast<size_t>(i)];
    OPENIMA_CHECK(!pos.empty()) << "anchor " << i << " has no positives";
    double li = 0.0;
    for (int j : pos) {
      OPENIMA_CHECK_NE(j, i);
      OPENIMA_CHECK_GE(j, 0);
      OPENIMA_CHECK_LT(j, b);
      li -= srow[j] - log_denom;
    }
    loss += li / static_cast<double>(pos.size());
  }
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss / b);

  return MakeOp(
      "supcon", std::move(out), {z},
      [positives, tau, p = std::move(p)](Node* nd) {
        if (!NeedsGrad(nd, 0)) return;
        const int b = p.rows();
        const la::Matrix& zv = InVal(nd, 0);
        // G_ik = dL/ds_ik = (p_ik - y_ik) / b  for k != i.
        la::Matrix gmat = p;
        for (int i = 0; i < b; ++i) {
          const auto& pos = positives[static_cast<size_t>(i)];
          const float y = 1.0f / static_cast<float>(pos.size());
          float* grow = gmat.Row(i);
          for (int j : pos) grow[j] -= y;
        }
        la::ScaleInPlace(nd->grad(0, 0) / (static_cast<float>(b) * tau),
                         &gmat);
        // dZ = (G + G^T) Z, accumulated straight into the input grad.
        la::Matrix sym = la::Transpose(gmat);
        la::AddInPlace(gmat, &sym);
        la::MatmulAccumulate(sym, zv, 1.0f, &InGrad(nd, 0));
      });
}

Variable NormalizedSupCon(const Variable& x,
                          const std::vector<std::vector<int>>& positives,
                          float tau, float eps, const exec::Context* ctx) {
  const int b = x.rows();
  OPENIMA_CHECK_GT(b, 1);
  OPENIMA_CHECK_EQ(static_cast<int>(positives.size()), b);
  OPENIMA_CHECK_GT(tau, 0.0f);
  const la::backend::KernelBackend& be = la::backend::Resolve(ctx);

  la::Matrix z = x.value();
  la::Matrix norms = la::RowL2NormalizeInPlace(&z, eps);

  // Similarity logits s = Z Z^T / tau on the normalized rows.
  la::Matrix s = la::MatmulNT(z, z, ctx);
  s *= 1.0f / tau;

  la::Matrix p(b, b);  // p_ik = exp(s_ik) / sum_{k' != i} exp(s_ik')
  double loss = 0.0;
  // Rows are unit-normalized, so s_ik lies in [-1/tau, 1/tau]: shifting by
  // the upper bound keeps every exponent in [-2/tau, 0] — numerically
  // stable with no per-row max pass at all.
  const float shift = 1.0f / tau;
  for (int i = 0; i < b; ++i) {
    const float* srow = s.Row(i);
    float* prow = p.Row(i);
    be.ExpShifted(srow, shift, prow, b);
    double denom = be.RowSum(prow, b) - prow[i];
    prow[i] = 0.0f;
    const float inv = static_cast<float>(1.0 / denom);
    for (int k = 0; k < b; ++k) prow[k] *= inv;
    const double log_denom = std::log(denom) + shift;

    const auto& pos = positives[static_cast<size_t>(i)];
    OPENIMA_CHECK(!pos.empty()) << "anchor " << i << " has no positives";
    double li = 0.0;
    for (int j : pos) {
      OPENIMA_CHECK_NE(j, i);
      OPENIMA_CHECK_GE(j, 0);
      OPENIMA_CHECK_LT(j, b);
      li -= srow[j] - log_denom;
    }
    loss += li / static_cast<double>(pos.size());
  }
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss / b);

  return MakeOp(
      "normalized_supcon", std::move(out), {x},
      [positives, tau, eps, z = std::move(z), norms = std::move(norms),
       p = std::move(p)](Node* nd) {
        if (!NeedsGrad(nd, 0)) return;
        const int b = p.rows();
        // dL/dZ = (G + G^T) Z with G_ik = dL/ds_ik, as in SupConLoss.
        la::Matrix gmat = p;
        for (int i = 0; i < b; ++i) {
          const auto& pos = positives[static_cast<size_t>(i)];
          const float y = 1.0f / static_cast<float>(pos.size());
          float* grow = gmat.Row(i);
          for (int j : pos) grow[j] -= y;
        }
        la::ScaleInPlace(nd->grad(0, 0) / (static_cast<float>(b) * tau),
                         &gmat);
        la::Matrix sym = la::Transpose(gmat);
        la::AddInPlace(gmat, &sym);
        la::Matrix dz = la::Matmul(sym, z);
        // Project through the row-normalize Jacobian:
        // dx = (dz - (dz . zhat) zhat) / ||x||; degenerate rows pass through.
        la::Matrix& dx = InGrad(nd, 0);
        for (int i = 0; i < b; ++i) {
          const float norm = norms(i, 0);
          const float* g = dz.Row(i);
          float* d = dx.Row(i);
          if (norm <= eps) {
            for (int j = 0; j < dz.cols(); ++j) d[j] += g[j];
            continue;
          }
          const float* zr = z.Row(i);
          double dot = 0.0;
          for (int j = 0; j < dz.cols(); ++j) {
            dot += static_cast<double>(g[j]) * zr[j];
          }
          const float inv = 1.0f / norm;
          const float dotf = static_cast<float>(dot);
          for (int j = 0; j < dz.cols(); ++j) {
            d[j] += (g[j] - dotf * zr[j]) * inv;
          }
        }
      });
}

Variable PairwiseDotBce(const Variable& logits,
                        const std::vector<Pair>& pairs) {
  OPENIMA_CHECK(!pairs.empty());
  la::Matrix probs = la::RowSoftmax(logits.value());
  const int n = logits.rows();
  double loss = 0.0;
  constexpr float kEps = 1e-7f;
  for (const Pair& pr : pairs) {
    OPENIMA_CHECK_GE(pr.i, 0);
    OPENIMA_CHECK_LT(pr.i, n);
    OPENIMA_CHECK_GE(pr.j, 0);
    OPENIMA_CHECK_LT(pr.j, n);
    const float* pi = probs.Row(pr.i);
    const float* pj = probs.Row(pr.j);
    double u = 0.0;
    for (int c = 0; c < probs.cols(); ++c) u += static_cast<double>(pi[c]) * pj[c];
    u = std::clamp(u, static_cast<double>(kEps), 1.0 - kEps);
    loss -= pr.target * std::log(u) + (1.0 - pr.target) * std::log(1.0 - u);
  }
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss / pairs.size());
  return MakeOp(
      "pairwise_dot_bce", std::move(out), {logits},
      [pairs, probs = std::move(probs)](Node* nd) {
        if (!NeedsGrad(nd, 0)) return;
        const int c = probs.cols();
        la::Matrix& dl = InGrad(nd, 0);
        const float gscale = nd->grad(0, 0) / static_cast<float>(pairs.size());
        for (const Pair& pr : pairs) {
          const float* pi = probs.Row(pr.i);
          const float* pj = probs.Row(pr.j);
          double u = 0.0;
          for (int k = 0; k < c; ++k) u += static_cast<double>(pi[k]) * pj[k];
          u = std::clamp(u, 1e-7, 1.0 - 1e-7);
          // dL/du for this pair (already includes the 1/|pairs| factor).
          const float dldu = gscale * static_cast<float>(
                                          -pr.target / u +
                                          (1.0 - pr.target) / (1.0 - u));
          // du/dl_i = p_i (*) p_j - u * p_i ; symmetric in j.
          float* di = dl.Row(pr.i);
          float* dj = dl.Row(pr.j);
          const float uf = static_cast<float>(u);
          for (int k = 0; k < c; ++k) {
            di[k] += dldu * (pi[k] * pj[k] - uf * pi[k]);
            dj[k] += dldu * (pi[k] * pj[k] - uf * pj[k]);
          }
        }
      });
}

Variable NegMeanPredictionEntropy(const Variable& logits) {
  const int n = logits.rows(), c = logits.cols();
  OPENIMA_CHECK_GT(n, 0);
  la::Matrix probs = la::RowSoftmax(logits.value());
  std::vector<double> mean(static_cast<size_t>(c), 0.0);
  for (int i = 0; i < n; ++i) {
    const float* p = probs.Row(i);
    for (int j = 0; j < c; ++j) mean[static_cast<size_t>(j)] += p[j];
  }
  double loss = 0.0;
  std::vector<float> q(static_cast<size_t>(c));  // q_c = log m_c + 1
  for (int j = 0; j < c; ++j) {
    double m = std::max(mean[static_cast<size_t>(j)] / n, 1e-12);
    loss += m * std::log(m);
    q[static_cast<size_t>(j)] = static_cast<float>(std::log(m) + 1.0);
  }
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss);
  return MakeOp(
      "neg_mean_pred_entropy", std::move(out), {logits},
      [q = std::move(q), probs = std::move(probs)](Node* nd) {
        if (!NeedsGrad(nd, 0)) return;
        const int n = probs.rows(), c = probs.cols();
        const float g = nd->grad(0, 0) / static_cast<float>(n);
        la::Matrix& dl = InGrad(nd, 0);
        for (int i = 0; i < n; ++i) {
          const float* p = probs.Row(i);
          float* d = dl.Row(i);
          double dot = 0.0;
          for (int j = 0; j < c; ++j) dot += static_cast<double>(p[j]) * q[static_cast<size_t>(j)];
          const float dotf = static_cast<float>(dot);
          for (int j = 0; j < c; ++j) {
            d[j] += g * p[j] * (q[static_cast<size_t>(j)] - dotf);
          }
        }
      });
}

Variable MeanRowEntropy(const Variable& logits, const std::vector<int>& rows) {
  std::vector<int> idx = rows;
  if (idx.empty()) {
    idx.resize(static_cast<size_t>(logits.rows()));
    for (int i = 0; i < logits.rows(); ++i) idx[static_cast<size_t>(i)] = i;
  }
  OPENIMA_CHECK(!idx.empty());
  la::Matrix probs = la::RowSoftmax(logits.value());
  std::vector<float> entropies(idx.size());
  double total = 0.0;
  for (size_t t = 0; t < idx.size(); ++t) {
    const float* p = probs.Row(idx[t]);
    double h = 0.0;
    for (int c = 0; c < probs.cols(); ++c) {
      if (p[c] > 1e-12f) h -= static_cast<double>(p[c]) * std::log(p[c]);
    }
    entropies[t] = static_cast<float>(h);
    total += h;
  }
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(total / idx.size());
  return MakeOp(
      "mean_row_entropy", std::move(out), {logits},
      [idx = std::move(idx), probs = std::move(probs),
       entropies = std::move(entropies)](Node* nd) {
        if (!NeedsGrad(nd, 0)) return;
        la::Matrix& dl = InGrad(nd, 0);
        const float g = nd->grad(0, 0) / static_cast<float>(idx.size());
        for (size_t t = 0; t < idx.size(); ++t) {
          const float* p = probs.Row(idx[t]);
          float* d = dl.Row(idx[t]);
          const float h = entropies[t];
          for (int c = 0; c < probs.cols(); ++c) {
            const float logp = p[c] > 1e-12f ? std::log(p[c]) : -27.6f;
            d[c] += g * (-p[c] * (logp + h));
          }
        }
      });
}

Variable GaussianKl(const Variable& mu, const Variable& logvar) {
  OPENIMA_CHECK(mu.value().SameShape(logvar.value()));
  const int n = mu.rows();
  OPENIMA_CHECK_GT(n, 0);
  double kl = 0.0;
  for (int64_t i = 0; i < mu.value().size(); ++i) {
    const double m = mu.value().data()[i];
    const double lv = logvar.value().data()[i];
    kl += 0.5 * (std::exp(lv) + m * m - 1.0 - lv);
  }
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(kl / n);
  return MakeOp("gaussian_kl", std::move(out), {mu, logvar}, [](Node* nd) {
    const la::Matrix& m = InVal(nd, 0);
    const la::Matrix& lv = InVal(nd, 1);
    const float g = nd->grad(0, 0) / m.rows();
    if (NeedsGrad(nd, 0)) {
      la::Matrix& dm = InGrad(nd, 0);
      for (int64_t i = 0; i < m.size(); ++i) {
        dm.data()[i] += g * m.data()[i];
      }
    }
    if (NeedsGrad(nd, 1)) {
      la::Matrix& dl = InGrad(nd, 1);
      for (int64_t i = 0; i < lv.size(); ++i) {
        dl.data()[i] += g * 0.5f * (std::exp(lv.data()[i]) - 1.0f);
      }
    }
  });
}

Variable MseLoss(const Variable& pred, const la::Matrix& target) {
  OPENIMA_CHECK(pred.value().SameShape(target));
  OPENIMA_CHECK_GT(pred.value().size(), 0);
  double loss = 0.0;
  for (int64_t i = 0; i < target.size(); ++i) {
    const double d = pred.value().data()[i] - target.data()[i];
    loss += d * d;
  }
  la::Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss / pred.value().size());
  return MakeOp("mse", std::move(out), {pred}, [target](Node* nd) {
    if (!NeedsGrad(nd, 0)) return;
    const la::Matrix& pv = InVal(nd, 0);
    la::Matrix& dp = InGrad(nd, 0);
    const float g = 2.0f * nd->grad(0, 0) / static_cast<float>(pv.size());
    for (int64_t i = 0; i < pv.size(); ++i) {
      dp.data()[i] += g * (pv.data()[i] - target.data()[i]);
    }
  });
}

}  // namespace openima::autograd::ops
