#ifndef OPENIMA_AUTOGRAD_GRADCHECK_H_
#define OPENIMA_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <vector>

#include "src/autograd/variable.h"

namespace openima::autograd {

/// Options for the finite-difference gradient check.
struct GradCheckOptions {
  /// Central-difference step. The engine is float32, so steps much below
  /// 1e-3 lose precision to rounding.
  double step = 1e-3;
  /// Accept when |analytic - numeric| <= atol + rtol * |numeric|.
  double atol = 2e-3;
  double rtol = 2e-2;
};

/// Result of a gradient check.
struct GradCheckResult {
  bool ok = true;
  /// Worst absolute discrepancy observed.
  double max_abs_error = 0.0;
  /// Flat description of the first failure (empty when ok).
  std::string first_failure;
};

/// Verifies the analytic gradients of `fn` at the given leaf inputs against
/// central finite differences. `fn` must rebuild the graph from the current
/// leaf values on every call and return a scalar Variable. Every leaf must
/// have requires_grad == true.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable>* leaves, const GradCheckOptions& options = {});

}  // namespace openima::autograd

#endif  // OPENIMA_AUTOGRAD_GRADCHECK_H_
