#ifndef OPENIMA_AUTOGRAD_VARIABLE_H_
#define OPENIMA_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/la/matrix.h"

namespace openima::autograd {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// One vertex of the dynamically built (define-by-run) computation graph.
/// Holds the forward value, the accumulated gradient, the parent nodes, and
/// the backward function that routes `grad` into the parents' grads.
class Node {
 public:
  /// `backward_fn(node)` must accumulate (`+=`) into each input's `grad`.
  using BackwardFn = std::function<void(Node*)>;

  la::Matrix value;
  la::Matrix grad;  // allocated lazily, same shape as value
  bool requires_grad = false;
  std::vector<NodePtr> inputs;
  BackwardFn backward_fn;
  const char* op_name = "";  // for diagnostics; must point at a literal

  /// Ensures `grad` is allocated (zero-filled) at the value's shape.
  void EnsureGrad();
};

/// A handle to a graph node. Cheap to copy (shared ownership). The public
/// face of the autograd engine:
///
///   Variable x = Variable::Leaf(data, /*requires_grad=*/true);
///   Variable loss = ops::MeanAll(ops::Mul(x, x));
///   loss.Backward();
///   // x.grad() now holds dloss/dx.
class Variable {
 public:
  /// Null handle; most APIs require a non-null Variable.
  Variable() = default;

  /// Wraps a graph node.
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

  /// Creates a leaf (no inputs). Parameters pass requires_grad=true;
  /// constants (data batches, targets) pass false.
  static Variable Leaf(la::Matrix value, bool requires_grad);

  bool defined() const { return node_ != nullptr; }

  const la::Matrix& value() const;
  la::Matrix& mutable_value();

  /// The accumulated gradient; only meaningful after Backward() reached this
  /// node. CHECK-fails if no gradient was ever allocated.
  const la::Matrix& grad() const;

  /// True when a gradient buffer has been allocated for this node (i.e. a
  /// backward pass reached it, or ZeroGrad was called).
  bool HasGrad() const;

  bool requires_grad() const;

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Zeroes this node's gradient buffer (typically used on leaves between
  /// optimization steps).
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this scalar (1x1) variable.
  /// Gradients accumulate into every reachable node with requires_grad.
  void Backward() const;

  const NodePtr& node() const { return node_; }

 private:
  NodePtr node_;
};

/// Creates an interior op node. `backward_fn` may be empty when no input
/// requires a gradient (the node is then treated as constant). `op_name`
/// must be a string literal (the node stores the pointer, not a copy).
/// Nodes are drawn from the thread's bound autograd::Tape when one is
/// active, so steady-state training steps recycle graph storage instead of
/// hitting the heap per op.
Variable MakeOp(const char* op_name, la::Matrix value,
                std::vector<Variable> inputs, Node::BackwardFn backward_fn);

}  // namespace openima::autograd

#endif  // OPENIMA_AUTOGRAD_VARIABLE_H_
