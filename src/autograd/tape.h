#ifndef OPENIMA_AUTOGRAD_TAPE_H_
#define OPENIMA_AUTOGRAD_TAPE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace openima::autograd {

/// Counters describing a Tape's traffic.
struct TapeStats {
  int64_t nodes = 0;            ///< node blocks served
  int64_t hits = 0;             ///< served from recycled blocks
  int64_t misses = 0;           ///< fresh heap allocations
  int64_t outstanding = 0;      ///< blocks currently alive
  int64_t resets = 0;           ///< Reset() calls
  int64_t bytes_allocated = 0;  ///< bytes ever heap-allocated
};

/// Fixed-size block arena for computation-graph Nodes. The define-by-run
/// graph is rebuilt every training step; without a tape each step pays one
/// heap allocation per op for the Node + shared_ptr control block. Nodes
/// are instead drawn through std::allocate_shared with a TapeAllocator:
/// the first step's blocks seed per-size free lists, and every later step
/// recycles them — a steady-state step allocates no graph memory.
///
/// Lifetime rules:
///  - The tape must outlive every Node drawn from it (the control block
///    stores the allocator, so release routes back here even after the
///    binding ended).
///  - Reset() marks an epoch boundary: it CHECKs that the previous step's
///    graph has been fully released (catching accidentally retained
///    sub-graphs that would otherwise grow the arena) and bumps the reset
///    counter. Blocks stay cached across Reset().
class Tape {
 public:
  Tape() = default;
  ~Tape();

  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Returns an uninitialized block of `bytes` (recycled when possible).
  void* AllocateBlock(std::size_t bytes);

  /// Returns a block obtained from AllocateBlock(bytes).
  void ReleaseBlock(void* ptr, std::size_t bytes);

  /// Epoch boundary: CHECK-fails when graph nodes are still alive.
  void Reset();

  /// Frees all cached blocks. CHECK-fails when blocks are outstanding.
  void Trim();

  TapeStats stats() const;
  void ResetStats();

 private:
  mutable std::mutex mu_;
  // Per-block-size free lists; a graph uses a handful of distinct sizes
  // (usually one: the allocate_shared<Node> block), so linear scan wins.
  std::vector<std::pair<std::size_t, std::vector<void*>>> free_lists_;
  TapeStats stats_;
};

/// RAII thread-local binding: while alive, MakeOp/Variable::Leaf on this
/// thread draw their Nodes from `tape`. Bindings nest; the innermost wins.
class TapeBinding {
 public:
  explicit TapeBinding(Tape* tape);
  ~TapeBinding();

  TapeBinding(const TapeBinding&) = delete;
  TapeBinding& operator=(const TapeBinding&) = delete;

 private:
  Tape* previous_;
};

/// The tape bound to the current thread (nullptr when none).
Tape* BoundTape();

/// Minimal allocator adapter so std::allocate_shared places the Node and
/// its control block in one tape block. Copies (including the control
/// block's internal copy) carry the tape pointer, so deallocation reaches
/// the right tape regardless of the binding at release time.
template <typename T>
struct TapeAllocator {
  using value_type = T;

  explicit TapeAllocator(Tape* t) : tape(t) {}
  template <typename U>
  TapeAllocator(const TapeAllocator<U>& other) : tape(other.tape) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(tape->AllocateBlock(n * sizeof(T)));
  }
  void deallocate(T* ptr, std::size_t n) {
    tape->ReleaseBlock(ptr, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const TapeAllocator<U>& other) const {
    return tape == other.tape;
  }

  Tape* tape;
};

}  // namespace openima::autograd

#endif  // OPENIMA_AUTOGRAD_TAPE_H_
