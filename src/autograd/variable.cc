#include "src/autograd/variable.h"

#include <unordered_set>

#include "src/autograd/tape.h"
#include "src/obs/watchdog.h"
#include "src/util/logging.h"

namespace openima::autograd {

namespace {

/// Allocates a fresh Node, drawing the combined control-block + Node
/// allocation from the thread's bound Tape when one is active. The
/// allocator is stored in the control block, so release finds its way back
/// to the tape even if the binding has ended by then.
NodePtr NewNode() {
  if (Tape* tape = BoundTape()) {
    return std::allocate_shared<Node>(TapeAllocator<Node>(tape));
  }
  return std::make_shared<Node>();
}

}  // namespace

void Node::EnsureGrad() {
  if (!grad.SameShape(value)) {
    grad = la::Matrix(value.rows(), value.cols());
  }
}

Variable Variable::Leaf(la::Matrix value, bool requires_grad) {
  auto node = NewNode();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->op_name = "leaf";
  return Variable(std::move(node));
}

const la::Matrix& Variable::value() const {
  OPENIMA_CHECK(defined());
  return node_->value;
}

la::Matrix& Variable::mutable_value() {
  OPENIMA_CHECK(defined());
  return node_->value;
}

const la::Matrix& Variable::grad() const {
  OPENIMA_CHECK(defined());
  OPENIMA_CHECK(node_->grad.SameShape(node_->value))
      << "gradient not computed for this node";
  return node_->grad;
}

bool Variable::HasGrad() const {
  OPENIMA_CHECK(defined());
  return node_->grad.SameShape(node_->value);
}

bool Variable::requires_grad() const {
  OPENIMA_CHECK(defined());
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  OPENIMA_CHECK(defined());
  node_->EnsureGrad();
  node_->grad.Fill(0.0f);
}

namespace {

/// Iterative post-order DFS producing a topological order (inputs before
/// consumers). Iterative to survive deep graphs (many-epoch loops build deep
/// chains only if the user retains them; still, avoid recursion).
void TopoSort(Node* root, std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->inputs.size()) {
      Node* child = node->inputs[next_child].get();
      ++next_child;
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::Backward() const {
  OPENIMA_CHECK(defined());
  OPENIMA_CHECK_EQ(node_->value.rows(), 1);
  OPENIMA_CHECK_EQ(node_->value.cols(), 1);
  OPENIMA_CHECK(node_->requires_grad)
      << "Backward() on a variable that does not require grad";

  std::vector<Node*> order;  // post-order: inputs first
  TopoSort(node_.get(), &order);

  // Interior (op) nodes are transient: zero their gradients so repeated
  // Backward() calls accumulate only at leaves, matching the usual autograd
  // contract for parameter gradients.
  for (Node* node : order) {
    if (!node->inputs.empty()) {
      node->EnsureGrad();
      node->grad.Fill(0.0f);
    }
  }

  // Seed d(loss)/d(loss) = 1 and sweep in reverse topological order.
  node_->EnsureGrad();
  node_->grad(0, 0) += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn) node->backward_fn(node);
  }

  // Numeric-health scan over what this sweep produced: the loss value
  // itself and every leaf (parameter) gradient. One relaxed load when the
  // watchdog is off; compiled out entirely under OPENIMA_OBS=OFF.
  if (obs::Watchdog::active()) {
    obs::Watchdog::CheckTensor("backward.loss", node_->value.data(), 1);
    for (Node* node : order) {
      if (!node->inputs.empty() || !node->requires_grad) continue;
      if (!node->grad.SameShape(node->value)) continue;
      obs::Watchdog::CheckTensor("backward.leaf_grad", node->grad.data(),
                                 node->grad.size());
    }
  }
}

Variable MakeOp(const char* op_name, la::Matrix value,
                std::vector<Variable> inputs, Node::BackwardFn backward_fn) {
  auto node = NewNode();
  node->value = std::move(value);
  node->op_name = op_name;
  bool any_grad = false;
  node->inputs.reserve(inputs.size());
  for (auto& in : inputs) {
    OPENIMA_CHECK(in.defined());
    any_grad = any_grad || in.node()->requires_grad;
    node->inputs.push_back(in.node());
  }
  node->requires_grad = any_grad;
  if (any_grad) {
    OPENIMA_CHECK(backward_fn != nullptr)
        << "op " << node->op_name << " needs a backward function";
    node->backward_fn = std::move(backward_fn);
    // Pre-allocate input grads so backward functions can accumulate freely.
    for (auto& in : node->inputs) {
      if (in->requires_grad) in->EnsureGrad();
    }
  }
  return Variable(std::move(node));
}

}  // namespace openima::autograd
