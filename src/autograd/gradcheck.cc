#include "src/autograd/gradcheck.h"

#include <cmath>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace openima::autograd {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable>* leaves, const GradCheckOptions& options) {
  GradCheckResult result;

  // Analytic pass.
  for (auto& leaf : *leaves) {
    OPENIMA_CHECK(leaf.requires_grad());
    leaf.ZeroGrad();
  }
  Variable loss = fn(*leaves);
  OPENIMA_CHECK_EQ(loss.rows(), 1);
  OPENIMA_CHECK_EQ(loss.cols(), 1);
  loss.Backward();
  std::vector<la::Matrix> analytic;
  analytic.reserve(leaves->size());
  for (auto& leaf : *leaves) analytic.push_back(leaf.grad());

  // Numeric pass: central differences, one coordinate at a time.
  for (size_t k = 0; k < leaves->size(); ++k) {
    la::Matrix& v = (*leaves)[k].mutable_value();
    for (int64_t idx = 0; idx < v.size(); ++idx) {
      const float saved = v.data()[idx];
      v.data()[idx] = saved + static_cast<float>(options.step);
      const double f_plus = fn(*leaves).value()(0, 0);
      v.data()[idx] = saved - static_cast<float>(options.step);
      const double f_minus = fn(*leaves).value()(0, 0);
      v.data()[idx] = saved;

      const double numeric = (f_plus - f_minus) / (2.0 * options.step);
      const double got = analytic[k].data()[idx];
      const double err = std::fabs(got - numeric);
      result.max_abs_error = std::max(result.max_abs_error, err);
      if (err > options.atol + options.rtol * std::fabs(numeric)) {
        if (result.ok) {
          result.first_failure = StrFormat(
              "leaf %zu, flat index %lld: analytic=%.6g numeric=%.6g",
              k, static_cast<long long>(idx), got, numeric);
        }
        result.ok = false;
      }
    }
  }
  return result;
}

}  // namespace openima::autograd
