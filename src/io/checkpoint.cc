#include "src/io/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "src/util/string_util.h"

namespace openima::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr size_t kMagicSize = sizeof(kCheckpointMagic);
constexpr size_t kMaxSectionName = 64;

// Fixed-size header prefix: magic + version + section count + file size.
constexpr size_t kHeaderSize = kMagicSize + 4 + 4 + 8;

uint32_t DecodeU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t DecodeU64(const char* p) {
  return static_cast<uint64_t>(DecodeU32(p)) |
         (static_cast<uint64_t>(DecodeU32(p + 4)) << 32);
}

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffULL));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

const char* DTypeName(uint8_t tag) {
  switch (static_cast<DType>(tag)) {
    case DType::kF32:
      return "f32";
    case DType::kI32:
      return "i32";
    case DType::kF64:
      return "f64";
    case DType::kU64:
      return "u64";
  }
  return "unknown";
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---- ByteSink -------------------------------------------------------------

void ByteSink::PutU32(uint32_t v) { AppendU32(&bytes_, v); }

void ByteSink::PutU64(uint64_t v) { AppendU64(&bytes_, v); }

void ByteSink::PutF32(float v) {
  uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteSink::PutF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteSink::PutBytes(const void* data, size_t size) {
  bytes_.append(static_cast<const char*>(data), size);
}

void ByteSink::PutString(const std::string& s) {
  PutU64(s.size());
  bytes_.append(s);
}

// ---- ByteSource -----------------------------------------------------------

ByteSource::ByteSource(const char* data, size_t size, std::string context)
    : data_(data), size_(size), context_(std::move(context)) {}

Status ByteSource::ReadBytes(void* out, size_t size) {
  if (size > size_ - pos_) {
    return Status::InvalidArgument(StrFormat(
        "%s: truncated section (need %zu bytes at offset %zu, %zu left)",
        context_.c_str(), size, pos_, size_ - pos_));
  }
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return Status::OK();
}

Status ByteSource::ReadU8(uint8_t* out) {
  if (pos_ >= size_) {
    return Status::InvalidArgument(context_ +
                                   ": truncated section (u8 past end)");
  }
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status ByteSource::ReadU32(uint32_t* out) {
  char buf[4];
  OPENIMA_RETURN_IF_ERROR(ReadBytes(buf, sizeof(buf)));
  *out = DecodeU32(buf);
  return Status::OK();
}

Status ByteSource::ReadU64(uint64_t* out) {
  char buf[8];
  OPENIMA_RETURN_IF_ERROR(ReadBytes(buf, sizeof(buf)));
  *out = DecodeU64(buf);
  return Status::OK();
}

Status ByteSource::ReadI32(int32_t* out) {
  uint32_t v = 0;
  OPENIMA_RETURN_IF_ERROR(ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status ByteSource::ReadI64(int64_t* out) {
  uint64_t v = 0;
  OPENIMA_RETURN_IF_ERROR(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ByteSource::ReadF32(float* out) {
  uint32_t bits = 0;
  OPENIMA_RETURN_IF_ERROR(ReadU32(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteSource::ReadF64(double* out) {
  uint64_t bits = 0;
  OPENIMA_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteSource::ReadString(std::string* out) {
  uint64_t size = 0;
  OPENIMA_RETURN_IF_ERROR(ReadU64(&size));
  if (size > size_ - pos_) {
    return Status::InvalidArgument(StrFormat(
        "%s: string length %llu exceeds the %zu bytes left in the section",
        context_.c_str(), static_cast<unsigned long long>(size),
        size_ - pos_));
  }
  out->assign(data_ + pos_, static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  return Status::OK();
}

Status ByteSource::ExpectEnd() const {
  if (pos_ != size_) {
    return Status::InvalidArgument(
        StrFormat("%s: section-length mismatch (%zu trailing bytes after the "
                  "last record)",
                  context_.c_str(), size_ - pos_));
  }
  return Status::OK();
}

// ---- Typed records --------------------------------------------------------

void WriteMatrix(ByteSink* sink, const la::Matrix& m) {
  sink->PutU8(static_cast<uint8_t>(DType::kF32));
  sink->PutI32(m.rows());
  sink->PutI32(m.cols());
  for (int64_t i = 0; i < m.size(); ++i) sink->PutF32(m.data()[i]);
}

namespace {

Status ReadMatrixHeader(ByteSource* src, int32_t* rows, int32_t* cols) {
  uint8_t dtype = 0;
  OPENIMA_RETURN_IF_ERROR(src->ReadU8(&dtype));
  if (dtype != static_cast<uint8_t>(DType::kF32)) {
    return Status::InvalidArgument(
        StrFormat("tensor dtype mismatch: expected f32 (tag %d), found %s "
                  "(tag %d)",
                  static_cast<int>(DType::kF32), DTypeName(dtype),
                  static_cast<int>(dtype)));
  }
  OPENIMA_RETURN_IF_ERROR(src->ReadI32(rows));
  OPENIMA_RETURN_IF_ERROR(src->ReadI32(cols));
  if (*rows < 0 || *cols < 0) {
    return Status::InvalidArgument(
        StrFormat("tensor shape %dx%d is negative", *rows, *cols));
  }
  return Status::OK();
}

Status ReadMatrixPayload(ByteSource* src, int32_t rows, int32_t cols,
                         la::Matrix* out) {
  const uint64_t elems = static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols);
  if (elems * 4 > src->remaining()) {
    return Status::InvalidArgument(
        StrFormat("tensor payload truncated: %dx%d needs %llu bytes, section "
                  "has %zu left",
                  rows, cols, static_cast<unsigned long long>(elems * 4),
                  src->remaining()));
  }
  la::Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    OPENIMA_RETURN_IF_ERROR(src->ReadF32(&m.data()[i]));
  }
  *out = std::move(m);
  return Status::OK();
}

}  // namespace

Status ReadMatrix(ByteSource* src, la::Matrix* out) {
  int32_t rows = 0, cols = 0;
  OPENIMA_RETURN_IF_ERROR(ReadMatrixHeader(src, &rows, &cols));
  return ReadMatrixPayload(src, rows, cols, out);
}

Status ReadMatrixExpect(ByteSource* src, int rows, int cols, la::Matrix* out) {
  int32_t r = 0, c = 0;
  OPENIMA_RETURN_IF_ERROR(ReadMatrixHeader(src, &r, &c));
  if (r != rows || c != cols) {
    return Status::InvalidArgument(StrFormat(
        "tensor shape mismatch: checkpoint has %dx%d, model expects %dx%d", r,
        c, rows, cols));
  }
  return ReadMatrixPayload(src, r, c, out);
}

void WriteI32Vector(ByteSink* sink, const std::vector<int>& v) {
  sink->PutU8(static_cast<uint8_t>(DType::kI32));
  sink->PutU64(v.size());
  for (int x : v) sink->PutI32(x);
}

Status ReadI32Vector(ByteSource* src, std::vector<int>* out) {
  uint8_t dtype = 0;
  OPENIMA_RETURN_IF_ERROR(src->ReadU8(&dtype));
  if (dtype != static_cast<uint8_t>(DType::kI32)) {
    return Status::InvalidArgument(
        StrFormat("vector dtype mismatch: expected i32 (tag %d), found %s "
                  "(tag %d)",
                  static_cast<int>(DType::kI32), DTypeName(dtype),
                  static_cast<int>(dtype)));
  }
  uint64_t count = 0;
  OPENIMA_RETURN_IF_ERROR(src->ReadU64(&count));
  if (count * 4 > src->remaining()) {
    return Status::InvalidArgument(StrFormat(
        "vector payload truncated: %llu entries need %llu bytes, section has "
        "%zu left",
        static_cast<unsigned long long>(count),
        static_cast<unsigned long long>(count * 4), src->remaining()));
  }
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t x = 0;
    OPENIMA_RETURN_IF_ERROR(src->ReadI32(&x));
    out->push_back(x);
  }
  return Status::OK();
}

// ---- CheckpointWriter -----------------------------------------------------

Status CheckpointWriter::AddSection(const std::string& name,
                                    const ByteSink& payload) {
  if (name.empty() || name.size() > kMaxSectionName) {
    return Status::InvalidArgument(
        StrFormat("section name \"%s\" must be 1..%zu bytes", name.c_str(),
                  kMaxSectionName));
  }
  for (const Section& s : sections_) {
    if (s.name == name) {
      return Status::InvalidArgument("duplicate checkpoint section: " + name);
    }
  }
  sections_.push_back(Section{name, payload.bytes()});
  return Status::OK();
}

Status CheckpointWriter::Finish(const std::string& path) const {
  // Table size is computable up front, so payload offsets are absolute.
  size_t table_size = 0;
  for (const Section& s : sections_) {
    table_size += 4 + s.name.size() + 8 + 8 + 8;
  }
  uint64_t offset = kHeaderSize + table_size;
  uint64_t total = offset;
  for (const Section& s : sections_) total += s.payload.size();

  std::string image;
  image.reserve(static_cast<size_t>(total));
  image.append(kCheckpointMagic, kMagicSize);
  AppendU32(&image, kCheckpointVersion);
  AppendU32(&image, static_cast<uint32_t>(sections_.size()));
  AppendU64(&image, total);
  for (const Section& s : sections_) {
    AppendU32(&image, static_cast<uint32_t>(s.name.size()));
    image.append(s.name);
    AppendU64(&image, offset);
    AppendU64(&image, s.payload.size());
    AppendU64(&image, Fnv1a64(s.payload.data(), s.payload.size()));
    offset += s.payload.size();
  }
  for (const Section& s : sections_) image.append(s.payload);

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  if (std::fwrite(image.data(), 1, image.size(), f.get()) != image.size()) {
    return Status::IOError("short write: " + path);
  }
  if (std::fclose(f.release()) != 0) {
    return Status::IOError("close failed: " + path);
  }
  return Status::OK();
}

// ---- CheckpointReader -----------------------------------------------------

StatusOr<CheckpointReader> CheckpointReader::Open(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const size_t got = std::fread(buf, 1, sizeof(buf), f.get());
    bytes.append(buf, got);
    if (got < sizeof(buf)) break;
  }
  if (std::ferror(f.get())) return Status::IOError("read failed: " + path);

  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument(
        StrFormat("%s: truncated checkpoint (%zu bytes, header needs %zu)",
                  path.c_str(), bytes.size(), kHeaderSize));
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic, kMagicSize) != 0) {
    return Status::InvalidArgument(
        path + ": wrong magic (not an OIMACKPT checkpoint)");
  }
  const uint32_t version = DecodeU32(bytes.data() + kMagicSize);
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument(StrFormat(
        "%s: unsupported checkpoint version %u (this build reads version %u)",
        path.c_str(), version, kCheckpointVersion));
  }
  const uint32_t count = DecodeU32(bytes.data() + kMagicSize + 4);
  const uint64_t declared_size = DecodeU64(bytes.data() + kMagicSize + 8);
  if (declared_size != bytes.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: truncated checkpoint (header declares %llu bytes, file has %zu)",
        path.c_str(), static_cast<unsigned long long>(declared_size),
        bytes.size()));
  }

  CheckpointReader reader;
  reader.path_ = path;
  size_t pos = kHeaderSize;
  struct PendingEntry {
    Entry entry;
    uint64_t checksum;
  };
  std::vector<PendingEntry> pending;
  for (uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > bytes.size()) {
      return Status::InvalidArgument(
          StrFormat("%s: section table truncated at entry %u", path.c_str(),
                    i));
    }
    const uint32_t name_len = DecodeU32(bytes.data() + pos);
    pos += 4;
    if (name_len == 0 || name_len > kMaxSectionName ||
        pos + name_len + 24 > bytes.size()) {
      return Status::InvalidArgument(
          StrFormat("%s: corrupt section table entry %u", path.c_str(), i));
    }
    PendingEntry e;
    e.entry.name.assign(bytes.data() + pos, name_len);
    pos += name_len;
    e.entry.offset = DecodeU64(bytes.data() + pos);
    e.entry.length = DecodeU64(bytes.data() + pos + 8);
    e.checksum = DecodeU64(bytes.data() + pos + 16);
    pos += 24;
    if (e.entry.offset > bytes.size() ||
        e.entry.length > bytes.size() - e.entry.offset) {
      return Status::InvalidArgument(StrFormat(
          "%s: section \"%s\" [offset %llu, length %llu] escapes the %zu-byte "
          "file (section-length mismatch)",
          path.c_str(), e.entry.name.c_str(),
          static_cast<unsigned long long>(e.entry.offset),
          static_cast<unsigned long long>(e.entry.length), bytes.size()));
    }
    pending.push_back(std::move(e));
  }
  for (const PendingEntry& e : pending) {
    const uint64_t actual = Fnv1a64(bytes.data() + e.entry.offset,
                                    static_cast<size_t>(e.entry.length));
    if (actual != e.checksum) {
      return Status::InvalidArgument(StrFormat(
          "%s: section \"%s\" checksum mismatch (payload corrupted)",
          path.c_str(), e.entry.name.c_str()));
    }
    reader.entries_.push_back(e.entry);
  }
  reader.bytes_ = std::move(bytes);
  return reader;
}

bool CheckpointReader::HasSection(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

StatusOr<ByteSource> CheckpointReader::Section(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return ByteSource(bytes_.data() + e.offset,
                        static_cast<size_t>(e.length),
                        path_ + ": section \"" + name + "\"");
    }
  }
  return Status::InvalidArgument(path_ + ": missing checkpoint section \"" +
                                 name + "\"");
}

std::vector<std::string> CheckpointReader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

}  // namespace openima::io
