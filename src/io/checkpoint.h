#ifndef OPENIMA_IO_CHECKPOINT_H_
#define OPENIMA_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/la/matrix.h"
#include "src/util/status.h"

/// Versioned, endian-stable binary checkpoint container (SERVING.md has the
/// byte-level spec). A checkpoint file is
///
///   magic "OIMACKPT" (8 bytes)
///   u32 version (currently 1)
///   u32 section count
///   u64 total file size (truncation guard)
///   section table: per section { u32 name_len, name bytes,
///                                u64 offset, u64 length, u64 fnv1a64 }
///   payloads, concatenated
///
/// All multi-byte integers are little-endian *by construction* — values are
/// split into bytes explicitly, never memcpy'd through host integers — so a
/// checkpoint written on any host loads bit-identically on any other.
/// Floating-point payloads are stored as the IEEE-754 bit patterns of f32 /
/// f64 (u32 / u64 on the wire).
///
/// Sections are independent named byte blobs; producers serialize into a
/// ByteSink and readers consume through a bounds-checked ByteSource. Every
/// corruption mode (truncated file, wrong magic/version, a table entry
/// whose offset+length escapes the file, a payload whose checksum does not
/// match, a tensor with the wrong dtype tag) surfaces as a descriptive
/// Status — never a crash (tests/checkpoint_test.cc).
namespace openima::io {

/// Magic prefix of every checkpoint file.
inline constexpr char kCheckpointMagic[8] = {'O', 'I', 'M', 'A',
                                             'C', 'K', 'P', 'T'};

/// Current container version. Readers reject anything else.
inline constexpr uint32_t kCheckpointVersion = 1;

/// On-the-wire dtype tags of tensor/vector records.
enum class DType : uint8_t {
  kF32 = 1,  ///< float matrices (la::Matrix payloads)
  kI32 = 2,  ///< int32 vectors (labels, assignments, alignments)
  kF64 = 3,  ///< double scalars/vectors (RNG cache, quality carries)
  kU64 = 4,  ///< uint64 scalars (RNG words, counters)
};

/// FNV-1a 64-bit hash of a byte range (the per-section checksum).
uint64_t Fnv1a64(const void* data, size_t size);

/// Append-only little-endian byte encoder for one section payload.
class ByteSink {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF32(float v);   ///< IEEE-754 bit pattern as u32
  void PutF64(double v);  ///< IEEE-754 bit pattern as u64
  void PutBytes(const void* data, size_t size);
  /// u64 length prefix + raw bytes.
  void PutString(const std::string& s);

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

/// Bounds-checked little-endian decoder over one section's payload. Every
/// read past the end returns a Status naming the section — corrupt or
/// truncated sections can never read out of bounds.
class ByteSource {
 public:
  /// `data` must outlive the source; `context` names the section in errors.
  ByteSource(const char* data, size_t size, std::string context);

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI32(int32_t* out);
  Status ReadI64(int64_t* out);
  Status ReadF32(float* out);
  Status ReadF64(double* out);
  Status ReadBytes(void* out, size_t size);
  Status ReadString(std::string* out);

  /// Error unless the section was consumed exactly (trailing garbage and
  /// short payloads are both corruption).
  Status ExpectEnd() const;

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  std::string context_;
};

// ---- Typed records (dtype tag + shape + payload) --------------------------

/// f32 matrix record: u8 dtype(kF32), i32 rows, i32 cols, rows*cols f32.
void WriteMatrix(ByteSink* sink, const la::Matrix& m);

/// Reads a matrix record of any shape (shape comes from the record).
Status ReadMatrix(ByteSource* src, la::Matrix* out);

/// Reads a matrix record and requires the recorded shape to equal
/// rows x cols (parameter/moment tensors, whose shapes the model fixes).
Status ReadMatrixExpect(ByteSource* src, int rows, int cols, la::Matrix* out);

/// i32 vector record: u8 dtype(kI32), u64 count, count i32.
void WriteI32Vector(ByteSink* sink, const std::vector<int>& v);
Status ReadI32Vector(ByteSource* src, std::vector<int>* out);

// ---- Container ------------------------------------------------------------

/// Builds a checkpoint file in memory and writes it atomically-ish (single
/// fwrite of the assembled image). Section names must be unique, non-empty
/// and at most 64 bytes.
class CheckpointWriter {
 public:
  /// Adds one named section (payload copied). Error on duplicate/bad name.
  Status AddSection(const std::string& name, const ByteSink& payload);

  /// Assembles header + table + payloads and writes the file.
  Status Finish(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  std::vector<Section> sections_;
};

/// Loads a checkpoint file fully into memory, validating magic, version,
/// the declared file size, the section table and every per-section
/// checksum before any section is handed out.
class CheckpointReader {
 public:
  /// Opens and validates `path`. The reader is unusable on error.
  static StatusOr<CheckpointReader> Open(const std::string& path);

  bool HasSection(const std::string& name) const;

  /// A decoder over the named section's payload (the reader must outlive
  /// it). Error when the section does not exist.
  StatusOr<ByteSource> Section(const std::string& name) const;

  std::vector<std::string> SectionNames() const;

 private:
  struct Entry {
    std::string name;
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  std::string path_;
  std::string bytes_;
  std::vector<Entry> entries_;
};

}  // namespace openima::io

#endif  // OPENIMA_IO_CHECKPOINT_H_
