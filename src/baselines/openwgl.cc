#include "src/baselines/openwgl.h"

#include <algorithm>
#include <cmath>

#include "src/autograd/ops.h"
#include "src/la/matrix_ops.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::baselines {

namespace ops = autograd::ops;
using autograd::Variable;

OpenWglClassifier::OpenWglClassifier(const BaselineConfig& config,
                                     const OpenWglOptions& options, int in_dim,
                                     uint64_t seed)
    : config_(config), options_(options), rng_(seed) {
  nn::GatEncoderConfig enc = config.encoder;
  enc.in_dim = in_dim;
  config_.encoder = enc;
  encoder_ = std::make_unique<nn::GatEncoder>(enc, &rng_);
  const int d = enc.embedding_dim;
  mu_layer_ = std::make_unique<nn::Linear>(d, d, /*use_bias=*/true, &rng_);
  logvar_layer_ = std::make_unique<nn::Linear>(d, d, /*use_bias=*/true, &rng_);
  head_ = std::make_unique<nn::Linear>(d, config.num_seen, /*use_bias=*/false,
                                       &rng_);
  decoder_ = std::make_unique<nn::Linear>(d, in_dim, /*use_bias=*/true, &rng_);

  std::vector<autograd::Variable> params = encoder_->parameters();
  for (const auto& m : {mu_layer_.get(), logvar_layer_.get(), head_.get(),
                        decoder_.get()}) {
    const auto& p = m->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  nn::AdamOptions adam;
  adam.lr = config.lr;
  adam.weight_decay = config.weight_decay;
  optimizer_ = std::make_unique<nn::Adam>(std::move(params), adam);
}

la::Matrix OpenWglClassifier::EvalMu(const graph::Dataset& dataset) const {
  Variable features =
      autograd::Variable::Leaf(dataset.features, /*requires_grad=*/false);
  Variable h = encoder_->Forward(dataset.graph, features, /*training=*/false,
                                 nullptr);
  return mu_layer_->Forward(h).value();
}

Status OpenWglClassifier::Train(const graph::Dataset& dataset,
                                const graph::OpenWorldSplit& split) {
  const std::vector<int> train_labels = TrainLabels(split);
  const std::vector<int> unlabeled = split.UnlabeledNodes();
  const int n = dataset.num_nodes();
  const int d = config_.encoder.embedding_dim;

  // Arena-backed training: matrices and graph nodes built per step
  // recycle through arena_, so steady-state epochs stop allocating.
  nn::TrainingArena::Binding arena_binding(&arena_);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    OPENIMA_OBS_PHASE("epoch");
    OPENIMA_OBS_COUNT("train.epochs", 1);
    // The previous iteration's graph is freed by now; recycle it.
    arena_.EndEpoch();
    Variable features =
        autograd::Variable::Leaf(dataset.features, /*requires_grad=*/false);
    Variable h = encoder_->Forward(dataset.graph, features, /*training=*/true,
                                   &rng_);
    Variable mu = mu_layer_->Forward(h);
    Variable logvar = logvar_layer_->Forward(h);

    // Reparameterized latent: z = mu + eps (*) exp(0.5 * logvar).
    la::Matrix eps(n, d);
    for (int64_t i = 0; i < eps.size(); ++i) {
      eps.data()[i] = static_cast<float>(rng_.Normal());
    }
    Variable z = ops::Add(
        mu, ops::Mul(autograd::Variable::Leaf(std::move(eps), false),
                     ops::Exp(ops::Scale(logvar, 0.5f))));
    Variable logits = head_->Forward(z);

    Variable total;
    auto add_loss = [&total](const Variable& piece) {
      total = total.defined() ? ops::Add(total, piece) : piece;
    };

    if (!split.train_nodes.empty()) {
      add_loss(ops::SoftmaxCrossEntropy(
          ops::GatherRows(logits, split.train_nodes), train_labels));
    }
    if (options_.kl_weight > 0.0f) {
      add_loss(ops::Scale(ops::GaussianKl(mu, logvar), options_.kl_weight));
    }
    if (options_.recon_weight > 0.0f) {
      add_loss(ops::Scale(ops::MseLoss(decoder_->Forward(z), dataset.features),
                          options_.recon_weight));
    }
    // Class-uncertainty: keep currently low-confidence unlabeled nodes
    // uncertain (maximize their entropy).
    if (options_.uncertainty_weight > 0.0f && !unlabeled.empty()) {
      la::Matrix probs = la::RowSoftmax(logits.value());
      const std::vector<float> maxp = la::RowMax(probs);
      std::vector<double> scores;  // 1 - confidence
      scores.reserve(unlabeled.size());
      for (int v : unlabeled) {
        scores.push_back(1.0 - static_cast<double>(maxp[static_cast<size_t>(v)]));
      }
      const std::vector<bool> uncertain = OodSplitByScore(scores);
      std::vector<int> uncertain_nodes;
      for (size_t i = 0; i < unlabeled.size(); ++i) {
        if (uncertain[i]) uncertain_nodes.push_back(unlabeled[i]);
      }
      if (!uncertain_nodes.empty()) {
        add_loss(ops::Scale(ops::MeanRowEntropy(logits, uncertain_nodes),
                            -options_.uncertainty_weight));
      }
    }

    if (!total.defined()) {
      return Status::FailedPrecondition("no OpenWGL loss component active");
    }
    const int64_t watchdog_before = obs::Watchdog::events();
    encoder_->ZeroGrad();
    mu_layer_->ZeroGrad();
    logvar_layer_->ZeroGrad();
    head_->ZeroGrad();
    decoder_->ZeroGrad();
    total.Backward();
    optimizer_->Step();
    std::vector<autograd::Variable> all_params = encoder_->parameters();
    for (const auto& m : {mu_layer_.get(), logvar_layer_.get(), head_.get(),
                          decoder_.get()}) {
      const auto& p = m->parameters();
      all_params.insert(all_params.end(), p.begin(), p.end());
    }
    OPENIMA_RETURN_IF_ERROR(FinishEpochTelemetry(
        "OpenWGL", epoch, total.value()(0, 0), all_params, watchdog_before));
  }
  return Status::OK();
}

StatusOr<std::vector<int>> OpenWglClassifier::Predict(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split) {
  la::Matrix mu = EvalMu(dataset);
  Variable muv = autograd::Variable::Leaf(mu, false);
  la::Matrix logits = head_->Forward(muv).value();
  la::Matrix probs = la::RowSoftmax(logits);
  std::vector<int> seen_pred = la::RowArgmax(probs);
  const std::vector<float> maxp = la::RowMax(probs);

  std::vector<bool> ood_mask(static_cast<size_t>(dataset.num_nodes()), false);
  const std::vector<int> unlabeled = split.UnlabeledNodes();
  if (!unlabeled.empty()) {
    std::vector<double> scores;
    scores.reserve(unlabeled.size());
    for (int v : unlabeled) {
      scores.push_back(1.0 - static_cast<double>(maxp[static_cast<size_t>(v)]));
    }
    const std::vector<bool> ood = OodSplitByScore(scores);
    for (size_t i = 0; i < unlabeled.size(); ++i) {
      ood_mask[static_cast<size_t>(unlabeled[i])] = ood[i];
    }
  }
  return ClusterDetectedOod(mu, seen_pred, ood_mask, split.num_seen,
                            config_.num_novel, &rng_, config_.encoder.exec);
}

la::Matrix OpenWglClassifier::Embeddings(const graph::Dataset& dataset) const {
  return EvalMu(dataset);
}

}  // namespace openima::baselines
