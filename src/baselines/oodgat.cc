#include "src/baselines/oodgat.h"

#include <algorithm>
#include <cmath>

#include "src/la/matrix_ops.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::baselines {

namespace ops = autograd::ops;
using autograd::Variable;

namespace {

/// Per-row prediction entropy of softmax(logits).
std::vector<double> PredictionEntropies(const la::Matrix& logits) {
  la::Matrix probs = la::RowSoftmax(logits);
  std::vector<double> out(static_cast<size_t>(probs.rows()));
  for (int i = 0; i < probs.rows(); ++i) {
    const float* p = probs.Row(i);
    double h = 0.0;
    for (int c = 0; c < probs.cols(); ++c) {
      if (p[c] > 1e-12f) h -= static_cast<double>(p[c]) * std::log(p[c]);
    }
    out[static_cast<size_t>(i)] = h;
  }
  return out;
}

}  // namespace

OodGatClassifier::OodGatClassifier(const BaselineConfig& config,
                                   const OodGatOptions& options, int in_dim,
                                   uint64_t seed)
    : config_(config), options_(options), rng_(seed) {
  nn::GatEncoderConfig enc = config.encoder;
  enc.in_dim = in_dim;
  config_.encoder = enc;
  // C+1 method: the head covers only the seen classes.
  model_ =
      std::make_unique<core::EncoderWithHead>(enc, config.num_seen, &rng_);
  nn::AdamOptions adam;
  adam.lr = config.lr;
  adam.weight_decay = config.weight_decay;
  optimizer_ = std::make_unique<nn::Adam>(model_->parameters(), adam);
}

Status OodGatClassifier::Train(const graph::Dataset& dataset,
                               const graph::OpenWorldSplit& split) {
  const std::vector<int> train_labels = TrainLabels(split);
  const std::vector<int> unlabeled = split.UnlabeledNodes();

  // Arena-backed training: matrices and graph nodes built per step
  // recycle through arena_, so steady-state epochs stop allocating.
  nn::TrainingArena::Binding arena_binding(&arena_);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    OPENIMA_OBS_PHASE("epoch");
    OPENIMA_OBS_COUNT("train.epochs", 1);
    // The previous iteration's graph is freed by now; recycle it.
    arena_.EndEpoch();
    // Split unlabeled nodes into current inliers/outliers by entropy.
    std::vector<int> inliers, outliers;
    if (options_.entropy_sep_weight > 0.0f && !unlabeled.empty()) {
      const std::vector<double> all_entropy =
          PredictionEntropies(model_->EvalLogits(dataset));
      std::vector<double> scores;
      scores.reserve(unlabeled.size());
      for (int v : unlabeled) scores.push_back(all_entropy[static_cast<size_t>(v)]);
      const std::vector<bool> ood = OodSplitByScore(scores);
      for (size_t i = 0; i < unlabeled.size(); ++i) {
        (ood[i] ? outliers : inliers).push_back(unlabeled[i]);
      }
    }

    Variable z = model_->Embed(dataset, /*training=*/true, &rng_);
    Variable logits = model_->Logits(z);

    Variable total;
    auto add_loss = [&total](const Variable& piece) {
      total = total.defined() ? ops::Add(total, piece) : piece;
    };

    if (!split.train_nodes.empty()) {
      add_loss(ops::SoftmaxCrossEntropy(
          ops::GatherRows(logits, split.train_nodes), train_labels));
    }

    // Entropy separation: sharpen inliers, diffuse outliers.
    if (options_.entropy_sep_weight > 0.0f) {
      if (!inliers.empty()) {
        add_loss(ops::Scale(ops::MeanRowEntropy(logits, inliers),
                            options_.entropy_sep_weight));
      }
      if (!outliers.empty()) {
        add_loss(ops::Scale(ops::MeanRowEntropy(logits, outliers),
                            -options_.entropy_sep_weight));
      }
    }

    // Edge consistency: sampled neighboring nodes should agree.
    if (options_.consistency_weight > 0.0f &&
        dataset.graph.num_undirected_edges() > 0) {
      std::vector<ops::Pair> pairs;
      const int n = dataset.num_nodes();
      const int samples = std::min<int>(options_.consistency_edges,
                                        static_cast<int>(dataset.graph.num_directed_edges()));
      pairs.reserve(static_cast<size_t>(samples));
      for (int t = 0; t < samples; ++t) {
        const int u = static_cast<int>(rng_.UniformInt(static_cast<uint64_t>(n)));
        auto [begin, end] = dataset.graph.Neighbors(u);
        const int deg = static_cast<int>(end - begin);
        if (deg == 0) continue;
        const int v = begin[rng_.UniformInt(static_cast<uint64_t>(deg))];
        if (u == v) continue;
        pairs.push_back({u, v, 1.0f});
      }
      if (!pairs.empty()) {
        add_loss(ops::Scale(ops::PairwiseDotBce(logits, pairs),
                            options_.consistency_weight));
      }
    }

    if (!total.defined()) {
      return Status::FailedPrecondition("no OODGAT loss component active");
    }
    const int64_t watchdog_before = obs::Watchdog::events();
    model_->ZeroGrad();
    total.Backward();
    optimizer_->Step();
    OPENIMA_RETURN_IF_ERROR(FinishEpochTelemetry(
        "OODGAT", epoch, total.value()(0, 0), model_->parameters(),
        watchdog_before));
  }
  return Status::OK();
}

StatusOr<std::vector<int>> OodGatClassifier::Predict(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split) {
  const la::Matrix logits = model_->EvalLogits(dataset);
  std::vector<int> seen_pred = la::RowArgmax(logits);
  const std::vector<double> entropy = PredictionEntropies(logits);

  // Only unlabeled nodes can be flagged OOD; labeled nodes are seen by
  // construction.
  std::vector<bool> ood_mask(static_cast<size_t>(dataset.num_nodes()), false);
  const std::vector<int> unlabeled = split.UnlabeledNodes();
  if (!unlabeled.empty()) {
    std::vector<double> scores;
    scores.reserve(unlabeled.size());
    for (int v : unlabeled) scores.push_back(entropy[static_cast<size_t>(v)]);
    const std::vector<bool> ood = OodSplitByScore(scores);
    for (size_t i = 0; i < unlabeled.size(); ++i) {
      ood_mask[static_cast<size_t>(unlabeled[i])] = ood[i];
    }
  }
  return ClusterDetectedOod(model_->EvalEmbeddings(dataset), seen_pred,
                            ood_mask, split.num_seen, config_.num_novel,
                            &rng_, config_.encoder.exec);
}

la::Matrix OodGatClassifier::Embeddings(const graph::Dataset& dataset) const {
  return model_->EvalEmbeddings(dataset);
}

}  // namespace openima::baselines
