#include "src/baselines/cl_ladder.h"

#include "src/util/logging.h"

namespace openima::baselines {

std::string ClVariantName(ClVariant variant) {
  switch (variant) {
    case ClVariant::kInfoNce:
      return "InfoNCE";
    case ClVariant::kInfoNceSupCon:
      return "InfoNCE+SupCon";
    case ClVariant::kInfoNceSupConCe:
      return "InfoNCE+SupCon+CE";
    case ClVariant::kOpenIma:
      return "OpenIMA";
  }
  return "unknown";
}

core::OpenImaConfig ApplyClVariant(core::OpenImaConfig config,
                                   ClVariant variant) {
  switch (variant) {
    case ClVariant::kInfoNce:
      config.use_bpcl_emb = true;
      config.use_bpcl_logit = false;
      config.use_ce = false;
      config.use_pseudo_labels = false;
      config.use_manual_positives = false;
      break;
    case ClVariant::kInfoNceSupCon:
      config.use_bpcl_emb = true;
      config.use_bpcl_logit = false;
      config.use_ce = false;
      config.use_pseudo_labels = false;
      config.use_manual_positives = true;
      break;
    case ClVariant::kInfoNceSupConCe:
      config.use_bpcl_emb = true;
      config.use_bpcl_logit = false;
      config.use_ce = true;
      config.use_pseudo_labels = false;
      config.use_manual_positives = true;
      break;
    case ClVariant::kOpenIma:
      config.use_bpcl_emb = true;
      config.use_bpcl_logit = true;
      config.use_ce = true;
      config.use_pseudo_labels = true;
      config.use_manual_positives = true;
      break;
  }
  return config;
}

ClLadderClassifier::ClLadderClassifier(const core::OpenImaConfig& config,
                                       ClVariant variant, int in_dim,
                                       uint64_t seed)
    : variant_(variant) {
  model_ = std::make_unique<core::OpenImaModel>(
      ApplyClVariant(config, variant), in_dim, seed);
}

Status ClLadderClassifier::Train(const graph::Dataset& dataset,
                                 const graph::OpenWorldSplit& split) {
  return model_->Train(dataset, split);
}

StatusOr<std::vector<int>> ClLadderClassifier::Predict(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split) {
  return model_->Predict(dataset, split);
}

la::Matrix ClLadderClassifier::Embeddings(
    const graph::Dataset& dataset) const {
  return model_->Embeddings(dataset);
}

}  // namespace openima::baselines
