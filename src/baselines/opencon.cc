#include "src/baselines/opencon.h"

#include <algorithm>
#include <cmath>

#include "src/assign/cluster_alignment.h"
#include "src/cluster/kmeans.h"
#include "src/core/positive_sets.h"
#include "src/la/matrix_ops.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::baselines {

namespace ops = autograd::ops;
using autograd::Variable;

OpenConClassifier::OpenConClassifier(const BaselineConfig& config,
                                     const OpenConOptions& options, int in_dim,
                                     uint64_t seed)
    : config_(config), options_(options), rng_(seed) {
  nn::GatEncoderConfig enc = config.encoder;
  enc.in_dim = in_dim;
  config_.encoder = enc;
  model_ = std::make_unique<core::EncoderWithHead>(enc, config.num_classes(),
                                                   &rng_);
  nn::AdamOptions adam;
  adam.lr = config.lr;
  adam.weight_decay = config.weight_decay;
  optimizer_ = std::make_unique<nn::Adam>(model_->parameters(), adam);
  prototypes_ = la::Matrix(config.num_classes(), enc.embedding_dim);
}

std::vector<int> OpenConClassifier::PrototypePseudoLabels(
    const la::Matrix& normalized_emb, const graph::OpenWorldSplit& split) {
  const int n = normalized_emb.rows();
  const int s = config_.num_seen;
  const int k = config_.num_classes();

  if (!prototypes_initialized_) {
    // Seen prototypes: labeled class means. Novel prototypes: K-Means
    // centers over the unlabeled nodes.
    std::vector<int> counts(static_cast<size_t>(s), 0);
    for (int v : split.train_nodes) {
      const int y = split.remapped_labels[static_cast<size_t>(v)];
      ++counts[static_cast<size_t>(y)];
      float* proto = prototypes_.Row(y);
      const float* z = normalized_emb.Row(v);
      for (int j = 0; j < normalized_emb.cols(); ++j) proto[j] += z[j];
    }
    const std::vector<int> unlabeled = split.UnlabeledNodes();
    if (static_cast<int>(unlabeled.size()) >= config_.num_novel) {
      la::Matrix sub = la::GatherRows(normalized_emb, unlabeled);
      cluster::KMeansOptions km;
      km.num_clusters = config_.num_novel;
      km.max_iterations = 30;
      km.exec = config_.encoder.exec;
      auto result = cluster::KMeans(sub, km, &rng_);
      if (result.ok()) {
        for (int c = 0; c < config_.num_novel; ++c) {
          prototypes_.SetRow(s + c, result->centers, c);
        }
      }
    }
    la::RowL2NormalizeInPlace(&prototypes_);
    prototypes_initialized_ = true;
  }

  // Similarities node x prototype.
  la::Matrix sims = la::MatmulNT(normalized_emb, prototypes_);

  // OOD threshold: low quantile of labeled nodes' own-class similarity.
  std::vector<float> labeled_sims;
  labeled_sims.reserve(split.train_nodes.size());
  for (int v : split.train_nodes) {
    const int y = split.remapped_labels[static_cast<size_t>(v)];
    labeled_sims.push_back(sims(v, y));
  }
  float threshold = -1.0f;
  if (!labeled_sims.empty()) {
    std::sort(labeled_sims.begin(), labeled_sims.end());
    const size_t idx = static_cast<size_t>(
        options_.ood_quantile * static_cast<double>(labeled_sims.size() - 1));
    threshold = labeled_sims[idx];
  }

  std::vector<int> pseudo(static_cast<size_t>(n), -1);
  std::vector<bool> is_labeled(static_cast<size_t>(n), false);
  for (int v : split.train_nodes) {
    pseudo[static_cast<size_t>(v)] =
        split.remapped_labels[static_cast<size_t>(v)];
    is_labeled[static_cast<size_t>(v)] = true;
  }
  for (int v = 0; v < n; ++v) {
    if (is_labeled[static_cast<size_t>(v)]) continue;
    const float* srow = sims.Row(v);
    float best_seen = srow[0];
    int best_seen_id = 0;
    for (int c = 1; c < s; ++c) {
      if (srow[c] > best_seen) {
        best_seen = srow[c];
        best_seen_id = c;
      }
    }
    if (best_seen >= threshold) {
      pseudo[static_cast<size_t>(v)] = best_seen_id;
    } else {
      int best_novel_id = s;
      for (int c = s + 1; c < k; ++c) {
        if (srow[c] > srow[best_novel_id]) best_novel_id = c;
      }
      pseudo[static_cast<size_t>(v)] = best_novel_id;
    }
  }

  // EMA prototype refresh from the current pseudo-labeled means.
  la::Matrix means(k, normalized_emb.cols());
  std::vector<int> counts(static_cast<size_t>(k), 0);
  for (int v = 0; v < n; ++v) {
    const int y = pseudo[static_cast<size_t>(v)];
    ++counts[static_cast<size_t>(y)];
    float* m = means.Row(y);
    const float* z = normalized_emb.Row(v);
    for (int j = 0; j < means.cols(); ++j) m[j] += z[j];
  }
  const float gamma = options_.proto_momentum;
  for (int c = 0; c < k; ++c) {
    if (counts[static_cast<size_t>(c)] == 0) continue;
    float* proto = prototypes_.Row(c);
    const float* m = means.Row(c);
    const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
    for (int j = 0; j < means.cols(); ++j) {
      proto[j] = gamma * proto[j] + (1.0f - gamma) * m[j] * inv;
    }
  }
  la::RowL2NormalizeInPlace(&prototypes_);
  return pseudo;
}

Status OpenConClassifier::Train(const graph::Dataset& dataset,
                                const graph::OpenWorldSplit& split) {
  const int n = dataset.num_nodes();
  const std::vector<int> train_labels = TrainLabels(split);

  // Arena-backed training: matrices and graph nodes built per step
  // recycle through arena_, so steady-state epochs stop allocating.
  nn::TrainingArena::Binding arena_binding(&arena_);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    OPENIMA_OBS_PHASE("epoch");
    OPENIMA_OBS_COUNT("train.epochs", 1);
    // The previous iteration's graph is freed by now; recycle it.
    arena_.EndEpoch();
    la::Matrix norm_emb = model_->EvalEmbeddings(dataset);
    la::RowL2NormalizeInPlace(&norm_emb);
    const std::vector<int> pseudo = PrototypePseudoLabels(norm_emb, split);

    Variable z1 = model_->Embed(dataset, /*training=*/true, &rng_);
    Variable z2 = model_->Embed(dataset, /*training=*/true, &rng_);

    Variable total;
    auto add_loss = [&total](const Variable& piece) {
      total = total.defined() ? ops::Add(total, piece) : piece;
    };

    if (options_.ce_weight > 0.0f && !split.train_nodes.empty()) {
      Variable logits = model_->Logits(z1);
      add_loss(ops::Scale(
          ops::SoftmaxCrossEntropy(ops::GatherRows(logits, split.train_nodes),
                                   train_labels),
          options_.ce_weight));
    }

    if (options_.con_weight > 0.0f) {
      const auto blocks = ShuffledBlocks(n, config_.batch_size, &rng_);
      const float scale =
          options_.con_weight / static_cast<float>(blocks.size());
      for (const auto& block : blocks) {
        std::vector<int> batch_labels;
        batch_labels.reserve(block.size());
        for (int v : block) {
          batch_labels.push_back(pseudo[static_cast<size_t>(v)]);
        }
        const auto positives = core::BuildPositiveSets(batch_labels);
        Variable zb = ops::ConcatRows(
            {ops::GatherRows(z1, block), ops::GatherRows(z2, block)});
        zb = ops::RowL2Normalize(zb);
        add_loss(ops::Scale(ops::SupConLoss(zb, positives, options_.con_temp,
                                            config_.encoder.exec),
                            scale));
      }
    }

    if (!total.defined()) {
      return Status::FailedPrecondition("no OpenCon loss component active");
    }
    const int64_t watchdog_before = obs::Watchdog::events();
    model_->ZeroGrad();
    total.Backward();
    optimizer_->Step();
    OPENIMA_RETURN_IF_ERROR(FinishEpochTelemetry(
        "OpenCon", epoch, total.value()(0, 0), model_->parameters(),
        watchdog_before));
  }
  return Status::OK();
}

StatusOr<std::vector<int>> OpenConClassifier::Predict(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split) {
  la::Matrix emb = model_->EvalEmbeddings(dataset);
  if (options_.two_stage_predict) {
    cluster::KMeansOptions km;
    km.num_clusters = config_.num_classes();
    km.max_iterations = 50;
    km.num_init = 3;
    km.exec = config_.encoder.exec;
    auto result = cluster::KMeans(emb, km, &rng_);
    OPENIMA_RETURN_IF_ERROR(result.status());
    std::vector<int> train_clusters;
    train_clusters.reserve(split.train_nodes.size());
    for (int v : split.train_nodes) {
      train_clusters.push_back(result->assignments[static_cast<size_t>(v)]);
    }
    auto alignment = assign::AlignClustersWithLabels(
        train_clusters, TrainLabels(split), km.num_clusters, split.num_seen);
    OPENIMA_RETURN_IF_ERROR(alignment.status());
    return assign::ApplyAlignment(result->assignments, *alignment,
                                  split.num_seen);
  }
  la::RowL2NormalizeInPlace(&emb);
  la::Matrix sims = la::MatmulNT(emb, prototypes_);
  return la::RowArgmax(sims);
}

la::Matrix OpenConClassifier::Embeddings(const graph::Dataset& dataset) const {
  return model_->EvalEmbeddings(dataset);
}

}  // namespace openima::baselines
