#ifndef OPENIMA_BASELINES_SIMGCD_H_
#define OPENIMA_BASELINES_SIMGCD_H_

#include <memory>
#include <string>

#include "src/baselines/common.h"
#include "src/core/classifier.h"
#include "src/core/encoder_with_head.h"
#include "src/nn/adam.h"

namespace openima::baselines {

/// SimGCD-specific options (Wen, Zhao & Qi, ICCV 2023).
struct SimGcdOptions {
  float student_temp = 0.1f;   ///< tau_s
  float teacher_temp = 0.05f;  ///< tau_t (sharper than the student)
  float distill_weight = 1.0f;
  float entropy_weight = 1.0f;   ///< mean-entropy maximization
  float supervised_weight = 1.0f;  ///< CE + SupCon on labeled nodes
  float unsup_con_weight = 1.0f;   ///< InfoNCE on twin views
  float con_temp = 0.7f;
};

/// SimGCD: a parametric generalized-category-discovery classifier trained
/// with (a) self-distillation between two stochastic views — the student's
/// softened predictions match a sharpened teacher from the other view, (b)
/// a mean-entropy maximization regularizer, and (c) supervised CE + SupCon
/// on labeled nodes plus unsupervised InfoNCE. Predicts with the head.
class SimGcdClassifier : public core::OpenWorldClassifier {
 public:
  SimGcdClassifier(const BaselineConfig& config, const SimGcdOptions& options,
                   int in_dim, uint64_t seed);

  Status Train(const graph::Dataset& dataset,
               const graph::OpenWorldSplit& split) override;
  StatusOr<std::vector<int>> Predict(
      const graph::Dataset& dataset,
      const graph::OpenWorldSplit& split) override;
  la::Matrix Embeddings(const graph::Dataset& dataset) const override;
  std::string name() const override { return "SimGCD"; }

 private:
  // Declared first among data members: everything below may retain
  // pooled storage (parameter gradients, Adam moments, prototypes),
  // and the arena pool must be destroyed after all of it.
  nn::TrainingArena arena_;
  BaselineConfig config_;
  SimGcdOptions options_;
  Rng rng_;
  std::unique_ptr<core::EncoderWithHead> model_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace openima::baselines

#endif  // OPENIMA_BASELINES_SIMGCD_H_
