#ifndef OPENIMA_BASELINES_OPENLDN_H_
#define OPENIMA_BASELINES_OPENLDN_H_

#include <memory>
#include <string>

#include "src/baselines/common.h"
#include "src/core/classifier.h"
#include "src/core/encoder_with_head.h"
#include "src/nn/adam.h"

namespace openima::baselines {

/// OpenLDN-specific options (Rizve et al., ECCV 2022).
struct OpenLdnOptions {
  float pairwise_weight = 1.0f;
  float entropy_weight = 0.1f;
  /// Epochs of pairwise-only warm-up before pseudo-label self-training.
  int warmup_epochs = 5;
  /// Confidence threshold for accepting a head prediction as pseudo label.
  float pseudo_confidence = 0.9f;
  float pseudo_ce_weight = 1.0f;
};

/// OpenLDN: learns pairwise similarity predictions (BCE on prediction
/// agreement for embedding-nearest positive pairs and farthest negative
/// pairs), then self-trains with cross-entropy on the classifier's own
/// confident pseudo labels — the supervised pseudo-labeling style whose
/// seen-class bias the OpenIMA paper analyzes. Predicts with the head.
class OpenLdnClassifier : public core::OpenWorldClassifier {
 public:
  OpenLdnClassifier(const BaselineConfig& config,
                    const OpenLdnOptions& options, int in_dim, uint64_t seed);

  Status Train(const graph::Dataset& dataset,
               const graph::OpenWorldSplit& split) override;
  StatusOr<std::vector<int>> Predict(
      const graph::Dataset& dataset,
      const graph::OpenWorldSplit& split) override;
  la::Matrix Embeddings(const graph::Dataset& dataset) const override;
  std::string name() const override { return "OpenLDN"; }

 private:
  // Declared first among data members: everything below may retain
  // pooled storage (parameter gradients, Adam moments, prototypes),
  // and the arena pool must be destroyed after all of it.
  nn::TrainingArena arena_;
  BaselineConfig config_;
  OpenLdnOptions options_;
  Rng rng_;
  std::unique_ptr<core::EncoderWithHead> model_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace openima::baselines

#endif  // OPENIMA_BASELINES_OPENLDN_H_
