#include "src/baselines/simgcd.h"

#include <algorithm>
#include <cmath>

#include "src/core/positive_sets.h"
#include "src/la/matrix_ops.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::baselines {

namespace ops = autograd::ops;
using autograd::Variable;

namespace {

/// Sharpened teacher distribution: softmax(logits / temp), detached.
la::Matrix SharpenedProbs(const la::Matrix& logits, float temp) {
  la::Matrix scaled = logits;
  scaled *= 1.0f / temp;
  return la::RowSoftmax(scaled);
}

}  // namespace

SimGcdClassifier::SimGcdClassifier(const BaselineConfig& config,
                                   const SimGcdOptions& options, int in_dim,
                                   uint64_t seed)
    : config_(config), options_(options), rng_(seed) {
  nn::GatEncoderConfig enc = config.encoder;
  enc.in_dim = in_dim;
  config_.encoder = enc;
  model_ = std::make_unique<core::EncoderWithHead>(enc, config.num_classes(),
                                                   &rng_);
  nn::AdamOptions adam;
  adam.lr = config.lr;
  adam.weight_decay = config.weight_decay;
  optimizer_ = std::make_unique<nn::Adam>(model_->parameters(), adam);
}

Status SimGcdClassifier::Train(const graph::Dataset& dataset,
                               const graph::OpenWorldSplit& split) {
  const int n = dataset.num_nodes();
  const std::vector<int> train_labels = TrainLabels(split);

  // Contrastive label layout for SupCon/InfoNCE positives.
  std::vector<int> cl_labels(static_cast<size_t>(n), -1);
  for (int v : split.train_nodes) {
    cl_labels[static_cast<size_t>(v)] =
        split.remapped_labels[static_cast<size_t>(v)];
  }

  // Arena-backed training: matrices and graph nodes built per step
  // recycle through arena_, so steady-state epochs stop allocating.
  nn::TrainingArena::Binding arena_binding(&arena_);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    OPENIMA_OBS_PHASE("epoch");
    OPENIMA_OBS_COUNT("train.epochs", 1);
    // The previous iteration's graph is freed by now; recycle it.
    arena_.EndEpoch();
    Variable z1 = model_->Embed(dataset, /*training=*/true, &rng_);
    Variable z2 = model_->Embed(dataset, /*training=*/true, &rng_);
    Variable logits1 = model_->Logits(z1);
    Variable logits2 = model_->Logits(z2);

    Variable total;
    auto add_loss = [&total](const Variable& piece) {
      total = total.defined() ? ops::Add(total, piece) : piece;
    };

    // (a) Symmetric self-distillation toward the sharpened other view.
    if (options_.distill_weight > 0.0f) {
      const float inv_s = 1.0f / options_.student_temp;
      la::Matrix t2 = SharpenedProbs(logits2.value(), options_.teacher_temp);
      la::Matrix t1 = SharpenedProbs(logits1.value(), options_.teacher_temp);
      Variable d1 = ops::SoftCrossEntropy(ops::Scale(logits1, inv_s), t2);
      Variable d2 = ops::SoftCrossEntropy(ops::Scale(logits2, inv_s), t1);
      add_loss(ops::Scale(ops::Add(d1, d2), 0.5f * options_.distill_weight));
    }

    // (b) Mean-entropy maximization.
    if (options_.entropy_weight > 0.0f) {
      add_loss(ops::Scale(ops::NegMeanPredictionEntropy(logits1),
                          options_.entropy_weight));
    }

    // (c) Supervised CE on labeled nodes (both views).
    if (options_.supervised_weight > 0.0f && !split.train_nodes.empty()) {
      std::vector<int> both = train_labels;
      both.insert(both.end(), train_labels.begin(), train_labels.end());
      Variable tl = ops::ConcatRows({ops::GatherRows(logits1, split.train_nodes),
                                     ops::GatherRows(logits2, split.train_nodes)});
      add_loss(ops::Scale(ops::SoftmaxCrossEntropy(tl, both),
                          options_.supervised_weight));
    }

    // (c') SupCon on labeled + InfoNCE on all, block-wise.
    if (options_.unsup_con_weight > 0.0f) {
      const auto blocks = ShuffledBlocks(n, config_.batch_size, &rng_);
      const float scale =
          options_.unsup_con_weight / static_cast<float>(blocks.size());
      for (const auto& block : blocks) {
        std::vector<int> batch_labels;
        batch_labels.reserve(block.size());
        for (int v : block) {
          batch_labels.push_back(cl_labels[static_cast<size_t>(v)]);
        }
        const auto positives = core::BuildPositiveSets(batch_labels);
        Variable zb = ops::ConcatRows(
            {ops::GatherRows(z1, block), ops::GatherRows(z2, block)});
        zb = ops::RowL2Normalize(zb);
        add_loss(ops::Scale(ops::SupConLoss(zb, positives, options_.con_temp,
                                            config_.encoder.exec),
                            scale));
      }
    }

    if (!total.defined()) {
      return Status::FailedPrecondition("no SimGCD loss component active");
    }
    const int64_t watchdog_before = obs::Watchdog::events();
    model_->ZeroGrad();
    total.Backward();
    optimizer_->Step();
    OPENIMA_RETURN_IF_ERROR(FinishEpochTelemetry(
        "SimGCD", epoch, total.value()(0, 0), model_->parameters(),
        watchdog_before));
  }
  return Status::OK();
}

StatusOr<std::vector<int>> SimGcdClassifier::Predict(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split) {
  (void)split;
  return la::RowArgmax(model_->EvalLogits(dataset));
}

la::Matrix SimGcdClassifier::Embeddings(const graph::Dataset& dataset) const {
  return model_->EvalEmbeddings(dataset);
}

}  // namespace openima::baselines
