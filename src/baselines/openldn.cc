#include "src/baselines/openldn.h"

#include <algorithm>
#include <cmath>

#include "src/la/matrix_ops.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::baselines {

namespace ops = autograd::ops;
using autograd::Variable;

OpenLdnClassifier::OpenLdnClassifier(const BaselineConfig& config,
                                     const OpenLdnOptions& options, int in_dim,
                                     uint64_t seed)
    : config_(config), options_(options), rng_(seed) {
  nn::GatEncoderConfig enc = config.encoder;
  enc.in_dim = in_dim;
  config_.encoder = enc;
  model_ = std::make_unique<core::EncoderWithHead>(enc, config.num_classes(),
                                                   &rng_);
  nn::AdamOptions adam;
  adam.lr = config.lr;
  adam.weight_decay = config.weight_decay;
  optimizer_ = std::make_unique<nn::Adam>(model_->parameters(), adam);
}

Status OpenLdnClassifier::Train(const graph::Dataset& dataset,
                                const graph::OpenWorldSplit& split) {
  const int n = dataset.num_nodes();
  const std::vector<int> train_labels = TrainLabels(split);
  std::vector<bool> is_labeled(static_cast<size_t>(n), false);
  for (int v : split.train_nodes) is_labeled[static_cast<size_t>(v)] = true;

  // Arena-backed training: matrices and graph nodes built per step
  // recycle through arena_, so steady-state epochs stop allocating.
  nn::TrainingArena::Binding arena_binding(&arena_);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    OPENIMA_OBS_PHASE("epoch");
    OPENIMA_OBS_COUNT("train.epochs", 1);
    // The previous iteration's graph is freed by now; recycle it.
    arena_.EndEpoch();
    la::Matrix pair_emb = model_->EvalEmbeddings(dataset);
    la::RowL2NormalizeInPlace(&pair_emb);

    // Confident head pseudo labels for the self-training phase.
    std::vector<int> pseudo_nodes;
    std::vector<int> pseudo_targets;
    if (epoch >= options_.warmup_epochs && options_.pseudo_ce_weight > 0.0f) {
      la::Matrix probs = la::RowSoftmax(model_->EvalLogits(dataset));
      for (int v = 0; v < n; ++v) {
        if (is_labeled[static_cast<size_t>(v)]) continue;
        const float* row = probs.Row(v);
        int best = 0;
        for (int c = 1; c < probs.cols(); ++c) {
          if (row[c] > row[best]) best = c;
        }
        if (row[best] >= options_.pseudo_confidence) {
          pseudo_nodes.push_back(v);
          pseudo_targets.push_back(best);
        }
      }
    }

    Variable z = model_->Embed(dataset, /*training=*/true, &rng_);
    Variable logits = model_->Logits(z);

    Variable total;
    auto add_loss = [&total](const Variable& piece) {
      total = total.defined() ? ops::Add(total, piece) : piece;
    };

    // Supervised CE on labeled nodes.
    if (!split.train_nodes.empty()) {
      add_loss(ops::SoftmaxCrossEntropy(
          ops::GatherRows(logits, split.train_nodes), train_labels));
    }

    // Pairwise similarity BCE: nearest neighbor -> positive, a random
    // far node (the block's least similar) -> negative.
    if (options_.pairwise_weight > 0.0f) {
      const auto blocks = ShuffledBlocks(n, config_.batch_size, &rng_);
      const float scale =
          options_.pairwise_weight / static_cast<float>(blocks.size());
      for (const auto& block : blocks) {
        std::vector<ops::Pair> pairs = NearestNeighborPairs(pair_emb, block);
        // Negative pairs: pair each node with its least similar block peer.
        for (size_t a = 0; a < block.size(); ++a) {
          const float* za = pair_emb.Row(block[a]);
          int worst = -1;
          float worst_sim = 2.0f;
          for (size_t b = 0; b < block.size(); ++b) {
            if (a == b) continue;
            const float* zb = pair_emb.Row(block[b]);
            float sim = 0.0f;
            for (int j = 0; j < pair_emb.cols(); ++j) sim += za[j] * zb[j];
            if (sim < worst_sim) {
              worst_sim = sim;
              worst = static_cast<int>(b);
            }
          }
          pairs.push_back({block[a], block[static_cast<size_t>(worst)], 0.0f});
        }
        if (!pairs.empty()) {
          add_loss(ops::Scale(ops::PairwiseDotBce(logits, pairs), scale));
        }
      }
    }

    // Self-training CE on confident pseudo labels (the bias-prone step).
    if (!pseudo_nodes.empty()) {
      add_loss(ops::Scale(
          ops::SoftmaxCrossEntropy(ops::GatherRows(logits, pseudo_nodes),
                                   pseudo_targets),
          options_.pseudo_ce_weight));
    }

    // Collapse-prevention regularizer.
    if (options_.entropy_weight > 0.0f) {
      add_loss(ops::Scale(ops::NegMeanPredictionEntropy(logits),
                          options_.entropy_weight));
    }

    if (!total.defined()) {
      return Status::FailedPrecondition("no OpenLDN loss component active");
    }
    const int64_t watchdog_before = obs::Watchdog::events();
    model_->ZeroGrad();
    total.Backward();
    optimizer_->Step();
    OPENIMA_RETURN_IF_ERROR(FinishEpochTelemetry(
        "OpenLDN", epoch, total.value()(0, 0), model_->parameters(),
        watchdog_before));
  }
  return Status::OK();
}

StatusOr<std::vector<int>> OpenLdnClassifier::Predict(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split) {
  (void)split;
  return la::RowArgmax(model_->EvalLogits(dataset));
}

la::Matrix OpenLdnClassifier::Embeddings(const graph::Dataset& dataset) const {
  return model_->EvalEmbeddings(dataset);
}

}  // namespace openima::baselines
