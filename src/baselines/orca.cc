#include "src/baselines/orca.h"

#include <algorithm>
#include <cmath>

#include "src/la/matrix_ops.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::baselines {

namespace ops = autograd::ops;
using autograd::Variable;

OrcaClassifier::OrcaClassifier(const BaselineConfig& config,
                               const OrcaOptions& options, int in_dim,
                               uint64_t seed)
    : config_(config), options_(options), rng_(seed) {
  nn::GatEncoderConfig enc = config.encoder;
  enc.in_dim = in_dim;
  config_.encoder = enc;
  model_ = std::make_unique<core::EncoderWithHead>(enc, config.num_classes(),
                                                   &rng_);
  nn::AdamOptions adam;
  adam.lr = config.lr;
  adam.weight_decay = config.weight_decay;
  optimizer_ = std::make_unique<nn::Adam>(model_->parameters(), adam);
}

Status OrcaClassifier::Train(const graph::Dataset& dataset,
                             const graph::OpenWorldSplit& split) {
  const int n = dataset.num_nodes();
  const std::vector<int> train_labels = TrainLabels(split);
  const std::vector<int> unlabeled = split.UnlabeledNodes();

  // Arena-backed training: matrices and graph nodes built per step
  // recycle through arena_, so steady-state epochs stop allocating.
  nn::TrainingArena::Binding arena_binding(&arena_);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    OPENIMA_OBS_PHASE("epoch");
    OPENIMA_OBS_COUNT("train.epochs", 1);
    // The previous iteration's graph is freed by now; recycle it.
    arena_.EndEpoch();
    // Uncertainty = 1 - mean max-softmax confidence on unlabeled nodes
    // (computed in eval mode, as in the reference implementation).
    float margin = 0.0f;
    if (options_.margin_scale != 0.0f && !unlabeled.empty()) {
      la::Matrix probs = la::RowSoftmax(model_->EvalLogits(dataset));
      double conf = 0.0;
      for (int v : unlabeled) {
        const float* row = probs.Row(v);
        float mx = row[0];
        for (int c = 1; c < probs.cols(); ++c) mx = std::max(mx, row[c]);
        conf += mx;
      }
      conf /= static_cast<double>(unlabeled.size());
      margin = options_.margin_scale * static_cast<float>(1.0 - conf);
    }

    la::Matrix pair_emb = model_->EvalEmbeddings(dataset);
    la::RowL2NormalizeInPlace(&pair_emb);

    Variable z = model_->Embed(dataset, /*training=*/true, &rng_);
    Variable logits = model_->Logits(z);

    Variable total;
    auto add_loss = [&total](const Variable& piece) {
      total = total.defined() ? ops::Add(total, piece) : piece;
    };

    // (1) Margin cross-entropy on labeled nodes.
    if (!split.train_nodes.empty() && options_.ce_weight > 0.0f) {
      Variable tl = ops::GatherRows(logits, split.train_nodes);
      std::vector<float> margins(train_labels.size(), margin);
      add_loss(ops::Scale(
          ops::MarginSoftmaxCrossEntropy(tl, train_labels, margins),
          options_.ce_weight));
    }

    // (2) Pairwise BCE on nearest-neighbor pseudo-positives, block-wise.
    if (options_.pairwise_weight > 0.0f) {
      const auto blocks = ShuffledBlocks(n, config_.batch_size, &rng_);
      const float scale =
          options_.pairwise_weight / static_cast<float>(blocks.size());
      for (const auto& block : blocks) {
        auto pairs = NearestNeighborPairs(pair_emb, block);
        if (pairs.empty()) continue;
        add_loss(ops::Scale(ops::PairwiseDotBce(logits, pairs), scale));
      }
    }

    // (3) Collapse-prevention regularizer.
    if (options_.entropy_weight > 0.0f) {
      add_loss(ops::Scale(ops::NegMeanPredictionEntropy(logits),
                          options_.entropy_weight));
    }

    if (!total.defined()) {
      return Status::FailedPrecondition("no ORCA loss component active");
    }
    const int64_t watchdog_before = obs::Watchdog::events();
    model_->ZeroGrad();
    total.Backward();
    optimizer_->Step();
    OPENIMA_RETURN_IF_ERROR(FinishEpochTelemetry(
        "ORCA", epoch, total.value()(0, 0), model_->parameters(),
        watchdog_before));
  }
  return Status::OK();
}

StatusOr<std::vector<int>> OrcaClassifier::Predict(
    const graph::Dataset& dataset, const graph::OpenWorldSplit& split) {
  (void)split;
  return la::RowArgmax(model_->EvalLogits(dataset));
}

la::Matrix OrcaClassifier::Embeddings(const graph::Dataset& dataset) const {
  return model_->EvalEmbeddings(dataset);
}

}  // namespace openima::baselines
