#ifndef OPENIMA_BASELINES_OODGAT_H_
#define OPENIMA_BASELINES_OODGAT_H_

#include <memory>
#include <string>

#include "src/baselines/common.h"
#include "src/core/classifier.h"
#include "src/core/encoder_with_head.h"
#include "src/nn/adam.h"

namespace openima::baselines {

/// OODGAT-specific options (Song & Wang, KDD 2022).
struct OodGatOptions {
  /// Weight of the entropy-separation term (push unlabeled entropy up for
  /// detected outliers, down for confident inliers).
  float entropy_sep_weight = 0.5f;
  /// Weight of the edge-consistency regularizer (neighboring predictions
  /// should agree).
  float consistency_weight = 0.5f;
  /// Edges sampled per epoch for the consistency term.
  int consistency_edges = 2048;
};

/// OODGAT(dagger): a C+1 open-world node classifier extended to the
/// open-world SSL setting per the paper's protocol. A GAT classifier over
/// the SEEN classes is trained with CE, an entropy-separation loss that
/// bimodalizes unlabeled prediction entropy, and an edge-consistency
/// regularizer. At prediction time, entropy is the OOD score; detected OOD
/// nodes are post-clustered into num_novel K-Means clusters (the dagger).
class OodGatClassifier : public core::OpenWorldClassifier {
 public:
  OodGatClassifier(const BaselineConfig& config, const OodGatOptions& options,
                   int in_dim, uint64_t seed);

  Status Train(const graph::Dataset& dataset,
               const graph::OpenWorldSplit& split) override;
  StatusOr<std::vector<int>> Predict(
      const graph::Dataset& dataset,
      const graph::OpenWorldSplit& split) override;
  la::Matrix Embeddings(const graph::Dataset& dataset) const override;
  std::string name() const override { return "OODGAT"; }

 private:
  // Declared first among data members: everything below may retain
  // pooled storage (parameter gradients, Adam moments, prototypes),
  // and the arena pool must be destroyed after all of it.
  nn::TrainingArena arena_;
  BaselineConfig config_;
  OodGatOptions options_;
  Rng rng_;
  std::unique_ptr<core::EncoderWithHead> model_;  // head over seen classes
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace openima::baselines

#endif  // OPENIMA_BASELINES_OODGAT_H_
