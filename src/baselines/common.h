#ifndef OPENIMA_BASELINES_COMMON_H_
#define OPENIMA_BASELINES_COMMON_H_

#include <cstdint>
#include <vector>

#include "src/autograd/ops.h"
#include "src/graph/splits.h"
#include "src/la/matrix.h"
#include "src/nn/arena.h"
#include "src/nn/gat.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace openima::baselines {

/// Hyper-parameters shared by every baseline trainer. Mirrors the paper's
/// protocol: same GAT encoder family, Adam + weight decay 1e-4, per-method
/// learning rates.
struct BaselineConfig {
  nn::GatEncoderConfig encoder;
  int num_seen = 1;
  int num_novel = 1;
  float lr = 1e-3f;
  float weight_decay = 1e-4f;
  int epochs = 50;
  int batch_size = 2048;

  int num_classes() const { return num_seen + num_novel; }
};

/// For each node in `nodes`, finds its most cosine-similar other node in
/// `nodes` (over rows of `normalized`, which must be L2-normalized) and
/// emits a positive pair — the pseudo-positive pairing used by ORCA.
std::vector<autograd::ops::Pair> NearestNeighborPairs(
    const la::Matrix& normalized, const std::vector<int>& nodes);

/// Remapped labels of the split's training nodes.
std::vector<int> TrainLabels(const graph::OpenWorldSplit& split);

/// Splits [0, n) into shuffled blocks of at most `batch_size` (>= 2 each).
std::vector<std::vector<int>> ShuffledBlocks(int n, int batch_size, Rng* rng);

/// Given per-node OOD scores (higher = more likely novel), splits nodes into
/// in-distribution / OOD by 1-D 2-means on the scores (threshold = midpoint
/// of the two cluster means). Returns the OOD mask. Used by the C+1 methods
/// (OODGAT / OpenWGL) whose detected OOD nodes are post-clustered.
std::vector<bool> OodSplitByScore(const std::vector<double>& scores);

/// The C+1 -> C + C-bar extension of the paper's evaluation (the dagger
/// variants): nodes flagged OOD are K-Means-clustered (over their embedding
/// rows) into `num_novel` clusters with ids num_seen..num_seen+num_novel-1;
/// in-distribution nodes keep their head prediction in [0, num_seen).
StatusOr<std::vector<int>> ClusterDetectedOod(
    const la::Matrix& embeddings, const std::vector<int>& seen_predictions,
    const std::vector<bool>& ood_mask, int num_seen, int num_novel, Rng* rng,
    const exec::Context* exec = nullptr);

/// Per-epoch telemetry + numeric-health epilogue shared by every baseline
/// trainer. Call right after `optimizer->Step()` with the epoch's total
/// loss and the model parameters: surfaces a numeric-watchdog trip (kAbort
/// policy) as an error Status, and — while a telemetry sink is active —
/// appends an EpochRecord with the loss and global/per-parameter gradient
/// L2 norms. `watchdog_events_before` is obs::Watchdog::events() sampled
/// before the backward pass (0 is fine when the watchdog is off). No-op
/// when neither telemetry nor the watchdog is active; compiled to nothing
/// under OPENIMA_OBS=OFF.
Status FinishEpochTelemetry(const char* trainer, int epoch, double loss,
                            const std::vector<autograd::Variable>& parameters,
                            int64_t watchdog_events_before);

}  // namespace openima::baselines

#endif  // OPENIMA_BASELINES_COMMON_H_
