#ifndef OPENIMA_BASELINES_CL_LADDER_H_
#define OPENIMA_BASELINES_CL_LADDER_H_

#include <memory>
#include <string>

#include "src/core/classifier.h"
#include "src/core/openima.h"

namespace openima::baselines {

/// The two-stage contrastive-learning ladder of the paper's Fig. 1b /
/// Table III — InfoNCE, InfoNCE+SupCon, InfoNCE+SupCon+CE — realized as
/// restricted OpenIMA configurations (no pseudo labels, no logit-level CL),
/// plus OpenIMA itself. All predict two-stage: K-Means + Hungarian.
enum class ClVariant {
  kInfoNce,           ///< unsupervised CL only (twin positives)
  kInfoNceSupCon,     ///< + manual-label positives
  kInfoNceSupConCe,   ///< + cross-entropy on labeled nodes
  kOpenIma,           ///< the full method (Eq. 6)
};

/// Human-readable name for a variant.
std::string ClVariantName(ClVariant variant);

/// Applies the variant's loss-component switches to a base config.
core::OpenImaConfig ApplyClVariant(core::OpenImaConfig config,
                                   ClVariant variant);

/// OpenWorldClassifier adapter over OpenImaModel for any ladder variant.
class ClLadderClassifier : public core::OpenWorldClassifier {
 public:
  /// `config` carries dataset-level settings; the variant's switches are
  /// applied on top.
  ClLadderClassifier(const core::OpenImaConfig& config, ClVariant variant,
                     int in_dim, uint64_t seed);

  Status Train(const graph::Dataset& dataset,
               const graph::OpenWorldSplit& split) override;
  StatusOr<std::vector<int>> Predict(
      const graph::Dataset& dataset,
      const graph::OpenWorldSplit& split) override;
  la::Matrix Embeddings(const graph::Dataset& dataset) const override;
  std::string name() const override { return ClVariantName(variant_); }

  const core::OpenImaModel& model() const { return *model_; }

 private:
  ClVariant variant_;
  std::unique_ptr<core::OpenImaModel> model_;
};

}  // namespace openima::baselines

#endif  // OPENIMA_BASELINES_CL_LADDER_H_
