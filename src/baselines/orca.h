#ifndef OPENIMA_BASELINES_ORCA_H_
#define OPENIMA_BASELINES_ORCA_H_

#include <memory>
#include <string>

#include "src/baselines/common.h"
#include "src/core/classifier.h"
#include "src/core/encoder_with_head.h"
#include "src/nn/adam.h"

namespace openima::baselines {

/// ORCA-specific options (Cao, Brbic & Leskovec, ICLR 2022).
struct OrcaOptions {
  /// Scale of the uncertainty-adaptive margin; 0 yields ORCA-ZM.
  float margin_scale = 1.0f;
  float ce_weight = 1.0f;
  float pairwise_weight = 1.0f;
  float entropy_weight = 0.1f;
};

/// ORCA: an end-to-end C + C-bar classifier trained with
///   (1) cross-entropy on labeled nodes with an uncertainty-adaptive margin
///       subtracted from the target logit — the mechanism that slows seen-
///       class learning until the unlabeled data is confidently predicted,
///       equalizing intra-class variances;
///   (2) a pairwise BCE objective on batch nearest-neighbor pseudo-positive
///       pairs; and
///   (3) a mean-prediction entropy regularizer preventing collapse onto the
///       seen classes.
/// Predicts with the classification head. `margin_scale = 0` gives the
/// paper's ORCA-ZM ablation.
class OrcaClassifier : public core::OpenWorldClassifier {
 public:
  OrcaClassifier(const BaselineConfig& config, const OrcaOptions& options,
                 int in_dim, uint64_t seed);

  Status Train(const graph::Dataset& dataset,
               const graph::OpenWorldSplit& split) override;
  StatusOr<std::vector<int>> Predict(
      const graph::Dataset& dataset,
      const graph::OpenWorldSplit& split) override;
  la::Matrix Embeddings(const graph::Dataset& dataset) const override;
  std::string name() const override {
    return options_.margin_scale == 0.0f ? "ORCA-ZM" : "ORCA";
  }

 private:
  // Declared first among data members: everything below may retain
  // pooled storage (parameter gradients, Adam moments, prototypes),
  // and the arena pool must be destroyed after all of it.
  nn::TrainingArena arena_;
  BaselineConfig config_;
  OrcaOptions options_;
  Rng rng_;
  std::unique_ptr<core::EncoderWithHead> model_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace openima::baselines

#endif  // OPENIMA_BASELINES_ORCA_H_
