#ifndef OPENIMA_BASELINES_OPENCON_H_
#define OPENIMA_BASELINES_OPENCON_H_

#include <memory>
#include <string>

#include "src/baselines/common.h"
#include "src/core/classifier.h"
#include "src/core/encoder_with_head.h"
#include "src/nn/adam.h"

namespace openima::baselines {

/// OpenCon-specific options (Sun & Li, TMLR 2023).
struct OpenConOptions {
  float con_temp = 0.7f;
  float proto_momentum = 0.9f;  ///< EMA factor for prototype updates
  float ce_weight = 1.0f;       ///< supervised CE on labeled nodes
  float con_weight = 1.0f;      ///< prototype-pseudo-label contrastive loss
  /// OOD threshold quantile: an unlabeled node whose max seen-prototype
  /// cosine similarity falls below this quantile of the labeled nodes'
  /// similarities is treated as novel.
  double ood_quantile = 0.1;
  /// Two-stage variant (OpenCon with a double dagger in the paper): run
  /// K-Means over the learned embeddings instead of predicting with
  /// prototypes.
  bool two_stage_predict = false;
};

/// OpenCon: open-world contrastive learning with learnable class
/// prototypes. Unlabeled nodes are split into seen/novel by prototype
/// similarity, pseudo-labeled with their nearest (novel or seen) prototype,
/// and learned with a SupCon-style loss over the pseudo labels; prototypes
/// track class means by EMA. Predicts by nearest prototype (or two-stage
/// K-Means for the dagger variant).
class OpenConClassifier : public core::OpenWorldClassifier {
 public:
  OpenConClassifier(const BaselineConfig& config,
                    const OpenConOptions& options, int in_dim, uint64_t seed);

  Status Train(const graph::Dataset& dataset,
               const graph::OpenWorldSplit& split) override;
  StatusOr<std::vector<int>> Predict(
      const graph::Dataset& dataset,
      const graph::OpenWorldSplit& split) override;
  la::Matrix Embeddings(const graph::Dataset& dataset) const override;
  std::string name() const override {
    return options_.two_stage_predict ? "OpenCon-2stage" : "OpenCon";
  }

 private:
  /// Pseudo label of every node from the current prototypes (manual labels
  /// for training nodes). Also refreshes the prototype matrix by EMA.
  std::vector<int> PrototypePseudoLabels(const la::Matrix& normalized_emb,
                                         const graph::OpenWorldSplit& split);

  // Declared first among data members: everything below may retain
  // pooled storage (parameter gradients, Adam moments, prototypes),
  // and the arena pool must be destroyed after all of it.
  nn::TrainingArena arena_;
  BaselineConfig config_;
  OpenConOptions options_;
  Rng rng_;
  std::unique_ptr<core::EncoderWithHead> model_;
  std::unique_ptr<nn::Adam> optimizer_;
  la::Matrix prototypes_;  // num_classes x embedding_dim, L2-normalized rows
  bool prototypes_initialized_ = false;
};

}  // namespace openima::baselines

#endif  // OPENIMA_BASELINES_OPENCON_H_
