#ifndef OPENIMA_BASELINES_OPENWGL_H_
#define OPENIMA_BASELINES_OPENWGL_H_

#include <memory>
#include <string>

#include "src/baselines/common.h"
#include "src/core/classifier.h"
#include "src/nn/adam.h"
#include "src/nn/gat.h"
#include "src/nn/linear.h"

namespace openima::baselines {

/// OpenWGL-specific options (Wu, Pan & Zhu, KAIS 2021).
struct OpenWglOptions {
  float kl_weight = 0.1f;       ///< variational KL regularizer
  float recon_weight = 1.0f;    ///< feature-reconstruction loss
  /// Low-confidence unlabeled nodes get their entropy maximized so that
  /// unseen-class nodes stay uncertain (class-uncertainty loss).
  float uncertainty_weight = 0.5f;
};

/// OpenWGL(dagger): open-world graph learning with a variational GAT
/// encoder. The latent representation z ~ N(mu, sigma) is regularized with
/// KL to the unit Gaussian and must reconstruct the input features; a
/// seen-class head is trained with CE plus a class-uncertainty loss that
/// keeps likely-unseen nodes uncertain. Prediction: confidence thresholding
/// (1 - max softmax) detects OOD nodes, which are post-clustered into
/// num_novel K-Means clusters (the dagger extension).
class OpenWglClassifier : public core::OpenWorldClassifier {
 public:
  OpenWglClassifier(const BaselineConfig& config,
                    const OpenWglOptions& options, int in_dim, uint64_t seed);

  Status Train(const graph::Dataset& dataset,
               const graph::OpenWorldSplit& split) override;
  StatusOr<std::vector<int>> Predict(
      const graph::Dataset& dataset,
      const graph::OpenWorldSplit& split) override;
  la::Matrix Embeddings(const graph::Dataset& dataset) const override;
  std::string name() const override { return "OpenWGL"; }

 private:
  /// Mean latent (mu) embeddings in eval mode.
  la::Matrix EvalMu(const graph::Dataset& dataset) const;

  // Declared first among data members: everything below may retain
  // pooled storage (parameter gradients, Adam moments, prototypes),
  // and the arena pool must be destroyed after all of it.
  nn::TrainingArena arena_;
  BaselineConfig config_;
  OpenWglOptions options_;
  Rng rng_;
  std::unique_ptr<nn::GatEncoder> encoder_;
  std::unique_ptr<nn::Linear> mu_layer_;
  std::unique_ptr<nn::Linear> logvar_layer_;
  std::unique_ptr<nn::Linear> head_;   // seen classes
  std::unique_ptr<nn::Linear> decoder_;  // feature reconstruction
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace openima::baselines

#endif  // OPENIMA_BASELINES_OPENWGL_H_
