#include "src/baselines/common.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/cluster/kmeans.h"
#include "src/la/matrix_ops.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace openima::baselines {

std::vector<autograd::ops::Pair> NearestNeighborPairs(
    const la::Matrix& normalized, const std::vector<int>& nodes) {
  std::vector<autograd::ops::Pair> pairs;
  if (nodes.size() < 2) return pairs;
  pairs.reserve(nodes.size());
  const int d = normalized.cols();
  for (size_t a = 0; a < nodes.size(); ++a) {
    const float* za = normalized.Row(nodes[a]);
    int best = -1;
    float best_sim = -2.0f;
    for (size_t b = 0; b < nodes.size(); ++b) {
      if (a == b) continue;
      const float* zb = normalized.Row(nodes[b]);
      float sim = 0.0f;
      for (int j = 0; j < d; ++j) sim += za[j] * zb[j];
      if (sim > best_sim) {
        best_sim = sim;
        best = static_cast<int>(b);
      }
    }
    pairs.push_back({nodes[a], nodes[static_cast<size_t>(best)], 1.0f});
  }
  return pairs;
}

std::vector<int> TrainLabels(const graph::OpenWorldSplit& split) {
  std::vector<int> labels;
  labels.reserve(split.train_nodes.size());
  for (int v : split.train_nodes) {
    labels.push_back(split.remapped_labels[static_cast<size_t>(v)]);
  }
  return labels;
}

std::vector<std::vector<int>> ShuffledBlocks(int n, int batch_size, Rng* rng) {
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  const int nb = std::max(2, std::min(batch_size, n));
  std::vector<std::vector<int>> blocks;
  for (int begin = 0; begin < n; begin += nb) {
    const int end = std::min(n, begin + nb);
    if (end - begin < 2) break;
    blocks.emplace_back(order.begin() + begin, order.begin() + end);
  }
  return blocks;
}

std::vector<bool> OodSplitByScore(const std::vector<double>& scores) {
  OPENIMA_CHECK(!scores.empty());
  // 1-D 2-means initialized at the min / max scores.
  const auto [mn_it, mx_it] = std::minmax_element(scores.begin(), scores.end());
  double lo = *mn_it, hi = *mx_it;
  if (hi - lo < 1e-12) {
    return std::vector<bool>(scores.size(), false);
  }
  for (int iter = 0; iter < 50; ++iter) {
    double sum_lo = 0.0, sum_hi = 0.0;
    int n_lo = 0, n_hi = 0;
    const double mid = 0.5 * (lo + hi);
    for (double s : scores) {
      if (s < mid) {
        sum_lo += s;
        ++n_lo;
      } else {
        sum_hi += s;
        ++n_hi;
      }
    }
    if (n_lo == 0 || n_hi == 0) break;
    const double new_lo = sum_lo / n_lo;
    const double new_hi = sum_hi / n_hi;
    if (std::fabs(new_lo - lo) + std::fabs(new_hi - hi) < 1e-9) break;
    lo = new_lo;
    hi = new_hi;
  }
  const double threshold = 0.5 * (lo + hi);
  std::vector<bool> ood(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) ood[i] = scores[i] >= threshold;
  return ood;
}

StatusOr<std::vector<int>> ClusterDetectedOod(
    const la::Matrix& embeddings, const std::vector<int>& seen_predictions,
    const std::vector<bool>& ood_mask, int num_seen, int num_novel, Rng* rng,
    const exec::Context* exec_ctx) {
  const int n = embeddings.rows();
  if (static_cast<int>(seen_predictions.size()) != n ||
      static_cast<int>(ood_mask.size()) != n) {
    return Status::InvalidArgument("size mismatch");
  }
  std::vector<int> ood_nodes;
  for (int i = 0; i < n; ++i) {
    if (ood_mask[static_cast<size_t>(i)]) ood_nodes.push_back(i);
  }
  std::vector<int> predictions = seen_predictions;
  if (static_cast<int>(ood_nodes.size()) >= num_novel && num_novel > 0) {
    la::Matrix sub = la::GatherRows(embeddings, ood_nodes, exec_ctx);
    cluster::KMeansOptions km;
    km.num_clusters = num_novel;
    km.max_iterations = 50;
    km.exec = exec_ctx;
    auto result = cluster::KMeans(sub, km, rng);
    OPENIMA_RETURN_IF_ERROR(result.status());
    for (size_t i = 0; i < ood_nodes.size(); ++i) {
      predictions[static_cast<size_t>(ood_nodes[i])] =
          num_seen + result->assignments[i];
    }
  } else {
    // Too few detected OOD nodes to cluster: lump them into one novel id.
    for (int v : ood_nodes) predictions[static_cast<size_t>(v)] = num_seen;
  }
  return predictions;
}

Status FinishEpochTelemetry(const char* trainer, int epoch, double loss,
                            const std::vector<autograd::Variable>& parameters,
                            int64_t watchdog_events_before) {
  OPENIMA_RETURN_IF_ERROR(obs::Watchdog::ConsumeStatus());
  if (!obs::TelemetryEnabled()) return Status::OK();
  obs::EpochRecord record;
  record.trainer = trainer;
  record.epoch = epoch;
  record.loss = loss;
  obs::GradNormAccumulator norms;
  for (const auto& p : parameters) {
    if (!p.HasGrad()) continue;
    norms.Add(p.grad().data(), p.grad().size());
  }
  record.grad_norm = norms.global();
  record.param_grad_norms = norms.per_param();
  record.watchdog_events = obs::Watchdog::events() - watchdog_events_before;
  return obs::AppendTelemetry(record);
}

}  // namespace openima::baselines
