#ifndef OPENIMA_OBS_OBS_H_
#define OPENIMA_OBS_OBS_H_

/// Umbrella header for the observability layer (DESIGN.md §2.4):
///
///  - MetricsRegistry: named counters/gauges/histograms with lock-free
///    striped updates and a deterministic merged snapshot (metrics.h).
///  - Phase / ScopedTimer: RAII spans that nest into a phase tree, feed
///    "time/<path>" histograms, and emit chrome://tracing JSON when
///    OPENIMA_TRACE / --trace is set (trace.h).
///  - RunReport: the unified JSON record of a run (report.h).
///  - TelemetryLog / EpochRecord: per-epoch training time-series written as
///    JSONL when OPENIMA_TELEMETRY / --telemetry is set (telemetry.h).
///  - Watchdog: NaN/Inf + norm-explosion scans over gradients and Adam
///    updates with record/warn/abort policies (watchdog.h).
///  - run_diff: tolerance-ruled diff/validation of run artifacts backing
///    the tools/run_diff regression gate (run_diff.h).
///  - RollingCounter / RollingHistogram: windowed live metrics over the
///    last N logical-clock ticks (rolling.h).
///  - MetricsExporter: periodic Prometheus + JSON exposition snapshots via
///    atomic rename, OPENIMA_METRICS_EXPORT / --metrics-export (exporter.h).
///  - RequestTrace: 1-in-N sampled per-request root spans with metadata,
///    OPENIMA_TRACE_SAMPLE (trace.h).
///  - DriftMonitor: online novel-fraction / entropy / distance drift alerts
///    on the serve path, OPENIMA_DRIFT (drift.h).
///
/// Instrument code with the macros below — they compile to nothing under
/// -DOPENIMA_OBS=OFF, which is the zero-overhead guarantee the BM_TrainEpoch
/// comparison holds the layer to.

#include "src/obs/drift.h"
#include "src/obs/exporter.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_config.h"
#include "src/obs/report.h"
#include "src/obs/rolling.h"
#include "src/obs/run_diff.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"

#if OPENIMA_OBS_ENABLED

#define OPENIMA_OBS_CONCAT_INNER(a, b) a##b
#define OPENIMA_OBS_CONCAT(a, b) OPENIMA_OBS_CONCAT_INNER(a, b)

/// Opens a phase span for the rest of the enclosing scope. `name` must be a
/// string literal (it becomes a path segment: no slashes).
#define OPENIMA_OBS_PHASE(name)                                        \
  ::openima::obs::Phase OPENIMA_OBS_CONCAT(openima_obs_phase_,         \
                                           __COUNTER__)(name)

/// Adds `delta` to the named counter. The registry lookup happens once per
/// call site (function-local static); the update itself is lock-free.
#define OPENIMA_OBS_COUNT(name, delta)                                  \
  do {                                                                  \
    static ::openima::obs::Counter* openima_obs_counter =               \
        ::openima::obs::MetricsRegistry::Global()->counter(name);       \
    openima_obs_counter->Add(delta);                                    \
  } while (0)

/// Sets the named gauge (last write wins).
#define OPENIMA_OBS_GAUGE(name, value)                                  \
  do {                                                                  \
    static ::openima::obs::Gauge* openima_obs_gauge =                   \
        ::openima::obs::MetricsRegistry::Global()->gauge(name);         \
    openima_obs_gauge->Set(static_cast<double>(value));                 \
  } while (0)

/// Records an integer observation into the named histogram.
#define OPENIMA_OBS_RECORD(name, value)                                 \
  do {                                                                  \
    static ::openima::obs::Histogram* openima_obs_histogram =           \
        ::openima::obs::MetricsRegistry::Global()->histogram(name);     \
    openima_obs_histogram->Record(static_cast<int64_t>(value));         \
  } while (0)

/// Adds `delta` to the named rolling-window counter (windowed rate over
/// the last kDefaultWindowTicks logical-clock ticks).
#define OPENIMA_OBS_ROLLING_COUNT(name, delta)                          \
  do {                                                                  \
    static ::openima::obs::RollingCounter* openima_obs_rcounter =       \
        ::openima::obs::RollingRegistry::Global()->counter(name);       \
    openima_obs_rcounter->Add(static_cast<int64_t>(delta));             \
  } while (0)

/// Records an integer observation into the named rolling-window histogram
/// (windowed p50/p99/p999).
#define OPENIMA_OBS_ROLLING_RECORD(name, value)                         \
  do {                                                                  \
    static ::openima::obs::RollingHistogram* openima_obs_rhistogram =   \
        ::openima::obs::RollingRegistry::Global()->histogram(name);     \
    openima_obs_rhistogram->Record(static_cast<int64_t>(value));        \
  } while (0)

/// Advances the rolling logical clock by one tick. The serve path ticks
/// once per request, the trainer once per epoch; under the wall-clock
/// opt-in (OPENIMA_ROLLING_WALL_MS) this is a no-op.
#define OPENIMA_OBS_TICK() ::openima::obs::RollingClock::Tick()

#else  // !OPENIMA_OBS_ENABLED

// The argument expressions are swallowed unevaluated ((void)sizeof keeps
// variables "used" for -Wunused without generating any code).
#define OPENIMA_OBS_PHASE(name) \
  do {                          \
  } while (0)
#define OPENIMA_OBS_COUNT(name, delta)  \
  do {                                  \
    (void)sizeof(delta);                \
  } while (0)
#define OPENIMA_OBS_GAUGE(name, value)  \
  do {                                  \
    (void)sizeof(value);                \
  } while (0)
#define OPENIMA_OBS_RECORD(name, value) \
  do {                                  \
    (void)sizeof(value);                \
  } while (0)
#define OPENIMA_OBS_ROLLING_COUNT(name, delta) \
  do {                                         \
    (void)sizeof(delta);                       \
  } while (0)
#define OPENIMA_OBS_ROLLING_RECORD(name, value) \
  do {                                          \
    (void)sizeof(value);                        \
  } while (0)
#define OPENIMA_OBS_TICK() \
  do {                     \
  } while (0)

#endif  // OPENIMA_OBS_ENABLED

#endif  // OPENIMA_OBS_OBS_H_
