#include "src/obs/report.h"

#include <cstdio>
#include <cstdlib>

#include "src/la/backend/backend.h"
#include "src/obs/obs_config.h"

// Build identity baked in by src/obs/CMakeLists.txt; the fallbacks keep
// non-CMake compiles (IDE indexers) working.
#ifndef OPENIMA_BUILD_GIT_SHA
#define OPENIMA_BUILD_GIT_SHA "unknown"
#endif
#ifndef OPENIMA_BUILD_COMPILER
#define OPENIMA_BUILD_COMPILER "unknown"
#endif
#ifndef OPENIMA_BUILD_FLAGS
#define OPENIMA_BUILD_FLAGS ""
#endif
#ifndef OPENIMA_BUILD_TYPE
#define OPENIMA_BUILD_TYPE "unknown"
#endif
#ifndef OPENIMA_BUILD_SANITIZE
#define OPENIMA_BUILD_SANITIZE ""
#endif

namespace openima::obs {

namespace {

std::string EnvOr(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && value[0] != '\0') ? value : fallback;
}

}  // namespace

RunReport::RunReport(const std::string& run_name) {
  root_ = json::Value::Object();
  root_.Set("run_name", json::Value::Str(run_name));
  // Build/host identity, so every report records what produced it. This
  // section is volatile across machines/builds by design — run_diff ignores
  // "run/**" by default.
  json::Value* run = Section("run");
  run->Set("git_sha", json::Value::Str(OPENIMA_BUILD_GIT_SHA));
  run->Set("compiler", json::Value::Str(OPENIMA_BUILD_COMPILER));
  run->Set("cxx_flags", json::Value::Str(OPENIMA_BUILD_FLAGS));
  run->Set("build_type", json::Value::Str(OPENIMA_BUILD_TYPE));
  run->Set("sanitize", json::Value::Str(OPENIMA_BUILD_SANITIZE));
  run->Set("obs_compiled_in", json::Value::Bool(kCompiledIn));
  run->Set("env_threads", json::Value::Str(EnvOr("OPENIMA_THREADS", "default")));
  // The kernel backend actually selected for this process (after the
  // OPENIMA_BACKEND env var / --backend flag and the CPUID probe) — the
  // provenance key scalar-vs-avx2 run_diff comparisons are keyed on.
  run->Set("kernel_backend",
           json::Value::Str(la::backend::Default().name()));
  run->Set("env_telemetry", json::Value::Str(EnvOr("OPENIMA_TELEMETRY", "")));
  run->Set("env_watchdog", json::Value::Str(EnvOr("OPENIMA_WATCHDOG", "off")));
}

json::Value* RunReport::Section(const std::string& name) {
  if (!root_.Has(name)) {
    root_.Set(name, json::Value::Object());
  }
  // Find() returns const; sections are owned by root_, mutate via the
  // non-const path.
  return const_cast<json::Value*>(root_.Find(name));
}

void RunReport::Set(const std::string& section, const std::string& key,
                    json::Value v) {
  Section(section)->Set(key, std::move(v));
}

void RunReport::AddMetrics(const MetricsSnapshot& snapshot,
                           bool include_buckets) {
  json::Value* metrics = Section("metrics");
  json::Value counters = json::Value::Object();
  for (const auto& [name, total] : snapshot.counters) {
    counters.Set(name, json::Value::Int(total));
  }
  metrics->Set("counters", std::move(counters));
  json::Value gauges = json::Value::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, json::Value::Double(value));
  }
  metrics->Set("gauges", std::move(gauges));
  json::Value histograms = json::Value::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    // Phase histograms are reported by AddPhaseBreakdown in ms; keep the
    // raw-ns duplicates out of the metrics section.
    if (name.rfind("time/", 0) == 0) continue;
    json::Value entry = json::Value::Object();
    entry.Set("count", json::Value::Int(h.count));
    entry.Set("sum", json::Value::Int(h.sum));
    entry.Set("min", json::Value::Int(h.min));
    entry.Set("max", json::Value::Int(h.max));
    entry.Set("mean", json::Value::Double(h.Mean()));
    if (include_buckets) {
      // Sparse dump: key = bucket index (values in [2^(b-1), 2^b)), only
      // non-empty buckets, ascending — deterministic and diffable.
      json::Value buckets = json::Value::Object();
      for (size_t b = 0; b < h.buckets.size(); ++b) {
        if (h.buckets[b] == 0) continue;
        buckets.Set(std::to_string(b), json::Value::Int(h.buckets[b]));
      }
      entry.Set("buckets", std::move(buckets));
    }
    histograms.Set(name, std::move(entry));
  }
  metrics->Set("histograms", std::move(histograms));
}

void RunReport::AddPhaseBreakdown() {
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  json::Value* phases = Section("phases");
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("time/", 0) != 0 || h.count == 0) continue;
    json::Value entry = json::Value::Object();
    entry.Set("calls", json::Value::Int(h.count));
    entry.Set("total_ms", json::Value::Double(static_cast<double>(h.sum) / 1e6));
    entry.Set("mean_ms", json::Value::Double(h.Mean() / 1e6));
    phases->Set(name.substr(5), std::move(entry));
  }
}

Status RunReport::WriteFile(const std::string& path) const {
  const std::string text = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open report file " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace openima::obs
