#include "src/obs/report.h"

#include <cstdio>

namespace openima::obs {

RunReport::RunReport(const std::string& run_name) {
  root_ = json::Value::Object();
  root_.Set("run_name", json::Value::Str(run_name));
}

json::Value* RunReport::Section(const std::string& name) {
  if (!root_.Has(name)) {
    root_.Set(name, json::Value::Object());
  }
  // Find() returns const; sections are owned by root_, mutate via the
  // non-const path.
  return const_cast<json::Value*>(root_.Find(name));
}

void RunReport::Set(const std::string& section, const std::string& key,
                    json::Value v) {
  Section(section)->Set(key, std::move(v));
}

void RunReport::AddMetrics(const MetricsSnapshot& snapshot) {
  json::Value* metrics = Section("metrics");
  json::Value counters = json::Value::Object();
  for (const auto& [name, total] : snapshot.counters) {
    counters.Set(name, json::Value::Int(total));
  }
  metrics->Set("counters", std::move(counters));
  json::Value gauges = json::Value::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, json::Value::Double(value));
  }
  metrics->Set("gauges", std::move(gauges));
  json::Value histograms = json::Value::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    // Phase histograms are reported by AddPhaseBreakdown in ms; keep the
    // raw-ns duplicates out of the metrics section.
    if (name.rfind("time/", 0) == 0) continue;
    json::Value entry = json::Value::Object();
    entry.Set("count", json::Value::Int(h.count));
    entry.Set("sum", json::Value::Int(h.sum));
    entry.Set("min", json::Value::Int(h.min));
    entry.Set("max", json::Value::Int(h.max));
    entry.Set("mean", json::Value::Double(h.Mean()));
    histograms.Set(name, std::move(entry));
  }
  metrics->Set("histograms", std::move(histograms));
}

void RunReport::AddPhaseBreakdown() {
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  json::Value* phases = Section("phases");
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("time/", 0) != 0 || h.count == 0) continue;
    json::Value entry = json::Value::Object();
    entry.Set("calls", json::Value::Int(h.count));
    entry.Set("total_ms", json::Value::Double(static_cast<double>(h.sum) / 1e6));
    entry.Set("mean_ms", json::Value::Double(h.Mean() / 1e6));
    phases->Set(name.substr(5), std::move(entry));
  }
}

Status RunReport::WriteFile(const std::string& path) const {
  const std::string text = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open report file " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace openima::obs
