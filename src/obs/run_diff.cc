#include "src/obs/run_diff.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/telemetry.h"

namespace openima::obs {

namespace {

/// Glob match with '*' (any run of characters) for one path component.
bool GlobMatch(const std::string& pattern, const std::string& text) {
  size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(path);
  while (std::getline(in, part, '/')) parts.push_back(part);
  return parts;
}

std::string FormatLeaf(const json::Value& v) {
  return v.Dump(/*indent=*/0);
}

const char* TypeName(json::Value::Type type) {
  switch (type) {
    case json::Value::Type::kNull:
      return "null";
    case json::Value::Type::kBool:
      return "bool";
    case json::Value::Type::kInt:
      return "int";
    case json::Value::Type::kDouble:
      return "double";
    case json::Value::Type::kString:
      return "string";
    case json::Value::Type::kArray:
      return "array";
    case json::Value::Type::kObject:
      return "object";
  }
  return "?";
}

class Differ {
 public:
  explicit Differ(const DiffOptions& options) : options_(options) {}

  DiffResult Take() { return std::move(result_); }

  void Diff(const json::Value& lhs, const json::Value& rhs,
            const std::string& path) {
    const DiffRule* rule = MatchRule(path);
    if (rule != nullptr && rule->kind == RuleKind::kIgnore) return;

    // Numbers compare as numbers (an int 5 equals a double 5.0 under any
    // tolerance rule; without one, mixed int/double still compares exactly
    // on the double value).
    if (lhs.is_number() && rhs.is_number()) {
      ++result_.values_compared;
      const double a = lhs.AsDouble();
      const double b = rhs.AsDouble();
      if (!NumbersMatch(a, b, rule)) {
        std::ostringstream detail;
        detail << FormatLeaf(lhs) << " vs " << FormatLeaf(rhs);
        if (rule != nullptr) {
          detail << " (|delta| " << std::abs(a - b) << " > "
                 << (rule->kind == RuleKind::kAbs ? "abs " : "rel ")
                 << rule->tolerance << ")";
        }
        Report(path, detail.str());
      }
      return;
    }

    if (lhs.type() != rhs.type()) {
      Report(path, std::string("type ") + TypeName(lhs.type()) + " vs " +
                       TypeName(rhs.type()));
      return;
    }

    switch (lhs.type()) {
      case json::Value::Type::kObject:
        DiffObjects(lhs, rhs, path);
        return;
      case json::Value::Type::kArray:
        DiffArrays(lhs, rhs, path);
        return;
      default:
        ++result_.values_compared;
        if (lhs != rhs) {
          Report(path, FormatLeaf(lhs) + " vs " + FormatLeaf(rhs));
        }
        return;
    }
  }

 private:
  const DiffRule* MatchRule(const std::string& path) const {
    for (const DiffRule& rule : options_.rules) {
      if (PathMatches(rule.pattern, path)) return &rule;
    }
    return nullptr;
  }

  static bool NumbersMatch(double a, double b, const DiffRule* rule) {
    if (a == b) return true;
    if (std::isnan(a) && std::isnan(b)) return true;
    if (rule == nullptr) return false;
    const double delta = std::abs(a - b);
    if (!std::isfinite(delta)) return false;
    if (rule->kind == RuleKind::kAbs) return delta <= rule->tolerance;
    return delta <= rule->tolerance * std::max(std::abs(a), std::abs(b));
  }

  void DiffObjects(const json::Value& lhs, const json::Value& rhs,
                   const std::string& path) {
    for (const auto& [key, value] : lhs.items()) {
      const std::string child = path.empty() ? key : path + "/" + key;
      if (const json::Value* other = rhs.Find(key)) {
        Diff(value, *other, child);
      } else if (!IsIgnored(child)) {
        Report(child, "missing on right");
      }
    }
    for (const auto& [key, value] : rhs.items()) {
      (void)value;
      if (lhs.Has(key)) continue;
      const std::string child = path.empty() ? key : path + "/" + key;
      if (!IsIgnored(child)) Report(child, "missing on left");
    }
  }

  void DiffArrays(const json::Value& lhs, const json::Value& rhs,
                  const std::string& path) {
    if (lhs.size() != rhs.size()) {
      std::ostringstream detail;
      detail << "length " << lhs.size() << " vs " << rhs.size();
      Report(path, detail.str());
    }
    const size_t n = std::min(lhs.size(), rhs.size());
    for (size_t i = 0; i < n; ++i) {
      Diff(lhs.at(i), rhs.at(i), path + "/" + std::to_string(i));
    }
  }

  bool IsIgnored(const std::string& path) const {
    const DiffRule* rule = MatchRule(path);
    return rule != nullptr && rule->kind == RuleKind::kIgnore;
  }

  void Report(const std::string& path, const std::string& detail) {
    ++result_.total_mismatches;
    if (static_cast<int>(result_.mismatches.size()) < options_.max_reported) {
      result_.mismatches.push_back(DiffMismatch{path, detail});
    }
  }

  const DiffOptions& options_;
  DiffResult result_;
};

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool LooksLikeTelemetryRecord(const json::Value& v) {
  return v.is_object() && v.Has("trainer") && v.Has("epoch") && v.Has("loss");
}

}  // namespace

bool PathMatches(const std::string& pattern, const std::string& path) {
  const std::vector<std::string> pat = SplitPath(pattern);
  const std::vector<std::string> parts = SplitPath(path);
  size_t i = 0;
  for (; i < pat.size(); ++i) {
    if (pat[i] == "**") return true;  // trailing ** matches any remainder
    if (i >= parts.size()) return false;
    if (!GlobMatch(pat[i], parts[i])) return false;
  }
  return i == parts.size();
}

DiffResult DiffJson(const json::Value& lhs, const json::Value& rhs,
                    const DiffOptions& options) {
  Differ differ(options);
  differ.Diff(lhs, rhs, "");
  return differ.Take();
}

StatusOr<std::vector<DiffRule>> LoadToleranceFile(const std::string& path) {
  auto text = ReadWholeFile(path);
  if (!text.ok()) return text.status();
  auto parsed = json::Value::Parse(*text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  const json::Value& doc = *parsed;
  const json::Value* rules = doc.Find("rules");
  if (rules == nullptr || !rules->is_array()) {
    return Status::InvalidArgument(path +
                                   ": tolerance file needs a \"rules\" array");
  }
  std::vector<DiffRule> out;
  for (size_t i = 0; i < rules->size(); ++i) {
    const json::Value& entry = rules->at(i);
    std::ostringstream where;
    where << path << ": rules[" << i << "]";
    if (!entry.is_object() || !entry.Has("path") ||
        !entry.at("path").is_string()) {
      return Status::InvalidArgument(where.str() +
                                     " needs a string \"path\"");
    }
    DiffRule rule;
    rule.pattern = entry.at("path").AsString();
    const json::Value* abs = entry.Find("abs");
    const json::Value* rel = entry.Find("rel");
    const json::Value* ignore = entry.Find("ignore");
    const int specified =
        (abs != nullptr) + (rel != nullptr) + (ignore != nullptr);
    if (specified != 1) {
      return Status::InvalidArgument(
          where.str() + " needs exactly one of \"abs\", \"rel\", \"ignore\"");
    }
    if (ignore != nullptr) {
      if (!ignore->is_bool() || !ignore->AsBool()) {
        return Status::InvalidArgument(where.str() + ": \"ignore\" must be true");
      }
      rule.kind = RuleKind::kIgnore;
    } else if (abs != nullptr) {
      if (!abs->is_number() || abs->AsDouble() < 0.0) {
        return Status::InvalidArgument(where.str() +
                                       ": \"abs\" must be a number >= 0");
      }
      rule.kind = RuleKind::kAbs;
      rule.tolerance = abs->AsDouble();
    } else {
      if (!rel->is_number() || rel->AsDouble() < 0.0) {
        return Status::InvalidArgument(where.str() +
                                       ": \"rel\" must be a number >= 0");
      }
      rule.kind = RuleKind::kRel;
      rule.tolerance = rel->AsDouble();
    }
    out.push_back(std::move(rule));
  }
  return out;
}

const char* ArtifactTypeName(ArtifactType type) {
  switch (type) {
    case ArtifactType::kUnknown:
      return "unknown";
    case ArtifactType::kTelemetryJsonl:
      return "telemetry-jsonl";
    case ArtifactType::kRunReport:
      return "run-report";
    case ArtifactType::kBenchTrain:
      return "bench-train";
    case ArtifactType::kBenchServe:
      return "bench-serve";
    case ArtifactType::kGoogleBenchmark:
      return "google-benchmark";
    case ArtifactType::kMetricsSnapshot:
      return "metrics-snapshot";
  }
  return "unknown";
}

StatusOr<json::Value> LoadArtifact(const std::string& path,
                                   ArtifactType* type_out) {
  ArtifactType type = ArtifactType::kUnknown;
  auto text = ReadWholeFile(path);
  if (!text.ok()) return text.status();

  // A whole-file parse succeeds for single-document artifacts (and for a
  // one-record telemetry log, which we still treat as JSONL below).
  auto parsed = json::Value::Parse(*text);
  if (parsed.ok() && !LooksLikeTelemetryRecord(*parsed)) {
    const json::Value& doc = *parsed;
    if (const json::Value* schema = doc.Find("schema");
        schema != nullptr && schema->is_string() &&
        schema->AsString() == "openima-bench-train") {
      type = ArtifactType::kBenchTrain;
    } else if (schema != nullptr && schema->is_string() &&
               schema->AsString() == "openima-bench-serve") {
      type = ArtifactType::kBenchServe;
    } else if (schema != nullptr && schema->is_string() &&
               schema->AsString() == "openima-metrics-snapshot") {
      type = ArtifactType::kMetricsSnapshot;
    } else if (doc.is_object() && doc.Has("benchmarks")) {
      type = ArtifactType::kGoogleBenchmark;
    } else if (doc.is_object() && doc.Has("run_name")) {
      type = ArtifactType::kRunReport;
    }
    if (type != ArtifactType::kUnknown) {
      if (type_out != nullptr) *type_out = type;
      return std::move(*parsed);
    }
  }

  // Otherwise try JSON-Lines: a telemetry log becomes {"records": [...]}.
  auto records = ReadJsonl(path);
  if (records.ok() && !records->empty()) {
    bool all_telemetry = true;
    json::Value arr = json::Value::Array();
    for (json::Value& rec : *records) {
      all_telemetry = all_telemetry && LooksLikeTelemetryRecord(rec);
      arr.Append(std::move(rec));
    }
    if (all_telemetry) {
      json::Value doc = json::Value::Object();
      doc.Set("records", std::move(arr));
      if (type_out != nullptr) *type_out = ArtifactType::kTelemetryJsonl;
      return doc;
    }
  }

  if (!parsed.ok()) return parsed.status();
  return Status::InvalidArgument(path + ": unrecognized artifact type");
}

std::vector<DiffRule> DefaultRulesFor(ArtifactType type) {
  std::vector<DiffRule> rules;
  auto ignore = [&rules](const char* pattern) {
    rules.push_back(DiffRule{pattern, RuleKind::kIgnore, 0.0});
  };
  switch (type) {
    case ArtifactType::kRunReport:
      // Host/build identity and wall-clock phase timings are volatile by
      // nature; everything else in a report is computation-derived.
      ignore("run/**");
      ignore("phases/**");
      break;
    case ArtifactType::kBenchTrain:
      ignore("run/**");
      ignore("runs/*/*_ms");  // epoch_ms_mean, sample_total_ms, ...
      // Per-batch phase means (bench_scale's sample_ms_per_batch /
      // gather_ms_per_batch): wall-clock like *_ms, just a different
      // aggregation, so the suffix does not match the rule above.
      ignore("runs/*/*_ms_per_batch");
      // Machine-dependent scaling measurements from bench_scale: host RAM
      // and clock facts, not computation results.
      ignore("runs/*/peak_rss_mib");
      ignore("runs/*/nodes_per_sec");
      break;
    case ArtifactType::kBenchServe:
      // Latency percentiles, throughput, and per-phase wall-clock are
      // machine facts; the "final" block (counts, novel fraction, the
      // prediction checksum) is computation-derived and compared exactly.
      ignore("run/**");
      ignore("runs/*/latency_p50_ms");
      ignore("runs/*/latency_p99_ms");
      ignore("runs/*/latency_mean_ms");
      ignore("runs/*/throughput_req_per_sec");
      ignore("runs/*/throughput_nodes_per_sec");
      ignore("runs/*/phase_ms/**");
      break;
    case ArtifactType::kGoogleBenchmark:
      ignore("context/**");
      break;
    case ArtifactType::kMetricsSnapshot:
      // Counters/gauges under the logical clock are computation-derived and
      // compare exactly; export cadence (sequence) and everything derived
      // from wall-clock durations — the "time/..." histograms and windowed
      // latency stats — are volatile.
      ignore("sequence");
      ignore("tick");
      ignore("histograms/**");
      ignore("windows/histograms/**");
      break;
    case ArtifactType::kTelemetryJsonl:
    case ArtifactType::kUnknown:
      break;  // telemetry is fully deterministic: exact compare
  }
  return rules;
}

StatusOr<DiffResult> DiffArtifacts(const std::string& lhs_path,
                                   const std::string& rhs_path,
                                   const DiffOptions& options) {
  ArtifactType lhs_type = ArtifactType::kUnknown;
  ArtifactType rhs_type = ArtifactType::kUnknown;
  auto lhs = LoadArtifact(lhs_path, &lhs_type);
  if (!lhs.ok()) return lhs.status();
  auto rhs = LoadArtifact(rhs_path, &rhs_type);
  if (!rhs.ok()) return rhs.status();
  if (lhs_type != rhs_type) {
    return Status::InvalidArgument(
        std::string("artifact types differ: ") + ArtifactTypeName(lhs_type) +
        " (" + lhs_path + ") vs " + ArtifactTypeName(rhs_type) + " (" +
        rhs_path + ")");
  }
  DiffOptions merged = options;
  for (DiffRule& rule : DefaultRulesFor(lhs_type)) {
    merged.rules.push_back(std::move(rule));
  }
  return DiffJson(*lhs, *rhs, merged);
}

Status ValidateArtifact(const std::string& path) {
  ArtifactType type = ArtifactType::kUnknown;
  auto loaded = LoadArtifact(path, &type);
  if (!loaded.ok()) return loaded.status();
  const json::Value& doc = *loaded;
  switch (type) {
    case ArtifactType::kTelemetryJsonl: {
      const json::Value& records = doc.at("records");
      for (size_t i = 0; i < records.size(); ++i) {
        auto rec = EpochRecord::FromJson(records.at(i));
        if (!rec.ok()) {
          std::ostringstream msg;
          msg << path << ": record " << i << ": " << rec.status().message();
          return Status::InvalidArgument(msg.str());
        }
      }
      return Status::OK();
    }
    case ArtifactType::kBenchTrain: {
      const json::Value* runs = doc.Find("runs");
      if (runs == nullptr || !runs->is_array() || runs->size() == 0) {
        return Status::InvalidArgument(
            path + ": bench-train document needs a non-empty \"runs\" array");
      }
      for (size_t i = 0; i < runs->size(); ++i) {
        const json::Value& run = runs->at(i);
        if (!run.is_object() || !run.Has("name") ||
            !run.at("name").is_string() || !run.Has("final") ||
            !run.at("final").is_object()) {
          std::ostringstream msg;
          msg << path << ": runs[" << i
              << "] needs a string \"name\" and object \"final\"";
          return Status::InvalidArgument(msg.str());
        }
      }
      return Status::OK();
    }
    case ArtifactType::kBenchServe: {
      const json::Value* runs = doc.Find("runs");
      if (runs == nullptr || !runs->is_array() || runs->size() == 0) {
        return Status::InvalidArgument(
            path + ": bench-serve document needs a non-empty \"runs\" array");
      }
      for (size_t i = 0; i < runs->size(); ++i) {
        const json::Value& run = runs->at(i);
        const bool shaped =
            run.is_object() && run.Has("name") && run.at("name").is_string() &&
            run.Has("latency_p50_ms") && run.at("latency_p50_ms").is_number() &&
            run.Has("latency_p99_ms") && run.at("latency_p99_ms").is_number() &&
            run.Has("throughput_req_per_sec") &&
            run.at("throughput_req_per_sec").is_number() && run.Has("final") &&
            run.at("final").is_object();
        if (!shaped) {
          std::ostringstream msg;
          msg << path << ": runs[" << i
              << "] needs a string \"name\", numeric \"latency_p50_ms\" / "
                 "\"latency_p99_ms\" / \"throughput_req_per_sec\" and an "
                 "object \"final\"";
          return Status::InvalidArgument(msg.str());
        }
      }
      return Status::OK();
    }
    case ArtifactType::kGoogleBenchmark: {
      const json::Value& benchmarks = doc.at("benchmarks");
      if (!benchmarks.is_array()) {
        return Status::InvalidArgument(path +
                                       ": \"benchmarks\" must be an array");
      }
      for (size_t i = 0; i < benchmarks.size(); ++i) {
        if (!benchmarks.at(i).is_object() || !benchmarks.at(i).Has("name")) {
          std::ostringstream msg;
          msg << path << ": benchmarks[" << i << "] needs a \"name\"";
          return Status::InvalidArgument(msg.str());
        }
      }
      return Status::OK();
    }
    case ArtifactType::kMetricsSnapshot: {
      for (const char* key : {"counters", "gauges", "histograms", "windows"}) {
        const json::Value* section = doc.Find(key);
        if (section == nullptr || !section->is_object()) {
          return Status::InvalidArgument(
              path + ": metrics snapshot needs an object \"" + key + "\"");
        }
      }
      if (!doc.Has("sequence") || !doc.at("sequence").is_int() ||
          !doc.Has("tick") || !doc.at("tick").is_int()) {
        return Status::InvalidArgument(
            path + ": metrics snapshot needs integer \"sequence\"/\"tick\"");
      }
      const json::Value& windows = doc.at("windows");
      if (windows.Find("counters") == nullptr ||
          windows.Find("histograms") == nullptr) {
        return Status::InvalidArgument(
            path +
            ": metrics snapshot \"windows\" needs \"counters\"/\"histograms\"");
      }
      return Status::OK();
    }
    case ArtifactType::kRunReport:
      if (!doc.at("run_name").is_string()) {
        return Status::InvalidArgument(path +
                                       ": \"run_name\" must be a string");
      }
      return Status::OK();
    case ArtifactType::kUnknown:
      break;
  }
  return Status::InvalidArgument(path + ": unrecognized artifact type");
}

}  // namespace openima::obs
