#ifndef OPENIMA_OBS_OBS_CONFIG_H_
#define OPENIMA_OBS_OBS_CONFIG_H_

/// Compile-time gate for the observability layer. The CMake option
/// `OPENIMA_OBS` (ON by default) defines OPENIMA_OBS_ENABLED globally;
/// configuring with -DOPENIMA_OBS=OFF sets it to 0, which compiles every
/// OPENIMA_OBS_* macro call site to nothing and every obs class method to
/// an inline no-op — the instrumented binaries carry zero overhead
/// (proven against BM_TrainEpoch; see DESIGN.md §2.4). RunReport and the
/// JSON module stay available in both modes: report assembly runs once at
/// the end of a run, never on a hot path.
#ifndef OPENIMA_OBS_ENABLED
#define OPENIMA_OBS_ENABLED 1
#endif

namespace openima::obs {

/// True when the observability layer is compiled in (OPENIMA_OBS=ON).
inline constexpr bool kCompiledIn = OPENIMA_OBS_ENABLED != 0;

}  // namespace openima::obs

#endif  // OPENIMA_OBS_OBS_CONFIG_H_
