#ifndef OPENIMA_OBS_REPORT_H_
#define OPENIMA_OBS_REPORT_H_

#include <string>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace openima::obs {

/// Unified machine-readable record of one run: named sections of JSON,
/// typically "run" (identity/config), "train" (TrainStats), "memory" (pool
/// and tape counters), "metrics" (a MetricsSnapshot) and "phases" (the
/// span-duration histograms). This replaces each layer printing its own
/// counters its own way — benches and examples assemble a RunReport and
/// write one JSON file (see EXPERIMENTS.md for the schema).
///
/// Assembly happens once per run, never on a hot path, so RunReport is
/// available in OPENIMA_OBS=OFF builds too (the metrics/phases sections are
/// simply empty there).
class RunReport {
 public:
  /// The constructor auto-populates the "run" section with build/host
  /// metadata: git SHA, compiler + flags, build type, and the effective
  /// OPENIMA_OBS / OPENIMA_THREADS / sanitizer settings. Callers keep
  /// adding their own run-identity keys on top via Set("run", ...).
  explicit RunReport(const std::string& run_name);

  /// Adds (or returns the existing) named section object.
  json::Value* Section(const std::string& name);

  /// Convenience setters into a section.
  void Set(const std::string& section, const std::string& key, json::Value v);

  /// Serializes a MetricsSnapshot under the "metrics" section: counters and
  /// gauges as flat name->value objects, histograms as
  /// {count, sum, min, max, mean}. With include_buckets, each histogram
  /// also carries its non-empty power-of-two buckets as a {"<bucket>":
  /// count} object — enough for run_diff to compare latency distributions,
  /// not just means (`--report-buckets` in quickstart).
  void AddMetrics(const MetricsSnapshot& snapshot,
                  bool include_buckets = false);

  /// Captures every "time/<path>" histogram of the global registry under
  /// the "phases" section as {calls, total_ms, mean_ms} per path.
  void AddPhaseBreakdown();

  /// The whole document (an object: {"run_name": ..., sections...}).
  const json::Value& root() const { return root_; }

  std::string ToJson(int indent = 2) const { return root_.Dump(indent); }

  Status WriteFile(const std::string& path) const;

  /// Reparses a serialized report — the round-trip check behind
  /// `quickstart --obs-smoke`.
  static StatusOr<json::Value> Parse(const std::string& text) {
    return json::Value::Parse(text);
  }

 private:
  json::Value root_;
};

}  // namespace openima::obs

#endif  // OPENIMA_OBS_REPORT_H_
