#ifndef OPENIMA_OBS_METRICS_H_
#define OPENIMA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/obs_config.h"

namespace openima::obs {

/// Number of lock-free shards each counter/histogram stripes its updates
/// over. Threads map to shards by a process-stable thread index
/// (ThreadShardIndex()), so up to kMetricShards concurrent writers never
/// contend on a cache line.
inline constexpr int kMetricShards = 16;

/// Monotonic counter with lock-free per-thread-shard updates. Increments
/// are relaxed atomic adds on the caller's shard; Total() sums the shards
/// in ascending shard order. Because the shard values are exact int64 sums,
/// the merged total depends only on the set of Add calls — never on thread
/// interleaving or the thread count — which is the determinism contract
/// tests/obs_test.cc enforces.
class Counter {
 public:
  void Add(int64_t delta);
  void Increment() { Add(1); }
  int64_t Total() const;

 private:
  friend class MetricsRegistry;
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (epoch loss, pseudo-label count).
/// A single relaxed atomic — unlike counters/histograms, concurrent
/// writers race by design; callers set gauges from the driving thread.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of one histogram. All fields are exact: values are recorded
/// as int64 (durations in nanoseconds, sizes, counts), so count/sum/min/max
/// and the power-of-two bucket counts are integer sums — identical for any
/// thread count or interleaving of the same Record calls.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< 0 when count == 0
  int64_t max = 0;
  /// buckets[b] counts values v with 2^(b-1) <= v < 2^b (b=0: v <= 0).
  std::vector<int64_t> buckets;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Histogram over integer-valued measurements with power-of-two buckets,
/// striped like Counter. Record is lock-free (relaxed adds + CAS min/max on
/// the caller's shard); Snapshot merges shards in ascending shard order.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(int64_t value);
  HistogramSnapshot Snapshot() const;

  /// Bucket a value lands in: 0 for v <= 0, else floor(log2(v)) + 1.
  static int BucketFor(int64_t value);

 private:
  friend class MetricsRegistry;
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
    std::atomic<int64_t> buckets[kNumBuckets] = {};
  };
  Shard shards_[kMetricShards];
};

/// Deterministic merged view of every metric in a registry, keyed by name
/// (sorted — std::map — so iteration order is reproducible).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named metric registry. Lookup/creation is mutex-guarded (hot paths cache
/// the returned pointer — the OPENIMA_OBS_* macros do this with a
/// function-local static); updates through the returned handles are
/// lock-free. Handles stay valid for the registry's lifetime; the global
/// registry is never destroyed.
class MetricsRegistry {
 public:
  /// The process-wide registry every OPENIMA_OBS_* macro records into.
  static MetricsRegistry* Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Deterministic merged snapshot (see Counter/Histogram docs).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place (handles stay valid). Not safe against
  /// concurrent writers — for test isolation and per-run report scoping.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Stable per-thread shard index in [0, kMetricShards): assigned from a
/// process-wide counter on each thread's first metric update.
int ThreadShardIndex();

/// q-quantile (q in [0, 1]) of a histogram snapshot, estimated from the
/// power-of-two buckets: walks to the bucket holding the ceil(q * count)-th
/// recorded value, interpolates linearly inside it, and clamps by the exact
/// recorded min/max (so q = 0 / q = 1 return min / max exactly). The serve
/// benchmark's p50/p99 latencies come from here. Returns 0 for an empty
/// snapshot.
double HistogramQuantile(const HistogramSnapshot& snapshot, double q);

}  // namespace openima::obs

#endif  // OPENIMA_OBS_METRICS_H_
