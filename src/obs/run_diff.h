#ifndef OPENIMA_OBS_RUN_DIFF_H_
#define OPENIMA_OBS_RUN_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/util/status.h"

namespace openima::obs {

/// Comparison/validation engine behind `tools/run_diff` — the regression
/// gate that compares two run artifacts (RunReports, telemetry JSONL logs,
/// BENCH_*.json) under per-metric tolerances. Lives in src/obs so the tests
/// can exercise it directly; available in OPENIMA_OBS=OFF builds like
/// RunReport.

/// How a rule treats the values its path matches.
enum class RuleKind {
  kIgnore,  ///< skip the subtree entirely
  kAbs,     ///< numbers must satisfy |a - b| <= tolerance
  kRel,     ///< numbers must satisfy |a - b| <= tolerance * max(|a|, |b|)
};

/// One tolerance rule. `pattern` addresses JSON nodes by slash-joined path
/// ("records/3/loss", array indices as decimal components): each component
/// may use '*' glob wildcards ("*_ms" matches "epoch_ms"), a bare "*"
/// matches any one component, and a trailing "**" matches any remainder.
/// The first matching rule wins; unmatched values must compare exactly.
struct DiffRule {
  std::string pattern;
  RuleKind kind = RuleKind::kIgnore;
  double tolerance = 0.0;
};

struct DiffOptions {
  std::vector<DiffRule> rules;
  /// Keep at most this many mismatch descriptions (all are still counted).
  int max_reported = 64;
};

/// One place the two documents disagree.
struct DiffMismatch {
  std::string path;
  std::string detail;  ///< human-readable "lhs vs rhs" description
};

struct DiffResult {
  std::vector<DiffMismatch> mismatches;
  int64_t total_mismatches = 0;  ///< including ones beyond max_reported
  int64_t values_compared = 0;   ///< leaves checked (ignored subtrees not)
  bool ok() const { return total_mismatches == 0; }
};

/// True when `pattern` (see DiffRule) matches the slash-joined `path`.
bool PathMatches(const std::string& pattern, const std::string& path);

/// Structural diff of two documents under the options' tolerance rules.
/// Missing/extra keys, type mismatches, array-length differences and
/// out-of-tolerance leaves all count as mismatches.
DiffResult DiffJson(const json::Value& lhs, const json::Value& rhs,
                    const DiffOptions& options);

/// Parses a tolerance file: {"rules": [{"path": "...", "ignore": true} |
/// {"path": "...", "abs": 1e-9} | {"path": "...", "rel": 0.05}, ...]}.
/// See EXPERIMENTS.md. Rules keep file order (first match wins).
StatusOr<std::vector<DiffRule>> LoadToleranceFile(const std::string& path);

/// The artifact kinds run_diff understands, detected from content.
enum class ArtifactType {
  kUnknown,
  kTelemetryJsonl,   ///< JSON-Lines of EpochRecords (telemetry.h)
  kRunReport,        ///< RunReport document ({"run_name": ...})
  kBenchTrain,       ///< {"schema": "openima-bench-train", ...}
  kBenchServe,       ///< {"schema": "openima-bench-serve", ...}
  kGoogleBenchmark,  ///< google-benchmark --benchmark_out JSON
  kMetricsSnapshot,  ///< {"schema": "openima-metrics-snapshot", ...}
};

const char* ArtifactTypeName(ArtifactType type);

/// Loads `path` into one comparable document and reports its detected
/// type. Telemetry JSONL is wrapped as {"records": [...]} so its records
/// are addressable as "records/<i>/<field>".
StatusOr<json::Value> LoadArtifact(const std::string& path,
                                   ArtifactType* type_out);

/// Type-aware default rules applied *after* user rules: volatile sections
/// (host/build metadata, wall-clock timings) are ignored so two runs of the
/// same build compare on computation-derived values only.
std::vector<DiffRule> DefaultRulesFor(ArtifactType type);

/// Loads both artifacts and diffs them (user rules first, then the
/// defaults for the detected type). Error when the types differ or either
/// file fails to load.
StatusOr<DiffResult> DiffArtifacts(const std::string& lhs_path,
                                   const std::string& rhs_path,
                                   const DiffOptions& options);

/// Schema check for one artifact (`run_diff --validate`): the file must
/// parse as a known artifact type and carry that type's required fields —
/// e.g. every telemetry record must satisfy EpochRecord::FromJson, a
/// bench-train document must have its "runs" entries. Unknown types fail.
Status ValidateArtifact(const std::string& path);

}  // namespace openima::obs

#endif  // OPENIMA_OBS_RUN_DIFF_H_
