#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace openima::obs {

int ThreadShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

void Counter::Add(int64_t delta) {
  shards_[ThreadShardIndex()].value.fetch_add(delta,
                                              std::memory_order_relaxed);
}

int64_t Counter::Total() const {
  int64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

int Histogram::BucketFor(int64_t value) {
  if (value <= 0) return 0;
  int b = 0;
  for (uint64_t v = static_cast<uint64_t>(value); v != 0; v >>= 1) ++b;
  return b < kNumBuckets ? b : kNumBuckets - 1;
}

void Histogram::Record(int64_t value) {
  Shard& s = shards_[ThreadShardIndex()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  int64_t observed = s.min.load(std::memory_order_relaxed);
  while (value < observed &&
         !s.min.compare_exchange_weak(observed, value,
                                      std::memory_order_relaxed)) {
  }
  observed = s.max.load(std::memory_order_relaxed);
  while (value > observed &&
         !s.max.compare_exchange_weak(observed, value,
                                      std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.buckets.assign(kNumBuckets, 0);
  int64_t mn = INT64_MAX, mx = INT64_MIN;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kNumBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    const int64_t smn = s.min.load(std::memory_order_relaxed);
    const int64_t smx = s.max.load(std::memory_order_relaxed);
    if (smn < mn) mn = smn;
    if (smx > mx) mx = smx;
  }
  if (out.count > 0) {
    out.min = mn;
    out.max = mx;
  }
  // Trim trailing empty buckets so snapshots compare/serialize compactly.
  while (!out.buckets.empty() && out.buckets.back() == 0) {
    out.buckets.pop_back();
  }
  return out;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) {
    out.counters[name] = c->Total();
  }
  for (const auto& [name, g] : gauges_) {
    out.gauges[name] = g->Get();
  }
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->Snapshot();
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    for (Counter::Shard& s : c->shards_) {
      s.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, g] : gauges_) {
    g->Set(0.0);
  }
  for (auto& [name, h] : histograms_) {
    for (Histogram::Shard& s : h->shards_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      s.min.store(INT64_MAX, std::memory_order_relaxed);
      s.max.store(INT64_MIN, std::memory_order_relaxed);
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        s.buckets[b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

double HistogramQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target value, 1-based: the smallest r with q*count <= r.
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(
                               std::ceil(q * static_cast<double>(snapshot.count))));
  int64_t cum = 0;
  for (size_t b = 0; b < snapshot.buckets.size(); ++b) {
    const int64_t in_bucket = snapshot.buckets[b];
    if (in_bucket == 0) continue;
    if (cum + in_bucket < target) {
      cum += in_bucket;
      continue;
    }
    // Bucket b holds values in [lo, hi): b=0 is v <= 0, else
    // [2^(b-1), 2^b). Interpolate by rank within the bucket.
    const double lo = b == 0 ? 0.0 : std::exp2(static_cast<double>(b - 1));
    const double hi = b == 0 ? 0.0 : std::exp2(static_cast<double>(b));
    const double frac = static_cast<double>(target - cum) /
                        static_cast<double>(in_bucket);
    double value = lo + frac * (hi - lo);
    value = std::max(value, static_cast<double>(snapshot.min));
    value = std::min(value, static_cast<double>(snapshot.max));
    return value;
  }
  return static_cast<double>(snapshot.max);
}

}  // namespace openima::obs
