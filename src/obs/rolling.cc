#include "src/obs/rolling.h"

#include <chrono>
#include <cstdlib>

namespace openima::obs {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Clock state. `wall_ns_per_tick` == 0 means logical mode; in wall mode
// `wall_epoch_ns` anchors tick 0 at the moment EnableWallClock was called.
std::atomic<int64_t> g_logical_tick{0};
std::atomic<int64_t> g_wall_ns_per_tick{0};
std::atomic<int64_t> g_wall_epoch_ns{0};

}  // namespace

int64_t RollingClock::Now() {
  const int64_t ns_per_tick = g_wall_ns_per_tick.load(std::memory_order_acquire);
  if (ns_per_tick > 0) {
    const int64_t elapsed =
        SteadyNowNs() - g_wall_epoch_ns.load(std::memory_order_acquire);
    return elapsed >= 0 ? elapsed / ns_per_tick : 0;
  }
  return g_logical_tick.load(std::memory_order_acquire);
}

int64_t RollingClock::Tick() {
  if (g_wall_ns_per_tick.load(std::memory_order_acquire) > 0) return Now();
  return g_logical_tick.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void RollingClock::EnableWallClock(int64_t ms_per_tick) {
  if (ms_per_tick <= 0) return;
  g_wall_epoch_ns.store(SteadyNowNs(), std::memory_order_release);
  g_wall_ns_per_tick.store(ms_per_tick * 1000000, std::memory_order_release);
}

void RollingClock::DisableWallClock() {
  g_wall_ns_per_tick.store(0, std::memory_order_release);
}

bool RollingClock::wall_clock() {
  return g_wall_ns_per_tick.load(std::memory_order_acquire) > 0;
}

void RollingClock::ResetForTest() {
  g_wall_ns_per_tick.store(0, std::memory_order_release);
  g_logical_tick.store(0, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// RollingCounter

RollingCounter::RollingCounter(int window_ticks)
    : window_(window_ticks < 1 ? 1 : window_ticks),
      slots_(static_cast<size_t>(window_) + 1) {}

void RollingCounter::Add(int64_t delta) {
  const int64_t t = RollingClock::Now();
  Slot& slot = slots_[static_cast<size_t>(t % static_cast<int64_t>(slots_.size()))];
  if (slot.tick.load(std::memory_order_acquire) != t) {
    // First update of this tick in this slot: recycle it under the rotate
    // mutex so concurrent adders can't zero each other's deltas. The mutex
    // is only ever contended at a tick boundary.
    std::lock_guard<std::mutex> lock(rotate_mu_);
    if (slot.tick.load(std::memory_order_relaxed) != t) {
      slot.value.store(0, std::memory_order_relaxed);
      slot.tick.store(t, std::memory_order_release);
    }
  }
  slot.value.fetch_add(delta, std::memory_order_relaxed);
}

RollingCounterSnapshot RollingCounter::WindowSnapshot() const {
  RollingCounterSnapshot out;
  out.tick = RollingClock::Now();
  out.window = window_;
  for (const Slot& slot : slots_) {
    const int64_t t = slot.tick.load(std::memory_order_acquire);
    if (t > out.tick - window_ && t <= out.tick) {
      out.total += slot.value.load(std::memory_order_relaxed);
    }
  }
  out.rate = static_cast<double>(out.total) / static_cast<double>(window_);
  return out;
}

void RollingCounter::Reset() {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  for (Slot& slot : slots_) {
    slot.tick.store(-1, std::memory_order_relaxed);
    slot.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// RollingHistogram

RollingHistogram::RollingHistogram(int window_ticks)
    : window_(window_ticks < 1 ? 1 : window_ticks),
      slots_(static_cast<size_t>(window_) + 1) {}

void RollingHistogram::ResetSlotLocked(Slot* slot, int64_t tick) {
  slot->count.store(0, std::memory_order_relaxed);
  slot->sum.store(0, std::memory_order_relaxed);
  slot->min.store(INT64_MAX, std::memory_order_relaxed);
  slot->max.store(INT64_MIN, std::memory_order_relaxed);
  for (auto& b : slot->buckets) b.store(0, std::memory_order_relaxed);
  slot->tick.store(tick, std::memory_order_release);
}

void RollingHistogram::Record(int64_t value) {
  const int64_t t = RollingClock::Now();
  Slot& slot = slots_[static_cast<size_t>(t % static_cast<int64_t>(slots_.size()))];
  if (slot.tick.load(std::memory_order_acquire) != t) {
    std::lock_guard<std::mutex> lock(rotate_mu_);
    if (slot.tick.load(std::memory_order_relaxed) != t) {
      ResetSlotLocked(&slot, t);
    }
  }
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  slot.buckets[Histogram::BucketFor(value)].fetch_add(
      1, std::memory_order_relaxed);
  int64_t cur = slot.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.min.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = slot.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.max.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

RollingHistogramSnapshot RollingHistogram::WindowSnapshot() const {
  RollingHistogramSnapshot out;
  out.tick = RollingClock::Now();
  out.window = window_;
  HistogramSnapshot& h = out.hist;
  std::vector<int64_t> buckets(Histogram::kNumBuckets, 0);
  int64_t mn = INT64_MAX;
  int64_t mx = INT64_MIN;
  for (const Slot& slot : slots_) {
    const int64_t t = slot.tick.load(std::memory_order_acquire);
    if (t <= out.tick - window_ || t > out.tick) continue;
    h.count += slot.count.load(std::memory_order_relaxed);
    h.sum += slot.sum.load(std::memory_order_relaxed);
    const int64_t slot_min = slot.min.load(std::memory_order_relaxed);
    const int64_t slot_max = slot.max.load(std::memory_order_relaxed);
    if (slot_min < mn) mn = slot_min;
    if (slot_max > mx) mx = slot_max;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      buckets[static_cast<size_t>(b)] +=
          slot.buckets[b].load(std::memory_order_relaxed);
    }
  }
  h.min = (h.count == 0 || mn == INT64_MAX) ? 0 : mn;
  h.max = (h.count == 0 || mx == INT64_MIN) ? 0 : mx;
  // Trim trailing empty buckets like Histogram::Snapshot so the JSON stays
  // compact and byte-stable.
  int last = -1;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    if (buckets[static_cast<size_t>(b)] != 0) last = b;
  }
  h.buckets.assign(buckets.begin(), buckets.begin() + (last + 1));
  return out;
}

void RollingHistogram::Reset() {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  for (Slot& slot : slots_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum.store(0, std::memory_order_relaxed);
    slot.min.store(INT64_MAX, std::memory_order_relaxed);
    slot.max.store(INT64_MIN, std::memory_order_relaxed);
    for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
    slot.tick.store(-1, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// RollingRegistry

RollingRegistry* RollingRegistry::Global() {
  static RollingRegistry* registry = new RollingRegistry();
  return registry;
}

RollingCounter* RollingRegistry::counter(const std::string& name,
                                         int window_ticks) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<RollingCounter>(window_ticks))
             .first;
  }
  return it->second.get();
}

RollingHistogram* RollingRegistry::histogram(const std::string& name,
                                             int window_ticks) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<RollingHistogram>(window_ticks))
             .first;
  }
  return it->second.get();
}

std::map<std::string, RollingCounterSnapshot> RollingRegistry::CounterSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, RollingCounterSnapshot> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->WindowSnapshot();
  }
  return out;
}

std::map<std::string, RollingHistogramSnapshot>
RollingRegistry::HistogramSnapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, RollingHistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) {
    out[name] = hist->WindowSnapshot();
  }
  return out;
}

void RollingRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

#if OPENIMA_OBS_ENABLED

RollingScopedTimer::RollingScopedTimer(const char* name)
    : name_(name), start_ns_(SteadyNowNs()) {}

RollingScopedTimer::~RollingScopedTimer() {
  RollingRegistry::Global()->histogram(name_)->Record(SteadyNowNs() -
                                                      start_ns_);
}

void InitRollingFromEnv() {
  const char* wall = std::getenv("OPENIMA_ROLLING_WALL_MS");
  if (wall != nullptr && wall[0] != '\0') {
    const long long ms = std::atoll(wall);
    if (ms > 0) RollingClock::EnableWallClock(static_cast<int64_t>(ms));
  }
}

#else  // !OPENIMA_OBS_ENABLED

void InitRollingFromEnv() {}

#endif  // OPENIMA_OBS_ENABLED

}  // namespace openima::obs
