#ifndef OPENIMA_OBS_ROLLING_H_
#define OPENIMA_OBS_ROLLING_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/obs_config.h"

namespace openima::obs {

/// Rolling-window metrics (DESIGN.md §2.10): time-bucketed ring shards
/// behind the familiar Counter/Histogram API. Where a plain Counter or
/// Histogram accumulates since process start, the rolling variants bucket
/// every update into the slot of the *current tick* of a logical clock and
/// answer queries over the last N ticks only — windowed request rate,
/// windowed p50/p99/p999 — which is what a live dashboard and the drift
/// monitor need while a long run or a serving process is still going.
///
/// The clock is logical by default (the serve path ticks once per request,
/// the trainer once per epoch), so windowed values are pure functions of
/// the update sequence and tests stay deterministic; wall-clock ticking is
/// an explicit opt-in (OPENIMA_ROLLING_WALL_MS) for production dashboards
/// that want "the last minute" rather than "the last 64 requests".

/// Default window width, in ticks, of registry-created rolling metrics.
inline constexpr int kDefaultWindowTicks = 64;

/// The process-wide logical clock every rolling metric buckets against.
/// Monotone; Tick() advances it by one (no-op in wall-clock mode, where
/// Now() is derived from the steady clock instead).
class RollingClock {
 public:
  /// Current tick. Logical mode: the number of Tick() calls so far.
  /// Wall-clock mode: elapsed nanoseconds since EnableWallClock divided by
  /// the configured tick length.
  static int64_t Now();

  /// Advances the logical clock by one and returns the new tick. In
  /// wall-clock mode this is a no-op returning Now() — call sites (one per
  /// request / epoch) need no mode check.
  static int64_t Tick();

  /// Switches to wall-clock ticks of `ms_per_tick` milliseconds (> 0).
  static void EnableWallClock(int64_t ms_per_tick);
  static void DisableWallClock();
  static bool wall_clock();

  /// Back to logical mode at tick 0.
  static void ResetForTest();
};

/// Windowed view of a RollingCounter.
struct RollingCounterSnapshot {
  int64_t tick = 0;      ///< clock tick the snapshot was taken at
  int window = 0;        ///< window width in ticks
  int64_t total = 0;     ///< sum over the last `window` ticks
  double rate = 0.0;     ///< total / window (per-tick rate)
};

/// Windowed view of a RollingHistogram: the merged HistogramSnapshot of the
/// in-window slots, so HistogramQuantile() applies unchanged.
struct RollingHistogramSnapshot {
  int64_t tick = 0;
  int window = 0;
  HistogramSnapshot hist;
};

/// Counter over the last N ticks: a ring of window+1 slots, each stamped
/// with the tick it holds. Add() lands in the current tick's slot (slots
/// are recycled lazily — rotation takes a mutex, but only on the first
/// update of a tick); WindowSnapshot() sums the slots whose stamp lies in
/// (now - window, now]. Within one tick the slot value is an exact int64
/// sum, so windowed totals depend only on which updates happened in which
/// tick — never on thread interleaving (same contract as Counter).
class RollingCounter {
 public:
  explicit RollingCounter(int window_ticks = kDefaultWindowTicks);

  void Add(int64_t delta);
  void Increment() { Add(1); }

  RollingCounterSnapshot WindowSnapshot() const;
  int64_t WindowTotal() const { return WindowSnapshot().total; }
  int window_ticks() const { return window_; }

  /// Empties every slot (test isolation / registry reset).
  void Reset();

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> tick{-1};
    std::atomic<int64_t> value{0};
  };
  int window_;
  std::vector<Slot> slots_;
  mutable std::mutex rotate_mu_;
};

/// Histogram over the last N ticks, same ring scheme as RollingCounter.
/// Each slot carries count/sum/min/max plus the power-of-two buckets of
/// Histogram, so the merged window snapshot feeds HistogramQuantile for
/// windowed p50/p99/p999.
class RollingHistogram {
 public:
  explicit RollingHistogram(int window_ticks = kDefaultWindowTicks);

  void Record(int64_t value);
  RollingHistogramSnapshot WindowSnapshot() const;
  int window_ticks() const { return window_; }

  void Reset();

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> tick{-1};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
    std::atomic<int64_t> buckets[Histogram::kNumBuckets] = {};
  };
  void ResetSlotLocked(Slot* slot, int64_t tick);
  int window_;
  std::vector<Slot> slots_;
  mutable std::mutex rotate_mu_;
};

/// Named registry of rolling metrics, mirroring MetricsRegistry: lookup is
/// mutex-guarded and cached at call sites (the OPENIMA_OBS_ROLLING_* macros
/// use a function-local static), updates are near-lock-free, handles live
/// as long as the registry. Kept separate from MetricsRegistry so the
/// cumulative layer stays untouched; the exporter snapshots both.
class RollingRegistry {
 public:
  static RollingRegistry* Global();

  /// `window_ticks` applies on first creation only.
  RollingCounter* counter(const std::string& name,
                          int window_ticks = kDefaultWindowTicks);
  RollingHistogram* histogram(const std::string& name,
                              int window_ticks = kDefaultWindowTicks);

  /// Deterministic (name-sorted) windowed snapshots.
  std::map<std::string, RollingCounterSnapshot> CounterSnapshots() const;
  std::map<std::string, RollingHistogramSnapshot> HistogramSnapshots() const;

  /// Empties every metric in place (handles stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<RollingCounter>> counters_;
  std::map<std::string, std::unique_ptr<RollingHistogram>> histograms_;
};

#if OPENIMA_OBS_ENABLED

/// RAII timer recording its lifetime (nanoseconds) into the named global
/// rolling histogram — the windowed counterpart of ScopedTimer. The serve
/// path wraps each request in one so live p50/p99 cover recent traffic.
class RollingScopedTimer {
 public:
  explicit RollingScopedTimer(const char* name);
  ~RollingScopedTimer();

  RollingScopedTimer(const RollingScopedTimer&) = delete;
  RollingScopedTimer& operator=(const RollingScopedTimer&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;
};

#else  // !OPENIMA_OBS_ENABLED

class RollingScopedTimer {
 public:
  explicit RollingScopedTimer(const char*) {}
  RollingScopedTimer(const RollingScopedTimer&) = delete;
  RollingScopedTimer& operator=(const RollingScopedTimer&) = delete;
};

#endif  // OPENIMA_OBS_ENABLED

/// Reads OPENIMA_ROLLING_WALL_MS; when set to a positive integer, switches
/// the rolling clock to wall-clock ticks of that many milliseconds (the
/// production-dashboard mode). Unset/empty keeps the deterministic logical
/// clock. Safe to call repeatedly. No-op under OPENIMA_OBS=OFF.
void InitRollingFromEnv();

}  // namespace openima::obs

#endif  // OPENIMA_OBS_ROLLING_H_
