#ifndef OPENIMA_OBS_TELEMETRY_H_
#define OPENIMA_OBS_TELEMETRY_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/obs_config.h"
#include "src/util/status.h"

namespace openima::obs {

/// One epoch of training telemetry (DESIGN.md §2.5). Every trainer appends
/// one record per epoch to the process telemetry sink when one is active
/// (`OPENIMA_TELEMETRY=path` / `--telemetry`); the sink serializes records
/// as JSON Lines — one compact object per line, append-only.
///
/// Determinism contract: a record may only contain values derived from the
/// training computation itself (losses, label counts, quality metrics, grad
/// norms) — never wall-clock times, thread counts, or allocator state.
/// Training is bit-identical across thread counts and pooled-vs-heap
/// storage, so the emitted JSONL is too (tests/telemetry_test.cc).
///
/// Fields that a trainer did not compute stay at their -1 sentinels and are
/// omitted from the JSON (see EXPERIMENTS.md for the schema): the OpenIMA
/// trainer fills everything; baselines fill the loss + gradient-norm core.
struct EpochRecord {
  std::string trainer;  ///< e.g. "OpenIMA", "ORCA", "SimGCD"
  int epoch = -1;       ///< 0-based epoch index

  // -------- losses (loss is required; components are OpenIMA's Eq. 6) ----
  double loss = 0.0;             ///< total training loss this epoch
  bool has_components = false;   ///< emit the four component losses
  double loss_ce = 0.0;          ///< eta-scaled cross-entropy term
  double loss_bpcl_emb = 0.0;    ///< embedding-level BPCL term
  double loss_bpcl_logit = 0.0;  ///< logit-level BPCL term
  double loss_pairwise = 0.0;    ///< large-graph pairwise BCE term

  // -------- gradient health ---------------------------------------------
  double grad_norm = -1.0;              ///< global L2 over all parameters
  std::vector<double> param_grad_norms; ///< per-parameter L2, model order
  int64_t watchdog_events = 0;          ///< anomalies observed this epoch

  // -------- pseudo-label quality (refresh-carried; -1 = not available) ---
  int pseudo_labels = -1;          ///< confident pseudo labels in use
  double pseudo_precision = -1.0;  ///< fraction matching ground truth
  double alignment_churn = -1.0;   ///< changed cluster->class fraction
  bool refreshed = false;          ///< true on pseudo-label refresh epochs

  /// Pipelined-refresh provenance (data-parallel trainer only): the epoch
  /// whose weight snapshot produced the pseudo labels active this epoch.
  /// The background refresh computes on a snapshot one refresh period old,
  /// so this lags `epoch`; the serial trainers refresh synchronously and
  /// leave the -1 sentinel (field omitted from the JSON). Still
  /// deterministic — the swap schedule is a pure function of the config,
  /// never of thread timing.
  int refresh_snapshot_epoch = -1;

  // -------- validation quality (-1 = not available) ----------------------
  bool has_quality = false;
  double val_acc = -1.0;   ///< Hungarian-aligned seen-class val accuracy
  double val_nmi = -1.0;   ///< NMI(predictions, labels) on val+test nodes
  double acc_all = -1.0;   ///< open-world accuracy on test nodes
  double acc_seen = -1.0;
  double acc_novel = -1.0;

  /// Serializes to the documented JSONL object (stable key order; -1
  /// sentinel fields of optional groups are omitted).
  json::Value ToJson() const;

  /// Inverse of ToJson (unknown keys ignored; missing optional groups keep
  /// their sentinels). Used by run_diff and the tests.
  static StatusOr<EpochRecord> FromJson(const json::Value& v);
};

/// Append-only JSON-Lines sink for EpochRecords. Like RunReport, the class
/// itself is available in OPENIMA_OBS=OFF builds (run_diff and the tests
/// use it); only the *global* sink hookup below is compiled out.
/// Thread-safe: Append serializes under a mutex (one line per record, never
/// interleaved) and flushes so a crash keeps every completed epoch.
class TelemetryLog {
 public:
  TelemetryLog() = default;
  ~TelemetryLog();

  TelemetryLog(const TelemetryLog&) = delete;
  TelemetryLog& operator=(const TelemetryLog&) = delete;

  /// Opens (truncates) `path` for writing. Error when already open.
  Status Open(const std::string& path);
  bool is_open() const;

  Status Append(const EpochRecord& record);
  int64_t records_written() const;

  Status Close();
  const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  int64_t records_ = 0;
};

/// Parses a telemetry JSONL file into one json::Value per line. Blank lines
/// are skipped; any malformed line is an error naming its line number.
StatusOr<std::vector<json::Value>> ReadJsonl(const std::string& path);

// ------------------------------------------------------------------------
// Global telemetry sink. Compiled to no-ops under OPENIMA_OBS=OFF like the
// rest of the instrumentation layer: StartTelemetry fails, TelemetryEnabled
// is a compile-time false (so `if (TelemetryEnabled())` blocks in trainers
// are dead-code eliminated), and AppendTelemetry does nothing.
// ------------------------------------------------------------------------

#if OPENIMA_OBS_ENABLED

/// Opens the process-wide telemetry sink. FailedPrecondition when already
/// active.
Status StartTelemetry(const std::string& path);

/// True while the global sink is open.
bool TelemetryEnabled();

/// Closes the sink (no-op OK when never started).
Status StopTelemetry();

/// Appends to the global sink; no-op OK when telemetry is inactive. The
/// current run label (if any) is stamped into the record's "run" field.
Status AppendTelemetry(const EpochRecord& record);

/// Labels subsequent records with a run identity (e.g.
/// "CoauthorCS/OpenIMA/seed0") so multi-run processes — the eval harness,
/// the table benches — produce distinguishable series. Empty clears.
void SetTelemetryRunLabel(const std::string& label);
std::string TelemetryRunLabel();

/// Reads OPENIMA_TELEMETRY; when set and non-empty, starts telemetry to
/// that path (the sink flushes per record, so no atexit hook is needed).
/// Safe to call repeatedly.
void InitTelemetryFromEnv();

#else  // !OPENIMA_OBS_ENABLED

inline Status StartTelemetry(const std::string&) {
  return Status::FailedPrecondition(
      "observability compiled out (OPENIMA_OBS=OFF)");
}
inline constexpr bool TelemetryEnabled() { return false; }
inline Status StopTelemetry() { return Status::OK(); }
inline Status AppendTelemetry(const EpochRecord&) { return Status::OK(); }
inline void SetTelemetryRunLabel(const std::string&) {}
inline std::string TelemetryRunLabel() { return std::string(); }
inline void InitTelemetryFromEnv() {}

#endif  // OPENIMA_OBS_ENABLED

/// Sequential sum-of-squares accumulator for gradient norms. Accumulates in
/// double in call order, so results are bit-identical for a fixed sequence
/// of Add calls (trainers iterate parameters in registration order).
class GradNormAccumulator {
 public:
  /// Accumulates one tensor; records its own L2 norm in per_param().
  void Add(const float* data, int64_t n);

  double global() const;  ///< L2 norm over everything added
  const std::vector<double>& per_param() const { return per_param_; }

 private:
  double sum_squares_ = 0.0;
  std::vector<double> per_param_;
};

}  // namespace openima::obs

#endif  // OPENIMA_OBS_TELEMETRY_H_
