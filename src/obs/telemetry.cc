#include "src/obs/telemetry.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace openima::obs {

namespace {

json::Value DoubleArray(const std::vector<double>& values) {
  json::Value arr = json::Value::Array();
  for (double v : values) arr.Append(json::Value::Double(v));
  return arr;
}

}  // namespace

json::Value EpochRecord::ToJson() const {
  using json::Value;
  Value out = Value::Object();
  out.Set("trainer", Value::Str(trainer));
#if OPENIMA_OBS_ENABLED
  if (const std::string label = TelemetryRunLabel(); !label.empty()) {
    out.Set("run", Value::Str(label));
  }
#endif
  out.Set("epoch", Value::Int(epoch));
  out.Set("loss", Value::Double(loss));
  if (has_components) {
    out.Set("loss_ce", Value::Double(loss_ce));
    out.Set("loss_bpcl_emb", Value::Double(loss_bpcl_emb));
    out.Set("loss_bpcl_logit", Value::Double(loss_bpcl_logit));
    out.Set("loss_pairwise", Value::Double(loss_pairwise));
  }
  out.Set("grad_norm", Value::Double(grad_norm));
  out.Set("param_grad_norms", DoubleArray(param_grad_norms));
  out.Set("watchdog_events", Value::Int(watchdog_events));
  if (pseudo_labels >= 0 || refreshed) {
    out.Set("pseudo_labels", Value::Int(pseudo_labels));
    out.Set("pseudo_precision", Value::Double(pseudo_precision));
    out.Set("alignment_churn", Value::Double(alignment_churn));
    out.Set("refreshed", Value::Bool(refreshed));
  }
  if (refresh_snapshot_epoch >= 0) {
    out.Set("refresh_snapshot_epoch", Value::Int(refresh_snapshot_epoch));
  }
  if (has_quality) {
    out.Set("val_acc", Value::Double(val_acc));
    out.Set("val_nmi", Value::Double(val_nmi));
    out.Set("acc_all", Value::Double(acc_all));
    out.Set("acc_seen", Value::Double(acc_seen));
    out.Set("acc_novel", Value::Double(acc_novel));
  }
  return out;
}

StatusOr<EpochRecord> EpochRecord::FromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("telemetry record is not an object");
  }
  for (const char* key : {"trainer", "epoch", "loss"}) {
    if (!v.Has(key)) {
      return Status::InvalidArgument(
          std::string("telemetry record missing required key '") + key + "'");
    }
  }
  EpochRecord rec;
  if (!v.at("trainer").is_string() || !v.at("epoch").is_int() ||
      !v.at("loss").is_number()) {
    return Status::InvalidArgument("telemetry record has mistyped core field");
  }
  rec.trainer = v.at("trainer").AsString();
  rec.epoch = static_cast<int>(v.at("epoch").AsInt());
  rec.loss = v.at("loss").AsDouble();
  if (const json::Value* g = v.Find("grad_norm")) rec.grad_norm = g->AsDouble();
  if (const json::Value* p = v.Find("param_grad_norms")) {
    if (!p->is_array()) {
      return Status::InvalidArgument("param_grad_norms is not an array");
    }
    for (size_t i = 0; i < p->size(); ++i) {
      rec.param_grad_norms.push_back(p->at(i).AsDouble());
    }
  }
  if (const json::Value* w = v.Find("watchdog_events")) {
    rec.watchdog_events = w->AsInt();
  }
  if (v.Has("loss_ce")) {
    rec.has_components = true;
    rec.loss_ce = v.at("loss_ce").AsDouble();
    if (const json::Value* x = v.Find("loss_bpcl_emb")) {
      rec.loss_bpcl_emb = x->AsDouble();
    }
    if (const json::Value* x = v.Find("loss_bpcl_logit")) {
      rec.loss_bpcl_logit = x->AsDouble();
    }
    if (const json::Value* x = v.Find("loss_pairwise")) {
      rec.loss_pairwise = x->AsDouble();
    }
  }
  if (v.Has("pseudo_labels")) {
    rec.pseudo_labels = static_cast<int>(v.at("pseudo_labels").AsInt());
    if (const json::Value* x = v.Find("pseudo_precision")) {
      rec.pseudo_precision = x->AsDouble();
    }
    if (const json::Value* x = v.Find("alignment_churn")) {
      rec.alignment_churn = x->AsDouble();
    }
    if (const json::Value* x = v.Find("refreshed")) rec.refreshed = x->AsBool();
  }
  if (const json::Value* x = v.Find("refresh_snapshot_epoch")) {
    rec.refresh_snapshot_epoch = static_cast<int>(x->AsInt());
  }
  if (v.Has("val_nmi")) {
    rec.has_quality = true;
    rec.val_nmi = v.at("val_nmi").AsDouble();
    if (const json::Value* x = v.Find("val_acc")) rec.val_acc = x->AsDouble();
    if (const json::Value* x = v.Find("acc_all")) rec.acc_all = x->AsDouble();
    if (const json::Value* x = v.Find("acc_seen")) rec.acc_seen = x->AsDouble();
    if (const json::Value* x = v.Find("acc_novel")) {
      rec.acc_novel = x->AsDouble();
    }
  }
  return rec;
}

TelemetryLog::~TelemetryLog() { Close(); }

Status TelemetryLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("telemetry log already open: " + path_);
  }
  if (path.empty()) {
    return Status::InvalidArgument("telemetry path must not be empty");
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open telemetry file " + path);
  }
  file_ = f;
  path_ = path;
  records_ = 0;
  return Status::OK();
}

bool TelemetryLog::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

Status TelemetryLog::Append(const EpochRecord& record) {
  const std::string line = record.ToJson().Dump(/*indent=*/0);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("telemetry log is not open");
  }
  const size_t written = std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  if (written != line.size()) {
    return Status::IOError("short write to " + path_);
  }
  ++records_;
  return Status::OK();
}

int64_t TelemetryLog::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

Status TelemetryLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

StatusOr<std::vector<json::Value>> ReadJsonl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::IOError("cannot open " + path);
  }
  std::vector<json::Value> records;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto value = json::Value::Parse(line);
    if (!value.ok()) {
      std::ostringstream msg;
      msg << path << ":" << line_no << ": " << value.status().message();
      return Status::InvalidArgument(msg.str());
    }
    records.push_back(std::move(*value));
  }
  return records;
}

#if OPENIMA_OBS_ENABLED

namespace {

/// Global sink state. The log handle is never freed (like the global
/// MetricsRegistry); `enabled` is the fast-path check trainers read per
/// epoch.
struct GlobalTelemetry {
  std::atomic<bool> enabled{false};
  std::mutex mu;
  TelemetryLog log;
  std::string run_label;  // guarded by mu
};

GlobalTelemetry* Sink() {
  static GlobalTelemetry* sink = new GlobalTelemetry();  // never freed
  return sink;
}

}  // namespace

Status StartTelemetry(const std::string& path) {
  GlobalTelemetry* sink = Sink();
  std::lock_guard<std::mutex> lock(sink->mu);
  if (sink->enabled.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("telemetry already active");
  }
  OPENIMA_RETURN_IF_ERROR(sink->log.Open(path));
  sink->enabled.store(true, std::memory_order_release);
  return Status::OK();
}

bool TelemetryEnabled() {
  return Sink()->enabled.load(std::memory_order_acquire);
}

Status StopTelemetry() {
  GlobalTelemetry* sink = Sink();
  std::lock_guard<std::mutex> lock(sink->mu);
  sink->enabled.store(false, std::memory_order_release);
  return sink->log.Close();
}

Status AppendTelemetry(const EpochRecord& record) {
  GlobalTelemetry* sink = Sink();
  if (!sink->enabled.load(std::memory_order_acquire)) return Status::OK();
  return sink->log.Append(record);
}

void SetTelemetryRunLabel(const std::string& label) {
  GlobalTelemetry* sink = Sink();
  std::lock_guard<std::mutex> lock(sink->mu);
  sink->run_label = label;
}

std::string TelemetryRunLabel() {
  GlobalTelemetry* sink = Sink();
  std::lock_guard<std::mutex> lock(sink->mu);
  return sink->run_label;
}

void InitTelemetryFromEnv() {
  static bool initialized = false;
  if (initialized) return;
  initialized = true;
  const char* path = std::getenv("OPENIMA_TELEMETRY");
  if (path == nullptr || path[0] == '\0') return;
  if (Status s = StartTelemetry(path); !s.ok()) {
    std::fprintf(stderr, "OPENIMA_TELEMETRY: %s\n", s.ToString().c_str());
  }
}

#endif  // OPENIMA_OBS_ENABLED

void GradNormAccumulator::Add(const float* data, int64_t n) {
  double sq = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(data[i]);
    sq += v * v;
  }
  sum_squares_ += sq;
  per_param_.push_back(std::sqrt(sq));
}

double GradNormAccumulator::global() const { return std::sqrt(sum_squares_); }

}  // namespace openima::obs
