#include "src/obs/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/obs/metrics.h"

namespace openima::obs {

namespace {

double EnvDoubleOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atof(value);
}

}  // namespace

DriftMonitorOptions DriftOptionsFromEnv() {
  DriftMonitorOptions options;
  const char* policy = std::getenv("OPENIMA_DRIFT");
  if (policy != nullptr && policy[0] != '\0') {
    StatusOr<WatchdogPolicy> parsed = ParseWatchdogPolicy(policy);
    if (parsed.ok()) {
      options.policy = parsed.value();
    } else {
      std::fprintf(stderr, "openima: ignoring OPENIMA_DRIFT=%s (%s)\n", policy,
                   parsed.status().ToString().c_str());
    }
  }
  const char* window = std::getenv("OPENIMA_DRIFT_WINDOW");
  if (window != nullptr && window[0] != '\0') {
    const long long w = std::atoll(window);
    if (w > 0) options.window = static_cast<int>(w);
  }
  options.novel_fraction_delta =
      EnvDoubleOr("OPENIMA_DRIFT_NOVEL_DELTA", options.novel_fraction_delta);
  options.entropy_delta =
      EnvDoubleOr("OPENIMA_DRIFT_ENTROPY_DELTA", options.entropy_delta);
  options.distance_rel_delta =
      EnvDoubleOr("OPENIMA_DRIFT_DISTANCE_DELTA", options.distance_rel_delta);
  return options;
}

#if OPENIMA_OBS_ENABLED

DriftMonitor::DriftMonitor(const DriftMonitorOptions& options, int num_classes)
    : options_(options), num_classes_(num_classes < 1 ? 1 : num_classes) {
  if (options_.window < 1) options_.window = 1;
  if (options_.baseline_windows < 1) options_.baseline_windows = 1;
  if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
    options_.ewma_alpha = 0.05;
  }
  window_class_counts_.assign(static_cast<size_t>(num_classes_), 0);
}

void DriftMonitor::Observe(int class_id, bool is_novel, double distance2) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.observations += 1;
  const double novel = is_novel ? 1.0 : 0.0;
  if (stats_.observations == 1) {
    stats_.ewma_novel_fraction = novel;
    stats_.ewma_distance2 = distance2;
  } else {
    const double a = options_.ewma_alpha;
    stats_.ewma_novel_fraction =
        a * novel + (1.0 - a) * stats_.ewma_novel_fraction;
    stats_.ewma_distance2 = a * distance2 + (1.0 - a) * stats_.ewma_distance2;
  }
  window_count_ += 1;
  if (is_novel) window_novel_ += 1;
  window_distance2_sum_ += distance2;
  int c = class_id;
  if (c < 0) c = 0;
  if (c >= num_classes_) c = num_classes_ - 1;
  window_class_counts_[static_cast<size_t>(c)] += 1;
  if (window_count_ >= options_.window) CompleteWindowLocked();
}

void DriftMonitor::CompleteWindowLocked() {
  const double n = static_cast<double>(window_count_);
  const double novel_fraction = static_cast<double>(window_novel_) / n;
  const double mean_distance2 = window_distance2_sum_ / n;
  double entropy = 0.0;
  for (int64_t count : window_class_counts_) {
    if (count <= 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log(p);
  }

  stats_.windows_completed += 1;
  stats_.last_novel_fraction = novel_fraction;
  stats_.last_entropy = entropy;
  stats_.last_distance2 = mean_distance2;

  MetricsRegistry* registry = MetricsRegistry::Global();
  registry->counter("drift.windows")->Increment();
  registry->gauge("drift.novel_fraction")->Set(novel_fraction);
  registry->gauge("drift.entropy")->Set(entropy);
  registry->gauge("drift.distance2")->Set(mean_distance2);
  registry->gauge("drift.ewma_novel_fraction")->Set(stats_.ewma_novel_fraction);
  registry->gauge("drift.ewma_distance2")->Set(stats_.ewma_distance2);

  if (!stats_.baseline_set) {
    baseline_novel_sum_ += novel_fraction;
    baseline_entropy_sum_ += entropy;
    baseline_distance2_sum_ += mean_distance2;
    if (stats_.windows_completed >= options_.baseline_windows) {
      const double windows = static_cast<double>(stats_.windows_completed);
      stats_.baseline_novel_fraction = baseline_novel_sum_ / windows;
      stats_.baseline_entropy = baseline_entropy_sum_ / windows;
      stats_.baseline_distance2 = baseline_distance2_sum_ / windows;
      stats_.baseline_set = true;
    }
  } else {
    char detail[160];
    if (std::fabs(novel_fraction - stats_.baseline_novel_fraction) >
        options_.novel_fraction_delta) {
      std::snprintf(detail, sizeof(detail),
                    "novel fraction %.3f vs baseline %.3f (delta > %.3f)",
                    novel_fraction, stats_.baseline_novel_fraction,
                    options_.novel_fraction_delta);
      AlertLocked("novel_fraction", detail);
    }
    if (std::fabs(entropy - stats_.baseline_entropy) > options_.entropy_delta) {
      std::snprintf(detail, sizeof(detail),
                    "prediction entropy %.3f vs baseline %.3f (delta > %.3f)",
                    entropy, stats_.baseline_entropy, options_.entropy_delta);
      AlertLocked("entropy", detail);
    }
    if (std::fabs(mean_distance2 - stats_.baseline_distance2) >
        options_.distance_rel_delta *
            std::max(std::fabs(stats_.baseline_distance2), 1e-12)) {
      std::snprintf(detail, sizeof(detail),
                    "mean distance2 %.4f vs baseline %.4f (rel delta > %.3f)",
                    mean_distance2, stats_.baseline_distance2,
                    options_.distance_rel_delta);
      AlertLocked("distance2", detail);
    }
  }

  window_count_ = 0;
  window_novel_ = 0;
  window_distance2_sum_ = 0.0;
  window_class_counts_.assign(static_cast<size_t>(num_classes_), 0);
}

void DriftMonitor::AlertLocked(const char* signal, const std::string& detail) {
  stats_.alerts += 1;
  MetricsRegistry* registry = MetricsRegistry::Global();
  registry->counter("drift.alerts")->Increment();
  registry->counter(std::string("drift/") + signal)->Increment();
  if (options_.policy == WatchdogPolicy::kWarn && warns_emitted_ < 8) {
    warns_emitted_ += 1;
    std::fprintf(stderr, "openima drift WARNING [%s]: %s\n", signal,
                 detail.c_str());
  }
  if (options_.policy == WatchdogPolicy::kAbort && !tripped_) {
    tripped_ = true;
    trip_message_ =
        std::string("drift alert [") + signal + "]: " + detail;
  }
}

DriftStats DriftMonitor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status DriftMonitor::ConsumeStatus() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!tripped_) return Status::OK();
  return Status::Internal(trip_message_);
}

#endif  // OPENIMA_OBS_ENABLED

}  // namespace openima::obs
