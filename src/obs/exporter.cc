#include "src/obs/exporter.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace openima::obs {
namespace {

Status WriteAtomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

std::string PromName(const std::string& name) {
  std::string out = "openima_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

// %.17g like json::Value doubles, so both exports agree byte-for-byte on
// every floating-point value.
std::string PromNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

json::Value HistogramJson(const HistogramSnapshot& h) {
  json::Value out = json::Value::Object();
  out.Set("count", json::Value::Int(h.count));
  out.Set("sum", json::Value::Int(h.sum));
  out.Set("min", json::Value::Int(h.min));
  out.Set("max", json::Value::Int(h.max));
  out.Set("mean", json::Value::Double(h.Mean()));
  out.Set("p50", json::Value::Double(HistogramQuantile(h, 0.50)));
  out.Set("p99", json::Value::Double(HistogramQuantile(h, 0.99)));
  out.Set("p999", json::Value::Double(HistogramQuantile(h, 0.999)));
  return out;
}

}  // namespace

MetricsExporter::MetricsExporter(const ExporterOptions& options)
    : options_(options) {
  if (options_.registry == nullptr) options_.registry = MetricsRegistry::Global();
  if (options_.rolling == nullptr) options_.rolling = RollingRegistry::Global();
  if (options_.interval_ms < 1) options_.interval_ms = 1;
}

MetricsExporter::~MetricsExporter() { Stop(); }

json::Value MetricsExporter::SnapshotJson(
    const MetricsSnapshot& metrics,
    const std::map<std::string, RollingCounterSnapshot>& window_counters,
    const std::map<std::string, RollingHistogramSnapshot>& window_histograms,
    int64_t tick, int64_t sequence) {
  json::Value root = json::Value::Object();
  root.Set("schema", json::Value::Str("openima-metrics-snapshot"));
  root.Set("sequence", json::Value::Int(sequence));
  root.Set("tick", json::Value::Int(tick));

  json::Value counters = json::Value::Object();
  for (const auto& [name, total] : metrics.counters) {
    counters.Set(name, json::Value::Int(total));
  }
  root.Set("counters", std::move(counters));

  json::Value gauges = json::Value::Object();
  for (const auto& [name, value] : metrics.gauges) {
    gauges.Set(name, json::Value::Double(value));
  }
  root.Set("gauges", std::move(gauges));

  json::Value histograms = json::Value::Object();
  for (const auto& [name, h] : metrics.histograms) {
    histograms.Set(name, HistogramJson(h));
  }
  root.Set("histograms", std::move(histograms));

  json::Value windows = json::Value::Object();
  json::Value wc = json::Value::Object();
  for (const auto& [name, snap] : window_counters) {
    json::Value entry = json::Value::Object();
    entry.Set("window", json::Value::Int(snap.window));
    entry.Set("total", json::Value::Int(snap.total));
    entry.Set("rate_per_tick", json::Value::Double(snap.rate));
    wc.Set(name, std::move(entry));
  }
  windows.Set("counters", std::move(wc));
  json::Value wh = json::Value::Object();
  for (const auto& [name, snap] : window_histograms) {
    json::Value entry = HistogramJson(snap.hist);
    // Window width leads; re-Set keeps insertion order stable by building a
    // fresh object instead.
    json::Value ordered = json::Value::Object();
    ordered.Set("window", json::Value::Int(snap.window));
    for (const auto& [key, value] : entry.items()) {
      ordered.Set(key, value);
    }
    wh.Set(name, std::move(ordered));
  }
  windows.Set("histograms", std::move(wh));
  root.Set("windows", std::move(windows));
  return root;
}

std::string MetricsExporter::PrometheusText(
    const MetricsSnapshot& metrics,
    const std::map<std::string, RollingCounterSnapshot>& window_counters,
    const std::map<std::string, RollingHistogramSnapshot>& window_histograms,
    int64_t tick, int64_t sequence) {
  std::string out;
  out += "# openima metrics exposition (sequence " + std::to_string(sequence) +
         ", tick " + std::to_string(tick) + ")\n";
  for (const auto& [name, total] : metrics.counters) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(total) + "\n";
  }
  for (const auto& [name, value] : metrics.gauges) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + PromNumber(value) + "\n";
  }
  for (const auto& [name, h] : metrics.histograms) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " histogram\n";
    // Power-of-two buckets: buckets[b] counts v < 2^b (b = 0 holds v <= 0,
    // upper bound le="1" after the cumulative sum shifts it).
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      out += p + "_bucket{le=\"" + std::to_string(int64_t{1} << b) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += p + "_sum " + std::to_string(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  for (const auto& [name, snap] : window_counters) {
    const std::string p = PromName(name) + "_window";
    out += "# TYPE " + p + " gauge\n";
    out += p + "{stat=\"total\",window=\"" + std::to_string(snap.window) +
           "\"} " + std::to_string(snap.total) + "\n";
    out += p + "{stat=\"rate_per_tick\",window=\"" +
           std::to_string(snap.window) + "\"} " + PromNumber(snap.rate) + "\n";
  }
  for (const auto& [name, snap] : window_histograms) {
    const std::string p = PromName(name) + "_window";
    out += "# TYPE " + p + " gauge\n";
    const std::string w = std::to_string(snap.window);
    out += p + "{stat=\"count\",window=\"" + w + "\"} " +
           std::to_string(snap.hist.count) + "\n";
    out += p + "{stat=\"p50\",window=\"" + w + "\"} " +
           PromNumber(HistogramQuantile(snap.hist, 0.50)) + "\n";
    out += p + "{stat=\"p99\",window=\"" + w + "\"} " +
           PromNumber(HistogramQuantile(snap.hist, 0.99)) + "\n";
    out += p + "{stat=\"p999\",window=\"" + w + "\"} " +
           PromNumber(HistogramQuantile(snap.hist, 0.999)) + "\n";
  }
  return out;
}

Status MetricsExporter::ExportNow() {
  if (options_.path.empty()) {
    return Status::InvalidArgument("exporter path is empty");
  }
  int64_t sequence;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sequence = ++sequence_;
  }
  const MetricsSnapshot metrics = options_.registry->Snapshot();
  const auto window_counters = options_.rolling->CounterSnapshots();
  const auto window_histograms = options_.rolling->HistogramSnapshots();
  const int64_t tick = RollingClock::Now();
  const json::Value doc = SnapshotJson(metrics, window_counters,
                                       window_histograms, tick, sequence);
  OPENIMA_RETURN_IF_ERROR(WriteAtomic(options_.path, doc.Dump(1) + "\n"));
  OPENIMA_RETURN_IF_ERROR(WriteAtomic(
      options_.path + ".prom",
      PrometheusText(metrics, window_counters, window_histograms, tick,
                     sequence)));
  exports_done_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status MetricsExporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::OK();
  if (options_.path.empty()) {
    return Status::InvalidArgument("exporter path is empty");
  }
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { ThreadMain(); });
  return Status::OK();
}

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  // Final export so the file on disk reflects the very end of the run.
  { const Status ignored = ExportNow(); (void)ignored; }
}

void MetricsExporter::Notify() { cv_.notify_all(); }

void MetricsExporter::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    { const Status ignored = ExportNow(); (void)ignored; }
    lock.lock();
    if (stop_) break;
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
  }
}

#if OPENIMA_OBS_ENABLED

namespace {
std::mutex g_exporter_mu;
MetricsExporter* g_exporter = nullptr;               // owned
std::atomic<MetricsExporter*> g_exporter_fast{nullptr};
}  // namespace

Status StartMetricsExporter(const ExporterOptions& options) {
  std::lock_guard<std::mutex> lock(g_exporter_mu);
  if (g_exporter != nullptr) {
    return Status::FailedPrecondition("metrics exporter already running");
  }
  auto* exporter = new MetricsExporter(options);
  const Status status = exporter->Start();
  if (!status.ok()) {
    delete exporter;
    return status;
  }
  g_exporter = exporter;
  g_exporter_fast.store(exporter, std::memory_order_release);
  return Status::OK();
}

void StopMetricsExporter() {
  std::lock_guard<std::mutex> lock(g_exporter_mu);
  if (g_exporter == nullptr) return;
  g_exporter_fast.store(nullptr, std::memory_order_release);
  g_exporter->Stop();
  delete g_exporter;
  g_exporter = nullptr;
}

MetricsExporter* GlobalMetricsExporter() {
  return g_exporter_fast.load(std::memory_order_acquire);
}

void NotifyMetricsExporter() {
  MetricsExporter* exporter = g_exporter_fast.load(std::memory_order_acquire);
  if (exporter != nullptr) exporter->Notify();
}

void InitExporterFromEnv() {
  const char* path = std::getenv("OPENIMA_METRICS_EXPORT");
  if (path == nullptr || path[0] == '\0') return;
  ExporterOptions options;
  options.path = path;
  const char* interval = std::getenv("OPENIMA_METRICS_EXPORT_INTERVAL_MS");
  if (interval != nullptr && interval[0] != '\0') {
    options.interval_ms = static_cast<int>(std::atoll(interval));
  }
  { const Status ignored = StartMetricsExporter(options); (void)ignored; }
}

#endif  // OPENIMA_OBS_ENABLED

}  // namespace openima::obs
