#ifndef OPENIMA_OBS_TRACE_H_
#define OPENIMA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/obs_config.h"
#include "src/util/status.h"

namespace openima::obs {

#if OPENIMA_OBS_ENABLED

/// RAII phase span. Spans nest per thread (a thread-local stack), forming
/// slash-joined paths like "epoch/pseudo_label_refresh/kmeans/lloyd".
/// Closing a span does two things:
///
///  1. Always: records the duration (nanoseconds) into the global
///     MetricsRegistry histogram "time/<path>" — the data behind
///     PhaseBreakdown() and RunReport phase tables.
///  2. When tracing is active (StartTracing / OPENIMA_TRACE): appends a
///     chrome://tracing complete event to the thread's trace buffer.
///
/// `name` must outlive the span (string literals in practice). Spans cost
/// two clock reads plus one histogram lookup at close — they belong around
/// epochs, refreshes and clustering calls, not inner loops.
class Phase {
 public:
  explicit Phase(const char* name);
  ~Phase();

  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;
};

/// RAII timer without nesting/trace semantics: records its lifetime in
/// nanoseconds into the registry histogram `name` verbatim. For ad-hoc
/// timings that should not appear in the phase tree.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;
};

/// RAII root span for one serving request, with 1-in-N sampling
/// (SetTraceSamplePeriod / OPENIMA_TRACE_SAMPLE). While tracing is active,
/// every Nth request is *sampled*: the span opens like a Phase, so the
/// request's inner phases (serve_sample/gather/forward/distance) nest under
/// it in the chrome trace, and SetMeta key/values ride along in the root
/// event's args. The other N-1 requests are *suppressed*: their phase spans
/// still feed the "time/..." histograms (metrics stay complete) but emit no
/// trace events, which is what keeps full-fidelity tracing affordable under
/// production request rates. Inert (two relaxed loads) when tracing is off.
class RequestTrace {
 public:
  explicit RequestTrace(const char* name);
  ~RequestTrace();

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  /// Attaches request metadata (batch size, tag, novel count, ...) to the
  /// root trace event. No-op on unsampled requests.
  void SetMeta(const char* key, const std::string& value);
  void SetMeta(const char* key, int64_t value);

  bool sampled() const { return sampled_; }

 private:
  const char* name_;
  int64_t start_ns_ = 0;
  bool active_ = false;    ///< tracing was on when the request began
  bool sampled_ = false;
  bool prev_suppress_ = false;
  std::vector<std::pair<std::string, std::string>> meta_;
};

#else  // !OPENIMA_OBS_ENABLED

class Phase {
 public:
  explicit Phase(const char*) {}
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const char*) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

class RequestTrace {
 public:
  explicit RequestTrace(const char*) {}
  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;
  void SetMeta(const char*, const std::string&) {}
  void SetMeta(const char*, int64_t) {}
  bool sampled() const { return false; }
};

#endif  // OPENIMA_OBS_ENABLED

/// 1-in-N sampling period for RequestTrace (1 = every request, the
/// default). Values < 1 clamp to 1. Set from OPENIMA_TRACE_SAMPLE by
/// InitFromEnv() or from --trace-sample in openima_serve.
void SetTraceSamplePeriod(int64_t period);
int64_t TraceSamplePeriod();

/// Begins collecting trace events; they are written to `path` (chrome trace
/// JSON) by StopTracing or the atexit hook InitFromEnv installs. Returns
/// FailedPrecondition when tracing is already active, or when the layer is
/// compiled out (OPENIMA_OBS=OFF).
Status StartTracing(const std::string& path);

/// True between StartTracing and StopTracing (always false when compiled
/// out).
bool TracingActive();

/// Stops collection and writes the accumulated events as a chrome
/// trace-event JSON document ({"traceEvents": [...]} — loadable in
/// about:tracing and Perfetto). No-op OK when tracing was never started.
Status StopTracing();

/// Reads OPENIMA_TRACE; when set and non-empty, starts tracing to that path
/// and installs an atexit hook that writes the file at process exit.
/// Binaries call this once at the top of main() — it is what makes
/// `OPENIMA_TRACE=run.json ./quickstart` work. Safe to call repeatedly.
void InitFromEnv();

/// Plain-text table of every "time/<path>" histogram in the global
/// registry: path, calls, total ms, mean ms — the human-readable
/// counterpart of the trace file. Empty string when nothing was timed.
std::string PhaseBreakdown();

/// Drops recorded trace events without writing (test isolation). Phase
/// histograms live in the MetricsRegistry and are reset there.
void ResetTraceForTest();

}  // namespace openima::obs

#endif  // OPENIMA_OBS_TRACE_H_
