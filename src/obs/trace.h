#ifndef OPENIMA_OBS_TRACE_H_
#define OPENIMA_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "src/obs/obs_config.h"
#include "src/util/status.h"

namespace openima::obs {

#if OPENIMA_OBS_ENABLED

/// RAII phase span. Spans nest per thread (a thread-local stack), forming
/// slash-joined paths like "epoch/pseudo_label_refresh/kmeans/lloyd".
/// Closing a span does two things:
///
///  1. Always: records the duration (nanoseconds) into the global
///     MetricsRegistry histogram "time/<path>" — the data behind
///     PhaseBreakdown() and RunReport phase tables.
///  2. When tracing is active (StartTracing / OPENIMA_TRACE): appends a
///     chrome://tracing complete event to the thread's trace buffer.
///
/// `name` must outlive the span (string literals in practice). Spans cost
/// two clock reads plus one histogram lookup at close — they belong around
/// epochs, refreshes and clustering calls, not inner loops.
class Phase {
 public:
  explicit Phase(const char* name);
  ~Phase();

  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;
};

/// RAII timer without nesting/trace semantics: records its lifetime in
/// nanoseconds into the registry histogram `name` verbatim. For ad-hoc
/// timings that should not appear in the phase tree.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;
};

#else  // !OPENIMA_OBS_ENABLED

class Phase {
 public:
  explicit Phase(const char*) {}
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const char*) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // OPENIMA_OBS_ENABLED

/// Begins collecting trace events; they are written to `path` (chrome trace
/// JSON) by StopTracing or the atexit hook InitFromEnv installs. Returns
/// FailedPrecondition when tracing is already active, or when the layer is
/// compiled out (OPENIMA_OBS=OFF).
Status StartTracing(const std::string& path);

/// True between StartTracing and StopTracing (always false when compiled
/// out).
bool TracingActive();

/// Stops collection and writes the accumulated events as a chrome
/// trace-event JSON document ({"traceEvents": [...]} — loadable in
/// about:tracing and Perfetto). No-op OK when tracing was never started.
Status StopTracing();

/// Reads OPENIMA_TRACE; when set and non-empty, starts tracing to that path
/// and installs an atexit hook that writes the file at process exit.
/// Binaries call this once at the top of main() — it is what makes
/// `OPENIMA_TRACE=run.json ./quickstart` work. Safe to call repeatedly.
void InitFromEnv();

/// Plain-text table of every "time/<path>" histogram in the global
/// registry: path, calls, total ms, mean ms — the human-readable
/// counterpart of the trace file. Empty string when nothing was timed.
std::string PhaseBreakdown();

/// Drops recorded trace events without writing (test isolation). Phase
/// histograms live in the MetricsRegistry and are reset there.
void ResetTraceForTest();

}  // namespace openima::obs

#endif  // OPENIMA_OBS_TRACE_H_
