#ifndef OPENIMA_OBS_JSON_H_
#define OPENIMA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace openima::obs::json {

/// Minimal JSON document tree used by the observability layer: RunReport
/// serialization, the chrome-trace writer, and the round-trip checks in
/// quickstart --obs-smoke / tests/obs_test.cc. Objects preserve insertion
/// order (reports read top-to-bottom), integers survive a Dump/Parse
/// round-trip exactly, and doubles are emitted with enough digits
/// (%.17g) to reparse bit-identically.
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Double(double d);
  static Value Str(std::string s);
  static Value Array();
  static Value Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; CHECK-fail on type mismatch (AsDouble accepts ints).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Array access.
  void Append(Value v);
  size_t size() const;
  const Value& at(size_t i) const;

  /// Object access. Set overwrites an existing key in place (order kept).
  void Set(const std::string& key, Value v);
  bool Has(const std::string& key) const;
  /// CHECK-fails when the key is absent.
  const Value& at(const std::string& key) const;
  /// nullptr when absent.
  const Value* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Value>>& items() const;

  /// Structural equality (exact for bool/int/string, bit-exact doubles).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Serializes; indent <= 0 emits the compact single-line form.
  std::string Dump(int indent = 2) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static StatusOr<Value> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// JSON string escaping (quotes not included).
std::string Escape(const std::string& s);

}  // namespace openima::obs::json

#endif  // OPENIMA_OBS_JSON_H_
