#include "src/obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace openima::obs::json {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

bool Value::AsBool() const {
  OPENIMA_CHECK(is_bool());
  return bool_;
}

int64_t Value::AsInt() const {
  OPENIMA_CHECK(is_int());
  return int_;
}

double Value::AsDouble() const {
  OPENIMA_CHECK(is_number());
  return is_int() ? static_cast<double>(int_) : double_;
}

const std::string& Value::AsString() const {
  OPENIMA_CHECK(is_string());
  return string_;
}

void Value::Append(Value v) {
  OPENIMA_CHECK(is_array());
  array_.push_back(std::move(v));
}

size_t Value::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const Value& Value::at(size_t i) const {
  OPENIMA_CHECK(is_array());
  OPENIMA_CHECK_LT(i, array_.size());
  return array_[i];
}

void Value::Set(const std::string& key, Value v) {
  OPENIMA_CHECK(is_object());
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

bool Value::Has(const std::string& key) const { return Find(key) != nullptr; }

const Value& Value::at(const std::string& key) const {
  const Value* v = Find(key);
  OPENIMA_CHECK(v != nullptr) << "missing JSON key: " << key;
  return *v;
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Value>>& Value::items() const {
  OPENIMA_CHECK(is_object());
  return object_;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      return double_ == other.double_ ||
             (std::isnan(double_) && std::isnan(other.double_));
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string FormatDouble(double d) {
  // NaN/Inf are not representable in JSON; emit null (chrome://tracing and
  // every parser we round-trip through treat it as missing).
  if (!std::isfinite(d)) return "null";
  std::string s = StrFormat("%.17g", d);
  // Ensure the token reparses as a double, not an integer.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad = pretty ? std::string(
      static_cast<size_t>(indent) * static_cast<size_t>(depth + 1), ' ')
      : std::string();
  const std::string close_pad = pretty ? std::string(
      static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ')
      : std::string();
  const char* nl = pretty ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      *out += StrFormat("%lld", static_cast<long long>(int_));
      return;
    case Type::kDouble:
      *out += FormatDouble(double_);
      return;
    case Type::kString:
      *out += '"';
      *out += Escape(string_);
      *out += '"';
      return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      *out += nl;
      for (size_t i = 0; i < array_.size(); ++i) {
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < array_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      *out += nl;
      for (size_t i = 0; i < object_.size(); ++i) {
        *out += pad;
        *out += '"';
        *out += Escape(object_[i].first);
        *out += pretty ? "\": " : "\":";
        object_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < object_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over the JSON subset the layer emits (which is
/// all of JSON minus \uXXXX surrogate pairs — escaped control characters
/// decode to their code unit).
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  StatusOr<Value> ParseDocument() {
    auto v = ParseValue();
    OPENIMA_RETURN_IF_ERROR(v.status());
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument(
          StrFormat("trailing characters at offset %zu", pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  StatusOr<Value> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto str = ParseString();
      OPENIMA_RETURN_IF_ERROR(str.status());
      return Value::Str(std::move(*str));
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Value::Null();
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Value::Bool(true);
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Value::Bool(false);
    }
    return ParseNumber();
  }

  StatusOr<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    const std::string token = s_.substr(start, pos_ - start);
    if (token.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      char* end = nullptr;
      const long long i = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value::Int(i);
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Err("malformed number '" + token + "'");
    }
    return Value::Double(d);
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad \\u escape");
          }
          // The writer only escapes control characters (< 0x20); decode the
          // single code unit as one byte.
          out += static_cast<char>(code & 0xff);
          break;
        }
        default:
          return Err(StrFormat("unknown escape '\\%c'", e));
      }
    }
    return Err("unterminated string");
  }

  StatusOr<Value> ParseArray() {
    if (!Consume('[')) return Err("expected '['");
    Value arr = Value::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      auto v = ParseValue();
      OPENIMA_RETURN_IF_ERROR(v.status());
      arr.Append(std::move(*v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  StatusOr<Value> ParseObject() {
    if (!Consume('{')) return Err("expected '{'");
    Value obj = Value::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      auto key = ParseString();
      OPENIMA_RETURN_IF_ERROR(key.status());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      auto v = ParseValue();
      OPENIMA_RETURN_IF_ERROR(v.status());
      obj.Set(*key, std::move(*v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Value> Value::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace openima::obs::json
