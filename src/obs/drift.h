#ifndef OPENIMA_OBS_DRIFT_H_
#define OPENIMA_OBS_DRIFT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/obs_config.h"
#include "src/obs/watchdog.h"
#include "src/util/status.h"

namespace openima::obs {

/// Configuration for the online drift monitor (DESIGN.md §2.10). The
/// monitor reuses the watchdog's policy ladder: kOff disables it, kRecord
/// counts alerts into the metrics registry, kWarn additionally logs
/// (rate-limited), kAbort makes ConsumeStatus() return an error so the
/// serve loop can refuse to keep classifying a distribution it was never
/// calibrated on.
struct DriftMonitorOptions {
  WatchdogPolicy policy = WatchdogPolicy::kOff;

  /// Observations per evaluation window. Signals are recomputed and
  /// compared against the baseline every time a window fills.
  int window = 256;

  /// Number of completed windows averaged into the frozen baseline before
  /// alerting starts (the "calibration" phase — the first traffic a fresh
  /// service sees is assumed in-distribution).
  int baseline_windows = 1;

  /// EWMA smoothing factor for the per-observation series (novel indicator,
  /// distance-to-center); exported as gauges for dashboards.
  double ewma_alpha = 0.05;

  /// Alert when the windowed novel fraction moves more than this
  /// (absolute) from the baseline. POWN-style open-world serving expects a
  /// roughly stable share of novel-class traffic; a jump means the input
  /// mix shifted.
  double novel_fraction_delta = 0.15;

  /// Alert when the windowed prediction-entropy (Shannon, nats, over the
  /// predicted-class histogram) moves more than this from the baseline.
  double entropy_delta = 0.5;

  /// Alert when the windowed mean distance-to-center moves more than this
  /// *relative* fraction from the baseline (|d - b| > delta * |b|).
  double distance_rel_delta = 0.5;
};

/// Windowed + smoothed state of a DriftMonitor, for reports and tests.
struct DriftStats {
  int64_t observations = 0;
  int64_t windows_completed = 0;
  int64_t alerts = 0;
  bool baseline_set = false;

  double baseline_novel_fraction = 0.0;
  double baseline_entropy = 0.0;
  double baseline_distance2 = 0.0;

  /// Signals of the most recently completed window (-1 before the first).
  double last_novel_fraction = -1.0;
  double last_entropy = -1.0;
  double last_distance2 = -1.0;

  double ewma_novel_fraction = 0.0;
  double ewma_distance2 = 0.0;
};

#if OPENIMA_OBS_ENABLED

/// Online drift monitor for the serve path. Each classified node feeds
/// Observe(predicted class, novel flag, squared distance to its cluster
/// center); every `window` observations the monitor closes a window,
/// recomputes novel-fraction / prediction-entropy / mean-distance, and —
/// once the baseline is frozen — fires a policy alert for each signal that
/// moved beyond its threshold. Alert counts land in the metrics registry
/// (`drift.alerts`, `drift/<signal>`) and the latest signals in gauges, so
/// the exporter/openima_top surface them live.
///
/// Thread-safe: Observe takes a small mutex (the serve path is dominated by
/// the forward pass, see BENCH_serve.json). Determinism: all signals are
/// pure functions of the observation multiset per window, and windows close
/// on exact observation counts — no wall clock anywhere.
class DriftMonitor {
 public:
  DriftMonitor(const DriftMonitorOptions& options, int num_classes);

  /// Feeds one classified node. `class_id` indexes the predicted final
  /// class (clamped into [0, num_classes)), `is_novel` the open-world
  /// novel-vs-seen call, `distance2` the squared distance to the winning
  /// center.
  void Observe(int class_id, bool is_novel, double distance2);

  DriftStats stats() const;

  /// OK unless an alert fired under the kAbort policy (sticky, like the
  /// watchdog trip).
  Status ConsumeStatus() const;

  bool enabled() const { return options_.policy != WatchdogPolicy::kOff; }
  const DriftMonitorOptions& options() const { return options_; }

 private:
  void CompleteWindowLocked();
  void AlertLocked(const char* signal, const std::string& detail);

  DriftMonitorOptions options_;
  int num_classes_;

  mutable std::mutex mu_;
  // Current (partial) window.
  int64_t window_count_ = 0;
  int64_t window_novel_ = 0;
  double window_distance2_sum_ = 0.0;
  std::vector<int64_t> window_class_counts_;
  // Baseline accumulation, then frozen averages.
  double baseline_novel_sum_ = 0.0;
  double baseline_entropy_sum_ = 0.0;
  double baseline_distance2_sum_ = 0.0;
  // Rolled-up state (mirrors DriftStats).
  DriftStats stats_;
  int warns_emitted_ = 0;
  bool tripped_ = false;
  std::string trip_message_;
};

#else  // !OPENIMA_OBS_ENABLED

/// Compiled-out drift monitor: Observe vanishes, stats are all-zero and
/// enabled() is false, so serve call sites need no #if of their own.
class DriftMonitor {
 public:
  DriftMonitor(const DriftMonitorOptions&, int) {}
  void Observe(int, bool, double) {}
  DriftStats stats() const { return DriftStats(); }
  Status ConsumeStatus() const { return Status::OK(); }
  constexpr bool enabled() const { return false; }
  DriftMonitorOptions options() const { return DriftMonitorOptions(); }
};

#endif  // OPENIMA_OBS_ENABLED

/// Reads the drift env knobs into a DriftMonitorOptions: OPENIMA_DRIFT
/// (off|record|warn|abort — the policy), OPENIMA_DRIFT_WINDOW,
/// OPENIMA_DRIFT_NOVEL_DELTA, OPENIMA_DRIFT_ENTROPY_DELTA,
/// OPENIMA_DRIFT_DISTANCE_DELTA. Unset keeps the defaults (policy off); a
/// malformed policy warns on stderr and stays off.
DriftMonitorOptions DriftOptionsFromEnv();

}  // namespace openima::obs

#endif  // OPENIMA_OBS_DRIFT_H_
