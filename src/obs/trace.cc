#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "src/obs/exporter.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/rolling.h"
#include "src/obs/telemetry.h"
#include "src/obs/watchdog.h"
#include "src/util/string_util.h"

namespace openima::obs {

#if OPENIMA_OBS_ENABLED

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One completed span, recorded per thread while tracing is active.
struct TraceEvent {
  std::string path;   ///< slash-joined nesting path
  int64_t start_ns;   ///< absolute steady-clock time
  int64_t dur_ns;
  int tid;
  /// Extra args (request metadata) — only RequestTrace roots set these.
  std::vector<std::pair<std::string, std::string>> meta;
};

/// Request-trace sampling state (see RequestTrace): a process-wide request
/// counter picks every `period`-th request for full tracing.
std::atomic<int64_t> g_trace_sample_period{1};
std::atomic<int64_t> g_trace_request_counter{0};

/// Global trace state. Event buffers are thread-local (lock-free appends);
/// each thread's buffer is spliced into `events` under the mutex when the
/// thread exits or when StopTracing drains the registered buffers.
struct Tracer {
  std::atomic<bool> active{false};
  std::mutex mu;
  std::string path;
  int64_t start_ns = 0;
  std::vector<TraceEvent> events;                    // drained buffers
  std::vector<std::vector<TraceEvent>*> thread_bufs; // live buffers
};

Tracer* GlobalTracer() {
  static Tracer* tracer = new Tracer();  // never freed
  return tracer;
}

/// Thread-local span stack + trace buffer. The buffer registers itself with
/// the tracer on first use and hands its events back on thread exit.
struct ThreadTraceState {
  std::vector<const char*> stack;
  std::vector<TraceEvent> buffer;
  bool registered = false;
  /// True inside an unsampled RequestTrace: phase histograms still record,
  /// trace events are dropped.
  bool suppress = false;
  int tid;

  ThreadTraceState() {
    static std::atomic<int> next_tid{0};
    tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  }

  ~ThreadTraceState() {
    Tracer* tracer = GlobalTracer();
    std::lock_guard<std::mutex> lock(tracer->mu);
    for (auto& e : buffer) tracer->events.push_back(std::move(e));
    for (auto it = tracer->thread_bufs.begin();
         it != tracer->thread_bufs.end(); ++it) {
      if (*it == &buffer) {
        tracer->thread_bufs.erase(it);
        break;
      }
    }
  }
};

ThreadTraceState& ThreadState() {
  thread_local ThreadTraceState state;
  return state;
}

std::string JoinedPath(const std::vector<const char*>& stack) {
  std::string path;
  for (size_t i = 0; i < stack.size(); ++i) {
    if (i > 0) path += '/';
    path += stack[i];
  }
  return path;
}

void RecordEvent(std::string path, int64_t start_ns, int64_t dur_ns,
                 std::vector<std::pair<std::string, std::string>> meta = {}) {
  ThreadTraceState& state = ThreadState();
  Tracer* tracer = GlobalTracer();
  if (!state.registered) {
    std::lock_guard<std::mutex> lock(tracer->mu);
    tracer->thread_bufs.push_back(&state.buffer);
    state.registered = true;
  }
  state.buffer.push_back(TraceEvent{std::move(path), start_ns, dur_ns,
                                    state.tid, std::move(meta)});
}

void AtExitFlush() {
  Status s = StopTracing();
  if (!s.ok()) {
    std::fprintf(stderr, "OPENIMA_TRACE flush failed: %s\n",
                 s.ToString().c_str());
  }
}

}  // namespace

Phase::Phase(const char* name) : name_(name), start_ns_(NowNs()) {
  ThreadState().stack.push_back(name);
}

Phase::~Phase() {
  const int64_t end_ns = NowNs();
  ThreadTraceState& state = ThreadState();
  std::string path = JoinedPath(state.stack);
  state.stack.pop_back();
  // Phase histogram: always on while compiled in (epoch-granular cost).
  static_cast<void>(name_);
  MetricsRegistry::Global()
      ->histogram("time/" + path)
      ->Record(end_ns - start_ns_);
  Tracer* tracer = GlobalTracer();
  if (tracer->active.load(std::memory_order_relaxed) && !state.suppress &&
      start_ns_ >= tracer->start_ns) {
    RecordEvent(std::move(path), start_ns_, end_ns - start_ns_);
  }
}

ScopedTimer::ScopedTimer(const char* histogram_name)
    : name_(histogram_name), start_ns_(NowNs()) {}

ScopedTimer::~ScopedTimer() {
  MetricsRegistry::Global()->histogram(name_)->Record(NowNs() - start_ns_);
}

RequestTrace::RequestTrace(const char* name) : name_(name) {
  active_ = TracingActive();
  if (!active_) return;
  const int64_t period = g_trace_sample_period.load(std::memory_order_relaxed);
  const int64_t r =
      g_trace_request_counter.fetch_add(1, std::memory_order_relaxed);
  sampled_ = (r % period == 0);
  ThreadTraceState& state = ThreadState();
  if (sampled_) {
    start_ns_ = NowNs();
    state.stack.push_back(name_);
  } else {
    prev_suppress_ = state.suppress;
    state.suppress = true;
  }
}

RequestTrace::~RequestTrace() {
  if (!active_) return;
  ThreadTraceState& state = ThreadState();
  if (!sampled_) {
    state.suppress = prev_suppress_;
    return;
  }
  const int64_t end_ns = NowNs();
  std::string path = JoinedPath(state.stack);
  state.stack.pop_back();
  Tracer* tracer = GlobalTracer();
  if (tracer->active.load(std::memory_order_relaxed) &&
      start_ns_ >= tracer->start_ns) {
    RecordEvent(std::move(path), start_ns_, end_ns - start_ns_,
                std::move(meta_));
  }
}

void RequestTrace::SetMeta(const char* key, const std::string& value) {
  if (!sampled_) return;
  meta_.emplace_back(key, value);
}

void RequestTrace::SetMeta(const char* key, int64_t value) {
  if (!sampled_) return;
  meta_.emplace_back(key, std::to_string(value));
}

void SetTraceSamplePeriod(int64_t period) {
  g_trace_sample_period.store(period < 1 ? 1 : period,
                              std::memory_order_relaxed);
}

int64_t TraceSamplePeriod() {
  return g_trace_sample_period.load(std::memory_order_relaxed);
}

Status StartTracing(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("trace path must not be empty");
  }
  Tracer* tracer = GlobalTracer();
  std::lock_guard<std::mutex> lock(tracer->mu);
  if (tracer->active.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("tracing already active");
  }
  tracer->path = path;
  tracer->start_ns = NowNs();
  tracer->events.clear();
  tracer->active.store(true, std::memory_order_relaxed);
  return Status::OK();
}

bool TracingActive() {
  return GlobalTracer()->active.load(std::memory_order_relaxed);
}

Status StopTracing() {
  Tracer* tracer = GlobalTracer();
  std::lock_guard<std::mutex> lock(tracer->mu);
  if (!tracer->active.load(std::memory_order_relaxed)) return Status::OK();
  tracer->active.store(false, std::memory_order_relaxed);
  // Drain buffers of still-live threads (the main thread in particular).
  for (auto* buf : tracer->thread_bufs) {
    for (auto& e : *buf) tracer->events.push_back(std::move(e));
    buf->clear();
  }
  // Stable order: chrome://tracing sorts internally, but a deterministic
  // file (given deterministic span timings-independent ordering) diffs
  // better — sort by (tid, start, longer-first) so parents precede children.
  std::sort(tracer->events.begin(), tracer->events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;
            });
  json::Value events = json::Value::Array();
  for (const TraceEvent& e : tracer->events) {
    json::Value ev = json::Value::Object();
    // The span name shown in the viewer is the leaf; the full nesting path
    // rides along in args (nesting itself is conveyed by ts/dur containment).
    const size_t slash = e.path.rfind('/');
    ev.Set("name", json::Value::Str(slash == std::string::npos
                                        ? e.path
                                        : e.path.substr(slash + 1)));
    ev.Set("cat", json::Value::Str("openima"));
    ev.Set("ph", json::Value::Str("X"));
    ev.Set("ts", json::Value::Double(
                     static_cast<double>(e.start_ns - tracer->start_ns) /
                     1e3));
    ev.Set("dur", json::Value::Double(static_cast<double>(e.dur_ns) / 1e3));
    ev.Set("pid", json::Value::Int(0));
    ev.Set("tid", json::Value::Int(e.tid));
    json::Value args = json::Value::Object();
    args.Set("path", json::Value::Str(e.path));
    for (const auto& [key, value] : e.meta) {
      args.Set(key, json::Value::Str(value));
    }
    ev.Set("args", std::move(args));
    events.Append(std::move(ev));
  }
  json::Value doc = json::Value::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", json::Value::Str("ms"));
  const std::string text = doc.Dump(1);
  std::FILE* f = std::fopen(tracer->path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + tracer->path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  tracer->events.clear();
  if (written != text.size()) {
    return Status::IOError("short write to " + tracer->path);
  }
  return Status::OK();
}

void InitFromEnv() {
  static bool initialized = false;
  if (initialized) return;
  initialized = true;
  // Sibling env hookups ride along so one InitFromEnv() call in main()
  // covers the whole observability layer.
  InitTelemetryFromEnv();
  InitWatchdogFromEnv();
  InitRollingFromEnv();
  InitExporterFromEnv();
  const char* sample = std::getenv("OPENIMA_TRACE_SAMPLE");
  if (sample != nullptr && sample[0] != '\0') {
    SetTraceSamplePeriod(std::atoll(sample));
  }
  const char* path = std::getenv("OPENIMA_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  Status s = StartTracing(path);
  if (!s.ok()) {
    std::fprintf(stderr, "OPENIMA_TRACE: %s\n", s.ToString().c_str());
    return;
  }
  std::atexit(AtExitFlush);
}

std::string PhaseBreakdown() {
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  std::string out;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("time/", 0) != 0 || h.count == 0) continue;
    if (out.empty()) {
      out += StrFormat("%-56s %10s %12s %12s\n", "phase", "calls",
                       "total ms", "mean ms");
    }
    const std::string path = name.substr(5);
    out += StrFormat("%-56s %10lld %12.3f %12.3f\n", path.c_str(),
                     static_cast<long long>(h.count),
                     static_cast<double>(h.sum) / 1e6, h.Mean() / 1e6);
  }
  return out;
}

void ResetTraceForTest() {
  Tracer* tracer = GlobalTracer();
  std::lock_guard<std::mutex> lock(tracer->mu);
  tracer->active.store(false, std::memory_order_relaxed);
  for (auto* buf : tracer->thread_bufs) buf->clear();
  tracer->events.clear();
  g_trace_request_counter.store(0, std::memory_order_relaxed);
  ThreadState().suppress = false;
}

#else  // !OPENIMA_OBS_ENABLED

Status StartTracing(const std::string&) {
  return Status::FailedPrecondition(
      "observability compiled out (OPENIMA_OBS=OFF)");
}

bool TracingActive() { return false; }

Status StopTracing() { return Status::OK(); }

void SetTraceSamplePeriod(int64_t) {}

int64_t TraceSamplePeriod() { return 1; }

void InitFromEnv() {}

std::string PhaseBreakdown() { return std::string(); }

void ResetTraceForTest() {}

#endif  // OPENIMA_OBS_ENABLED

}  // namespace openima::obs
