#ifndef OPENIMA_OBS_EXPORTER_H_
#define OPENIMA_OBS_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_config.h"
#include "src/obs/rolling.h"
#include "src/util/status.h"

namespace openima::obs {

/// Configuration for a MetricsExporter. `path` receives the ordered-JSON
/// snapshot ("openima-metrics-snapshot" schema, EXPERIMENTS.md); the
/// Prometheus text-exposition twin is written next to it at `path` + ".prom".
/// Registries default to the process-global ones; tests point both at local
/// instances for isolation.
struct ExporterOptions {
  std::string path;
  int interval_ms = 1000;
  MetricsRegistry* registry = nullptr;   ///< nullptr: MetricsRegistry::Global()
  RollingRegistry* rolling = nullptr;    ///< nullptr: RollingRegistry::Global()
};

/// Background thread that periodically serializes the metrics registry (plus
/// the rolling-window registry) to disk so external tools — openima_top,
/// Prometheus' textfile collector, run_diff --validate — can watch a live
/// trainer or server. Every export writes to `<path>.tmp` then renames, so
/// readers never observe a torn file. Snapshots carry the logical-clock tick
/// and an export sequence number but no wall-clock timestamps: under the
/// logical clock the bytes are a pure function of the recorded updates
/// (tests/live_obs_test.cc pins byte-identity across thread counts).
class MetricsExporter {
 public:
  explicit MetricsExporter(const ExporterOptions& options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Starts the periodic export thread (idempotent).
  Status Start();

  /// Stops the thread after one final export.
  void Stop();

  /// Serializes and writes one snapshot pair (JSON + .prom) synchronously.
  /// Usable without Start() for end-of-run exports and tests.
  Status ExportNow();

  /// Wakes the export thread early (epoch heartbeat: the trainer notifies
  /// after each epoch so the snapshot on disk is never a stale interval
  /// behind, regardless of epoch duration).
  void Notify();

  int64_t exports_done() const {
    return exports_done_.load(std::memory_order_acquire);
  }
  const ExporterOptions& options() const { return options_; }

  /// The snapshot document (shared by ExportNow and the tests).
  static json::Value SnapshotJson(
      const MetricsSnapshot& metrics,
      const std::map<std::string, RollingCounterSnapshot>& window_counters,
      const std::map<std::string, RollingHistogramSnapshot>& window_histograms,
      int64_t tick, int64_t sequence);

  /// Prometheus text-exposition rendering of the same inputs. Metric names
  /// are sanitized ([^a-zA-Z0-9_] -> '_') and prefixed "openima_".
  static std::string PrometheusText(
      const MetricsSnapshot& metrics,
      const std::map<std::string, RollingCounterSnapshot>& window_counters,
      const std::map<std::string, RollingHistogramSnapshot>& window_histograms,
      int64_t tick, int64_t sequence);

 private:
  void ThreadMain();

  ExporterOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
  std::atomic<int64_t> exports_done_{0};
  int64_t sequence_ = 0;
};

#if OPENIMA_OBS_ENABLED

/// Starts the process-global exporter (at most one; later calls replace the
/// path only if none is running). Returns FailedPrecondition when one is
/// already active.
Status StartMetricsExporter(const ExporterOptions& options);

/// Stops and destroys the global exporter after a final export (no-op when
/// none is running).
void StopMetricsExporter();

/// The running global exporter, or nullptr.
MetricsExporter* GlobalMetricsExporter();

/// Wakes the global exporter if one is running (cheap: one atomic load on
/// the common no-exporter path).
void NotifyMetricsExporter();

/// Reads OPENIMA_METRICS_EXPORT (snapshot path; empty/unset disables) and
/// OPENIMA_METRICS_EXPORT_INTERVAL_MS (default 1000) and starts the global
/// exporter. Called from InitFromEnv().
void InitExporterFromEnv();

#else  // !OPENIMA_OBS_ENABLED

inline Status StartMetricsExporter(const ExporterOptions&) {
  return Status::FailedPrecondition(
      "metrics export requires an OPENIMA_OBS=ON build");
}
inline void StopMetricsExporter() {}
inline MetricsExporter* GlobalMetricsExporter() { return nullptr; }
inline void NotifyMetricsExporter() {}
inline void InitExporterFromEnv() {}

#endif  // OPENIMA_OBS_ENABLED

}  // namespace openima::obs

#endif  // OPENIMA_OBS_EXPORTER_H_
