#include "src/obs/watchdog.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace openima::obs {

StatusOr<WatchdogPolicy> ParseWatchdogPolicy(const std::string& text) {
  if (text == "off") return WatchdogPolicy::kOff;
  if (text == "record") return WatchdogPolicy::kRecord;
  if (text == "warn") return WatchdogPolicy::kWarn;
  if (text == "abort") return WatchdogPolicy::kAbort;
  return Status::InvalidArgument("unknown watchdog policy '" + text +
                                 "' (want off|record|warn|abort)");
}

const char* WatchdogPolicyName(WatchdogPolicy policy) {
  switch (policy) {
    case WatchdogPolicy::kOff:
      return "off";
    case WatchdogPolicy::kRecord:
      return "record";
    case WatchdogPolicy::kWarn:
      return "warn";
    case WatchdogPolicy::kAbort:
      return "abort";
  }
  return "off";
}

#if OPENIMA_OBS_ENABLED

namespace {

constexpr int kMaxWarnings = 8;  ///< rate limit for kWarn log lines

struct WatchdogState {
  std::atomic<int> policy{static_cast<int>(WatchdogPolicy::kOff)};
  std::atomic<double> max_grad_norm{1e8};
  std::atomic<int64_t> events{0};
  std::atomic<int64_t> warnings{0};
  std::atomic<bool> tripped{false};
  std::mutex mu;
  std::string trip_message;  // first anomaly under kAbort, guarded by mu
};

WatchdogState* State() {
  static WatchdogState* state = new WatchdogState();  // never freed
  return state;
}

/// Applies the configured policy to one observed anomaly. `count` is the
/// number of bad elements (1 for a norm explosion); `detail` describes what
/// was seen at `site`.
void HandleAnomaly(const char* site, int64_t count, const std::string& detail) {
  WatchdogState* state = State();
  state->events.fetch_add(count, std::memory_order_relaxed);
  MetricsRegistry::Global()->counter("watchdog.anomalies")->Add(count);
  MetricsRegistry::Global()
      ->counter(std::string("watchdog/") + site)
      ->Add(count);

  const auto policy =
      static_cast<WatchdogPolicy>(state->policy.load(std::memory_order_relaxed));
  if (policy == WatchdogPolicy::kWarn) {
    if (state->warnings.fetch_add(1, std::memory_order_relaxed) <
        kMaxWarnings) {
      OPENIMA_LOG(Warning) << "watchdog: " << detail << " at " << site;
    }
  } else if (policy == WatchdogPolicy::kAbort) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->tripped.load(std::memory_order_relaxed)) {
      state->trip_message = detail + " at " + site;
      state->tripped.store(true, std::memory_order_release);
    }
  }
}

}  // namespace

void Watchdog::Configure(const WatchdogOptions& options) {
  WatchdogState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  state->policy.store(static_cast<int>(options.policy),
                      std::memory_order_relaxed);
  state->max_grad_norm.store(options.max_grad_norm, std::memory_order_relaxed);
  state->events.store(0, std::memory_order_relaxed);
  state->warnings.store(0, std::memory_order_relaxed);
  state->tripped.store(false, std::memory_order_relaxed);
  state->trip_message.clear();
}

WatchdogOptions Watchdog::options() {
  WatchdogState* state = State();
  WatchdogOptions out;
  out.policy =
      static_cast<WatchdogPolicy>(state->policy.load(std::memory_order_relaxed));
  out.max_grad_norm = state->max_grad_norm.load(std::memory_order_relaxed);
  return out;
}

bool Watchdog::active() {
  return State()->policy.load(std::memory_order_relaxed) !=
         static_cast<int>(WatchdogPolicy::kOff);
}

int64_t Watchdog::CheckTensor(const char* site, const float* data, int64_t n) {
  if (!active()) return 0;
  int64_t bad = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) ++bad;
  }
  if (bad > 0) {
    std::ostringstream msg;
    msg << bad << "/" << n << " non-finite values";
    HandleAnomaly(site, bad, msg.str());
  }
  return bad;
}

void Watchdog::CheckNorm(const char* site, double norm) {
  if (!active()) return;
  const double limit =
      State()->max_grad_norm.load(std::memory_order_relaxed);
  if (std::isfinite(norm) && norm <= limit) return;
  std::ostringstream msg;
  msg << "norm " << norm << " exceeds limit " << limit;
  HandleAnomaly(site, 1, msg.str());
}

int64_t Watchdog::events() {
  return State()->events.load(std::memory_order_relaxed);
}

bool Watchdog::tripped() {
  return State()->tripped.load(std::memory_order_acquire);
}

Status Watchdog::ConsumeStatus() {
  WatchdogState* state = State();
  if (!state->tripped.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(state->mu);
  return Status::Internal("numeric watchdog tripped: " + state->trip_message);
}

void Watchdog::ResetForTest() { Configure(WatchdogOptions()); }

#endif  // OPENIMA_OBS_ENABLED

void InitWatchdogFromEnv() {
#if OPENIMA_OBS_ENABLED
  const char* policy_env = std::getenv("OPENIMA_WATCHDOG");
  if (policy_env == nullptr || policy_env[0] == '\0') return;
  auto policy = ParseWatchdogPolicy(policy_env);
  if (!policy.ok()) {
    std::fprintf(stderr, "OPENIMA_WATCHDOG: %s\n",
                 policy.status().ToString().c_str());
    return;
  }
  WatchdogOptions options;
  options.policy = *policy;
  if (const char* norm_env = std::getenv("OPENIMA_WATCHDOG_MAX_NORM");
      norm_env != nullptr && norm_env[0] != '\0') {
    char* end = nullptr;
    const double limit = std::strtod(norm_env, &end);
    if (end != norm_env && *end == '\0' && limit > 0.0) {
      options.max_grad_norm = limit;
    } else {
      std::fprintf(stderr,
                   "OPENIMA_WATCHDOG_MAX_NORM: invalid value '%s' (ignored)\n",
                   norm_env);
    }
  }
  Watchdog::Configure(options);
#endif
}

}  // namespace openima::obs
