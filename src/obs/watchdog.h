#ifndef OPENIMA_OBS_WATCHDOG_H_
#define OPENIMA_OBS_WATCHDOG_H_

#include <cstdint>
#include <string>

#include "src/obs/obs_config.h"
#include "src/util/status.h"

namespace openima::obs {

/// What the numeric-health watchdog does when it finds a NaN/Inf gradient
/// or an exploding norm (DESIGN.md §2.5):
///  - kOff:    scans are skipped entirely (the default — zero overhead).
///  - kRecord: count anomalies into the metrics registry and keep going.
///  - kWarn:   record + log a warning (rate-limited to the first few).
///  - kAbort:  record + trip; the next Watchdog::ConsumeStatus() in the
///             training loop returns an Internal error, aborting the run
///             with a Status instead of training to a garbage result.
enum class WatchdogPolicy { kOff = 0, kRecord, kWarn, kAbort };

/// Parses "off" / "record" / "warn" / "abort" (as in OPENIMA_WATCHDOG).
StatusOr<WatchdogPolicy> ParseWatchdogPolicy(const std::string& text);
const char* WatchdogPolicyName(WatchdogPolicy policy);

struct WatchdogOptions {
  WatchdogPolicy policy = WatchdogPolicy::kOff;

  /// A gradient norm above this is an anomaly ("norm explosion"). The
  /// default is far beyond anything a healthy run produces.
  double max_grad_norm = 1e8;
};

#if OPENIMA_OBS_ENABLED

/// Process-wide numeric-health watchdog. The backward pass scans the loss
/// value and every leaf (parameter) gradient it produced; Adam re-scans the
/// gradients it consumes and the parameters it just updated, plus the
/// global gradient norm. All scans are gated on active(), so the default
/// (kOff) costs one relaxed load per call site; under -DOPENIMA_OBS=OFF the
/// whole class is an inline no-op (see below).
///
/// State is monotone counters plus a sticky "tripped" flag: scanning
/// threads only ever add, so checks are safe from parallel kernels.
class Watchdog {
 public:
  /// Installs options and clears all counters/trip state.
  static void Configure(const WatchdogOptions& options);
  static WatchdogOptions options();

  /// True when scans should run (policy != kOff).
  static bool active();

  /// Scans `n` floats for NaN/Inf; returns how many it found and applies
  /// the policy when nonzero. `site` names the call site (e.g. "adam.grad")
  /// and must be a string literal.
  static int64_t CheckTensor(const char* site, const float* data, int64_t n);

  /// Applies the policy when `norm` exceeds max_grad_norm or is non-finite.
  static void CheckNorm(const char* site, double norm);

  /// Total anomalies observed since Configure (NaN/Inf elements count
  /// individually; each norm explosion counts once).
  static int64_t events();

  /// True once an anomaly was seen under the kAbort policy.
  static bool tripped();

  /// OK unless tripped() — then an Internal status naming the first
  /// offending site. Training loops call this after each optimizer step;
  /// the trip stays set until Configure/ResetForTest.
  static Status ConsumeStatus();

  static void ResetForTest();
};

#else  // !OPENIMA_OBS_ENABLED

/// Compiled-out watchdog: every member is an inline no-op, so call sites
/// (`if (Watchdog::active())` blocks, ConsumeStatus in training loops)
/// vanish entirely — the PR 4 zero-overhead guarantee.
class Watchdog {
 public:
  static void Configure(const WatchdogOptions&) {}
  static WatchdogOptions options() { return WatchdogOptions(); }
  static constexpr bool active() { return false; }
  static int64_t CheckTensor(const char*, const float*, int64_t) { return 0; }
  static void CheckNorm(const char*, double) {}
  static int64_t events() { return 0; }
  static constexpr bool tripped() { return false; }
  static Status ConsumeStatus() { return Status::OK(); }
  static void ResetForTest() {}
};

#endif  // OPENIMA_OBS_ENABLED

/// Reads OPENIMA_WATCHDOG (off|record|warn|abort) and
/// OPENIMA_WATCHDOG_MAX_NORM (a double) and configures the watchdog.
/// Unset/empty leaves the watchdog off; a malformed value warns on stderr.
/// Safe to call repeatedly. No-op under OPENIMA_OBS=OFF.
void InitWatchdogFromEnv();

}  // namespace openima::obs

#endif  // OPENIMA_OBS_WATCHDOG_H_
