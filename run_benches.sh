#!/bin/bash
# Regenerates bench_output.txt: every table/figure bench at the default
# single-core-budget settings (1 split seed; pass flags for more fidelity).
# Ordered so the paper's main results come first.
cd "$(dirname "$0")"
for b in bench_theorem1 bench_fig1b bench_table3 bench_table5 bench_fig2 \
         bench_table4 bench_table6 bench_table7 bench_ablation bench_micro; do
  echo "===== $b ====="
  ./build/bench/$b
  echo
done
