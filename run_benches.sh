#!/bin/bash
# Regenerates bench_output.txt: every table/figure bench at the default
# single-core-budget settings (1 split seed; pass flags for more fidelity).
# Ordered so the paper's main results come first.
cd "$(dirname "$0")"

# Benchmarks recorded from anything but a Release build are lies — refuse
# to run. (bench/kernel_bench_output.txt and BENCH_kernels.json are
# committed artifacts; a Debug recording would silently replace real
# numbers with noise.)
build_type=$(grep -E '^CMAKE_BUILD_TYPE:' build/CMakeCache.txt 2>/dev/null \
             | cut -d= -f2)
if [ "$build_type" != "Release" ]; then
  echo "refusing to benchmark: build/ is '${build_type:-missing}', not" \
       "Release" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && " \
       "cmake --build build -j" >&2
  exit 1
fi

# A sanitizer flag left in the build cache poisons the numbers just as badly
# (~5x slowdowns that look like kernel regressions). Refuse that too.
sanitize=$(grep -E '^OPENIMA_SANITIZE:' build/CMakeCache.txt 2>/dev/null \
           | cut -d= -f2)
if [ -n "$sanitize" ] && [ "$sanitize" != "OFF" ]; then
  echo "refusing to benchmark: build/ has OPENIMA_SANITIZE=$sanitize baked" \
       "in — sanitized perf numbers are ~5x off" >&2
  echo "  cmake -B build -S . -DOPENIMA_SANITIZE= && cmake --build build -j" >&2
  exit 1
fi

# A leaked OPENIMA_WORKERS env silently turns every sampled run into
# data-parallel mode — the recorded rows would claim to be the serial
# baseline while measuring something else. Worker counts for committed
# records must be explicit flags (bench_scale's default sweep covers the
# data-parallel row).
if [ -n "$OPENIMA_WORKERS" ]; then
  echo "refusing to benchmark: OPENIMA_WORKERS=$OPENIMA_WORKERS is set —" \
       "unset it; committed records pin worker counts via explicit flags" >&2
  exit 1
fi

# Leaked trace/telemetry envs are worse than leaked worker counts: every
# bench binary would append JSONL into the SAME file the env names,
# corrupting whatever artifact it points at — and if the path lies outside
# build/, the stray file lands in the worktree (or anywhere at all) where
# it can get committed. Allow build/-internal paths (throwaway debugging),
# refuse everything else.
for var in OPENIMA_TRACE OPENIMA_TELEMETRY; do
  val=$(eval "echo \"\$$var\"")
  if [ -n "$val" ]; then
    case "$val" in
      build/*|"$PWD"/build/*) ;;  # scratch inside the build tree is fine
      *)
        echo "refusing to benchmark: $var=$val points outside build/ —" \
             "every bench would append into that file, corrupting it and" \
             "stranding an uncommittable artifact. Unset $var or point it" \
             "under build/." >&2
        exit 1
        ;;
    esac
  fi
done

# Native-arch builds are host-specific: the baseline codegen (and so the
# scalar backend's numbers, plus the scalar-vs-avx2 backend gap) changes
# with the build host's ISA, making the recorded BENCH_*.json incomparable
# across machines. Warn loudly but keep going — a local throwaway
# comparison is still legitimate.
native=$(grep -E '^OPENIMA_NATIVE_ARCH:' build/CMakeCache.txt 2>/dev/null \
         | cut -d= -f2)
if [ "$native" = "ON" ]; then
  echo "WARNING: build/ has OPENIMA_NATIVE_ARCH=ON (-march=native) —" \
       "recorded numbers are specific to this host's ISA and the" \
       "scalar-backend rows no longer reflect the portable baseline." \
       "Do not commit BENCH_*.json from this build." >&2
fi

for b in bench_theorem1 bench_fig1b bench_table3 bench_table5 bench_fig2 \
         bench_table4 bench_table6 bench_table7 bench_ablation bench_micro; do
  echo "===== $b ====="
  ./build/bench/$b
  echo
done

# Kernel benchmarks: seed (naive) GEMM vs the blocked register-tiled kernel,
# GAT fwd/bwd and one K-Means iteration under explicit thread counts, the
# end-to-end training-epoch benchmark with the memory arena on/off, the
# clustering fast paths (plain vs accelerated K-Means, scalar vs blocked
# silhouette, cold vs warm-start novel-count sweep), and the per-kernel-
# backend rows (BM_GemmBackend/BM_DistanceBackend/BM_TrainEpochBackend,
# suffixed /scalar and — on qualifying hosts — /avx2; the avx2 rows are
# simply absent elsewhere, so diffs across hosts stay well-defined).
# The recorded human-readable run lives in bench/kernel_bench_output.txt;
# the machine-readable record is BENCH_kernels.json at the repo root.
echo "===== kernel benchmarks ====="
./build/bench/bench_micro \
  --benchmark_filter='Gemm|GatForwardBackwardThreads|KMeans|TrainEpoch|Silhouette|NovelCount|Backend' \
  --benchmark_min_time=0.2 \
  --benchmark_out=BENCH_kernels.json \
  --benchmark_out_format=json

# End-to-end training benchmark: the quickstart run with telemetry on,
# recording epoch / pseudo-label-refresh timings and the final accuracies
# (BENCH_train.json, "openima-bench-train" schema — see EXPERIMENTS.md).
# Timing fields end in "_ms", which tools/run_diff ignores by default; the
# "final" block is the regression-gated payload:
#   ./build/tools/run_diff BENCH_train.json <old>/BENCH_train.json
echo
echo "===== training benchmark ====="
# The telemetry series is a build artifact, not a committed record — keep
# it under build/ so a run from the repo root cannot strand a stray
# telemetry_train.jsonl in the worktree.
./build/examples/quickstart \
  --bench-json=BENCH_train.json \
  --telemetry=build/telemetry_train.jsonl

# Full-scale sampled-training benchmark: an unscaled ogbn-arxiv-sized
# graph (169k nodes, ~1.17M edges) trained in neighbor-sampled minibatch
# mode. Records peak RSS, per-epoch wall time and seed-node throughput to
# BENCH_scale.json — numbers the full-graph trainer cannot produce at this
# size on a CPU budget.
echo
echo "===== full-scale sampled training benchmark ====="
./build/bench/bench_scale --bench-json=BENCH_scale.json

# Frozen-model serving benchmark: train the quickstart model once to a
# checkpoint (a build artifact, kept under build/ like the telemetry
# series), then push batched classify requests through openima_serve —
# per-batch-size p50/p99 latency, throughput, and phase timings, plus a
# deterministic prediction checksum, into BENCH_serve.json
# ("openima-bench-serve" schema — SERVING.md / EXPERIMENTS.md).
echo
echo "===== serving benchmark ====="
./build/examples/quickstart --checkpoint-out=build/bench_serve_model.ckpt \
  > /dev/null
# Recorded with the live-observability stack on (metrics export + 1-in-64
# request tracing + drift-free warmed sessions): the committed numbers are
# the ones a production deployment with dashboards enabled would see. The
# trace and metrics snapshots are build artifacts, kept under build/.
OPENIMA_TRACE=build/serve_trace.json OPENIMA_TRACE_SAMPLE=64 \
./build/tools/openima_serve \
  --checkpoint=build/bench_serve_model.ckpt \
  --warmup-requests=8 \
  --metrics-export=build/serve_metrics.json \
  --bench-json=BENCH_serve.json

# Every machine-readable artifact this script emitted must parse as its
# schema — catches a silently truncated/garbled recording before it gets
# committed or compared. Validation failure fails the whole script (a
# malformed artifact must never be committed because the recording step
# happened to be the last command).
echo
echo "===== artifact validation ====="
if ! ./build/tools/run_diff --validate \
  BENCH_train.json BENCH_kernels.json BENCH_scale.json BENCH_serve.json \
  build/telemetry_train.jsonl build/serve_metrics.json; then
  echo "run_benches.sh: artifact validation FAILED — discard the" \
       "artifacts above, do not commit them" >&2
  exit 1
fi
