#!/bin/bash
# Regenerates bench_output.txt: every table/figure bench at the default
# single-core-budget settings (1 split seed; pass flags for more fidelity).
# Ordered so the paper's main results come first.
cd "$(dirname "$0")"
for b in bench_theorem1 bench_fig1b bench_table3 bench_table5 bench_fig2 \
         bench_table4 bench_table6 bench_table7 bench_ablation bench_micro; do
  echo "===== $b ====="
  ./build/bench/$b
  echo
done

# Kernel benchmarks: seed (naive) GEMM vs the blocked register-tiled kernel,
# plus GAT fwd/bwd and one K-Means iteration under explicit thread counts.
# The recorded run lives in bench/kernel_bench_output.txt.
echo "===== kernel benchmarks ====="
./build/bench/bench_micro \
  --benchmark_filter='Gemm|GatForwardBackwardThreads|KMeansIteration' \
  --benchmark_min_time=0.2
