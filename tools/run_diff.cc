// run_diff — the regression gate for run artifacts.
//
//   run_diff A B                 diff two artifacts (exit 1 on mismatch)
//   run_diff --tolerances T A B  apply the tolerance rules in T first
//   run_diff --validate F...     schema-check artifacts (exit 1 on failure)
//
// Artifacts are detected from content: telemetry JSONL logs, RunReport
// JSON, BENCH_train.json ("openima-bench-train") and google-benchmark
// output. Volatile sections (build/host metadata, wall-clock timings) are
// ignored by default; everything else must match exactly unless a
// tolerance rule says otherwise (see EXPERIMENTS.md for the rule format).
//
// Exit codes: 0 = pass, 1 = regression/validation failure, 2 = usage or
// I/O error.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/run_diff.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: run_diff [--tolerances FILE] [--max-reported N] A B\n"
               "       run_diff --validate FILE...\n");
  return 2;
}

int RunValidate(const std::vector<std::string>& paths) {
  if (paths.empty()) return Usage();
  bool failed = false;
  for (const std::string& path : paths) {
    openima::obs::ArtifactType type = openima::obs::ArtifactType::kUnknown;
    auto loaded = openima::obs::LoadArtifact(path, &type);
    const openima::Status status =
        loaded.ok() ? openima::obs::ValidateArtifact(path) : loaded.status();
    if (status.ok()) {
      std::printf("OK       %-18s %s\n", openima::obs::ArtifactTypeName(type),
                  path.c_str());
    } else {
      std::printf("INVALID  %s: %s\n", path.c_str(),
                  status.ToString().c_str());
      failed = true;
    }
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string tolerance_path;
  bool validate = false;
  openima::obs::DiffOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--tolerances") {
      if (++i >= argc) return Usage();
      tolerance_path = argv[i];
    } else if (arg == "--max-reported") {
      if (++i >= argc) return Usage();
      options.max_reported = std::atoi(argv[i]);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "run_diff: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (validate) return RunValidate(positional);
  if (positional.size() != 2) return Usage();

  if (!tolerance_path.empty()) {
    auto rules = openima::obs::LoadToleranceFile(tolerance_path);
    if (!rules.ok()) {
      std::fprintf(stderr, "run_diff: %s\n",
                   rules.status().ToString().c_str());
      return 2;
    }
    options.rules = std::move(*rules);
  }

  auto result =
      openima::obs::DiffArtifacts(positional[0], positional[1], options);
  if (!result.ok()) {
    std::fprintf(stderr, "run_diff: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }

  if (result->ok()) {
    std::printf("PASS: %lld values compared, no mismatches\n",
                static_cast<long long>(result->values_compared));
    return 0;
  }
  std::printf("FAIL: %lld mismatch(es) over %lld values\n",
              static_cast<long long>(result->total_mismatches),
              static_cast<long long>(result->values_compared));
  for (const auto& mismatch : result->mismatches) {
    std::printf("  %s: %s\n", mismatch.path.c_str(), mismatch.detail.c_str());
  }
  if (result->total_mismatches >
      static_cast<int64_t>(result->mismatches.size())) {
    std::printf("  ... and %lld more\n",
                static_cast<long long>(
                    result->total_mismatches -
                    static_cast<int64_t>(result->mismatches.size())));
  }
  return 1;
}
