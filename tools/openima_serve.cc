// openima_serve: frozen-model open-world inference benchmark (SERVING.md).
//
// Loads a training checkpoint written by `quickstart --checkpoint-out` (or
// OpenImaModel::SaveCheckpoint), regenerates the quickstart SBM graph the
// checkpoint was trained on, and drives batched classify-node requests
// through core::InferenceService from several driver threads. Per-request
// latencies land in obs histogram buckets; p50/p99 and throughput per batch
// size are written to an "openima-bench-serve" document that
// `run_diff --validate` understands (EXPERIMENTS.md).
//
//   ./openima_serve --checkpoint=model.ckpt
//   ./openima_serve --checkpoint=model.ckpt --bench-json=BENCH_serve.json
//   ./openima_serve --checkpoint=model.ckpt --batch-sizes=1,16,64 \
//       --requests=256 --threads=4 --fanout=0 --seed=1 --warmup=8
//   ./openima_serve --checkpoint=model.ckpt --warmup-requests=4
//   ./openima_serve --checkpoint=model.ckpt --backend=scalar  # pin kernels
//   ./openima_serve --checkpoint=model.ckpt --metrics-export=serve.json
//       --trace-sample=64 --drift=warn  # live obs knobs
//
// Live observability: --metrics-export periodically writes the exposition
// snapshot (JSON + .prom twin, watchable with tools/openima_top);
// --trace-sample=N records full phase spans for 1-in-N requests when
// tracing (OPENIMA_TRACE) is on; --drift enables the online drift monitor
// (policy off|record|warn|abort, window via --drift-window).
//
// Everything except the wall-clock numbers is deterministic: the "final"
// block per batch size (classified count, novel fraction, a FNV-1a
// checksum over the predicted classes in request order) is independent of
// the thread count and schedule, so two serve runs off the same checkpoint
// diff clean under tools/run_diff.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/serve.h"
#include "src/graph/synthetic.h"
#include "src/la/backend/backend.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace {

using namespace openima;

// One benchmarked batch size.
struct ServeRun {
  int batch_size = 0;
  int requests = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double throughput_req_per_sec = 0.0;
  double throughput_nodes_per_sec = 0.0;
  // Per-phase totals over the timed window (ms); 0 under OPENIMA_OBS=OFF.
  double sample_ms = 0.0;
  double gather_ms = 0.0;
  double forward_ms = 0.0;
  double distance_ms = 0.0;
  int num_classified = 0;
  int num_novel = 0;
  uint64_t prediction_checksum = 0;
};

double HistTotalMs(const obs::MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.histograms.find(name);
  return it == snap.histograms.end()
             ? 0.0
             : static_cast<double>(it->second.sum) / 1e6;
}

uint64_t Fnv1a64Step(uint64_t hash, uint32_t value) {
  for (int b = 0; b < 4; ++b) {
    hash ^= (value >> (8 * b)) & 0xffu;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  obs::InitFromEnv();
  if (const std::string backend = flags.GetString("backend", "");
      !backend.empty()) {
    if (Status s = la::backend::SetDefault(backend); !s.ok()) {
      std::fprintf(stderr, "backend: %s\n", s.ToString().c_str());
      return s.code() == StatusCode::kFailedPrecondition ? 77 : 1;
    }
  }
  const std::string checkpoint_path = flags.GetString("checkpoint", "");
  if (checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "usage: openima_serve --checkpoint=<path> "
                 "[--batch-sizes=1,16,64] [--requests=256] [--threads=4] "
                 "[--fanout=0] [--seed=1] [--warmup=8] [--warmup-requests=4] "
                 "[--bench-json=BENCH_serve.json] [--backend=auto] "
                 "[--metrics-export=<path>] [--metrics-export-interval-ms=1000] "
                 "[--trace-sample=N] [--drift=off|record|warn|abort] "
                 "[--drift-window=256]\n");
    return 1;
  }
  const int threads = std::max(1, flags.GetInt("threads", 4));
  const int requests = std::max(1, flags.GetInt("requests", 256));
  const int warmup = std::max(0, flags.GetInt("warmup", 8));
  // Per-session warmup requests excluded from the timed window (the first
  // requests through a fresh session pay one-time allocation/cache costs
  // that used to land in the latency histogram and skew p99).
  const int warmup_requests = std::max(0, flags.GetInt("warmup-requests", 4));
  const int fanout = flags.GetInt("fanout", 0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string bench_json_path = flags.GetString("bench-json", "");

  if (flags.Has("trace-sample")) {
    obs::SetTraceSamplePeriod(flags.GetInt("trace-sample", 1));
  }
  if (const std::string export_path = flags.GetString("metrics-export", "");
      !export_path.empty() && obs::GlobalMetricsExporter() == nullptr) {
    obs::ExporterOptions export_options;
    export_options.path = export_path;
    export_options.interval_ms = flags.GetInt("metrics-export-interval-ms", 1000);
    if (Status s = obs::StartMetricsExporter(export_options); !s.ok()) {
      std::fprintf(stderr, "metrics-export: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::vector<int> batch_sizes;
  for (const std::string& part :
       Split(flags.GetString("batch-sizes", "1,16,64"), ',')) {
    const int b = std::atoi(part.c_str());
    if (b <= 0) {
      std::fprintf(stderr, "bad --batch-sizes entry \"%s\"\n", part.c_str());
      return 1;
    }
    batch_sizes.push_back(b);
  }

  // The graph the quickstart checkpoint was trained on (features are part
  // of the model's input contract — Load() checks the dimension).
  graph::SbmConfig data_config;
  data_config.num_nodes = 600;
  data_config.num_classes = 6;
  data_config.feature_dim = 24;
  data_config.avg_degree = 12.0;
  data_config.homophily = 0.8;
  data_config.feature_noise = 1.5;
  auto dataset = graph::GenerateSbm(data_config, /*seed=*/42, "quickstart");
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  core::ServeOptions options;
  options.sample_fanout = fanout;
  options.drift = obs::DriftOptionsFromEnv();
  if (const std::string drift = flags.GetString("drift", ""); !drift.empty()) {
    auto policy = obs::ParseWatchdogPolicy(drift);
    if (!policy.ok()) {
      std::fprintf(stderr, "drift: %s\n", policy.status().ToString().c_str());
      return 1;
    }
    options.drift.policy = policy.value();
  }
  if (flags.Has("drift-window")) {
    options.drift.window = std::max(1, flags.GetInt("drift-window", 256));
  }
  auto service_or =
      core::InferenceService::Load(checkpoint_path, &*dataset, options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  const core::InferenceService& service = **service_or;
  std::printf(
      "serving %s (epoch %d, %d clusters, %d seen classes) on %s, "
      "%d threads, fanout %d\n",
      checkpoint_path.c_str(), service.epochs_done(), service.num_clusters(),
      service.num_seen(), la::backend::Default().name(), threads, fanout);

  const int n = dataset->num_nodes();
  std::vector<ServeRun> runs;
  for (const int batch : batch_sizes) {
    if (batch > n) {
      std::fprintf(stderr, "batch size %d exceeds the %d-node graph\n", batch,
                   n);
      return 1;
    }
    ServeRun run;
    run.batch_size = batch;
    run.requests = requests;

    // Request streams are pure functions of (seed, batch, request index),
    // so every thread schedule classifies the same node sets.
    std::vector<std::vector<int>> request_nodes(
        static_cast<size_t>(requests));
    for (int i = 0; i < requests; ++i) {
      Rng rng(DeriveStreamSeed(seed, static_cast<uint64_t>(batch) * 1000003u +
                                         static_cast<uint64_t>(i)));
      request_nodes[static_cast<size_t>(i)] =
          rng.SampleWithoutReplacement(n, batch);
    }

    // Untimed warmup (first touches populate caches and the sampler
    // workspace) on a throwaway session.
    {
      auto session = service.NewSession();
      std::vector<core::ClassifyResult> scratch;
      for (int i = 0; i < warmup; ++i) {
        const auto& nodes = request_nodes[static_cast<size_t>(i % requests)];
        if (Status s = session->Classify(nodes, static_cast<uint64_t>(i),
                                         &scratch);
            !s.ok()) {
          std::fprintf(stderr, "warmup: %s\n", s.ToString().c_str());
          return 1;
        }
      }
    }

    // Driver sessions are created AND warmed before the clock starts:
    // session construction (model replica allocation) and each session's
    // first requests pay one-time costs that belong to startup, not to the
    // steady-state latency distribution (they used to put b1's p99 at
    // ~190x its p50).
    std::vector<std::unique_ptr<core::InferenceSession>> sessions;
    sessions.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      sessions.push_back(service.NewSession());
      std::vector<core::ClassifyResult> scratch;
      for (int i = 0; i < warmup_requests; ++i) {
        const auto& nodes = request_nodes[static_cast<size_t>(i % requests)];
        if (Status s = sessions.back()->Classify(
                nodes, static_cast<uint64_t>(i), &scratch);
            !s.ok()) {
          std::fprintf(stderr, "session warmup: %s\n", s.ToString().c_str());
          return 1;
        }
      }
    }

    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global()->Snapshot();
    obs::Histogram* latency = obs::MetricsRegistry::Global()->histogram(
        StrFormat("serve.request_ns/b%d", batch));

    // Timed window: `threads` drivers, each with a private pre-warmed
    // session, draining a shared atomic request queue.
    std::vector<std::vector<core::ClassifyResult>> results(
        static_cast<size_t>(requests));
    std::atomic<int> next{0};
    std::atomic<bool> failed{false};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      drivers.emplace_back([&, t] {
        core::InferenceSession* session = sessions[static_cast<size_t>(t)].get();
        while (true) {
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= requests || failed.load(std::memory_order_relaxed)) break;
          const auto r0 = std::chrono::steady_clock::now();
          Status s = session->Classify(request_nodes[static_cast<size_t>(i)],
                                       static_cast<uint64_t>(i),
                                       &results[static_cast<size_t>(i)]);
          const auto r1 = std::chrono::steady_clock::now();
          if (!s.ok()) {
            std::fprintf(stderr, "classify: %s\n", s.ToString().c_str());
            failed.store(true, std::memory_order_relaxed);
            break;
          }
          latency->Record(
              std::chrono::duration_cast<std::chrono::nanoseconds>(r1 - r0)
                  .count());
        }
      });
    }
    for (std::thread& d : drivers) d.join();
    const double elapsed_sec =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        1e9;
    if (failed.load()) return 1;

    const obs::MetricsSnapshot after =
        obs::MetricsRegistry::Global()->Snapshot();
    const obs::HistogramSnapshot lat =
        after.histograms.at(StrFormat("serve.request_ns/b%d", batch));
    run.latency_p50_ms = obs::HistogramQuantile(lat, 0.50) / 1e6;
    run.latency_p99_ms = obs::HistogramQuantile(lat, 0.99) / 1e6;
    run.latency_mean_ms = lat.Mean() / 1e6;
    run.throughput_req_per_sec =
        elapsed_sec > 0.0 ? requests / elapsed_sec : 0.0;
    run.throughput_nodes_per_sec = run.throughput_req_per_sec * batch;
    run.sample_ms = HistTotalMs(after, "time/serve_sample") -
                    HistTotalMs(before, "time/serve_sample");
    run.gather_ms = HistTotalMs(after, "time/serve_gather") -
                    HistTotalMs(before, "time/serve_gather");
    run.forward_ms = HistTotalMs(after, "time/serve_forward") -
                     HistTotalMs(before, "time/serve_forward");
    run.distance_ms = HistTotalMs(after, "time/serve_distance") -
                      HistTotalMs(before, "time/serve_distance");

    // Deterministic payload: walk the results in request order (independent
    // of which thread served what).
    uint64_t checksum = 0xcbf29ce484222325ULL;
    for (const auto& batch_results : results) {
      for (const core::ClassifyResult& r : batch_results) {
        ++run.num_classified;
        run.num_novel += r.is_novel ? 1 : 0;
        checksum = Fnv1a64Step(checksum, static_cast<uint32_t>(r.class_id));
      }
    }
    run.prediction_checksum = checksum;

    std::printf(
        "  b=%-4d %5d req  p50 %.3f ms  p99 %.3f ms  %.0f req/s  "
        "%.0f nodes/s  novel %.1f%%  checksum %016llx\n",
        batch, requests, run.latency_p50_ms, run.latency_p99_ms,
        run.throughput_req_per_sec, run.throughput_nodes_per_sec,
        100.0 * run.num_novel / run.num_classified,
        static_cast<unsigned long long>(run.prediction_checksum));
    runs.push_back(run);
  }

  if (!bench_json_path.empty()) {
    using obs::json::Value;
    Value doc = Value::Object();
    doc.Set("schema", Value::Str("openima-bench-serve"));
    Value run_meta = Value::Object();
    run_meta.Set("dataset", Value::Str(dataset->name));
    run_meta.Set("num_nodes", Value::Int(dataset->num_nodes()));
    run_meta.Set("checkpoint", Value::Str(checkpoint_path));
    run_meta.Set("checkpoint_epoch", Value::Int(service.epochs_done()));
    run_meta.Set("threads", Value::Int(threads));
    run_meta.Set("fanout", Value::Int(fanout));
    run_meta.Set("warmup_requests", Value::Int(warmup_requests));
    run_meta.Set("backend", Value::Str(la::backend::Default().name()));
    doc.Set("run", std::move(run_meta));
    Value runs_json = Value::Array();
    for (const ServeRun& run : runs) {
      Value entry = Value::Object();
      entry.Set("name", Value::Str(StrFormat("serve/b%d", run.batch_size)));
      entry.Set("batch_size", Value::Int(run.batch_size));
      entry.Set("requests", Value::Int(run.requests));
      entry.Set("latency_p50_ms", Value::Double(run.latency_p50_ms));
      entry.Set("latency_p99_ms", Value::Double(run.latency_p99_ms));
      entry.Set("latency_mean_ms", Value::Double(run.latency_mean_ms));
      entry.Set("throughput_req_per_sec",
                Value::Double(run.throughput_req_per_sec));
      entry.Set("throughput_nodes_per_sec",
                Value::Double(run.throughput_nodes_per_sec));
      Value phases = Value::Object();
      phases.Set("sample", Value::Double(run.sample_ms));
      phases.Set("gather", Value::Double(run.gather_ms));
      phases.Set("forward", Value::Double(run.forward_ms));
      phases.Set("distance", Value::Double(run.distance_ms));
      entry.Set("phase_ms", std::move(phases));
      Value final_block = Value::Object();
      final_block.Set("num_classified", Value::Int(run.num_classified));
      final_block.Set("num_novel", Value::Int(run.num_novel));
      final_block.Set(
          "novel_fraction",
          Value::Double(static_cast<double>(run.num_novel) /
                        static_cast<double>(run.num_classified)));
      final_block.Set("prediction_checksum",
                      Value::Str(StrFormat(
                          "%016llx", static_cast<unsigned long long>(
                                         run.prediction_checksum))));
      entry.Set("final", std::move(final_block));
      runs_json.Append(std::move(entry));
    }
    doc.Set("runs", std::move(runs_json));
    const std::string text = doc.Dump(1);
    std::FILE* f = std::fopen(bench_json_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
      std::fprintf(stderr, "bench-json: cannot write %s\n",
                   bench_json_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote serve benchmark to %s\n", bench_json_path.c_str());
  }

  if (const obs::DriftMonitor* drift = service.drift_monitor()) {
    const obs::DriftStats stats = drift->stats();
    std::printf(
        "drift: %lld observations, %lld windows, %lld alerts"
        " (novel %.3f vs baseline %.3f, entropy %.3f vs %.3f)\n",
        static_cast<long long>(stats.observations),
        static_cast<long long>(stats.windows_completed),
        static_cast<long long>(stats.alerts), stats.last_novel_fraction,
        stats.baseline_novel_fraction, stats.last_entropy,
        stats.baseline_entropy);
  }
  if (obs::MetricsExporter* exporter = obs::GlobalMetricsExporter()) {
    const std::string export_path = exporter->options().path;
    obs::StopMetricsExporter();  // final export rides on Stop()
    std::printf("wrote metrics snapshot to %s (+ .prom)\n",
                export_path.c_str());
  }
  return 0;
}
