// openima_top: live text dashboard over MetricsExporter snapshots.
//
// Tails the ordered-JSON exposition file a trainer or openima_serve writes
// under --metrics-export / OPENIMA_METRICS_EXPORT (atomic renames, so a
// read never sees a torn document) and renders counters, gauges, windowed
// rates/latencies, the phase table, and drift-monitor state, refreshing in
// place like top(1):
//
//   ./openima_top --snapshot=build/serve_metrics.json
//   ./openima_top --snapshot=run.json --interval-ms=500
//   ./openima_top --snapshot=run.json --iterations=1 --no-clear  # one frame
//
// Counter rates are derived from successive snapshots (delta per refresh
// interval), so the dashboard needs no cooperation from the producer beyond
// the file itself. A missing or mid-write file is retried; with
// --iterations=N the tool exits nonzero if a frame never renders.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.h"
#include "src/util/flags.h"
#include "src/util/status.h"

namespace {

using namespace openima;
using obs::json::Value;

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string text;
  char buf[1 << 14];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

double NumberOr(const Value& obj, const char* key, double fallback) {
  const Value* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

// "_ns"-suffixed metrics render in milliseconds.
bool IsNanos(const std::string& name) {
  return name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

double ScaleFor(const std::string& name) { return IsNanos(name) ? 1e6 : 1.0; }

void RenderFrame(const Value& doc,
                 const std::map<std::string, double>& prev_counters,
                 double interval_sec) {
  std::printf("openima_top — sequence %lld, tick %lld\n",
              static_cast<long long>(NumberOr(doc, "sequence", 0)),
              static_cast<long long>(NumberOr(doc, "tick", 0)));

  const Value* counters = doc.Find("counters");
  if (counters != nullptr && counters->is_object() && counters->size() > 0) {
    std::printf("\n%-44s %14s %12s\n", "counter", "total", "delta/s");
    for (const auto& [name, value] : counters->items()) {
      if (!value.is_number()) continue;
      const double total = value.AsDouble();
      auto it = prev_counters.find(name);
      std::string rate = "-";
      if (it != prev_counters.end() && interval_sec > 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f",
                      (total - it->second) / interval_sec);
        rate = buf;
      }
      std::printf("%-44s %14.0f %12s\n", name.c_str(), total, rate.c_str());
    }
  }

  const Value* gauges = doc.Find("gauges");
  if (gauges != nullptr && gauges->is_object() && gauges->size() > 0) {
    std::printf("\n%-44s %14s\n", "gauge", "value");
    for (const auto& [name, value] : gauges->items()) {
      if (!value.is_number()) continue;
      std::printf("%-44s %14.4f\n", name.c_str(), value.AsDouble());
    }
  }

  const Value* windows = doc.Find("windows");
  if (windows != nullptr && windows->is_object()) {
    const Value* wc = windows->Find("counters");
    if (wc != nullptr && wc->is_object() && wc->size() > 0) {
      std::printf("\n%-38s %8s %12s %12s\n", "window counter", "window",
                  "total", "rate/tick");
      for (const auto& [name, entry] : wc->items()) {
        if (!entry.is_object()) continue;
        std::printf("%-38s %8.0f %12.0f %12.3f\n", name.c_str(),
                    NumberOr(entry, "window", 0), NumberOr(entry, "total", 0),
                    NumberOr(entry, "rate_per_tick", 0));
      }
    }
    const Value* wh = windows->Find("histograms");
    if (wh != nullptr && wh->is_object() && wh->size() > 0) {
      std::printf("\n%-38s %8s %8s %10s %10s %10s\n", "window histogram",
                  "window", "count", "p50", "p99", "p999");
      for (const auto& [name, entry] : wh->items()) {
        if (!entry.is_object()) continue;
        const double scale = ScaleFor(name);
        std::printf("%-38s %8.0f %8.0f %10.3f %10.3f %10.3f%s\n", name.c_str(),
                    NumberOr(entry, "window", 0), NumberOr(entry, "count", 0),
                    NumberOr(entry, "p50", 0) / scale,
                    NumberOr(entry, "p99", 0) / scale,
                    NumberOr(entry, "p999", 0) / scale,
                    IsNanos(name) ? " ms" : "");
      }
    }
  }

  // Phase table: the "time/..." histograms, heaviest first.
  const Value* histograms = doc.Find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    std::vector<std::pair<double, std::string>> phases;
    for (const auto& [name, entry] : histograms->items()) {
      if (name.rfind("time/", 0) != 0 || !entry.is_object()) continue;
      phases.emplace_back(NumberOr(entry, "sum", 0), name.substr(5));
    }
    if (!phases.empty()) {
      std::sort(phases.rbegin(), phases.rend());
      std::printf("\n%-44s %12s\n", "phase", "total ms");
      const size_t shown = phases.size() < 12 ? phases.size() : 12;
      for (size_t i = 0; i < shown; ++i) {
        std::printf("%-44s %12.3f\n", phases[i].second.c_str(),
                    phases[i].first / 1e6);
      }
      if (shown < phases.size()) {
        std::printf("  ... %zu more phases\n", phases.size() - shown);
      }
    }
  }

  // Drift state, if the producer runs a DriftMonitor.
  if (gauges != nullptr && gauges->is_object() &&
      gauges->Find("drift.novel_fraction") != nullptr) {
    const double alerts =
        counters != nullptr && counters->Find("drift.alerts") != nullptr
            ? counters->at("drift.alerts").AsDouble()
            : 0.0;
    std::printf("\ndrift: novel %.3f  entropy %.3f  distance2 %.4f  %s (%.0f "
                "alerts)\n",
                NumberOr(*gauges, "drift.novel_fraction", 0),
                NumberOr(*gauges, "drift.entropy", 0),
                NumberOr(*gauges, "drift.distance2", 0),
                alerts > 0 ? "ALERTING" : "ok", alerts);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string snapshot_path = flags.GetString("snapshot", "");
  if (snapshot_path.empty()) {
    std::fprintf(stderr,
                 "usage: openima_top --snapshot=<exported .json> "
                 "[--interval-ms=1000] [--iterations=0] [--no-clear]\n");
    return 1;
  }
  const int interval_ms = std::max(50, flags.GetInt("interval-ms", 1000));
  // 0 = run until interrupted; N = render N frames then exit (smoke tests).
  const int iterations = std::max(0, flags.GetInt("iterations", 0));
  const bool clear = !flags.GetBool("no-clear", false);

  std::map<std::string, double> prev_counters;
  int rendered = 0;
  int consecutive_failures = 0;
  for (int frame = 0; iterations == 0 || rendered < iterations; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    auto text = ReadWholeFile(snapshot_path);
    StatusOr<Value> doc =
        text.ok() ? Value::Parse(*text)
                  : StatusOr<Value>(text.status());
    if (!doc.ok()) {
      // Producer not started yet, or we raced its very first write. Keep
      // waiting a bounded number of intervals before giving up.
      if (++consecutive_failures >= 60) {
        std::fprintf(stderr, "openima_top: giving up on %s: %s\n",
                     snapshot_path.c_str(), doc.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "openima_top: waiting for %s (%s)\n",
                   snapshot_path.c_str(), doc.status().ToString().c_str());
      continue;
    }
    consecutive_failures = 0;
    if (clear) std::printf("\033[2J\033[H");
    RenderFrame(*doc, prev_counters, interval_ms / 1e3);
    ++rendered;

    prev_counters.clear();
    if (const Value* counters = doc->Find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [name, value] : counters->items()) {
        if (value.is_number()) prev_counters[name] = value.AsDouble();
      }
    }
  }
  return 0;
}
