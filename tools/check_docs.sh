#!/bin/bash
# Docs <-> code consistency gate (registered as the `docs_check` ctest,
# label "docs"). Two directions:
#
#  1. UNDOCUMENTED: every --flag accepted by the user-facing binaries
#     (examples/quickstart.cpp, tools/openima_serve.cc,
#     tools/openima_top.cc) and every
#     OPENIMA_* environment variable read anywhere in src/examples/tools/
#     bench must be mentioned in at least one of README.md / DESIGN.md /
#     EXPERIMENTS.md / SERVING.md.
#
#  2. PHANTOM: every --flag and OPENIMA_* token the docs mention must
#     exist in code — a doc-mentioned flag no binary accepts, or an env
#     var nothing reads (and no CMake option or C++ macro defines), is a
#     stale reference that silently misleads users.
#
# Flags are discovered syntactically: `flags.GetX("name")` / `flags.Has`
# calls plus the literal `"--name"` comparisons of manual parsers
# (run_diff). Build-tool flags that belong to cmake/ctest/google-benchmark
# rather than to this repo are allowlisted below.
#
# Usage: check_docs.sh [repo_root]   (defaults to the directory above this
# script; exits non-zero listing every violation)
set -u
root=${1:-$(cd "$(dirname "$0")/.." && pwd)}
cd "$root" || exit 2

docs="README.md DESIGN.md EXPERIMENTS.md SERVING.md"
for d in $docs; do
  if [ ! -f "$d" ]; then
    echo "check_docs: required doc $d is missing" >&2
    exit 2
  fi
done

fail=0

# ---- direction 1: code -> docs (undocumented entries) ----------------------

# Flags of the user-facing binaries.
user_facing="examples/quickstart.cpp tools/openima_serve.cc tools/openima_top.cc"
accepted_user_flags=$(grep -hoE 'flags\.(Get[A-Za-z]+|Has)\("[a-z0-9_-]+"' \
                        $user_facing \
                      | sed -E 's/.*\("//; s/"//' | sort -u)
for f in $accepted_user_flags; do
  if ! grep -hqE -- "--$f([^a-z0-9_-]|\$)" $docs; then
    echo "UNDOCUMENTED flag: --$f (accepted by a user-facing binary," \
         "mentioned in none of: $docs)"
    fail=1
  fi
done

# Environment variables any binary actually reads (string literals; the
# getenv call sometimes sits behind a helper, so match the names, not the
# call).
read_envs=$(grep -rhoE '"OPENIMA_[A-Z_]+"' src examples tools bench \
            | tr -d '"' | sort -u)
for e in $read_envs; do
  if ! grep -hqE "$e([^A-Z_]|\$)" $docs; then
    echo "UNDOCUMENTED env var: $e (read by the code, mentioned in none" \
         "of: $docs)"
    fail=1
  fi
done

# ---- direction 2: docs -> code (phantom entries) ---------------------------

# Every flag any binary in the repo accepts (examples, tools, bench), via
# the Flags helper or a manual `"--x"` literal.
all_accepted=$( {
  grep -rhoE '(flags|f)\.(Get[A-Za-z]+|Has)\("[a-z0-9_-]+"' \
       examples tools bench src 2>/dev/null \
    | sed -E 's/.*\("//; s/"//'
  grep -rhoE '"--[a-z0-9_-]+"' tools examples bench 2>/dev/null \
    | sed -E 's/"--//; s/"//'
} | sort -u)

# Flags that belong to cmake / ctest / google-benchmark command lines the
# docs quote, not to this repo's binaries.
external_flag() {
  case "$1" in
    help|build|test-dir|output-on-failure|parallel|benchmark_*) return 0 ;;
    *) return 1 ;;
  esac
}

doc_flags=$(grep -hoE -- '--[a-z][a-z0-9_-]+' $docs | sed 's/^--//' | sort -u)
for f in $doc_flags; do
  if external_flag "$f"; then continue; fi
  if ! printf '%s\n' "$all_accepted" | grep -qxF "$f"; then
    echo "PHANTOM flag: --$f (mentioned in docs, accepted by no binary)"
    fail=1
  fi
done

# OPENIMA_* doc tokens must be an env var the code reads, a CMake
# option/cache variable, or a C++ macro the code #defines (OPENIMA_CHECK,
# OPENIMA_OBS_COUNT, ... appear in prose legitimately).
cmake_vars=$(grep -rhoE 'OPENIMA_[A-Z_]+' --include=CMakeLists.txt . \
             | sort -u)
macros=$(grep -rhoE '#define OPENIMA_[A-Z_]+' src \
         | sed 's/#define //' | sort -u)
known_tokens=$(printf '%s\n%s\n%s\n' "$read_envs" "$cmake_vars" "$macros" \
               | sort -u)
doc_tokens=$(grep -hoE 'OPENIMA_[A-Z_]+' $docs | sort -u)
for t in $doc_tokens; do
  if ! printf '%s\n' "$known_tokens" | grep -qxF "$t"; then
    echo "PHANTOM env/option: $t (mentioned in docs; no code reads it, no" \
         "CMake option defines it, no macro carries the name)"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED — fix the entries above (document real" \
       "flags/envs, delete stale ones)" >&2
  exit 1
fi
echo "check_docs: OK (flags and OPENIMA_* tokens consistent across:" \
     "$docs)"
