#ifndef OPENIMA_BENCH_BENCH_UTIL_H_
#define OPENIMA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/eval/experiment.h"
#include "src/exec/context.h"
#include "src/obs/obs.h"
#include "src/util/flags.h"
#include "src/util/string_util.h"
#include "src/util/table.h"

namespace openima::bench {

/// Paper-reported reference numbers (%) for one method row, so every bench
/// prints "ours vs paper" side by side. Negative = not reported.
struct PaperRef {
  double all = -1.0;
  double seen = -1.0;
  double novel = -1.0;
};

/// Shared CPU-scaled defaults, overridable from the command line:
///   --scale=0.04 --seeds=1 --features=32 --hidden=64 --heads=4
///   --epochs_two_stage=45 --epochs_end_to_end=50 --batch=2048
///   --threads=N (0 = hardware concurrency; also honors OPENIMA_THREADS)
///   --trace=path (chrome-trace span timeline; also honors OPENIMA_TRACE)
inline eval::ExperimentOptions OptionsFromFlags(const Flags& flags) {
  eval::ExperimentOptions options;
  // --threads replaces the process-default execution context that every
  // kernel falls back to; results are thread-count invariant by design.
  const int threads = flags.GetInt("threads", -1);
  if (threads >= 0) exec::SetDefaultNumThreads(threads);
  obs::InitFromEnv();
  if (const std::string trace = flags.GetString("trace", ""); !trace.empty()) {
    if (Status s = obs::StartTracing(trace); !s.ok()) {
      std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
    }
  }
  options.scale = flags.GetDouble("scale", options.scale);
  // One split seed by default so the full bench suite fits a single-core
  // hour (the paper averages ten; raise --seeds given more compute).
  options.num_seeds = flags.GetInt("seeds", 1);
  options.max_feature_dim = flags.GetInt("features", options.max_feature_dim);
  options.hidden_dim = flags.GetInt("hidden", options.hidden_dim);
  options.num_heads = flags.GetInt("heads", options.num_heads);
  options.embedding_dim = options.hidden_dim;
  options.epochs_two_stage =
      flags.GetInt("epochs_two_stage", options.epochs_two_stage);
  options.epochs_end_to_end =
      flags.GetInt("epochs_end_to_end", options.epochs_end_to_end);
  options.batch_size = flags.GetInt("batch", options.batch_size);
  options.base_seed =
      static_cast<uint64_t>(flags.GetInt("base_seed", 1234));
  return options;
}

/// "73.1" or "-" for missing reference values.
inline std::string RefPct(double value) {
  return value < 0.0 ? "-" : StrFormat("%.1f", value);
}

/// Accuracy triple "all seen novel" in percent.
inline void AddAccuracyCells(const eval::MethodAggregate& agg,
                             const PaperRef& ref,
                             std::vector<std::string>* row) {
  row->push_back(Pct(agg.MeanAll()));
  row->push_back(Pct(agg.MeanSeen()));
  row->push_back(Pct(agg.MeanNovel()));
  row->push_back(RefPct(ref.all));
  row->push_back(RefPct(ref.seen));
  row->push_back(RefPct(ref.novel));
}

inline void PrintNote(const std::string& note) {
  std::printf("%s\n", note.c_str());
}

}  // namespace openima::bench

#endif  // OPENIMA_BENCH_BENCH_UTIL_H_
