// Reproduces the paper's Table V: ablation of the OpenIMA objective — the
// power set of {L_BPCL^emb, L_BPCL^logit, L_CE} plus "ours w/o PL" — by
// overall test accuracy on the five medium datasets.
//
// Flags: --scale --seeds --features --hidden --heads --epochs_two_stage
//        --batch --datasets=a,b,c

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/eval/experiment.h"
#include "src/graph/benchmarks.h"
#include "src/util/flags.h"

namespace openima {
namespace {

struct AblationRow {
  const char* label;
  bool emb, logit, ce, pl;
  /// Paper overall accuracy (%) per dataset; -1 = illegible in the source.
  std::map<std::string, double> paper;
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  eval::ExperimentOptions options = bench::OptionsFromFlags(flags);
  // Three datasets by default (single-core budget); pass --datasets=... for
  // the full five.
  std::vector<std::string> datasets = {"citeseer", "amazon_computers",
                                       "coauthor_cs"};
  if (flags.Has("datasets")) {
    datasets = Split(flags.GetString("datasets", ""), ',');
  }

  // Paper Table V values. NOTE: the source table's row layout was partially
  // garbled in extraction; the mapping of the middle rows follows the
  // paper's ablation discussion (§V-C) and is approximate.
  const std::vector<AblationRow> rows = {
      {"CE", false, false, true, true,
       {{"citeseer", 49.5}, {"amazon_photos", 60.1},
        {"amazon_computers", 60.1}, {"coauthor_cs", 65.9},
        {"coauthor_physics", 49.3}}},
      {"BPCL-emb", true, false, false, true,
       {{"citeseer", 67.8}, {"amazon_photos", 80.8},
        {"amazon_computers", 55.8}, {"coauthor_cs", 76.0},
        {"coauthor_physics", 58.8}}},
      {"BPCL-logit", false, true, false, true,
       {{"citeseer", 67.2}, {"amazon_photos", 79.7},
        {"amazon_computers", 56.5}, {"coauthor_cs", 73.4},
        {"coauthor_physics", 54.6}}},
      {"BPCL-logit+CE", false, true, true, true,
       {{"citeseer", 67.0}, {"amazon_photos", 81.9},
        {"amazon_computers", 67.7}, {"coauthor_cs", 75.8},
        {"coauthor_physics", 82.5}}},
      {"BPCL-emb+BPCL-logit", true, true, false, true,
       {{"citeseer", 68.7}, {"amazon_photos", 80.6},
        {"amazon_computers", 55.7}, {"coauthor_cs", 77.0},
        {"coauthor_physics", 59.1}}},
      {"BPCL-emb+CE", true, false, true, true,
       {{"citeseer", 69.0}, {"amazon_photos", 82.8},
        {"amazon_computers", 66.4}, {"coauthor_cs", 78.1},
        {"coauthor_physics", 64.0}}},
      {"OpenIMA (full)", true, true, true, true,
       {{"citeseer", 68.1}, {"amazon_photos", 83.6},
        {"amazon_computers", 67.8}, {"coauthor_cs", 77.1},
        {"coauthor_physics", 78.0}}},
      {"Ours w/o PL", true, true, true, false,
       {{"citeseer", 67.2}, {"amazon_photos", 77.2},
        {"amazon_computers", 57.3}, {"coauthor_cs", 71.6},
        {"coauthor_physics", 64.1}}},
  };

  std::vector<std::string> headers = {"Ablation"};
  for (const auto& d : datasets) {
    headers.push_back(d);
    headers.push_back("paper " + d);
  }
  Table t(headers);
  t.SetTitle(StrFormat(
      "Table V — loss-component ablations, overall accuracy (scale=%.3f, "
      "%d seed(s))",
      options.scale, options.num_seeds));

  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.label};
    for (const auto& dataset_name : datasets) {
      auto spec = graph::GetBenchmark(dataset_name);
      if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return 1;
      }
      auto agg = eval::RunOpenImaVariant(
          *spec, row.label, options, [&row](core::OpenImaConfig* config) {
            config->use_bpcl_emb = row.emb;
            config->use_bpcl_logit = row.logit;
            config->use_ce = row.ce;
            config->use_pseudo_labels = row.pl;
          });
      if (!agg.ok()) {
        std::fprintf(stderr, "%s on %s failed: %s\n", row.label,
                     dataset_name.c_str(), agg.status().ToString().c_str());
        return 1;
      }
      cells.push_back(Pct(agg->MeanAll()));
      auto it = row.paper.find(dataset_name);
      cells.push_back(it == row.paper.end() || it->second < 0
                          ? "-"
                          : StrFormat("%.1f", it->second));
    }
    t.AddRow(std::move(cells));
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): CE alone is weakest (unlabeled data\n"
      "unused); adding CE helps the BPCL variants; removing the\n"
      "bias-reduced pseudo labels (w/o PL) degrades the full model.\n");
  return 0;
}

}  // namespace
}  // namespace openima

int main(int argc, char** argv) { return openima::Run(argc, argv); }
