// Micro-benchmarks for the substrates behind OpenIMA and the §IV-C
// complexity claims: GEMM, GAT forward/backward, K-Means (full and
// mini-batch), Hungarian assignment, the BPCL contrastive loss, silhouette,
// and a full OpenIMA training epoch as a function of graph size N (the
// paper argues ~O(N log N) per iteration for fixed d, K, N_b).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/assign/hungarian.h"
#include "src/autograd/ops.h"
#include "src/cluster/kmeans.h"
#include "src/cluster/silhouette.h"
#include "src/core/novel_count.h"
#include "src/core/openima.h"
#include "src/core/positive_sets.h"
#include "src/exec/context.h"
#include "src/graph/sampler.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/la/backend/backend.h"
#include "src/la/distance.h"
#include "src/la/matrix_ops.h"
#include "src/nn/gat.h"
#include "src/obs/obs.h"

namespace openima {
namespace {

namespace ops = autograd::ops;
using autograd::Variable;

// benchmark_main owns main(); honor OPENIMA_TRACE via a static initializer
// so `OPENIMA_TRACE=trace.json ./bench_micro` records the span timeline of
// every benchmarked epoch/clustering call.
[[maybe_unused]] const bool kObsInit = [] {
  obs::InitFromEnv();
  return true;
}();

// ---------------------------------------------------------------------------
// Kernel benchmarks: the seed's naive i-k-j loop (MatmulReference) vs the
// blocked register-tiled GEMM, serial and under explicit thread counts.
// The two kernels are bit-identical (see kernel_parity_test), so any gap is
// pure blocking/parallelism.

/// The seed kernel: naive i-k-j GEMM, no tiling, no threads.
void BM_GemmReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  la::Matrix a = la::Matrix::Normal(n, n, 0.0f, 1.0f, &rng);
  la::Matrix b = la::Matrix::Normal(n, n, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::MatmulReference(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmReference)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

/// Blocked GEMM through the process-default execution context.
void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  la::Matrix a = la::Matrix::Normal(n, n, 0.0f, 1.0f, &rng);
  la::Matrix b = la::Matrix::Normal(n, n, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

/// Blocked GEMM pinned to an explicit thread count (second arg).
void BM_GemmThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  exec::Context ctx(threads);
  Rng rng(1);
  la::Matrix a = la::Matrix::Normal(n, n, 0.0f, 1.0f, &rng);
  la::Matrix b = la::Matrix::Normal(n, n, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Matmul(a, b, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmThreads)
    ->UseRealTime()
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4});

graph::Dataset MakeBenchGraph(int n, int classes = 6, int dim = 32) {
  graph::SbmConfig c;
  c.num_nodes = n;
  c.num_classes = classes;
  c.feature_dim = dim;
  c.avg_degree = 12.0;
  auto ds = graph::GenerateSbm(c, 7, "bench");
  return std::move(ds).value();
}

void BM_GatForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::Dataset ds = MakeBenchGraph(n);
  Rng rng(2);
  nn::GatEncoderConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 64;
  cfg.embedding_dim = 64;
  cfg.num_heads = 4;
  cfg.dropout = 0.0f;
  nn::GatEncoder encoder(cfg, &rng);
  Variable features = Variable::Leaf(ds.features, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encoder.Forward(ds.graph, features, false, nullptr).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GatForward)->Arg(500)->Arg(1000)->Arg(2000);

void BM_GatForwardBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::Dataset ds = MakeBenchGraph(n);
  Rng rng(3);
  nn::GatEncoderConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 64;
  cfg.embedding_dim = 64;
  cfg.num_heads = 4;
  nn::GatEncoder encoder(cfg, &rng);
  Variable features = Variable::Leaf(ds.features, false);
  for (auto _ : state) {
    encoder.ZeroGrad();
    Variable out = encoder.Forward(ds.graph, features, true, &rng);
    ops::MeanAll(ops::Mul(out, out)).Backward();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GatForwardBackward)->Arg(500)->Arg(1000);

/// GAT forward + backward pinned to an explicit thread count (second arg);
/// the attention/aggregation loops and the gather-based backward both
/// parallelize over node ranges.
void BM_GatForwardBackwardThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  exec::Context ctx(threads);
  graph::Dataset ds = MakeBenchGraph(n);
  Rng rng(3);
  nn::GatEncoderConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 64;
  cfg.embedding_dim = 64;
  cfg.num_heads = 4;
  cfg.exec = &ctx;
  nn::GatEncoder encoder(cfg, &rng);
  Variable features = Variable::Leaf(ds.features, false);
  for (auto _ : state) {
    encoder.ZeroGrad();
    Variable out = encoder.Forward(ds.graph, features, true, &rng);
    ops::MeanAll(ops::Mul(out, out)).Backward();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GatForwardBackwardThreads)
    ->UseRealTime()
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4});

// Second arg: 0 = plain Lloyd, 1 = triangle-inequality accelerated Lloyd
// (bit-identical results — cluster_parity_test — so the gap is pure
// pruning + the shared vectorized distance kernel).
void BM_KMeans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  la::Matrix points = la::Matrix::Normal(n, 64, 0.0f, 1.0f, &rng);
  cluster::KMeansOptions options;
  options.num_clusters = 10;
  options.max_iterations = 20;
  options.accelerated = state.range(1) != 0;
  for (auto _ : state) {
    Rng local(5);
    benchmark::DoNotOptimize(cluster::KMeans(points, options, &local));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(options.accelerated ? "accelerated" : "plain");
}
BENCHMARK(BM_KMeans)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({4000, 0})
    ->Args({4000, 1});

/// One Lloyd iteration (fused assignment + center accumulation) pinned to
/// an explicit thread count (second arg). Seeding dominates at small n, so
/// max_iterations=1 isolates the parallelized inner loop as much as a
/// public-API benchmark can.
void BM_KMeansIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  exec::Context ctx(threads);
  Rng rng(4);
  la::Matrix points = la::Matrix::Normal(n, 64, 0.0f, 1.0f, &rng);
  cluster::KMeansOptions options;
  options.num_clusters = 10;
  options.max_iterations = 1;
  options.exec = &ctx;
  for (auto _ : state) {
    Rng local(5);
    benchmark::DoNotOptimize(cluster::KMeans(points, options, &local));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeansIteration)
    ->UseRealTime()
    ->Args({4000, 1})
    ->Args({4000, 2})
    ->Args({4000, 4});

void BM_MiniBatchKMeans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  la::Matrix points = la::Matrix::Normal(n, 64, 0.0f, 1.0f, &rng);
  cluster::MiniBatchKMeansOptions options;
  options.num_clusters = 10;
  options.batch_size = 256;
  options.max_iterations = 50;
  for (auto _ : state) {
    Rng local(7);
    benchmark::DoNotOptimize(cluster::MiniBatchKMeans(points, options, &local));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MiniBatchKMeans)->Arg(4000)->Arg(16000);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  std::vector<std::vector<double>> cost(static_cast<size_t>(n),
                                        std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : cost) {
    for (auto& v : row) v = rng.Uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::MinCostAssignment(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(16)->Arg(64)->Arg(256);

void BM_SupConLoss(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(9);
  la::Matrix z = la::Matrix::Normal(2 * batch, 64, 0.0f, 1.0f, &rng);
  la::RowL2NormalizeInPlace(&z);
  std::vector<int> labels(static_cast<size_t>(batch));
  for (auto& l : labels) l = static_cast<int>(rng.UniformInt(8));
  const auto positives = core::BuildPositiveSets(labels);
  for (auto _ : state) {
    Variable zv = Variable::Leaf(z, true);
    Variable loss = ops::SupConLoss(zv, positives, 0.7f);
    loss.Backward();
    benchmark::DoNotOptimize(loss.value()(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SupConLoss)->Arg(256)->Arg(512)->Arg(1024);

// Second arg: 0 = scalar per-pair double loop (the historical path), 1 =
// anchor-block x point-tile kernel over the shared GEMM micro-tiles.
void BM_Silhouette(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  la::Matrix points = la::Matrix::Normal(n, 32, 0.0f, 1.0f, &rng);
  std::vector<int> labels(static_cast<size_t>(n));
  for (auto& l : labels) l = static_cast<int>(rng.UniformInt(6));
  cluster::SilhouetteOptions options;
  options.max_samples = 500;
  options.use_blocked = state.range(1) != 0;
  for (auto _ : state) {
    Rng local(11);
    benchmark::DoNotOptimize(
        cluster::SilhouetteCoefficient(points, labels, options, &local));
  }
  state.SetLabel(options.use_blocked ? "blocked" : "scalar");
}
BENCHMARK(BM_Silhouette)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({4000, 0})
    ->Args({4000, 1});

// The §V-E novel-class-count estimator: a K-Means + silhouette sweep over
// k = num_seen + [min_novel, max_novel] on mixture data shaped like the
// paper's embedding matrices. Second arg: warm-start the sweep's K-Means
// from the previous candidate's centers (1) vs cold k-means++ per k (0).
void BM_NovelCountSweep(benchmark::State& state) {
  const int n = 2000, d = 32, true_k = 8;
  Rng rng(12);
  la::Matrix points(n, d);
  for (int i = 0; i < n; ++i) {
    const int c = i % true_k;
    for (int j = 0; j < d; ++j) {
      const double center = (j % true_k == c) ? 4.0 : 0.0;
      points(i, j) = static_cast<float>(center + rng.Normal());
    }
  }
  core::NovelCountOptions options;
  options.num_seen = 4;
  options.min_novel = 2;
  options.max_novel = 7;
  options.kmeans_max_iterations = 30;
  options.silhouette_max_samples = 1000;
  options.warm_start_sweep = state.range(0) != 0;
  for (auto _ : state) {
    Rng local(13);
    benchmark::DoNotOptimize(
        core::EstimateNovelClassCount(points, options, &local));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(options.warm_start_sweep ? "warm-start" : "cold");
}
BENCHMARK(BM_NovelCountSweep)->Arg(0)->Arg(1);

// §IV-C: one OpenIMA training epoch (pseudo-labeling + two views + BPCL +
// CE + backward + K-Means) as a function of N.
void BM_OpenImaEpoch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::Dataset ds = MakeBenchGraph(n);
  graph::SplitOptions so;
  so.labeled_per_class = 20;
  so.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(ds, so, 1);
  core::OpenImaConfig config;
  config.encoder.in_dim = ds.feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = 1;
  config.batch_size = 512;
  for (auto _ : state) {
    core::OpenImaModel model(config, ds.feature_dim(), 3);
    benchmark::DoNotOptimize(model.Train(ds, *split));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("one full epoch, Nb=512");
}
BENCHMARK(BM_OpenImaEpoch)->Arg(500)->Arg(1000)->Arg(2000);

// Steady-state training epochs with the memory arena on (second arg 1) vs
// off (0). Each benchmark iteration trains one model for kArenaBenchEpochs
// epochs; the first epoch populates the pool, later ones recycle it, so the
// per-epoch time reported via items/s approaches the steady state as epochs
// grow. Counters expose the allocation story: `allocs/epoch` is the final
// epoch's heap allocations that bypassed the pool (matrix/scratch storage),
// `pool_miss/epoch` the pool's own fresh allocations that epoch. With the
// arena on, both must read 0 — that is the zero-allocation claim, and
// allocation_regression_test enforces it.
constexpr int kArenaBenchEpochs = 8;

void BM_TrainEpoch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool pooled = state.range(1) != 0;
  graph::Dataset ds = MakeBenchGraph(n);
  graph::SplitOptions so;
  so.labeled_per_class = 20;
  so.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(ds, so, 1);
  core::OpenImaConfig config;
  config.encoder.in_dim = ds.feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = kArenaBenchEpochs;
  config.batch_size = 512;
  config.use_memory_pool = pooled;
  int64_t last_allocs = 0;
  int64_t last_misses = 0;
  for (auto _ : state) {
    core::OpenImaModel model(config, ds.feature_dim(), 3);
    benchmark::DoNotOptimize(model.Train(ds, *split));
    const core::TrainStats& ts = model.train_stats();
    last_allocs = ts.epoch_unpooled_allocs.back();
    last_misses = ts.epoch_pool_misses.back();
  }
  state.SetItemsProcessed(state.iterations() * kArenaBenchEpochs);
  state.counters["allocs/epoch"] =
      benchmark::Counter(static_cast<double>(last_allocs));
  state.counters["pool_miss/epoch"] =
      benchmark::Counter(static_cast<double>(last_misses));
  state.SetLabel(pooled ? "arena" : "plain heap");
}
BENCHMARK(BM_TrainEpoch)
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({2000, 0})
    ->Args({2000, 1});

// The same pooled training epochs with the live-observability stack on: a
// background MetricsExporter publishing snapshots each interval plus 1-in-64
// request/trace sampling. Compare against BM_TrainEpoch/<n>/1 — the
// acceptance bar for the live stack is "within noise" (the exporter thread
// serializes off the hot path; unsampled spans cost one atomic load).
void BM_TrainEpochLiveObs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::Dataset ds = MakeBenchGraph(n);
  graph::SplitOptions so;
  so.labeled_per_class = 20;
  so.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(ds, so, 1);
  core::OpenImaConfig config;
  config.encoder.in_dim = ds.feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = kArenaBenchEpochs;
  config.batch_size = 512;
  config.use_memory_pool = true;

  const int64_t saved_period = obs::TraceSamplePeriod();
  obs::SetTraceSamplePeriod(64);
  obs::ExporterOptions export_options;
  export_options.path = "bench_live_obs_metrics.json";
  export_options.interval_ms = 250;
  obs::MetricsExporter exporter(export_options);
  const bool exporting = exporter.Start().ok();  // false under OBS=OFF builds

  for (auto _ : state) {
    core::OpenImaModel model(config, ds.feature_dim(), 3);
    benchmark::DoNotOptimize(model.Train(ds, *split));
  }

  exporter.Stop();
  obs::SetTraceSamplePeriod(saved_period);
  std::remove("bench_live_obs_metrics.json");
  std::remove("bench_live_obs_metrics.json.prom");
  state.SetItemsProcessed(state.iterations() * kArenaBenchEpochs);
  state.SetLabel(exporting ? "arena + exporter + 1/64 trace sampling"
                           : "arena (obs compiled out)");
}
BENCHMARK(BM_TrainEpochLiveObs)->Arg(500)->Arg(1000)->Arg(2000);

// ---------------------------------------------------------------------------
// Per-kernel-backend benchmarks: one row per backend registered at runtime
// (scalar always; avx2 when the host CPU qualifies), so BENCH_kernels.json
// carries backend-suffixed entries — BM_GemmBackend/scalar/256 vs
// BM_GemmBackend/avx2/256 — that run_benches.sh records and
// `run_diff --validate` checks. Registered dynamically because the backend
// list is a CPUID-time fact, not a compile-time one. Single-threaded with
// the backend pinned on the context, so the gap is pure kernel codegen.

void GemmBackendBody(benchmark::State& state,
                     const la::backend::KernelBackend* be) {
  const int n = static_cast<int>(state.range(0));
  exec::Context ctx(1);
  ctx.set_kernel_backend(be);
  Rng rng(1);
  la::Matrix a = la::Matrix::Normal(n, n, 0.0f, 1.0f, &rng);
  la::Matrix b = la::Matrix::Normal(n, n, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Matmul(a, b, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

/// The expansion-distance kernel itself (the kmeans/silhouette inner
/// loop), arg = dimensionality. The row-pair working set is sized to stay
/// cache-resident (n*d fixed), so the measurement is kernel arithmetic —
/// not memory bandwidth, per-pair dispatch, or the norm precomputation of
/// the PairwiseSquaredDistances wrapper.
void DistanceBackendBody(benchmark::State& state,
                         const la::backend::KernelBackend* be) {
  const int d = static_cast<int>(state.range(0));
  const int n = 8192 / d;
  Rng rng(14);
  la::Matrix x = la::Matrix::Normal(n, d, 0.0f, 1.0f, &rng);
  la::Matrix y = la::Matrix::Normal(n, d, 0.0f, 1.0f, &rng);
  const std::vector<float> xsq = la::RowSquaredNorms(x);
  const std::vector<float> ysq = la::RowSquaredNorms(y);
  // Results land in an output row exactly as PairwiseSquaredDistancesInto
  // writes them; accumulating into one float instead would thread a serial
  // add chain through every call and cap the measurable speedup.
  std::vector<float> out(static_cast<size_t>(n));
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      out[static_cast<size_t>(i)] = be->ExpansionSquaredDistance(
          x.Row(i), y.Row(i), d, xsq[static_cast<size_t>(i)],
          ysq[static_cast<size_t>(i)]);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * d);
}

/// Full training epochs under each backend. The backend is installed as
/// the process default for the duration (autograd's backward closures and
/// pseudo-label refresh all resolve through it), then restored.
void TrainEpochBackendBody(benchmark::State& state,
                           const la::backend::KernelBackend* be) {
  const std::string previous = la::backend::Default().name();
  (void)la::backend::SetDefault(be->name());
  const int n = static_cast<int>(state.range(0));
  graph::Dataset ds = MakeBenchGraph(n);
  graph::SplitOptions so;
  so.labeled_per_class = 20;
  so.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(ds, so, 1);
  core::OpenImaConfig config;
  config.encoder.in_dim = ds.feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = kArenaBenchEpochs;
  config.batch_size = 512;
  config.use_memory_pool = true;
  for (auto _ : state) {
    core::OpenImaModel model(config, ds.feature_dim(), 3);
    benchmark::DoNotOptimize(model.Train(ds, *split));
  }
  state.SetItemsProcessed(state.iterations() * kArenaBenchEpochs);
  (void)la::backend::SetDefault(previous);
}

/// Neighbor sampling of one 2-layer fanout-10 block per iteration. The
/// sampler's counter-based draws are backend-independent; the per-backend
/// rows pin that its cost stays flat when the rest of the pipeline switches
/// codegen (it shares BENCH_kernels.json with the kernels it feeds).
void SampleBackendBody(benchmark::State& state,
                       const la::backend::KernelBackend* be) {
  const int n = static_cast<int>(state.range(0));
  exec::Context ctx(1);
  ctx.set_kernel_backend(be);
  graph::Dataset ds = MakeBenchGraph(n);
  graph::SamplerConfig sc;
  sc.num_layers = 2;
  sc.fanout = 10;
  graph::NeighborSampler sampler(&ds.graph, sc);
  std::vector<int> seeds;
  for (int v = 0; v < std::min(n, 512); ++v) seeds.push_back(v);
  uint64_t tag = 0;
  int64_t frontier = 0;
  for (auto _ : state) {
    graph::SampledBlock block = sampler.Sample(seeds, tag++, &ctx);
    frontier = block.num_input();
    benchmark::DoNotOptimize(block.input_nodes.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(seeds.size()));
  state.counters["frontier"] =
      benchmark::Counter(static_cast<double>(frontier));
}

/// The blocked row-gather kernel on a sampled frontier's feature rows —
/// the memory-bound stage between sampling and the sampled GAT forward.
void GatherBackendBody(benchmark::State& state,
                       const la::backend::KernelBackend* be) {
  const int n = static_cast<int>(state.range(0));
  graph::Dataset ds = MakeBenchGraph(n);
  graph::SamplerConfig sc;
  sc.num_layers = 2;
  sc.fanout = 10;
  graph::NeighborSampler sampler(&ds.graph, sc);
  std::vector<int> seeds;
  for (int v = 0; v < std::min(n, 512); ++v) seeds.push_back(v);
  const graph::SampledBlock block = sampler.Sample(seeds, 0);
  const int64_t fd = ds.feature_dim();
  la::Matrix out(block.num_input(), static_cast<int>(fd));
  for (auto _ : state) {
    be->GatherRows(ds.features.data(), fd, block.input_nodes.data(),
                   block.num_input(), fd, out.data(), fd);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * block.num_input() * fd);
}

/// Sampled-minibatch training epochs under each backend — the tentpole
/// path end to end (sample, gather, sampled GAT forward/backward,
/// per-batch steps), comparable row-for-row with BM_TrainEpochBackend's
/// full-graph epochs.
void TrainEpochSampledBackendBody(benchmark::State& state,
                                  const la::backend::KernelBackend* be) {
  const std::string previous = la::backend::Default().name();
  (void)la::backend::SetDefault(be->name());
  const int n = static_cast<int>(state.range(0));
  graph::Dataset ds = MakeBenchGraph(n);
  graph::SplitOptions so;
  so.labeled_per_class = 20;
  so.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(ds, so, 1);
  core::OpenImaConfig config;
  config.encoder.in_dim = ds.feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = kArenaBenchEpochs;
  config.sampled_training = true;
  config.sample_fanout = 10;
  config.batch_nodes = 256;
  config.use_memory_pool = true;
  for (auto _ : state) {
    core::OpenImaModel model(config, ds.feature_dim(), 3);
    benchmark::DoNotOptimize(model.Train(ds, *split));
  }
  state.SetItemsProcessed(state.iterations() * kArenaBenchEpochs);
  (void)la::backend::SetDefault(previous);
}

/// Deterministic data-parallel sampled epochs under each backend, arg =
/// worker count (n fixed at 1000 so rows are comparable with
/// BM_TrainEpochSampledBackend's serial epochs). Measures the whole round
/// machinery — replica forward/backward, tree all-reduce, one Adam step
/// per round, weight broadcast — whose results are bit-identical to the
/// serial schedule, so the row isolates pure wall-clock scaling.
void TrainEpochDataParallelBackendBody(benchmark::State& state,
                                       const la::backend::KernelBackend* be) {
  const std::string previous = la::backend::Default().name();
  (void)la::backend::SetDefault(be->name());
  const int workers = static_cast<int>(state.range(0));
  graph::Dataset ds = MakeBenchGraph(1000);
  graph::SplitOptions so;
  so.labeled_per_class = 20;
  so.val_per_class = 10;
  auto split = graph::MakeOpenWorldSplit(ds, so, 1);
  core::OpenImaConfig config;
  config.encoder.in_dim = ds.feature_dim();
  config.encoder.hidden_dim = 32;
  config.encoder.embedding_dim = 32;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = kArenaBenchEpochs;
  config.sampled_training = true;
  config.sample_fanout = 10;
  config.batch_nodes = 256;
  config.use_memory_pool = true;
  config.workers = workers;
  for (auto _ : state) {
    core::OpenImaModel model(config, ds.feature_dim(), 3);
    benchmark::DoNotOptimize(model.Train(ds, *split));
  }
  state.SetItemsProcessed(state.iterations() * kArenaBenchEpochs);
  (void)la::backend::SetDefault(previous);
}

// Registered kernel-first, backend-inner, so each scalar/avx2 pair runs
// back-to-back: the recorded ratio then compares measurements taken
// seconds apart instead of minutes apart, which keeps it meaningful on
// shared hosts whose absolute speed drifts over a run.
[[maybe_unused]] const bool kBackendBenchInit = [] {
  const auto& backends = la::backend::RegisteredBackends();
  for (const la::backend::KernelBackend* be : backends) {
    benchmark::RegisterBenchmark(
        ("BM_GemmBackend/" + std::string(be->name())).c_str(),
        GemmBackendBody, be)
        ->Arg(256)
        ->Arg(512);
  }
  for (const la::backend::KernelBackend* be : backends) {
    benchmark::RegisterBenchmark(
        ("BM_DistanceBackend/" + std::string(be->name())).c_str(),
        DistanceBackendBody, be)
        ->Arg(64)
        ->Arg(256)
        ->Arg(1024);
  }
  for (const la::backend::KernelBackend* be : backends) {
    benchmark::RegisterBenchmark(
        ("BM_TrainEpochBackend/" + std::string(be->name())).c_str(),
        TrainEpochBackendBody, be)
        ->Arg(1000);
  }
  for (const la::backend::KernelBackend* be : backends) {
    benchmark::RegisterBenchmark(
        ("BM_SampleBackend/" + std::string(be->name())).c_str(),
        SampleBackendBody, be)
        ->Arg(2000);
  }
  for (const la::backend::KernelBackend* be : backends) {
    benchmark::RegisterBenchmark(
        ("BM_GatherBackend/" + std::string(be->name())).c_str(),
        GatherBackendBody, be)
        ->Arg(2000);
  }
  for (const la::backend::KernelBackend* be : backends) {
    benchmark::RegisterBenchmark(
        ("BM_TrainEpochSampledBackend/" + std::string(be->name())).c_str(),
        TrainEpochSampledBackendBody, be)
        ->Arg(1000);
  }
  for (const la::backend::KernelBackend* be : backends) {
    benchmark::RegisterBenchmark(
        ("BM_TrainEpochDataParallelBackend/" + std::string(be->name()))
            .c_str(),
        TrainEpochDataParallelBackendBody, be)
        ->Arg(2)
        ->Arg(8)
        // The epochs run on worker threads, so the registering thread's
        // CPU clock sees almost nothing — time (and the epochs/s counter)
        // against wall clock like the other threaded rows.
        ->UseRealTime();
  }
  return true;
}();

}  // namespace
}  // namespace openima
