// Reproduces the paper's Figure 2: seen/novel test accuracy of OpenIMA as
// functions of the CE scaling factor eta and the pseudo-label selection
// rate rho on Coauthor CS and Coauthor Physics.
//
// Flags: --scale --seeds --features --hidden --heads --epochs_two_stage
//        --batch --datasets=coauthor_cs,coauthor_physics

#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/experiment.h"
#include "src/graph/benchmarks.h"
#include "src/util/flags.h"

namespace openima {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  eval::ExperimentOptions options = bench::OptionsFromFlags(flags);
  // Default to Coauthor CS only (single-core budget); add
  // --datasets=coauthor_cs,coauthor_physics for the paper's second panel.
  std::vector<std::string> datasets = {"coauthor_cs"};
  if (flags.Has("datasets")) {
    datasets = Split(flags.GetString("datasets", ""), ',');
  }

  const double etas[] = {0.5, 1.0, 5.0, 10.0, 20.0};
  const double rhos[] = {25.0, 50.0, 75.0, 100.0};

  for (const auto& dataset_name : datasets) {
    auto spec = graph::GetBenchmark(dataset_name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    {
      Table t({"eta", "All", "Seen", "Novel"});
      t.SetTitle(StrFormat("Figure 2 (left) — %s: accuracy vs eta",
                           spec->name.c_str()));
      for (double eta : etas) {
        auto agg = eval::RunOpenImaVariant(
            *spec, StrFormat("eta=%.1f", eta), options,
            [eta](core::OpenImaConfig* config) {
              config->eta = static_cast<float>(eta);
            });
        if (!agg.ok()) {
          std::fprintf(stderr, "eta sweep failed: %s\n",
                       agg.status().ToString().c_str());
          return 1;
        }
        t.AddRow({StrFormat("%.1f", eta), Pct(agg->MeanAll()),
                  Pct(agg->MeanSeen()), Pct(agg->MeanNovel())});
      }
      std::printf("%s\n", t.ToString().c_str());
    }
    {
      Table t({"rho (%)", "All", "Seen", "Novel"});
      t.SetTitle(StrFormat("Figure 2 (right) — %s: accuracy vs rho",
                           spec->name.c_str()));
      for (double rho : rhos) {
        auto agg = eval::RunOpenImaVariant(
            *spec, StrFormat("rho=%.0f", rho), options,
            [rho](core::OpenImaConfig* config) { config->rho_pct = rho; });
        if (!agg.ok()) {
          std::fprintf(stderr, "rho sweep failed: %s\n",
                       agg.status().ToString().c_str());
          return 1;
        }
        t.AddRow({StrFormat("%.0f", rho), Pct(agg->MeanAll()),
                  Pct(agg->MeanSeen()), Pct(agg->MeanNovel())});
      }
      std::printf("%s\n", t.ToString().c_str());
    }
  }
  std::printf(
      "Expected shape (paper): on Coauthor CS, raising eta lifts seen\n"
      "accuracy but large eta over-fits the seen classes and hurts novel\n"
      "accuracy; on Coauthor Physics a large eta helps both. Moderate rho\n"
      "helps; rho = 100%% admits noisy pseudo labels and degrades.\n");
  return 0;
}

}  // namespace
}  // namespace openima

int main(int argc, char** argv) { return openima::Run(argc, argv); }
