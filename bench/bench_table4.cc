// Reproduces the paper's Table IV: evaluation on the (scaled-down stand-ins
// of the) larger graphs ogbn-Arxiv and ogbn-Products with mini-batch
// K-Means, head-based prediction and the pairwise regularizer for OpenIMA.
//
// Flags: --scale --seeds --features --hidden --heads --epochs_end_to_end
//        --batch

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/eval/experiment.h"
#include "src/graph/benchmarks.h"
#include "src/util/flags.h"

namespace openima {
namespace {

using bench::PaperRef;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  eval::ExperimentOptions options = bench::OptionsFromFlags(flags);
  if (!flags.Has("seeds")) options.num_seeds = 1;  // large graphs are slow
  // The many-class heads of the end-to-end baselines need a longer budget.
  if (!flags.Has("epochs_end_to_end")) options.epochs_end_to_end = 50;
  // The ogbn stand-ins are larger; scale the node floor only.
  const std::vector<std::string> datasets = {"ogbn_arxiv", "ogbn_products"};
  const std::vector<std::string> methods = {"orca_zm", "orca", "opencon",
                                            "openima"};

  const std::map<std::string, std::map<std::string, PaperRef>> paper = {
      {"ogbn_arxiv",
       {{"orca_zm", {41.6, 47.0, -1}},
        {"orca", {41.6, 44.7, -1}},
        {"opencon", {32.2, 31.8, -1}},
        {"openima", {43.6, 49.2, 32.9}}}},
      {"ogbn_products",
       {{"orca_zm", {49.5, 61.5, 32.3}},
        {"orca", {46.8, 55.5, 34.3}},
        {"opencon", {43.7, 46.0, 43.0}},
        {"openima", {62.0, 73.6, 44.3}}}},
  };

  // The global default scale would blow the ogbn stand-ins up to 10^5
  // nodes; these defaults land near the 60-nodes-per-class floor instead
  // (~2.5-3k nodes). Override with --scale.
  const std::map<std::string, double> default_scales = {
      {"ogbn_arxiv", 0.015}, {"ogbn_products", 0.0012}};

  for (const auto& dataset_name : datasets) {
    auto spec = graph::GetBenchmark(dataset_name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    if (!flags.Has("scale")) {
      auto it = default_scales.find(dataset_name);
      if (it != default_scales.end()) options.scale = it->second;
    }
    Table t({"Method", "All", "Seen", "Novel", "paper All", "paper Seen",
             "paper Novel"});
    t.SetTitle(StrFormat(
        "Table IV — %s (paper: %d nodes; stand-in scaled, %d seed(s))",
        spec->name.c_str(), spec->paper_nodes, options.num_seeds));
    for (const auto& method : methods) {
      auto agg = eval::RunMethod(*spec, method, options);
      if (!agg.ok()) {
        std::fprintf(stderr, "%s on %s failed: %s\n", method.c_str(),
                     dataset_name.c_str(), agg.status().ToString().c_str());
        return 1;
      }
      PaperRef ref = paper.at(dataset_name).at(method);
      std::vector<std::string> row = {agg->display_name};
      bench::AddAccuracyCells(*agg, ref, &row);
      t.AddRow(std::move(row));
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  std::printf(
      "Expected shape (paper): OpenIMA keeps the best overall accuracy on\n"
      "both large graphs, with the largest margin on ogbn-Products.\n");
  return 0;
}

}  // namespace
}  // namespace openima

int main(int argc, char** argv) { return openima::Run(argc, argv); }
