// Design-choice ablations beyond the paper's Table V (DESIGN.md §3):
//
//  (a) the clustering algorithm behind pseudo-labeling and two-stage
//      prediction — K-Means (the paper's choice) vs spherical K-Means vs
//      the GCD-style semi-supervised ("constrained") K-Means the paper
//      reports as inferior (§V-A) vs a diagonal GMM;
//  (b) the encoder architecture — GAT (the paper's choice) vs GCN.
//
// Flags: --scale --seeds --features --hidden --heads --epochs_two_stage
//        --batch --dataset=coauthor_cs

#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/experiment.h"
#include "src/graph/benchmarks.h"
#include "src/util/flags.h"

namespace openima {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  eval::ExperimentOptions options = bench::OptionsFromFlags(flags);
  if (!flags.Has("seeds")) options.num_seeds = 1;  // extension ablation
  const std::string dataset_name = flags.GetString("dataset", "coauthor_cs");
  auto spec = graph::GetBenchmark(dataset_name);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }

  {
    Table t({"Clusterer", "All", "Seen", "Novel"});
    t.SetTitle(StrFormat(
        "Ablation (a) — clustering algorithm inside OpenIMA on %s "
        "(%d seed(s))",
        dataset_name.c_str(), options.num_seeds));
    for (auto kind :
         {core::ClustererKind::kKMeans, core::ClustererKind::kSphericalKMeans,
          core::ClustererKind::kConstrainedKMeans, core::ClustererKind::kGmm}) {
      auto agg = eval::RunOpenImaVariant(
          *spec, core::ClustererKindName(kind), options,
          [kind](core::OpenImaConfig* config) { config->clusterer = kind; });
      if (!agg.ok()) {
        std::fprintf(stderr, "%s failed: %s\n",
                     core::ClustererKindName(kind).c_str(),
                     agg.status().ToString().c_str());
        return 1;
      }
      t.AddRow({core::ClustererKindName(kind), Pct(agg->MeanAll()),
                Pct(agg->MeanSeen()), Pct(agg->MeanNovel())});
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  {
    Table t({"Encoder", "All", "Seen", "Novel"});
    t.SetTitle(StrFormat("Ablation (b) — encoder architecture on %s",
                         dataset_name.c_str()));
    for (auto arch : {nn::EncoderArch::kGat, nn::EncoderArch::kGcn}) {
      const char* name = arch == nn::EncoderArch::kGat ? "GAT" : "GCN";
      auto agg = eval::RunOpenImaVariant(
          *spec, name, options, [arch](core::OpenImaConfig* config) {
            config->encoder.arch = arch;
          });
      if (!agg.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", name,
                     agg.status().ToString().c_str());
        return 1;
      }
      t.AddRow({name, Pct(agg->MeanAll()), Pct(agg->MeanSeen()),
                Pct(agg->MeanNovel())});
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  std::printf(
      "Expected shape (paper, §V-A): plain K-Means beats the semi-supervised\n"
      "constrained variant, whose pinned labeled points drag diverse classes\n"
      "together; the paper's encoder is GAT.\n");
  return 0;
}

}  // namespace
}  // namespace openima

int main(int argc, char** argv) { return openima::Run(argc, argv); }
